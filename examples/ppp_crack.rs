//! The paper's motivating scenario end to end: a Pointcheval
//! identification key is generated, the attacker sees only the public
//! instance, recovers an equivalent secret with large-neighborhood tabu
//! search (escalating 1 → 2 → 3-Hamming exactly as the paper's tables
//! do), and then passes the identification protocol.
//!
//! ```text
//! cargo run --release --example ppp_crack
//! ```

use lnls::ppp::crypto;
use lnls::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let (m, n, seed) = (37, 37, 77);
    println!("── key generation ───────────────────────────────────────");
    let (pk, sk) = crypto::keygen(m, n, seed);
    println!("issued a PPP-{m}×{n} identification key");
    let honest = crypto::identification_session(&pk, &sk, 16, 1);
    println!("honest prover passes {honest}/16 rounds\n");

    println!("── attack: large-neighborhood tabu search ───────────────");
    let problem = Ppp::new(pk.inst.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let init = BitString::random(&mut rng, n);

    let mut recovered: Option<BitString> = None;
    for k in 1..=3usize {
        let hood = KHamming::new(n, k);
        let budget = (Neighborhood::size(&ThreeHamming::new(n)) / 8).max(2_000);
        let search = TabuSearch::paper(
            SearchConfig::budget(budget).with_seed(seed + k as u64),
            Neighborhood::size(&hood),
        );
        let mut explorer = SequentialExplorer::new(hood);
        let t0 = Instant::now();
        let r = search.run(&problem, &mut explorer, init.clone());
        println!(
            "{k}-Hamming: fitness {:>3} after {:>6} iters ({:>8.2?})  {}",
            r.best_fitness,
            r.iterations,
            t0.elapsed(),
            if r.success { "→ key recovered!" } else { "" }
        );
        if r.success {
            recovered = Some(r.best);
            break;
        }
    }

    let Some(v) = recovered else {
        println!("\nattack failed within the budget — rerun with a bigger budget");
        return;
    };

    println!("\n── impersonation with the recovered key ─────────────────");
    assert!(pk.inst.is_solution(&v), "recovered vector must satisfy the instance");
    match &sk.v {
        w if *w == v => println!("recovered the exact planted secret"),
        _ => println!("recovered an equivalent secret (same correlation multiset)"),
    }
    let forged = crypto::SecretKey { v };
    let passed = crypto::identification_session(&pk, &forged, 16, 2);
    println!("attacker passes {passed}/16 identification rounds");
    assert_eq!(passed, 16, "a valid witness must always identify");
    println!("\nthe scheme is broken exactly as §IV of the paper demonstrates.");
}
