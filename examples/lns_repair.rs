//! Destroy-and-repair LNS and portfolio races, end to end: a solo
//! destroy/repair walk with its adaptive radius trail, the same jobs
//! scheduled on a simulated fleet (every repair round priced as one
//! fused multi-lane stream span), a portfolio race whose iteration
//! budget visibly follows the leading lane, and finally the `lns-repair`
//! catalog scenario driven through the workload recorder.
//!
//! ```text
//! cargo run --release --example lns_repair
//! LNLS_SEED=7 cargo run --release --example lns_repair
//! ```

use lnls::core::SearchCursor;
use lnls::lns::{LnsCursor, PortfolioOutcome, LANE_NAMES};
use lnls::prelude::*;

fn main() {
    let seed: u64 = std::env::var("LNLS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42);

    // --- 1. A solo destroy-and-repair walk, radius trail included. ---
    let n = 48;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    let knap = Knapsack::random(&mut rng, n, 12, 6);
    let init = BitString::random(&mut rng, n);
    // Knapsack fitness is negative (we minimize -value), so clear the
    // budget default `target_fitness = Some(0)` — the optimum is unknown.
    let config = SearchConfig::budget(60).with_seed(seed).with_target(None);
    let search = LnsSearch::paper(config.clone()).with_lanes(4).with_destroy(DestroyOp::Cycle);

    println!("=== destroy-and-repair LNS: knapsack n={n}, 60 rounds, 4 repair lanes ===");
    let mut cursor: LnsCursor<Knapsack> = search.cursor(&knap, init.clone());
    let mut last_best = cursor.best();
    println!("{:>6} {:>10} {:>8} {:>6} {:>14}", "round", "best", "radius", "freed", "destroy op");
    while !cursor.is_done() {
        let round = cursor.iterations();
        let op = cursor.op().for_round(round);
        let freed = cursor.planned_free_count();
        let frac = cursor.radius().fraction();
        cursor.step_batch(&knap, 1);
        if cursor.best() < last_best || round.is_multiple_of(12) {
            println!(
                "{:>6} {:>10} {:>8.3} {:>6} {:>14}",
                round,
                cursor.best(),
                frac,
                freed,
                op.label()
            );
            last_best = cursor.best();
        }
    }
    let solo = search.run(&knap, init.clone());
    assert_eq!(solo.best_fitness, cursor.best(), "run() and the stepped cursor agree");
    println!(
        "solo best {} after {} rounds / {} evals (backend {})\n",
        solo.best_fitness, solo.iterations, solo.evals, solo.backend
    );

    // --- 2. The same family scheduled: fused repair spans on a fleet. ---
    let mut fleet = Scheduler::with_uniform_fleet(
        2,
        DeviceSpec::gtx280(),
        SchedulerConfig { quantum_iters: Some(4), ..Default::default() },
    );
    let lns_handle = fleet.submit(LnsJob::new("lns-knap", knap.clone(), search.clone(), init));
    for i in 0..3u64 {
        let mut jrng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed ^ i);
        let qubo = Qubo::random(&mut jrng, 32, 7, 0.5);
        let qinit = BitString::random(&mut jrng, 32);
        let qcfg = SearchConfig::budget(40).with_seed(seed ^ i).with_target(None);
        fleet.submit(LnsJob::new(format!("lns-qubo-{i}"), qubo, LnsSearch::paper(qcfg), qinit));
    }
    fleet.run_until_idle();
    let report = fleet.fleet_report();
    let fleet_lns = fleet.report(lns_handle).expect("done");
    let fleet_best = fleet_lns.outcome.as_binary().expect("LNS reports a SearchResult");
    assert_eq!(
        fleet_best.best_fitness, solo.best_fitness,
        "scheduling is invisible to the search result"
    );
    println!("=== fleet: 4 LNS jobs, every round one fused multi-lane repair span ===");
    println!(
        "makespan {:.6}s, {} spans priced, launch overhead saved {:.9}s",
        report.makespan_s, report.spans, report.launch_overhead_saved_s
    );
    println!("fleet best equals solo best: {}\n", fleet_best.best_fitness);

    // --- 3. A portfolio race: budget follows the leading lane. ---
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed + 1);
    let qubo = Qubo::random(&mut rng, 28, 9, 0.5);
    let qinit = BitString::random(&mut rng, 28);
    let rcfg = SearchConfig::budget(64).with_seed(seed + 1).with_target(None);
    let race = PortfolioSearch::paper(rcfg).with_realloc_every(8).with_boost(4);
    let mut fleet = Scheduler::with_uniform_fleet(
        1,
        DeviceSpec::gtx280(),
        SchedulerConfig { quantum_iters: Some(6), ..Default::default() },
    );
    let handle = fleet.submit(PortfolioJob::new("race-qubo", qubo, race, qinit));
    fleet.run_until_idle();
    let report = fleet.report(handle).expect("done");
    let outcome: &PortfolioOutcome =
        report.outcome.detail().expect("portfolio jobs attach their race outcome");
    println!("=== portfolio race: tabu vs. SA vs. shaken descent, one fused batch ===");
    for (i, name) in LANE_NAMES.iter().enumerate() {
        let marker = if i == outcome.leader { "  <- leader" } else { "" };
        println!(
            "{:>8}: {:>5} sub-steps, best {}{}",
            name, outcome.lane_iterations[i], outcome.lane_best[i], marker
        );
    }
    println!(
        "{} rounds, {} leader switches, winner '{}' (best {})\n",
        outcome.rounds,
        outcome.switches,
        outcome.leader_name(),
        report.outcome.best_fitness()
    );

    // --- 4. The catalog scenario, recorded through the driver. ---
    let scenario = Scenario::by_name("lns-repair").expect("catalog scenario");
    let (trace, recorded) = Driver::record(&scenario, seed);
    let f = &recorded.fleet;
    println!("=== workload scenario '{}' — {} ===", scenario.name, scenario.summary);
    println!(
        "{} arrivals, makespan {:.6}s, {:.1} jobs/sim-s, {} fused spans",
        trace.arrivals.len(),
        f.makespan_s,
        f.jobs_per_sim_s,
        f.spans
    );
    let replayed = Driver::replay(&Trace::from_bytes(&trace.to_bytes()).expect("traces decode"));
    assert_eq!(
        format!("{:?}", replayed.fleet),
        format!("{:?}", recorded.fleet),
        "the recorded LNS scenario must replay bit-identically"
    );
    println!("replay is bit-identical to the recording.");
}
