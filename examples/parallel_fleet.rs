//! The true-parallel service runtime end to end: one worker thread per
//! shard group, fork/join tick barriers, and bit-identical results at
//! every worker count.
//!
//! Three acts:
//! 1. **Worker sweep** — the same sharded saturation traffic recorded
//!    at 1 → 8 worker threads: wall-clock per run drops while the
//!    merged `FleetReport` stays bit-identical to the serial path.
//! 2. **Closed-loop shed storm** — completion-gated clients over a
//!    per-shard in-flight bound: the limiter sheds, the shed/retry
//!    schedule is tick-stamped into the trace, and none of it moves
//!    with the worker count.
//! 3. **Crash every worker** — a fleet snapshotting per-shard delta
//!    chains is dropped mid-run (all threads join and die) and
//!    restored; run to idle it matches the uninterrupted run bit for
//!    bit.
//!
//! ```text
//! cargo run --release --example parallel_fleet
//! LNLS_SEED=7 LNLS_SCALE=2 cargo run --release --example parallel_fleet
//! ```

use lnls::prelude::*;
use lnls::workload::Scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn onemax_job(name: &str, seed: u64) -> BinaryJob<OneMax, TwoHamming> {
    let n = 24;
    let hood = TwoHamming::new(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let init = BitString::random(&mut rng, n);
    let search =
        TabuSearch::paper(SearchConfig::budget(80).with_seed(seed).with_target(None), hood.size());
    BinaryJob::new(name, OneMax::new(n), hood, search, init)
}

fn fresh_fleet(shards: usize, workers: usize) -> ParallelFleet {
    ParallelFleet::new(
        ShardConfig::current(),
        AdmissionPolicy::unbounded(),
        shards,
        workers,
        SchedulerConfig { max_batch: 4, quantum_iters: Some(8), ..Default::default() },
        |_| MultiDevice::new_uniform(1, DeviceSpec::gtx280()),
    )
}

fn main() {
    let seed: u64 = std::env::var("LNLS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42);
    let scale: f64 = std::env::var("LNLS_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(1.0);

    println!("=== lnls parallel fleet: worker threads, shed storms, crash-all-workers ===\n");

    // ---- Act 1: the worker sweep. Same traffic, same bits, less wall.
    // Heavy per-shard compute (dim-96 neighborhoods, 64-iteration
    // quanta) so the tick work dominates the barrier handoff; the wall
    // speedup tracks min(workers, cores) on the host.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let heavy = {
        let mut s = Scenario::saturation_sharded_sized(32, 8, (48.0 * scale) as u64);
        for t in &mut s.tenants {
            t.dims = vec![96];
            t.iters = (192, 256);
        }
        s.fleet.quantum_iters = Some(64);
        s
    };
    let (heavy_trace, _) = Driver::record(&heavy, seed);
    println!(
        "--- workers: '{}' replayed at 1 -> 8 threads over 8 shards ({cores} core(s)) ---",
        heavy.name
    );
    println!("{:>8} | {:>9} {:>9} {:>12}", "workers", "wall(ms)", "speedup", "report bits");
    let mut serial_bits = String::new();
    let mut serial_ms = 0.0f64;
    for workers in [1usize, 2, 4, 8] {
        let timer = Instant::now();
        let report = Driver::replay_with_workers(&heavy_trace, workers);
        let wall_ms = timer.elapsed().as_secs_f64() * 1e3;
        let bits = format!("{:?}", report.fleet);
        if workers == 1 {
            serial_bits = bits.clone();
            serial_ms = wall_ms;
        }
        println!(
            "{:>8} | {:>9.1} {:>8.2}x {:>12}",
            workers,
            wall_ms,
            serial_ms / wall_ms,
            if bits == serial_bits { "identical" } else { "DRIFTED" },
        );
        assert_eq!(bits, serial_bits, "worker threads must not change the report");
    }

    // ---- Act 2: closed-loop clients shedding at the in-flight bound.
    let storm = Scenario::closed_loop_saturation();
    println!(
        "\n--- closed loop: '{}' ({} clients, retry after {} ticks) ---",
        storm.name,
        match storm.arrivals {
            lnls::workload::ArrivalProcess::ClosedLoop { clients, .. } => clients,
            _ => unreachable!("closed_loop_saturation is closed-loop"),
        },
        2,
    );
    println!("{:>8} | {:>6} {:>9} {:>7} {:>12}", "workers", "sheds", "attempts", "ticks", "trace");
    let mut serial_trace: Vec<u8> = Vec::new();
    for workers in [1usize, 2, 4] {
        let (trace, report) = Driver::record(&storm.clone().with_workers(workers), seed);
        let bytes = trace.to_bytes();
        if workers == 1 {
            serial_trace = bytes.clone();
        }
        println!(
            "{:>8} | {:>6} {:>9} {:>7} {:>12}",
            workers,
            report.bounced,
            trace.arrivals.len(),
            report.ticks,
            if bytes == serial_trace { "identical" } else { "DRIFTED" },
        );
        assert_eq!(bytes, serial_trace, "the attempt schedule must not move with workers");
    }

    // ---- Act 3: crash every worker thread, restore from the chains.
    let jobs = (18.0 * scale) as u64;
    let dir = std::env::temp_dir().join(format!("lnls-parallel-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let submit_all = |fleet: &mut ParallelFleet| {
        for i in 0..jobs {
            fleet
                .submit_spec(JobSpec::new(onemax_job(&format!("job-{i}"), i)))
                .expect("unbounded admission");
        }
    };

    // Reference: the same fleet run to completion without interruption.
    let mut reference = fresh_fleet(3, 3);
    submit_all(&mut reference);
    reference.run_until_idle();
    let reference_report = reference.fleet_report();

    let mut fleet = fresh_fleet(3, 3).with_checkpoint_dir(&dir, 8).expect("checkpoint dir opens");
    submit_all(&mut fleet);
    println!("\n--- crash: {jobs} jobs on 3 shards / 3 workers, killed at tick 5 ---");
    for _ in 0..5 {
        fleet.tick();
        fleet.snapshot().expect("snapshots write");
    }
    let ticks_at_crash = fleet.ticks();
    let workers_at_crash = fleet.worker_count();
    drop(fleet); // the crash: every worker thread joins and dies

    let registry = JobRegistry::with_builtin();
    let mut restored = ParallelFleet::restore(
        ShardConfig::current(),
        AdmissionPolicy::unbounded(),
        &dir,
        &registry,
        ticks_at_crash,
        &[0, 0, 0],
        workers_at_crash,
    )
    .expect("the chains restore");
    restored.run_until_idle();
    let restored_report = restored.fleet_report();

    let identical = format!("{reference_report:?}") == format!("{restored_report:?}");
    println!(
        "killed {workers_at_crash} worker threads at tick {ticks_at_crash}, restored from \
         per-shard base+delta chains, ran to idle:"
    );
    println!(
        "restored report vs. uninterrupted run: {}",
        if identical { "BIT-IDENTICAL" } else { "MISMATCH" }
    );
    println!("{restored_report}");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(identical, "a crash-all-workers restore must land on the uninterrupted run's bits");
}
