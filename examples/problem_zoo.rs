//! The framework's generality claim, live: the same tabu search and the
//! same neighborhood ladder applied to five binary problems (OneMax,
//! QUBO, Max-Cut, knapsack, Ising spin glass), with the ParadisEO-style
//! observers recording each run and GVNS as the escape hatch where a
//! single neighborhood stalls.
//!
//! ```text
//! cargo run --release --example problem_zoo
//! ```

use lnls::core::peo::{Acceptance, FitnessTrace, MaxIterations, PeoSearch, TargetFitness};
use lnls::core::problem::IncrementalEval;
use lnls::core::GeneralVns;
use lnls::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tabu_row<P: IncrementalEval>(name: &str, problem: &P, n: usize, k: usize, budget: u64) {
    let hood = KHamming::new(n, k);
    let mut explorer = SequentialExplorer::new(hood);
    let search = TabuSearch::paper(
        SearchConfig::budget(budget).with_seed(7).with_target(problem.target_fitness()),
        Neighborhood::size(&hood),
    );
    let mut rng = StdRng::seed_from_u64(7);
    let init = BitString::random(&mut rng, n);
    let r = search.run(problem, &mut explorer, init);
    println!(
        "  {name:<18} {k}-Hamming ({:>6} moves): best {:>7}  iters {:>5}  wall {:?}",
        Neighborhood::size(&hood),
        r.best_fitness,
        r.iterations,
        r.wall
    );
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2010);
    let n = 48;

    println!("same driver, five problems, growing neighborhoods:\n");

    let onemax = OneMax::new(n);
    let qubo = Qubo::random(&mut rng, n, 9, 0.4);
    let maxcut = MaxCut::random(&mut rng, n, 0.25, 9);
    let knap = Knapsack::random(&mut rng, n, 20, 10);
    let ising = IsingLattice::random_pm(&mut rng, 7, 0); // 49 spins

    for k in 1..=2usize {
        println!("k = {k}:");
        tabu_row("onemax", &onemax, n, k, 200);
        tabu_row("qubo", &qubo, n, k, 200);
        tabu_row("max-cut", &maxcut, n, k, 200);
        tabu_row("knapsack", &knap, n, k, 200);
        tabu_row("ising-7x7", &ising, 49, k, 200);
        println!();
    }

    // --- white-box composition: observers + continuators -----------------
    println!("peo-style run on Max-Cut with a fitness trace:");
    let mut trace = FitnessTrace::default();
    let mut explorer = SequentialExplorer::new(TwoHamming::new(n));
    let result = PeoSearch::new(Acceptance::Always)
        .stop_when(MaxIterations(60))
        .stop_when(TargetFitness(i64::MIN + 1)) // unreachable: run the full budget
        .observe(&mut trace)
        .run(&maxcut, &mut explorer, BitString::zeros(n));
    let first = trace.best.first().copied().unwrap_or_default();
    println!(
        "  start {} → best {} over {} iterations (cut value {})",
        trace.initial.unwrap_or_default(),
        result.best_fitness,
        result.iterations,
        -result.best_fitness
    );
    println!("  trace head: {first} … tail: {}", trace.best.last().copied().unwrap_or_default());

    // --- GVNS across the ladder ------------------------------------------
    println!("\ngvns (shake + descend over the 1/2/3-Hamming ladder) on the spin glass:");
    let mut ladder: Vec<Box<dyn Explorer<IsingLattice>>> = vec![
        Box::new(SequentialExplorer::new(OneHamming::new(49))),
        Box::new(SequentialExplorer::new(TwoHamming::new(49))),
        Box::new(SequentialExplorer::new(ThreeHamming::new(49))),
    ];
    let gvns = GeneralVns::new(SearchConfig::budget(40).with_seed(3).with_target(None))
        .with_descent_budget(200)
        .with_restarts(4);
    let init = BitString::random(&mut rng, 49);
    let r = gvns.run(&ising, &mut ladder, init);
    println!(
        "  best energy {} after {} shake-descend rounds ({} evaluations)",
        r.best_fitness, r.iterations, r.evals
    );
}
