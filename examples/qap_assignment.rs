//! Robust tabu search on the quadratic assignment problem — the
//! algorithm the paper cites as its tabu search (ref. [11]), run in its
//! original habitat, with the swap neighborhood flat-indexed by the
//! paper's 2D triangular mapping and scanned either on the host or on
//! the simulated GTX 280.
//!
//! ```text
//! cargo run --release --example qap_assignment
//! ```

use lnls::gpu::DeviceSpec;
use lnls::qap::{
    GpuSwapEvaluator, Permutation, QapInstance, RobustTabu, RtsConfig, SwapEvaluator,
    TableEvaluator,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = 2010;

    // Small instance: verify the search finds the certified optimum.
    let mut rng = StdRng::seed_from_u64(seed);
    let small = QapInstance::random_symmetric(&mut rng, 8);
    let (optimum, _) = small.brute_force_optimum();
    let rts = RobustTabu::new(RtsConfig::budget(2_000).with_target(Some(optimum)).with_seed(seed));
    let r = rts.run(&small, &mut TableEvaluator::new(), Permutation::random(&mut rng, 8));
    println!(
        "n=8   brute-force optimum {optimum}, robust tabu found {} ({} iters, success={})",
        r.best_cost, r.iterations, r.success
    );

    // Medium instance: same walk on the CPU delta table and on the
    // simulated GPU; results must be identical, and the device ledger
    // prices the modeled speedup.
    let n = 50;
    let inst = QapInstance::random_symmetric(&mut rng, n);
    let init = Permutation::random(&mut rng, n);
    let rts = RobustTabu::new(RtsConfig::budget(300).with_seed(seed));

    let cpu = rts.run(&inst, &mut TableEvaluator::new(), init.clone());
    let mut gpu_eval = GpuSwapEvaluator::new(&inst, DeviceSpec::gtx280());
    let gpu = rts.run(&inst, &mut gpu_eval, init);
    assert_eq!(cpu.best_cost, gpu.best_cost, "backends must take the same walk");

    println!(
        "n={n}  best cost {} after {} iterations (identical on both backends)",
        cpu.best_cost, cpu.iterations
    );
    let book = SwapEvaluator::book(&gpu_eval).expect("gpu ledger");
    println!(
        "      modeled: GPU {:.3} s vs sequential host {:.3} s  →  x{:.1} speedup",
        book.gpu_total_s(),
        book.host_s,
        book.speedup().unwrap_or(0.0)
    );
    println!(
        "      ({} launches, {} KiB uploaded, {} KiB read back)",
        book.launches,
        book.bytes_h2d / 1024,
        book.bytes_d2h / 1024
    );
}
