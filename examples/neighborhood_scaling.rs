//! The paper's central claim in one run: *larger neighborhoods give
//! better solutions* (at higher per-iteration cost). Runs the same tabu
//! budget with 1-, 2- and 3-Hamming neighborhoods over several tries on
//! one PPP instance and prints a miniature Tables I–III.
//!
//! ```text
//! cargo run --release --example neighborhood_scaling
//! ```

use lnls::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let (m, n, tries, budget) = (31, 31, 8, 3_000);
    let instance = PppInstance::generate(m, n, 4242);
    let problem = Ppp::new(instance);
    println!("PPP {m}×{n}, {tries} tries, {budget} iterations per try\n");
    println!(
        "{:<12} {:>8} {:>8} {:>10} {:>10}",
        "hood", "mean f", "best f", "solutions", "evals/try"
    );

    for k in 1..=3usize {
        let hood = KHamming::new(n, k);
        let mut results = Vec::new();
        for t in 0..tries {
            let seed = 1000 + t as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let init = BitString::random(&mut rng, n);
            let mut explorer = SequentialExplorer::new(hood);
            let search = TabuSearch::paper(
                SearchConfig::budget(budget).with_seed(seed),
                Neighborhood::size(&hood),
            );
            results.push(search.run(&problem, &mut explorer, init));
        }
        let mean_f =
            results.iter().map(|r| r.best_fitness as f64).sum::<f64>() / results.len() as f64;
        let best_f = results.iter().map(|r| r.best_fitness).min().unwrap();
        let solved = results.iter().filter(|r| r.success).count();
        let evals = results.iter().map(|r| r.evals).sum::<u64>() / tries as u64;
        println!(
            "{:<12} {:>8.1} {:>8} {:>7}/{:<2} {:>10}",
            format!("{k}-Hamming"),
            mean_f,
            best_f,
            solved,
            tries,
            evals
        );
    }

    println!(
        "\nexpected shape (paper Tables I→III): mean fitness falls and the\n\
         solution count rises as the neighborhood grows — bought with a\n\
         per-iteration evaluation cost of n, n²/2 and n³/6 neighbors."
    );
}
