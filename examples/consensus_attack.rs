//! The paper's closing perspective made concrete: plain tabu search
//! versus the same iteration budget organized as a Knudsen–Meier-style
//! *consensus attack* (independent searches voting bitwise on a shared
//! restart point). On solvable instances the voting variant reaches
//! lower fitness — "introducing appropriate cryptanalysis heuristics".
//!
//! ```text
//! cargo run --release --example consensus_attack
//! ```

use lnls::ppp::ConsensusAttack;
use lnls::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let (m, n, seed) = (29, 29, 11);
    let instance = PppInstance::generate(m, n, seed);
    let problem = Ppp::new(instance);
    println!("PPP {m}×{n} (seed {seed})\n");

    // One long tabu run: 6 rounds × 4 searches × 300 iterations worth.
    let total_budget = 6 * 4 * 300u64;
    let hood = TwoHamming::new(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let init = BitString::random(&mut rng, n);
    let search = TabuSearch::paper(
        SearchConfig::budget(total_budget).with_seed(seed),
        Neighborhood::size(&hood),
    );
    let mut ex = SequentialExplorer::new(hood);
    let single = search.run(&problem, &mut ex, init);
    println!(
        "single tabu   : fitness {:>3}  ({} iterations)  success {}",
        single.best_fitness, single.iterations, single.success
    );

    // The same budget as a consensus attack.
    let attack = ConsensusAttack {
        searches_per_round: 4,
        budget_per_search: 300,
        rounds: 6,
        k: 2,
        voters: 3,
        perturbation: 4,
        seed,
    };
    let out = attack.run(&problem);
    match &out.solution {
        Some(v) => {
            assert!(problem.inst.is_solution(v));
            println!(
                "consensus     : SOLVED in round {} ({} iterations total)",
                out.rounds_used, out.total_iterations
            );
        }
        None => println!(
            "consensus     : fitness {:>3}  ({} iterations total)",
            out.best_fitness, out.total_iterations
        ),
    }

    println!(
        "\nsame iteration budget, different organization — voting restarts\n\
         concentrate the search near the planted secret (Knudsen–Meier)."
    );
}
