//! Tour of the framework beyond the paper's tabu-on-PPP pipeline: every
//! search driver from the paper's introduction (hill climbing, simulated
//! annealing, iterated local search, variable neighborhood search) on
//! every bundled binary problem (OneMax, QUBO, MAX-3SAT, NK landscape).
//!
//! ```text
//! cargo run --release --example framework_tour
//! ```

use lnls::core::{IncrementalEval, VariableNeighborhoodSearch};
use lnls::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_all_drivers<P: IncrementalEval>(name: &str, problem: &P, seed: u64) {
    let n = problem.dim();
    let mut rng = StdRng::seed_from_u64(seed);
    let init = BitString::random(&mut rng, n);

    // Hill climbing, best improvement, 2-Hamming.
    let mut hc_ex = SequentialExplorer::new(TwoHamming::new(n));
    let hc = HillClimbing::best(SearchConfig::budget(2_000).with_seed(seed));
    let r_hc = hc.run(problem, &mut hc_ex, init.clone());

    // Simulated annealing samples the 2-Hamming neighborhood by
    // unranking uniform indices — the paper's mappings as samplers.
    let sa = SimulatedAnnealing::new(
        SearchConfig::budget(60_000).with_seed(seed),
        TwoHamming::new(n),
        8.0,
    );
    let r_sa = sa.run(problem, init.clone());

    // Iterated local search: 1-flip descent + 4-flip perturbations.
    let ils = IteratedLocalSearch::new(SearchConfig::budget(60).with_seed(seed));
    let r_ils = ils.run(problem, init.clone());

    // VNS over the 1 → 2 → 3-Hamming ladder.
    let mut ladder: Vec<Box<dyn Explorer<P>>> = vec![
        Box::new(SequentialExplorer::new(OneHamming::new(n))),
        Box::new(SequentialExplorer::new(TwoHamming::new(n))),
        Box::new(SequentialExplorer::new(ThreeHamming::new(n))),
    ];
    let vns = VariableNeighborhoodSearch::new(SearchConfig::budget(500).with_seed(seed));
    let r_vns = vns.run(problem, &mut ladder, init);

    println!(
        "{name:<18} hc {:>6}   sa {:>6}   ils {:>6}   vns {:>6}",
        r_hc.best_fitness, r_sa.best_fitness, r_ils.best_fitness, r_vns.best_fitness
    );
}

fn main() {
    println!("best fitness per driver (lower is better, same budget family)\n");
    let mut rng = StdRng::seed_from_u64(5);

    let onemax = OneMax::new(48);
    run_all_drivers("onemax-48", &onemax, 11);

    let qubo = Qubo::random(&mut rng, 40, 10, 0.4);
    run_all_drivers("qubo-40", &qubo, 12);

    let maxsat = MaxSat::random(&mut rng, 50, 210);
    run_all_drivers("max3sat-50v-210c", &maxsat, 13);

    let nk = NkLandscape::random(&mut rng, 40, 3, 100);
    run_all_drivers("nk-40-3", &nk, 14);

    println!(
        "\nall four problems run unchanged through every driver — the\n\
         neighborhoods and mappings are problem-agnostic, as §II claims."
    );
}
