//! Quickstart: crack a small Permuted Perceptron instance with the
//! paper's tabu search, once per exploration backend, and print the
//! modeled CPU/GPU cost — Table-row style.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lnls::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The paper's smallest instance shape, scaled down so the example
    // finishes in seconds: a 41×41 Pointcheval instance.
    let (m, n, seed) = (41, 41, 2010);
    let instance = PppInstance::generate(m, n, seed);
    let problem = Ppp::new(instance);
    println!("instance: PPP {m}×{n} (seed {seed})");

    let hood = TwoHamming::new(n);
    let budget = 4_000;
    println!(
        "neighborhood: {} ({} moves); tabu budget {budget} iterations\n",
        Neighborhood::name(&hood),
        Neighborhood::size(&hood),
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let init = BitString::random(&mut rng, n);
    let search =
        TabuSearch::paper(SearchConfig::budget(budget).with_seed(seed), Neighborhood::size(&hood));

    // --- CPU backend (the paper's baseline) -----------------------------
    let mut cpu = SequentialExplorer::new(hood);
    let r_cpu = search.run(&problem, &mut cpu, init.clone());
    println!(
        "cpu-seq   : fitness {:>3}  iters {:>5}  success {}  wall {:?}",
        r_cpu.best_fitness, r_cpu.iterations, r_cpu.success, r_cpu.wall
    );

    // --- simulated GPU backend (the paper's contribution) ---------------
    let mut gpu = PppGpuExplorer::new(&problem, 2, GpuExplorerConfig::default());
    let r_gpu = search.run(&problem, &mut gpu, init);
    println!(
        "gpu-sim   : fitness {:>3}  iters {:>5}  success {}  wall {:?}",
        r_gpu.best_fitness, r_gpu.iterations, r_gpu.success, r_gpu.wall
    );

    // Both backends must make identical decisions.
    assert_eq!(r_cpu.best_fitness, r_gpu.best_fitness);
    assert_eq!(r_cpu.iterations, r_gpu.iterations);

    let book = r_gpu.book.expect("the GPU backend prices its work");
    println!("\nmodeled times for the GPU run (GTX 280 model vs Xeon 3 GHz model):");
    println!("  kernels   {:>10}", fmt_seconds(book.kernel_s));
    println!("  overhead  {:>10}", fmt_seconds(book.overhead_s));
    println!("  h2d       {:>10}  ({} bytes)", fmt_seconds(book.h2d_s), book.bytes_h2d);
    println!("  d2h       {:>10}  ({} bytes)", fmt_seconds(book.d2h_s), book.bytes_d2h);
    println!("  GPU total {:>10}", fmt_seconds(book.gpu_total_s()));
    println!("  CPU total {:>10}", fmt_seconds(book.host_s));
    println!("  speedup   x{:.1}", book.speedup().unwrap_or(0.0));

    if r_gpu.success {
        println!("\nsolved: recovered an ε-vector with the target multiset.");
    } else {
        println!(
            "\nnot solved within {budget} iterations (fitness {}); try a larger budget",
            r_gpu.best_fitness
        );
    }
}
