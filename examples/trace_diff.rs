//! What-if trace analytics: record one workload scenario, then replay
//! the *same* trace — every arrival, timestamp and recipe pinned —
//! across a grid of fleet variants (engine layout × selection mode ×
//! device count) and print the comparative table. Because the traffic
//! is identical in every replay, the table isolates exactly what each
//! fleet knob buys: tail wait, rejections, bytes over the bus, device
//! busy fraction.
//!
//! ```text
//! cargo run --release --example trace_diff                       # steady scenario
//! LNLS_SCENARIO=saturation cargo run --release --example trace_diff
//! LNLS_SEED=7 cargo run --release --example trace_diff
//! LNLS_REPORT_OUT=/tmp/whatif.txt cargo run --release --example trace_diff
//! ```

use lnls::prelude::*;

fn main() {
    let name = std::env::var("LNLS_SCENARIO").unwrap_or_else(|_| "steady".to_string());
    let seed: u64 = std::env::var("LNLS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42);
    let scenario = Scenario::by_name(&name).unwrap_or_else(|err| {
        eprintln!("{err}");
        std::process::exit(2);
    });
    println!("=== lnls trace diff: '{}' — {} ===", scenario.name, scenario.summary);

    let (trace, recorded) = Driver::record(&scenario, seed);
    println!(
        "recorded {} arrivals on {} device(s) (seed {seed}); replaying across variants…\n",
        trace.arrivals.len(),
        trace.fleet.devices
    );

    let grid = WhatIf::knob_grid(&trace);
    let report = WhatIf::compare(&trace, &grid);
    print!("{report}");

    let baseline = report.baseline();
    let best = report.best_by_wait_p95();
    if best.variant != baseline.variant && baseline.wait_p95_s > 0.0 {
        println!(
            "\nbest p95 wait: '{}' ({:.6}s vs {:.6}s as recorded, {:.0}% lower)",
            best.variant,
            best.wait_p95_s,
            baseline.wait_p95_s,
            (1.0 - best.wait_p95_s / baseline.wait_p95_s) * 100.0
        );
    } else {
        println!("\nthe as-recorded fleet already has the best p95 wait");
    }
    // Sanity the comparison rests on: the baseline row *is* the
    // recorded run.
    assert_eq!(baseline.wait_p95_s.to_bits(), recorded.fleet.wait_p95_s.to_bits());

    if let Ok(path) = std::env::var("LNLS_REPORT_OUT") {
        std::fs::write(&path, report.to_string()).expect("write what-if report");
        println!("wrote comparative report to {path}");
    }
}
