//! The runtime subsystem as a service: a multi-tenant job mix — PPP
//! cryptanalysis tries, OneMax bulk jobs, QAP assignments — submitted to
//! a scheduler owning a simulated multi-GPU fleet plus CPU workers.
//! Shows placement policies, launch batching (fused per-iteration
//! kernels across tenants), quantum-preemptive fair-share scheduling,
//! job cancellation, checkpoint/resume mid-flight (in memory and through
//! a disk snapshot), and the fleet throughput report.
//!
//! ```text
//! cargo run --release --example fleet_service
//! LNLS_QUANTUM=8 cargo run --release --example fleet_service   # pick the slice
//! ```

use lnls::core::{BitString, SearchConfig, TabuSearch};
use lnls::gpu::{DeviceSpec, MultiDevice};
use lnls::neighborhood::{KHamming, Neighborhood};
use lnls::ppp::{Ppp, PppInstance};
use lnls::prelude::*;
use lnls::qap::Permutation;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn submit_tenants(fleet: &mut Scheduler) -> Vec<JobHandle> {
    let mut handles = Vec::new();

    // Tenant A: a PPP configuration run as several independent tries
    // (the paper's 50-try protocol, shrunk for example runtime). Same
    // instance shape → the tries fuse into batched launches.
    for t in 0..6u64 {
        let problem = Ppp::new(PppInstance::generate(49, 49, 7));
        let hood = KHamming::new(49, 2);
        let mut rng = StdRng::seed_from_u64(t);
        let init = BitString::random(&mut rng, 49);
        let search = TabuSearch::paper(SearchConfig::budget(120).with_seed(t), hood.size());
        handles.push(
            fleet.submit_binary(
                BinaryJob::new(format!("ppp-49x49-try{t}"), problem, hood, search, init)
                    .with_priority(5),
            ),
        );
    }

    // Tenant B: bulk OneMax jobs (low priority).
    for t in 0..8u64 {
        let hood = KHamming::new(64, 2);
        let mut rng = StdRng::seed_from_u64(100 + t);
        let init = BitString::random(&mut rng, 64);
        let search = TabuSearch::paper(SearchConfig::budget(80).with_seed(t), hood.size());
        handles.push(fleet.submit_binary(BinaryJob::new(
            format!("onemax-64-{t}"),
            OneMax::new(64),
            hood,
            search,
            init,
        )));
    }

    // Tenant C: QAP assignments — long robust-tabu runs, now steppable
    // cursors that preempt and checkpoint mid-run like everyone else.
    for t in 0..2u64 {
        let mut rng = StdRng::seed_from_u64(200 + t);
        let inst = QapInstance::random_uniform(&mut rng, 12);
        let init = Permutation::random(&mut rng, 12);
        handles.push(fleet.submit_qap(QapJobSpec::new(
            format!("qap-12-{t}"),
            inst,
            RtsConfig::budget(150).with_seed(t),
            init,
        )));
    }
    handles
}

fn main() {
    let quantum: u64 = std::env::var("LNLS_QUANTUM").ok().and_then(|v| v.parse().ok()).unwrap_or(8);
    println!("=== lnls fleet service: 16 jobs, 2×GTX 280 + 2 CPU workers ===\n");

    for (label, policy, max_batch, quantum_iters) in [
        ("round-robin, batching off          ", PlacePolicy::RoundRobin, 1, None),
        ("round-robin, batching on           ", PlacePolicy::RoundRobin, 4, None),
        ("least-loaded, batching on          ", PlacePolicy::LeastLoaded, 4, None),
        ("least-loaded, batching + preemption", PlacePolicy::LeastLoaded, 4, Some(quantum)),
    ] {
        let mut fleet = Scheduler::new(
            MultiDevice::new_uniform(2, DeviceSpec::gtx280()),
            SchedulerConfig {
                policy,
                max_batch,
                cpu_workers: 2,
                quantum_iters,
                ..Default::default()
            },
        );
        submit_tenants(&mut fleet);
        fleet.run_until_idle();
        let r = fleet.fleet_report();
        println!(
            "{label}: makespan {:>9.4}s  speedup ×{:>5.2}  fused {:>3}  max-wait {:>9.6}s  preempt {:>3}",
            r.makespan_s, r.speedup_vs_serial, r.fused_launches, r.max_wait_s, r.preemptions
        );
    }

    // Fairness: the same tenants, one device, with and without slicing.
    // The long QAP runs monopolize the device unless preempted; results
    // are bit-identical either way.
    println!("\n--- fair-share time slicing (1 device, quantum = {quantum} iterations) ---");
    let run_one_device = |quantum_iters| {
        let mut fleet = Scheduler::new(
            MultiDevice::new_uniform(1, DeviceSpec::gtx280()),
            SchedulerConfig { quantum_iters, ..Default::default() },
        );
        submit_tenants(&mut fleet);
        fleet.run_until_idle();
        fleet.fleet_report()
    };
    let plain = run_one_device(None);
    let sliced = run_one_device(Some(quantum));
    println!(
        "run-to-completion: max wait {:>9.6}s  mean wait {:>9.6}s",
        plain.max_wait_s, plain.mean_wait_s
    );
    println!(
        "preemptive       : max wait {:>9.6}s  mean wait {:>9.6}s  ({} preemptions)",
        sliced.max_wait_s, sliced.mean_wait_s, sliced.preemptions
    );

    // Cancellation: drain a tenant at the next quantum boundary.
    println!("\n--- cancellation ---");
    let mut fleet = Scheduler::new(
        MultiDevice::new_uniform(2, DeviceSpec::gtx280()),
        SchedulerConfig { cpu_workers: 2, quantum_iters: Some(quantum), ..Default::default() },
    );
    let handles = submit_tenants(&mut fleet);
    for _ in 0..5 {
        fleet.tick();
    }
    let victim = handles[14]; // qap-12-0, mid-run by now
    let accepted = fleet.cancel(&victim);
    fleet.run_until_idle();
    let report = fleet.report(&victim).expect("cancelled jobs still report");
    println!(
        "cancel accepted: {accepted}; {} drained after {} iterations (best so far {})",
        report.name,
        report.outcome.iterations(),
        report.outcome.best_fitness(),
    );

    // Checkpoint/resume: stop a fleet mid-flight, snapshot it to disk,
    // revive it in a fresh process-equivalent scheduler.
    println!("\n--- checkpoint/resume through a disk snapshot ---");
    let mut fleet = Scheduler::new(
        MultiDevice::new_uniform(2, DeviceSpec::gtx280()),
        SchedulerConfig { cpu_workers: 2, quantum_iters: Some(quantum), ..Default::default() },
    );
    let handles = submit_tenants(&mut fleet);
    for _ in 0..10 {
        fleet.tick();
    }
    let checkpoint = fleet.checkpoint();
    println!(
        "snapshot after 10 ticks: {} pending jobs, {} mid-search",
        checkpoint.pending_jobs(),
        checkpoint.in_flight_jobs()
    );
    let path = std::env::temp_dir().join("lnls_fleet_service.ckpt");
    checkpoint.save(&path).expect("write checkpoint");
    drop(fleet);
    drop(checkpoint);

    let registry = JobRegistry::with_builtin();
    let revived = FleetCheckpoint::load(&path, &registry).expect("read checkpoint");
    std::fs::remove_file(&path).ok();
    let mut fleet = Scheduler::restore(revived);
    fleet.run_until_idle();
    println!(
        "revived fleet finished all {} jobs ({} cancelled)\n",
        fleet.fleet_report().jobs_completed + fleet.fleet_report().jobs_cancelled,
        fleet.fleet_report().jobs_cancelled,
    );

    // Poll one tenant's handles like a client would.
    println!("--- per-job reports (tenant A) ---");
    for h in handles.iter().take(6) {
        let report = fleet.report(h).expect("fleet is idle");
        println!(
            "{:<18} {:>9} iters  best {:>3}  fused {:>4} iters  wait {:.4}s  {} @ [{:.4}s .. {:.4}s]",
            report.name,
            report.outcome.iterations(),
            report.outcome.best_fitness(),
            report.fused_iterations,
            report.wait_s(),
            report.backend,
            report.started_s,
            report.finished_s,
        );
    }

    println!("\n--- final fleet report ---\n{}", fleet.fleet_report());
}
