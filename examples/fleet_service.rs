//! The runtime subsystem as a service: a multi-tenant job mix — PPP
//! cryptanalysis tries, OneMax bulk jobs, simulated-annealing chains,
//! QAP assignments — submitted through the **one generic
//! `SearchJob` path** to a `FleetClient` fronting a simulated
//! multi-GPU fleet plus CPU workers. Shows admission control (queue
//! caps, shed-lowest-priority), placement policies, launch batching,
//! quantum-preemptive fair-share scheduling, cancellation,
//! checkpoint/resume (in memory, through a disk snapshot, and via
//! periodic auto-checkpoints), and the fleet throughput report.
//!
//! ```text
//! cargo run --release --example fleet_service
//! LNLS_QUANTUM=8 cargo run --release --example fleet_service         # pick the slice
//! LNLS_QUEUE_CAP=6 cargo run --release --example fleet_service       # admission cap
//! LNLS_SELECTION=device cargo run --release --example fleet_service  # on-device argmin
//! LNLS_TRACE_OUT=/tmp cargo run --release --example fleet_service    # export observability artifacts
//! ```
//!
//! With `LNLS_TRACE_OUT=<dir>` set, one additional observed run writes
//! three artifacts into the directory: `fleet_events.jsonl` (the
//! structured event log), `fleet_trace.json` (Chrome trace-event JSON —
//! open in Perfetto or `chrome://tracing`), and `fleet_metrics.prom`
//! (Prometheus text exposition).

use lnls::core::{BitString, SearchConfig, SimulatedAnnealing, TabuSearch};
use lnls::gpu::{DeviceSpec, MultiDevice};
use lnls::neighborhood::{KHamming, Neighborhood};
use lnls::ppp::{Ppp, PppInstance};
use lnls::prelude::*;
use lnls::qap::Permutation;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn submit_tenants(fleet: &mut Scheduler) -> Vec<JobHandle> {
    let mut handles = Vec::new();

    // Tenant A: a PPP configuration run as several independent tries
    // (the paper's 50-try protocol, shrunk for example runtime). Same
    // instance shape → the tries fuse into batched launches.
    for t in 0..6u64 {
        let problem = Ppp::new(PppInstance::generate(49, 49, 7));
        let hood = KHamming::new(49, 2);
        let mut rng = StdRng::seed_from_u64(t);
        let init = BitString::random(&mut rng, 49);
        let search = TabuSearch::paper(SearchConfig::budget(120).with_seed(t), hood.size());
        handles.push(
            fleet.submit(
                BinaryJob::new(format!("ppp-49x49-try{t}"), problem, hood, search, init)
                    .with_priority(5),
            ),
        );
    }

    // Tenant B: bulk OneMax jobs (low priority).
    for t in 0..8u64 {
        let hood = KHamming::new(64, 2);
        let mut rng = StdRng::seed_from_u64(100 + t);
        let init = BitString::random(&mut rng, 64);
        let search = TabuSearch::paper(SearchConfig::budget(80).with_seed(t), hood.size());
        handles.push(fleet.submit(BinaryJob::new(
            format!("onemax-64-{t}"),
            OneMax::new(64),
            hood,
            search,
            init,
        )));
    }

    // Tenant C: QAP assignments — long robust-tabu runs, steppable
    // cursors that preempt and checkpoint mid-run like everyone else.
    for t in 0..2u64 {
        let mut rng = StdRng::seed_from_u64(200 + t);
        let inst = QapInstance::random_uniform(&mut rng, 12);
        let init = Permutation::random(&mut rng, 12);
        handles.push(fleet.submit(QapJobSpec::new(
            format!("qap-12-{t}"),
            inst,
            RtsConfig::budget(150).with_seed(t),
            init,
        )));
    }

    // Tenant D: simulated-annealing chains — the sampling-style
    // workload, scheduled through the very same generic entry point.
    for t in 0..2u64 {
        let hood = KHamming::new(48, 2);
        let mut rng = StdRng::seed_from_u64(300 + t);
        let init = BitString::random(&mut rng, 48);
        let sa = SimulatedAnnealing::new(SearchConfig::budget(160).with_seed(t), hood, 1.5);
        handles.push(fleet.submit(AnnealJob::new(format!("sa-48-{t}"), OneMax::new(48), sa, init)));
    }
    handles
}

fn main() {
    let quantum: u64 = std::env::var("LNLS_QUANTUM").ok().and_then(|v| v.parse().ok()).unwrap_or(8);
    let queue_cap: Option<usize> =
        std::env::var("LNLS_QUEUE_CAP").ok().and_then(|v| v.parse().ok());
    // LNLS_SELECTION=device prices the on-device argmin reduction: one
    // extra launch per fused iteration, one packed record per lane read
    // back instead of the whole fitness array. Results are identical.
    let selection = match std::env::var("LNLS_SELECTION").as_deref() {
        Ok("device") => SelectionMode::DeviceArgmin,
        _ => SelectionMode::HostArgmin,
    };
    println!("=== lnls fleet service: 18 jobs, 2×GTX 280 + 2 CPU workers ({selection:?}) ===\n");

    for (label, policy, max_batch, quantum_iters) in [
        ("round-robin, batching off          ", PlacePolicy::RoundRobin, 1, None),
        ("round-robin, batching on           ", PlacePolicy::RoundRobin, 4, None),
        ("least-loaded, batching on          ", PlacePolicy::LeastLoaded, 4, None),
        ("least-loaded, batching + preemption", PlacePolicy::LeastLoaded, 4, Some(quantum)),
    ] {
        let mut fleet = Scheduler::new(
            MultiDevice::new_uniform(2, DeviceSpec::gtx280()),
            SchedulerConfig {
                policy,
                max_batch,
                cpu_workers: 2,
                quantum_iters,
                selection,
                ..Default::default()
            },
        );
        submit_tenants(&mut fleet);
        fleet.run_until_idle();
        let r = fleet.fleet_report();
        println!(
            "{label}: makespan {:>9.4}s  speedup ×{:>5.2}  fused {:>3}  max-wait {:>9.6}s  preempt {:>3}  d2h {:>7.0} B/iter",
            r.makespan_s, r.speedup_vs_serial, r.fused_launches, r.max_wait_s, r.preemptions,
            r.d2h_bytes_per_iteration()
        );
    }

    // Admission control: bulk submissions pushed through a FleetClient
    // with a queue cap (LNLS_QUEUE_CAP, default 6) and
    // shed-lowest-priority: high-priority arrivals evict queued bulk
    // work; same-priority arrivals bounce with a typed SubmitError.
    let cap = queue_cap.unwrap_or(6);
    println!("--- admission control (queue cap {cap}, shed-lowest-priority) ---");
    let fleet = Scheduler::new(
        MultiDevice::new_uniform(1, DeviceSpec::gtx280()),
        SchedulerConfig { quantum_iters: Some(quantum), selection, ..Default::default() },
    );
    let mut client = FleetClient::new(fleet, AdmissionPolicy::queue_cap(cap).with_shedding());
    let mut admitted = 0u64;
    let mut rejections: Vec<SubmitError> = Vec::new();
    for t in 0..12u64 {
        let hood = KHamming::new(40, 2);
        let mut rng = StdRng::seed_from_u64(400 + t);
        let init = BitString::random(&mut rng, 40);
        let search = TabuSearch::paper(SearchConfig::budget(60).with_seed(t), hood.size());
        let job = BinaryJob::new(format!("bulk-{t}"), OneMax::new(40), hood, search, init);
        let spec =
            JobSpec::new(job).with_priority(if t % 2 == 1 { 4 } else { 0 }).for_tenant("bulk");
        match client.submit_spec(spec) {
            Ok(_) => admitted += 1,
            Err(e) => rejections.push(e),
        }
    }
    client.run_until_idle();
    let r = client.fleet_report();
    println!(
        "admitted {admitted}, rejected {} total ({} shed, {} bounced); first bounce: {}\n",
        r.jobs_rejected,
        r.tenant_stats.iter().filter(|t| t.rejected).count(),
        rejections.len(),
        rejections.first().map_or("none".to_string(), |e| e.to_string()),
    );

    // Fairness: the same tenants, one device, with and without slicing.
    // The long QAP runs monopolize the device unless preempted; results
    // are bit-identical either way.
    println!("--- fair-share time slicing (1 device, quantum = {quantum} iterations) ---");
    let run_one_device = |quantum_iters| {
        let mut fleet = Scheduler::new(
            MultiDevice::new_uniform(1, DeviceSpec::gtx280()),
            SchedulerConfig { quantum_iters, selection, ..Default::default() },
        );
        submit_tenants(&mut fleet);
        fleet.run_until_idle();
        fleet.fleet_report()
    };
    let plain = run_one_device(None);
    let sliced = run_one_device(Some(quantum));
    println!(
        "run-to-completion: max wait {:>9.6}s  mean wait {:>9.6}s",
        plain.max_wait_s, plain.mean_wait_s
    );
    println!(
        "preemptive       : max wait {:>9.6}s  mean wait {:>9.6}s  ({} preemptions)",
        sliced.max_wait_s, sliced.mean_wait_s, sliced.preemptions
    );

    // Cancellation: drain a tenant at the next quantum boundary.
    println!("\n--- cancellation ---");
    let mut fleet = Scheduler::new(
        MultiDevice::new_uniform(2, DeviceSpec::gtx280()),
        SchedulerConfig {
            cpu_workers: 2,
            quantum_iters: Some(quantum),
            selection,
            ..Default::default()
        },
    );
    let handles = submit_tenants(&mut fleet);
    for _ in 0..5 {
        fleet.tick();
    }
    let victim = handles[14]; // qap-12-0, mid-run by now
    let accepted = fleet.cancel(victim);
    fleet.run_until_idle();
    let report = fleet.report(victim).expect("cancelled jobs still report");
    println!(
        "cancel accepted: {accepted}; {} drained after {} iterations (best so far {})",
        report.name,
        report.outcome.iterations(),
        report.outcome.best_fitness(),
    );

    // Checkpoint/resume: run with periodic auto-checkpoints, "crash"
    // mid-flight, revive from the last autosave in a fresh
    // process-equivalent scheduler.
    println!("\n--- crash/restore through rotating auto-checkpoints ---");
    let autosave = std::env::temp_dir().join("lnls_fleet_service_autosave.ckpt");
    let mut fleet = Scheduler::new(
        MultiDevice::new_uniform(2, DeviceSpec::gtx280()),
        SchedulerConfig {
            cpu_workers: 2,
            quantum_iters: Some(quantum),
            selection,
            autosave_every_ticks: Some(4),
            autosave_path: Some(autosave.clone()),
            ..Default::default()
        },
    );
    let handles = submit_tenants(&mut fleet);
    for _ in 0..10 {
        fleet.tick();
    }
    let autosaves = fleet.fleet_report().autosaves;
    drop(fleet); // the "crash": in-memory state is gone

    let registry = JobRegistry::with_builtin();
    let revived = FleetCheckpoint::load(&autosave, &registry).expect("read autosave");
    std::fs::remove_file(&autosave).ok();
    let mut rotated = autosave.into_os_string();
    rotated.push(".1");
    std::fs::remove_file(rotated).ok();
    let mut fleet = Scheduler::restore(revived);
    fleet.run_until_idle();
    // The revived fleet kept autosaving on its inherited cadence; tidy
    // the temp files it left behind.
    let path = std::env::temp_dir().join("lnls_fleet_service_autosave.ckpt");
    let mut rotated = path.clone().into_os_string();
    rotated.push(".1");
    std::fs::remove_file(path).ok();
    std::fs::remove_file(rotated).ok();
    println!(
        "crashed after {autosaves} autosaves; revived fleet finished all {} jobs ({} cancelled)",
        fleet.fleet_report().jobs_completed + fleet.fleet_report().jobs_cancelled,
        fleet.fleet_report().jobs_cancelled,
    );

    // Poll one tenant's handles like a client would.
    println!("\n--- per-job reports (tenant A) ---");
    for h in handles.iter().take(6).copied() {
        let report = fleet.report(h).expect("fleet is idle");
        println!(
            "{:<18} {:>9} iters  best {:>3}  fused {:>4} iters  wait {:.4}s  {} @ [{:.4}s .. {:.4}s]",
            report.name,
            report.outcome.iterations(),
            report.outcome.best_fitness(),
            report.fused_iterations,
            report.wait_s(),
            report.backend,
            report.started_s,
            report.finished_s,
        );
    }

    // Observability export: one more run of the same tenant mix with a
    // shared event ring and a live metrics registry attached, lowered
    // into the three artifact files. Attaching observers is passive —
    // this run prices identically to the unobserved ones above.
    if let Ok(dir) = std::env::var("LNLS_TRACE_OUT") {
        println!("\n--- observability export ---");
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create trace output directory");
        let mut fleet = Scheduler::new(
            MultiDevice::new_uniform(2, DeviceSpec::gtx280()),
            SchedulerConfig {
                cpu_workers: 2,
                quantum_iters: Some(quantum),
                selection,
                ..Default::default()
            },
        );
        let ring = RingSink::unbounded().shared();
        fleet.attach_sink(Box::new(ring.clone()));
        fleet.enable_metrics();
        submit_tenants(&mut fleet);
        fleet.run_until_idle();

        let records = ring.lock().unwrap().records();
        let events_path = dir.join("fleet_events.jsonl");
        let mut jsonl = String::new();
        for record in &records {
            jsonl.push_str(&record.to_json());
            jsonl.push('\n');
        }
        std::fs::write(&events_path, jsonl).expect("write event log");

        let trace_path = dir.join("fleet_trace.json");
        std::fs::write(&trace_path, chrome_trace(&records)).expect("write chrome trace");

        let metrics = fleet.take_metrics().expect("metrics were enabled");
        let prom_path = dir.join("fleet_metrics.prom");
        std::fs::write(&prom_path, metrics.render_prometheus()).expect("write metrics");

        println!(
            "wrote {} events to {}, chrome trace to {}, metrics to {}",
            records.len(),
            events_path.display(),
            trace_path.display(),
            prom_path.display()
        );
    }

    println!("\n--- final fleet report ---\n{}", fleet.fleet_report());
}
