//! CUDA-stream pipelining of independent search walks (§V's concurrency,
//! one level above the paper's synchronous iteration loop).
//!
//! A single tabu iteration is a dependent chain — upload, kernel,
//! readback — so one walk gains nothing from streams. But the paper's
//! protocol runs 50 independent tries: interleaving them on streams
//! hides walk B's PCIe transfers under walk A's kernel. This example
//! prices that schedule on the GT200 engine layout (one copy engine,
//! one compute engine), renders the Gantt chart, and shows the classic
//! issue-order pitfall.
//!
//! ```text
//! cargo run --release --example streams_overlap
//! LNLS_TRACE_OUT=/tmp cargo run --release --example streams_overlap  # + Chrome trace export
//! ```
//!
//! With `LNLS_TRACE_OUT=<dir>` set, the fermi-layout schedule is also
//! lowered to `<dir>/streams_trace.json` in Chrome trace-event format
//! (open in Perfetto or `chrome://tracing` — one row per stream,
//! overlapped H2D/Kernel/D2H spans).

use lnls::gpu::pipeline::{price_multiwalk_ordered, IssueOrder};
use lnls::gpu::stream::{EngineConfig, StreamSim};
use lnls::gpu::{DeviceSpec, IterationProfile};

fn main() {
    let spec = DeviceSpec::gtx280();

    // A transfer-heavy iteration shape (large fitness readback).
    let profile =
        IterationProfile { h2d_bytes: 64 << 10, kernel_seconds: 400e-6, d2h_bytes: 256 << 10 };

    println!("one iteration, serialized: {:.3} ms\n", profile.serial_seconds(&spec) * 1e3);

    // --- Gantt: two walks on two streams, one round each ----------------
    let mut sim = StreamSim::new(&spec);
    for walk in 0..2usize {
        sim.h2d(walk, profile.h2d_bytes);
    }
    for walk in 0..2usize {
        sim.kernel(walk, profile.kernel_seconds);
    }
    for walk in 0..2usize {
        sim.d2h(walk, profile.d2h_bytes);
    }
    println!("two walks, breadth-first issue (U = upload, K = kernel, D = readback):");
    println!("{}", sim.run().gantt_ascii(64));

    // --- Issue order decides everything on FIFO queues ------------------
    println!("1000 iterations x 4 walks on 4 streams (GT200 engines):");
    for (label, order) in
        [("breadth-first", IssueOrder::BreadthFirst), ("depth-first  ", IssueOrder::DepthFirst)]
    {
        let r = price_multiwalk_ordered(&spec, EngineConfig::gt200(), profile, 4, 1000, 4, order);
        println!(
            "  {label}: serial {:>7.2} s   pipelined {:>7.2} s   speedup x{:.2}",
            r.serial_s, r.pipelined_s, r.speedup
        );
    }

    // --- Newer engine layouts recover more ------------------------------
    println!("\nsame schedule on a Fermi-class engine layout (2 copy engines):");
    let r = price_multiwalk_ordered(
        &spec,
        EngineConfig::fermi(),
        profile,
        4,
        1000,
        4,
        IssueOrder::BreadthFirst,
    );
    println!(
        "  breadth-first: serial {:>7.2} s   pipelined {:>7.2} s   speedup x{:.2}",
        r.serial_s, r.pipelined_s, r.speedup
    );

    // --- Chrome trace export (Perfetto / chrome://tracing) --------------
    if let Ok(dir) = std::env::var("LNLS_TRACE_OUT") {
        // Re-run the two-round walk interleave on the fermi layout so
        // the exported spans actually overlap across stream rows.
        let mut sim = StreamSim::with_engines(&spec, EngineConfig::fermi());
        for _round in 0..2usize {
            for walk in 0..4usize {
                sim.h2d(walk, profile.h2d_bytes);
                sim.kernel(walk, profile.kernel_seconds);
                sim.d2h(walk, profile.d2h_bytes);
            }
        }
        let sched = sim.run();
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create trace output directory");
        let path = dir.join("streams_trace.json");
        std::fs::write(&path, sched.chrome_trace_json()).expect("write chrome trace");
        println!(
            "\nwrote chrome trace to {} ({} ops, overlap x{:.2})",
            path.display(),
            sched.ops.len(),
            sched.overlap_factor()
        );
    }
}
