//! Drive a catalog workload scenario end to end: lower it into a timed
//! submission stream, run it against a simulated fleet under admission
//! control, print the queue-depth/backpressure time series and latency
//! percentiles, then save the trace, reload it from disk and replay it
//! through a structured event sink — verifying the replayed
//! `FleetReport` is **bit-identical** to the recorded one and printing
//! a per-tenant lifecycle summary rebuilt from the event stream.
//!
//! ```text
//! cargo run --release --example load_replay                       # steady scenario
//! LNLS_SCENARIO=burst cargo run --release --example load_replay   # any catalog name
//! LNLS_SEED=7 LNLS_SCALE=4 cargo run --release --example load_replay
//! ```

use lnls::prelude::*;

fn main() {
    let name = std::env::var("LNLS_SCENARIO").unwrap_or_else(|_| "steady".to_string());
    let seed: u64 = std::env::var("LNLS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42);
    let scale: f64 = std::env::var("LNLS_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(1.0);
    let scenario = Scenario::by_name(&name).unwrap_or_else(|err| {
        eprintln!("{err}");
        std::process::exit(2);
    });
    let scenario = scenario.scaled(scale);
    println!("=== lnls workload: '{}' — {} ===", scenario.name, scenario.summary);
    println!(
        "{} jobs over {} device(s) + {} CPU worker(s), seed {seed}\n",
        scenario.jobs, scenario.fleet.devices, scenario.fleet.cpu_workers
    );

    // Record: lower the scenario deterministically and drive the fleet.
    let (trace, recorded) = Driver::record(&scenario, seed);

    // Backpressure over time: queue depth, running jobs and cumulative
    // rejections per sampled tick, bucketed to a terminal-sized series.
    let telemetry = recorded.fleet.telemetry.as_ref().expect("scenarios record telemetry");
    println!("--- fleet time series ({} tick samples) ---", telemetry.samples().len());
    println!(
        "queue depth  [{}] peak {}",
        telemetry.queue_sparkline(48),
        telemetry.max_queue_depth()
    );
    let samples = telemetry.samples();
    let step = samples.len().div_ceil(8).max(1);
    println!(
        "{:>8} {:>10} {:>7} {:>9} {:>11} {:>9}",
        "tick", "now(ms)", "queued", "running", "completed", "rejected"
    );
    for s in samples.iter().step_by(step) {
        println!(
            "{:>8} {:>10.4} {:>7} {:>9} {:>11} {:>9}",
            s.tick,
            s.now_s * 1e3,
            s.queue_depth,
            s.running,
            s.completed,
            s.rejected
        );
    }

    println!("\n--- pricing (stream overlap + PCIe traffic) ---");
    let f = &recorded.fleet;
    println!(
        "stream overlap ×{:.3} (makespan {:.6}s vs serial {:.6}s) | pcie {:.0} B up / {:.0} B down per iteration",
        f.stream_overlap_factor(),
        f.stream_makespan_s,
        f.stream_serialized_s,
        f.h2d_bytes_per_iteration(),
        f.d2h_bytes_per_iteration(),
    );

    println!("\n--- latency percentiles (modeled seconds) ---");
    println!(
        "wait       p50 {:.6}  p95 {:.6}  p99 {:.6}  max {:.6}",
        f.wait_p50_s, f.wait_p95_s, f.wait_p99_s, f.max_wait_s
    );
    println!(
        "turnaround p50 {:.6}  p95 {:.6}  p99 {:.6}  max {:.6}",
        f.turnaround_p50_s, f.turnaround_p95_s, f.turnaround_p99_s, f.max_turnaround_s
    );

    // Replay: save the trace, reload it from disk, run it again, and
    // hold the reports to bit-identity.
    let path = std::env::temp_dir().join(format!(
        "lnls_load_replay_{}_{}.trc",
        scenario.name,
        std::process::id()
    ));
    trace.save(&path).expect("save trace");
    let reloaded = Trace::load(&path).expect("load trace");
    std::fs::remove_file(&path).ok();
    assert_eq!(reloaded, trace, "the trace must survive the disk round-trip unchanged");
    // Replay through a shared ring sink: observation is passive, so the
    // replayed report stays bit-identical while the event stream feeds
    // the per-tenant summary below.
    let ring = RingSink::unbounded().shared();
    let replayed = Driver::replay_observed(&reloaded, Box::new(ring.clone()));
    assert_eq!(
        format!("{:?}", replayed.fleet),
        format!("{:?}", recorded.fleet),
        "replaying a recorded trace must reproduce the FleetReport bit for bit"
    );
    println!(
        "\nreplay: trace of {} arrivals saved, reloaded and re-run — FleetReport bit-identical ✓",
        reloaded.arrivals.len()
    );

    // Per-tenant lifecycle, reconstructed purely from the event stream.
    let events = ring.lock().unwrap().records();
    println!("\n--- per-tenant events ({} records) ---", events.len());
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>10} {:>10} {:>10}",
        "tenant", "submitted", "admitted", "rejected", "preempted", "completed", "cancelled"
    );
    for t in tenant_summaries(&events) {
        println!(
            "{:<14} {:>9} {:>9} {:>9} {:>10} {:>10} {:>10}",
            t.tenant, t.submitted, t.admitted, t.rejected, t.preempted, t.completed, t.cancelled
        );
    }

    println!("\n--- final report ---\n{recorded}");
}
