//! The paper's §V perspective, implemented: partition a large
//! neighborhood across several simulated GPUs ("each partition is
//! executed on a single GPU") and watch the per-iteration wall-clock
//! fall with device count — including a 4-Hamming neighborhood that no
//! single 2010-era device could sweep at interactive rates.
//!
//! ```text
//! cargo run --release --example multi_gpu
//! ```

use lnls::gpu::{DeviceSpec, ExecMode, LaunchConfig, MemSpace, MultiDevice};
use lnls::neighborhood::{binomial, partition_ranges};
use lnls::ppp::PppEvalKernel;
use lnls::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let (m, n, k) = (73, 73, 3);
    let instance = PppInstance::generate(m, n, 99);
    let problem = Ppp::new(instance);
    let mut rng = StdRng::seed_from_u64(1);
    let s = BitString::random(&mut rng, n);
    let state = lnls::core::IncrementalEval::init_state(&problem, &s);
    let msize = binomial(n as u64, k as u64);
    println!("PPP {m}×{n}, {k}-Hamming neighborhood: {msize} moves per iteration\n");

    let vbits: Vec<u32> = s.words().iter().flat_map(|&w| [w as u32, (w >> 32) as u32]).collect();
    let wpc32 = (problem.inst.a.words_per_col() * 2) as u32;

    println!("{:>8} {:>16} {:>10}", "devices", "ms/iteration", "speedup");
    let mut base = None;
    for d in [1usize, 2, 4, 8] {
        let mut multi = MultiDevice::new_uniform(d, DeviceSpec::gtx280());
        let parts = partition_ranges(msize, d);

        // Replicate static data per device (private memories, §V).
        let mut bufs = Vec::new();
        for (i, part) in parts.iter().enumerate() {
            let dev = multi.device_mut(i);
            let a_cols = dev.upload_new(&problem.inst.a.cols_as_u32(), MemSpace::Texture, "a_cols");
            let hist_t = dev.upload_new(&problem.inst.target_hist, MemSpace::Texture, "hist_t");
            let vb = dev.alloc_zeroed::<u32>(vbits.len(), MemSpace::Global, "vbits");
            let y = dev.alloc_zeroed::<i32>(m, MemSpace::Global, "y");
            let hc = dev.alloc_zeroed::<i32>(n + 1, MemSpace::Global, "hist_c");
            let out = dev.alloc_zeroed::<i32>(part.len() as usize, MemSpace::Global, "out");
            bufs.push((a_cols, hist_t, vb, y, hc, out));
        }
        multi.reset(); // one-time setup excluded from the per-iteration cost

        // Two iterations; the second is steady state (profiles cached).
        let mut per_iter = 0.0;
        let mut combined = vec![0i64; msize as usize];
        for _ in 0..2 {
            per_iter = multi.parallel_step(|i, dev| {
                let part = parts[i];
                let (a_cols, hist_t, vb, y, hc, out) = &bufs[i];
                dev.upload(vb, &vbits);
                dev.upload(y, &state.y);
                dev.upload(hc, &state.hist);
                let kernel = PppEvalKernel {
                    k: k as u8,
                    n: n as u32,
                    m: m as u32,
                    msize: part.len(),
                    base_index: part.lo,
                    wpc32,
                    a_cols: a_cols.clone(),
                    vbits: vb.clone(),
                    y: y.clone(),
                    hist_target: hist_t.clone(),
                    hist_cur: hc.clone(),
                    out: out.clone(),
                    neg_base: state.neg_cost,
                    hist_base: state.hist_cost,
                };
                dev.launch(&kernel, LaunchConfig::cover_1d(part.len(), 128), ExecMode::Auto);
                for (off, v) in dev.download(out).into_iter().enumerate() {
                    combined[(part.lo + off as u64) as usize] = v as i64;
                }
            });
        }

        // Sanity: the partitioned sweep equals a host-side evaluation.
        let (best_idx, best_f) = combined
            .iter()
            .enumerate()
            .min_by_key(|&(i, f)| (*f, i))
            .map(|(i, &f)| (i as u64, f))
            .unwrap();
        let base_s = *base.get_or_insert(per_iter);
        println!(
            "{d:>8} {:>16.3} {:>9.2}x   (best neighbor #{best_idx}, fitness {best_f})",
            per_iter * 1e3,
            base_s / per_iter
        );
    }

    println!(
        "\nspeedup is sublinear: the fitness-array readback and per-device\n\
         launch overhead do not shrink with the partition — the exact\n\
         bottleneck the paper's §V flags as 'not a straightforward task'."
    );
}
