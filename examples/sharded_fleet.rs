//! Sharded fleets end to end: consistent-hash placement over a virtual
//! node ring, deterministic work stealing at tick barriers, and
//! incremental (base + delta) checkpoints with a crash/restore that
//! lands on bit-identical results.
//!
//! Three acts:
//! 1. **Scaling table** — the same saturation-style traffic routed onto
//!    1 → 16 single-device shards, with throughput and scaling
//!    efficiency per row.
//! 2. **Ring placement** — where the scenario's tenants land, and how
//!    little moves when a shard joins.
//! 3. **Delta checkpoints** — a fleet snapshotted every tick (one base,
//!    then dirty-job deltas), killed mid-run past a steal barrier, and
//!    restored from the chain: the finished report matches an
//!    uninterrupted run bit for bit.
//!
//! ```text
//! cargo run --release --example sharded_fleet
//! LNLS_SEED=7 LNLS_SCALE=2 cargo run --release --example sharded_fleet
//! ```

use lnls::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

fn onemax_job(name: &str, seed: u64) -> BinaryJob<OneMax, TwoHamming> {
    let n = 24;
    let hood = TwoHamming::new(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let init = BitString::random(&mut rng, n);
    let search =
        TabuSearch::paper(SearchConfig::budget(80).with_seed(seed).with_target(None), hood.size());
    BinaryJob::new(name, OneMax::new(n), hood, search, init)
}

fn fresh_fleet(shards: usize) -> ShardedFleet {
    ShardedFleet::new(
        ShardConfig::current(),
        AdmissionPolicy::unbounded(),
        shards,
        SchedulerConfig { max_batch: 4, quantum_iters: Some(8), ..Default::default() },
        |_| MultiDevice::new_uniform(1, DeviceSpec::gtx280()),
    )
}

fn main() {
    let seed: u64 = std::env::var("LNLS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42);
    let scale: f64 = std::env::var("LNLS_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(1.0);

    println!("=== lnls sharded fleet: ring placement, work stealing, delta checkpoints ===\n");

    // ---- Act 1: shard-scaling table over the catalog's sharded scenario.
    println!("--- scaling: saturation traffic over 1 -> 16 single-device shards ---");
    println!(
        "{:>7} | {:>12} {:>10} {:>9} {:>7} {:>7}",
        "shards", "makespan(s)", "jobs/sim-s", "speedup", "effic", "shed"
    );
    let mut base_jps = 0.0f64;
    for shards in [1usize, 2, 4, 8, 16] {
        let scenario =
            lnls::workload::Scenario::saturation_sharded_sized(48, shards, (160.0 * scale) as u64);
        let (_, report) = Driver::record(&scenario, seed);
        let f = &report.fleet;
        if shards == 1 {
            base_jps = f.jobs_per_sim_s;
        }
        let speedup = f.jobs_per_sim_s / base_jps;
        println!(
            "{:>7} | {:>12.6} {:>10.1} {:>8.2}x {:>6.0}% {:>7}",
            shards,
            f.makespan_s,
            f.jobs_per_sim_s,
            speedup,
            speedup / shards as f64 * 100.0,
            f.jobs_rejected,
        );
    }

    // ---- Act 2: where the ring places tenants, and rebalance cost.
    let fleet = fresh_fleet(4);
    let tenants: Vec<String> = (0..48).map(|i| format!("org-{i:03}")).collect();
    let mut per_shard: BTreeMap<usize, usize> = BTreeMap::new();
    for t in &tenants {
        *per_shard.entry(fleet.shard_for(t)).or_default() += 1;
    }
    println!(
        "\n--- ring: 48 tenants over 4 shards ({} virtual nodes) ---",
        fleet.ring().len() * fleet.ring().replicas() as usize
    );
    for (shard, count) in &per_shard {
        println!("shard {shard}: {count:>2} tenants  [{}]", "#".repeat(*count));
    }
    let grown = fresh_fleet(5);
    let moved = tenants
        .iter()
        .filter(|t| {
            let (from, to) = (fleet.shard_for(t), grown.shard_for(t));
            from != to && to != 4
        })
        .count();
    let to_new = tenants.iter().filter(|t| grown.shard_for(t) == 4).count();
    println!(
        "adding shard 4: {to_new} tenants move to it, {moved} shuffle between old shards \
         (consistent hashing moves only what the new shard claims)"
    );

    // ---- Act 3: delta checkpoints + crash/restore past a steal barrier.
    let jobs = (24.0 * scale) as u64;
    let dir = std::env::temp_dir().join(format!("lnls-sharded-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // All jobs land on one tenant's shard, so the other shard starts
    // idle and the tick-barrier steal has something to do.
    let submit_all = |fleet: &mut ShardedFleet| {
        let tenant =
            (0..).map(|i| format!("hot-{i}")).find(|t| fleet.shard_for(t) == 0).expect("a name");
        for i in 0..jobs {
            fleet
                .submit_spec(JobSpec::new(onemax_job(&format!("job-{i}"), i)).for_tenant(&tenant))
                .expect("unbounded admission");
        }
    };

    // Reference: the same fleet run to completion without interruption.
    let mut reference = fresh_fleet(2);
    submit_all(&mut reference);
    reference.run_until_idle();
    let reference_report = reference.fleet_report();

    // Checkpointed run: snapshot every tick, crash after 6 ticks.
    let mut fleet = fresh_fleet(2).with_checkpoint_dir(&dir, 8).expect("checkpoint dir opens");
    submit_all(&mut fleet);
    println!("\n--- delta checkpoints: {jobs} jobs, snapshot per tick, crash at tick 6 ---");
    println!(
        "{:>5} {:>6} | {:>6} {:>9} {:>10} {:>7}",
        "tick", "kind", "bytes", "dirty", "queued", "stolen"
    );
    for tick in 1..=6u64 {
        fleet.tick();
        let stats = fleet.snapshot().expect("snapshots write");
        let s = &stats[0];
        println!(
            "{:>5} {:>6} | {:>6} {:>9} {:>10} {:>7}",
            tick,
            match s.kind {
                SnapshotKind::Base => "base",
                SnapshotKind::Delta => "delta",
            },
            s.bytes,
            s.dirty_jobs,
            fleet.queued_len(),
            fleet.steals(),
        );
    }
    let ticks_at_crash = fleet.ticks();
    let steals_before = fleet.steals();
    drop(fleet); // the crash: every in-memory scheduler is gone

    let registry = JobRegistry::with_builtin();
    let mut restored = ShardedFleet::restore(
        ShardConfig::current(),
        AdmissionPolicy::unbounded(),
        &dir,
        &registry,
        ticks_at_crash,
        &[0, 0],
    )
    .expect("the chain restores");
    restored.run_until_idle();
    let restored_report = restored.fleet_report();

    let identical = format!("{reference_report:?}") == format!("{restored_report:?}");
    println!(
        "\ncrashed at tick {ticks_at_crash} ({steals_before} steal(s) already executed), \
         restored from base+deltas, ran to idle:"
    );
    println!(
        "restored report vs. uninterrupted run: {}",
        if identical { "BIT-IDENTICAL" } else { "MISMATCH" }
    );
    println!("{restored_report}");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(identical, "delta-chain restore must land on the uninterrupted run's bits");
}
