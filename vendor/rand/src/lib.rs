//! Minimal, dependency-free stand-in for the `rand` 0.8 API surface this
//! workspace uses. The build environment has no network access, so the
//! real crate cannot be fetched; this shim keeps the call sites untouched.
//!
//! Covered: [`Rng::gen`], [`Rng::gen_range`] (integer ranges, inclusive
//! and exclusive), [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], [`thread_rng`], and [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — deterministic for
//! a given seed, which is all the workspace's reproducibility story needs
//! (it never depends on matching the real `rand`'s stream).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The `Standard` distribution: uniform over a type's natural domain
/// (full integer range, `[0,1)` for floats, fair coin for `bool`).
pub struct Standard;

/// Types samplable from a distribution.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types uniform-samplable over a bounded span.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                let span = (high as i128) - (low as i128); // inclusive span - 1
                if span >= u64::MAX as i128 {
                    return rng.next_u64() as $t;
                }
                let span = span as u64 + 1;
                // Debiased multiply-shift (Lemire); span ≤ 2^64-1 here.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                (((m >> 64) as i128) + (low as i128)) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                <$t>::sample_inclusive(rng, self.start, self.end - 1)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                <$t>::sample_inclusive(rng, lo, hi)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform draw from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a 64-bit seed, expanded with SplitMix64 (the
    /// conventional expansion for xoshiro-family generators).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next_u64().to_le_bytes();
            let k = chunk.len();
            chunk.copy_from_slice(&word[..k]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The generator's raw xoshiro256++ state, for hand-rolled
        /// checkpoint serialization (the workspace persists in-flight
        /// searches byte-for-byte; no serde offline).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from [`state`](Self::state) words. The
        /// all-zero state (invalid for xoshiro) is remapped exactly like
        /// [`SeedableRng::from_seed`] does.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                StdRng { s: [0x9E3779B97F4A7C15, 1, 2, 3] }
            } else {
                StdRng { s }
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            // All-zero state is the one forbidden state of xoshiro.
            if s == [0, 0, 0, 0] {
                s = [0x9E3779B97F4A7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Lazily seeded per-call generator backing [`thread_rng`].
    ///
    /// [`thread_rng`]: super::thread_rng
    #[derive(Clone, Debug)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// A generator seeded from the system clock and a process-wide counter —
/// non-reproducible by design, mirroring `rand::thread_rng`.
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0xDEADBEEF);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    rngs::ThreadRng(<rngs::StdRng as SeedableRng>::seed_from_u64(nanos ^ unique.rotate_left(32)))
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates), as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly permute the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u = rng.gen_range(0u64..3);
            assert!(u < 3);
            let w = rng.gen_range(10usize..11);
            assert_eq!(w, 10);
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
