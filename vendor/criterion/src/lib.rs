//! Minimal, dependency-free stand-in for the parts of `criterion` the
//! bench targets use. The build environment has no network access, so the
//! real harness cannot be fetched.
//!
//! Semantics: each benchmark runs a short warm-up, then a fixed number of
//! timed samples, and prints `name: median per-iteration time` to stdout.
//! No statistics or plots — enough to keep `cargo bench` usable for
//! relative comparisons, and for the bench targets to compile in CI.
//!
//! ## Baselines
//!
//! A minimal version of the real crate's `--save-baseline` /
//! `--baseline` flags, driven by environment variables (the shim owns no
//! CLI):
//!
//! * `LNLS_CRITERION_BASELINE=save` — write every `label<TAB>seconds`
//!   result into the baseline file (truncated once per process);
//! * `LNLS_CRITERION_BASELINE=compare` — load the baseline file and
//!   print each result's delta against it (`+x%` slower, `−x%` faster);
//! * `LNLS_CRITERION_BASELINE_PATH` — baseline file location, default
//!   `target/criterion-baseline.tsv`.
//!
//! ## Machine-readable summaries
//!
//! The [`summary`] module is a small JSON sink the bench targets use to
//! emit cross-PR perf-trajectory records (`BENCH_fleet.json` and
//! friends): one object per record, written as a JSON array on
//! [`summary::Sink::finish`]. Hand-rolled — the offline environment has
//! no serde.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fmt::Display;
use std::hint;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Opaque value laundering so the optimizer cannot delete benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self { id: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Work-per-iteration declaration (printed alongside timings).
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    /// Median per-iteration seconds of the last `iter` call.
    last_s: f64,
}

impl Bencher {
    /// Time `f`, adaptively choosing an inner iteration count so one
    /// sample takes ≳1 ms.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: find how many calls fill ~1 ms.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let inner =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..inner {
                black_box(f());
            }
            per_iter.push(t.elapsed().as_secs_f64() / inner as f64);
        }
        per_iter.sort_by(f64::total_cmp);
        self.last_s = per_iter[per_iter.len() / 2];
    }
}

/// What the baseline env vars ask for this run.
enum BaselineMode {
    Off,
    Save,
    Compare,
}

fn baseline_mode() -> BaselineMode {
    match std::env::var("LNLS_CRITERION_BASELINE").as_deref() {
        Ok("save") => BaselineMode::Save,
        Ok("compare") => BaselineMode::Compare,
        _ => BaselineMode::Off,
    }
}

fn baseline_path() -> PathBuf {
    std::env::var_os("LNLS_CRITERION_BASELINE_PATH")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/criterion-baseline.tsv"))
}

/// Append one result to the baseline file; the first write of the
/// process truncates it, so a bench run replaces the baseline wholesale.
fn baseline_record(label: &str, seconds: f64) {
    static SINK: OnceLock<Mutex<Option<std::fs::File>>> = OnceLock::new();
    let sink = SINK.get_or_init(|| {
        let path = baseline_path();
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        Mutex::new(std::fs::File::create(&path).ok())
    });
    if let Some(file) = sink.lock().expect("baseline sink poisoned").as_mut() {
        let _ = writeln!(file, "{label}\t{seconds:e}");
    }
}

/// Baseline timings loaded once per process for compare mode.
fn baseline_lookup(label: &str) -> Option<f64> {
    static LOADED: OnceLock<HashMap<String, f64>> = OnceLock::new();
    let map = LOADED.get_or_init(|| {
        let mut map = HashMap::new();
        if let Ok(text) = std::fs::read_to_string(baseline_path()) {
            for line in text.lines() {
                if let Some((label, secs)) = line.rsplit_once('\t') {
                    if let Ok(s) = secs.parse::<f64>() {
                        map.insert(label.to_string(), s);
                    }
                }
            }
        }
        map
    });
    map.get(label).copied()
}

/// The `  (+x% vs baseline)` suffix for compare mode, empty otherwise.
fn baseline_suffix(label: &str, seconds: f64) -> String {
    match baseline_mode() {
        BaselineMode::Off => String::new(),
        BaselineMode::Save => {
            baseline_record(label, seconds);
            "  [baseline saved]".to_string()
        }
        BaselineMode::Compare => match baseline_lookup(label) {
            Some(base) if base > 0.0 => {
                let delta = (seconds - base) / base * 100.0;
                format!("  ({delta:+.1}% vs baseline {})", fmt_seconds(base))
            }
            _ => "  (no baseline)".to_string(),
        },
    }
}

fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Cap the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Declare work per iteration (reported with the timing).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Extend the per-sample time budget (accepted for API parity; the
    /// shim's budget is fixed).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, self.throughput, f);
        self
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (no-op; mirrors the real API).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, None, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, tp: Option<Throughput>, mut f: F) {
        let mut b = Bencher { samples: self.sample_size, last_s: 0.0 };
        f(&mut b);
        let rate = match tp {
            Some(Throughput::Elements(n)) if b.last_s > 0.0 => {
                format!("  ({:.2e} elem/s)", n as f64 / b.last_s)
            }
            Some(Throughput::Bytes(n)) if b.last_s > 0.0 => {
                format!("  ({:.2e} B/s)", n as f64 / b.last_s)
            }
            _ => String::new(),
        };
        let baseline = baseline_suffix(label, b.last_s);
        println!("{label:<60} {}{rate}{baseline}", fmt_seconds(b.last_s));
    }

    /// Hook for `criterion_group!`'s `config = …` form (identity here).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Machine-readable benchmark summaries (see the crate docs).
pub mod summary {
    use std::io::Write as _;
    use std::path::{Path, PathBuf};

    /// One typed field value of a summary record.
    #[derive(Clone, Debug)]
    pub enum Value {
        /// A float (written with full `{:?}` round-trip precision).
        F64(f64),
        /// An unsigned counter.
        U64(u64),
        /// A string (escaped minimally: `"`, `\` and control bytes).
        Str(String),
    }

    impl From<f64> for Value {
        fn from(v: f64) -> Self {
            Value::F64(v)
        }
    }

    impl From<u64> for Value {
        fn from(v: u64) -> Self {
            Value::U64(v)
        }
    }

    impl From<&str> for Value {
        fn from(v: &str) -> Self {
            Value::Str(v.to_string())
        }
    }

    impl From<String> for Value {
        fn from(v: String) -> Self {
            Value::Str(v)
        }
    }

    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    fn render(v: &Value) -> String {
        match v {
            // JSON has no NaN/Inf; clamp to null like most emitters do.
            Value::F64(x) if !x.is_finite() => "null".to_string(),
            Value::F64(x) => format!("{x:?}"),
            Value::U64(x) => x.to_string(),
            Value::Str(s) => format!("\"{}\"", escape(s)),
        }
    }

    /// Collects records and writes them as one JSON array on
    /// [`finish`](Self::finish).
    ///
    /// Several bench binaries may share one summary file (the fleet and
    /// workload benches both write `BENCH_fleet.json`): each sink is
    /// named after its bench, every record is stamped with a `"bench"`
    /// field, and `finish` keeps the records *other* benches wrote
    /// while replacing this bench's previous ones.
    pub struct Sink {
        path: PathBuf,
        bench: String,
        records: Vec<String>,
    }

    impl Sink {
        /// A sink for bench `bench` writing to `default_path`,
        /// overridable with the `LNLS_BENCH_JSON_PATH` environment
        /// variable.
        pub fn new(default_path: impl AsRef<Path>, bench: &str) -> Self {
            let path = std::env::var_os("LNLS_BENCH_JSON_PATH")
                .map(PathBuf::from)
                .unwrap_or_else(|| default_path.as_ref().to_path_buf());
            Self { path, bench: bench.to_string(), records: Vec::new() }
        }

        /// Append one record; field order is preserved and a leading
        /// `"bench"` field is added automatically.
        pub fn record(&mut self, fields: &[(&str, Value)]) {
            let mut body = vec![format!("\"bench\": {}", render(&Value::Str(self.bench.clone())))];
            body.extend(fields.iter().map(|(k, v)| format!("\"{}\": {}", escape(k), render(v))));
            self.records.push(format!("  {{{}}}", body.join(", ")));
        }

        /// Write `[record, …]` to the sink's path (parent directories
        /// created), merging with other benches' surviving records.
        /// Returns the path written.
        pub fn finish(self) -> std::io::Result<PathBuf> {
            if let Some(dir) = self.path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)?;
                }
            }
            // Keep record lines written by other benches (our own
            // format: one record per line, stamped with its bench).
            let own_stamp = format!("\"bench\": {}", render(&Value::Str(self.bench.clone())));
            let mut merged: Vec<String> = std::fs::read_to_string(&self.path)
                .map(|text| {
                    text.lines()
                        .filter(|l| l.trim_start().starts_with('{') && !l.contains(&own_stamp))
                        .map(|l| l.trim_end_matches(',').to_string())
                        .collect()
                })
                .unwrap_or_default();
            merged.extend(self.records);
            let mut file = std::fs::File::create(&self.path)?;
            writeln!(file, "[")?;
            writeln!(file, "{}", merged.join(",\n"))?;
            writeln!(file, "]")?;
            Ok(self.path)
        }
    }
}

/// Declare a group of benchmark functions, as in the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        c.bench_function("free", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("10x10").to_string(), "10x10");
    }

    #[test]
    fn baseline_off_by_default() {
        // Tests run without LNLS_CRITERION_BASELINE set, so the suffix
        // must be empty and nothing must be written anywhere.
        assert_eq!(baseline_suffix("group/bench", 1e-3), "");
    }

    #[test]
    fn summary_sink_writes_valid_json() {
        let path = std::env::temp_dir()
            .join(format!("lnls-criterion-summary-{}.json", std::process::id()));
        let mut sink = summary::Sink::new(&path, "fleet");
        sink.record(&[
            ("scenario", "burst \"storm\"".into()),
            ("throughput_jobs_per_s", 1234.5.into()),
            ("p95_wait_s", summary::Value::F64(f64::NAN)),
            ("jobs", 24u64.into()),
        ]);
        sink.record(&[("scenario", "steady".into())]);
        let written = sink.finish().expect("write");
        assert_eq!(written, path);
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(text.starts_with("[\n"), "{text}");
        assert!(text.contains("\"bench\": \"fleet\""), "{text}");
        assert!(text.contains("\"scenario\": \"burst \\\"storm\\\"\""), "{text}");
        assert!(text.contains("\"throughput_jobs_per_s\": 1234.5"), "{text}");
        assert!(text.contains("\"p95_wait_s\": null"), "non-finite floats become null: {text}");
        assert!(text.contains("\"jobs\": 24"), "{text}");
        assert!(text.trim_end().ends_with(']'), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn summary_sinks_merge_across_benches() {
        let path = std::env::temp_dir()
            .join(format!("lnls-criterion-summary-merge-{}.json", std::process::id()));
        let mut fleet = summary::Sink::new(&path, "fleet");
        fleet.record(&[("row", "old-fleet".into())]);
        fleet.finish().expect("write fleet");
        let mut workload = summary::Sink::new(&path, "workload");
        workload.record(&[("row", "workload".into())]);
        workload.finish().expect("merge workload");
        // Re-running the fleet bench replaces its rows, keeps workload's.
        let mut fleet = summary::Sink::new(&path, "fleet");
        fleet.record(&[("row", "new-fleet".into())]);
        fleet.finish().expect("rewrite fleet");
        let text = std::fs::read_to_string(&path).expect("read back");
        std::fs::remove_file(&path).ok();
        assert!(text.contains("new-fleet") && text.contains("workload"), "{text}");
        assert!(!text.contains("old-fleet"), "stale same-bench rows are replaced: {text}");
    }

    #[test]
    fn baseline_line_format_roundtrips() {
        // The compare path parses `label<TAB>seconds`; labels may contain
        // anything but a tab, so the split comes from the right.
        let line = format!("weird label/with spaces\t{:e}", 2.5e-4);
        let (label, secs) = line.rsplit_once('\t').expect("tab present");
        assert_eq!(label, "weird label/with spaces");
        assert_eq!(secs.parse::<f64>().unwrap(), 2.5e-4);
    }
}
