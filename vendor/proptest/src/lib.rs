//! Minimal, dependency-free stand-in for the parts of `proptest` this
//! workspace uses: the [`proptest!`] macro, `prop_assert*` / `prop_assume`,
//! integer-range and [`any`] strategies, tuple strategies, `prop_map`, and
//! `prop::collection::vec`.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case reports its case index and seed,
//!   which reproduce it deterministically (case seeds derive from the
//!   test's module path and index, not from entropy);
//! * generation quality is whatever the in-tree `rand` shim provides.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration (`with_cases` is the only knob the workspace
/// uses; the struct mirrors the real crate's name so `#![proptest_config]`
/// blocks read identically).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is not counted.
    Reject,
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives the generate-and-check loop for one `proptest!` test function.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    base_seed: u64,
    case: u32,
    rejects: u32,
}

impl TestRunner {
    /// A runner for the named test.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        // Deterministic per-test base seed: FNV-1a over the name.
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        Self { config, name, base_seed: h, case: 0, rejects: 0 }
    }

    /// True while more cases must run.
    pub fn more(&self) -> bool {
        self.case < self.config.cases
    }

    /// Deterministic generator for the upcoming case.
    pub fn case_rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.base_seed ^ ((self.case as u64) << 32) ^ self.rejects as u64)
    }

    /// Account one case outcome; panics (failing the `#[test]`) on
    /// assertion failure, and on reject storms that starve generation.
    pub fn record(&mut self, result: TestCaseResult) {
        match result {
            Ok(()) => self.case += 1,
            Err(TestCaseError::Reject) => {
                self.rejects += 1;
                let budget = self.config.cases.saturating_mul(16).max(1024);
                assert!(
                    self.rejects <= budget,
                    "{}: {} rejects exceeded the budget of {budget}",
                    self.name,
                    self.rejects
                );
            }
            Err(TestCaseError::Fail(msg)) => panic!(
                "{} failed at case {} (base seed {:#x}, rejects so far {}): {msg}",
                self.name, self.case, self.base_seed, self.rejects
            ),
        }
    }
}

/// A value generator (no shrinking — see the crate docs).
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over a type's full natural domain, as in `proptest::prelude::any`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `any::<T>()` strategy constructor.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ ))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Namespaced strategy constructors (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec`s with element strategy `S` and a length
        /// drawn from a range.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// `vec(element, len_range)` — as in `proptest::collection::vec`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRunner,
    };
}

/// `assert!` that fails the current case with context instead of
/// panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// `assert_ne!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Reject the current case (uncounted) when its inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// The test-authoring macro: each `fn name(arg in strategy, …) { body }`
/// item becomes a `#[test]` running `cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (@fns $cfg:expr;) => {};
    (@fns $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            while runner.more() {
                let mut rng = runner.case_rng();
                let result: $crate::TestCaseResult = (|| {
                    $(
                        let $arg = $crate::Strategy::generate(&$strat, &mut rng);
                    )*
                    $body
                    Ok(())
                })();
                runner.record(result);
            }
        }
        $crate::proptest!(@fns $cfg; $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns $crate::ProptestConfig::default(); $($rest)*);
    };
}
