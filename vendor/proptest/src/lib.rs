//! Minimal, dependency-free stand-in for the parts of `proptest` this
//! workspace uses: the [`proptest!`] macro, `prop_assert*` / `prop_assume`,
//! integer-range and [`any`] strategies, tuple strategies, `prop_map`,
//! `prop::collection::vec`, and **basic shrinking**.
//!
//! Shrinking is greedy and structural: when a case fails, each
//! strategy proposes smaller candidates ([`Strategy::shrink`] — halve
//! integers toward the range start, truncate vectors, flatten tuples
//! component-wise), the failing body is re-run on them, and the last
//! still-failing candidate is reported as the minimal input. Mapped
//! strategies ([`Strategy::prop_map`]) do not shrink (the mapping is
//! not invertible); the original failing case is reported instead.
//!
//! Other differences from the real crate, by design: case seeds derive
//! from the test's module path and index (not entropy), so a failure
//! report reproduces the run deterministically; generation quality is
//! whatever the in-tree `rand` shim provides.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration (`with_cases` is the only knob the workspace
/// uses; the struct mirrors the real crate's name so `#![proptest_config]`
/// blocks read identically).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is not counted.
    Reject,
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives the generate-and-check loop for one `proptest!` test function.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    base_seed: u64,
    case: u32,
    rejects: u32,
}

impl TestRunner {
    /// A runner for the named test.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        // Deterministic per-test base seed: FNV-1a over the name.
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        Self { config, name, base_seed: h, case: 0, rejects: 0 }
    }

    /// True while more cases must run.
    pub fn more(&self) -> bool {
        self.case < self.config.cases
    }

    /// Deterministic generator for the upcoming case.
    pub fn case_rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.base_seed ^ ((self.case as u64) << 32) ^ self.rejects as u64)
    }

    /// Account one case outcome; panics (failing the `#[test]`) on
    /// assertion failure, and on reject storms that starve generation.
    pub fn record(&mut self, result: TestCaseResult) {
        match result {
            Ok(()) => self.case += 1,
            Err(TestCaseError::Reject) => {
                self.rejects += 1;
                let budget = self.config.cases.saturating_mul(16).max(1024);
                assert!(
                    self.rejects <= budget,
                    "{}: {} rejects exceeded the budget of {budget}",
                    self.name,
                    self.rejects
                );
            }
            Err(TestCaseError::Fail(msg)) => panic!(
                "{} failed at case {} (base seed {:#x}, rejects so far {}): {msg}",
                self.name, self.case, self.base_seed, self.rejects
            ),
        }
    }

    /// Shrink a failing input with `strategy`'s candidates, re-running
    /// `run` on each, then panic reporting the minimal still-failing
    /// input (the [`proptest!`] macro's failure path).
    pub fn fail_shrunk<S: Strategy>(
        &self,
        strategy: &S,
        value: S::Value,
        msg: String,
        run: impl Fn(&S::Value) -> TestCaseResult,
    ) -> !
    where
        S::Value: Clone + std::fmt::Debug,
    {
        let (min, min_msg, steps) = shrink_failure(strategy, value, msg, &run);
        panic!(
            "{} failed at case {} (base seed {:#x}, rejects so far {}): {min_msg}\n\
             minimal failing input after {steps} shrink step(s): {min:?}",
            self.name, self.case, self.base_seed, self.rejects
        )
    }
}

/// Greedy structural shrink: try each candidate in order; adopt the
/// first that still fails and restart from it; stop at a fixed point
/// (or after a bounded number of re-runs). Returns the minimal failing
/// value, its failure message, and the number of adopted shrink steps.
pub fn shrink_failure<S: Strategy>(
    strategy: &S,
    mut value: S::Value,
    mut msg: String,
    run: &impl Fn(&S::Value) -> TestCaseResult,
) -> (S::Value, String, u32)
where
    S::Value: Clone,
{
    let mut steps = 0u32;
    let mut attempts = 0u32;
    'outer: while attempts < 1024 {
        for candidate in strategy.shrink(&value) {
            attempts += 1;
            if attempts >= 1024 {
                break 'outer;
            }
            // A candidate that passes (or is rejected by an assume) is
            // discarded; only still-failing candidates are adopted.
            if let Err(TestCaseError::Fail(m)) = run(&candidate) {
                value = candidate;
                msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (value, msg, steps)
}

/// Ties a strategy to its check closure so the closure's parameter
/// type is known when its body is type-checked (the [`proptest!`]
/// macro's binding helper).
pub fn bind<S: Strategy, F: Fn(&S::Value) -> TestCaseResult>(strategy: S, run: F) -> (S, F) {
    (strategy, run)
}

/// A value generator with optional structural shrinking.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Propose strictly "smaller" candidates for a failing `value`,
    /// most aggressive first (empty at a fixed point — the default for
    /// strategies that cannot shrink).
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Candidates for an integer failing at `v`, shrinking toward `lo`:
/// jump straight to the minimum, halve the distance, and finally step
/// down by one (the decrement is what lets the greedy loop land on an
/// exact failure boundary once halving overshoots).
fn shrink_toward<T>(v: T, lo: T) -> Vec<T>
where
    T: Copy + PartialOrd + std::ops::Sub<Output = T> + std::ops::Add<Output = T> + HalfOps,
{
    if lo >= v {
        return Vec::new();
    }
    let mut out = vec![lo];
    let halved = lo + (v - lo).half();
    if halved != lo && halved != v {
        out.push(halved);
    }
    let dec = v.dec();
    if dec != lo && Some(dec) != out.get(1).copied() {
        out.push(dec);
    }
    out
}

/// Helper for the integer shrink candidates: integer halving and decrement.
pub trait HalfOps: PartialEq + Sized {
    /// `self / 2`, truncating.
    fn half(&self) -> Self;
    /// `self - 1`.
    fn dec(&self) -> Self;
}

macro_rules! impl_half {
    ($($t:ty),*) => {$(
        impl HalfOps for $t {
            fn half(&self) -> Self {
                self / 2
            }
            fn dec(&self) -> Self {
                self - 1
            }
        }
    )*};
}
impl_half!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*value, self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*value, *self.start())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over a type's full natural domain, as in `proptest::prelude::any`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `any::<T>()` strategy constructor.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen()
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*value, 0)
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize);

macro_rules! impl_any_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen()
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                // Toward zero from either side.
                let v = *value;
                if v == 0 {
                    Vec::new()
                } else {
                    let mut out = vec![0];
                    let halved = v / 2;
                    if halved != 0 && halved != v {
                        out.push(halved);
                    }
                    let stepped = v - v.signum();
                    if stepped != 0 && stepped != halved {
                        out.push(stepped);
                    }
                    out
                }
            }
        }
    )*};
}
impl_any_signed!(i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen()
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen()
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        if *value == 0.0 {
            Vec::new()
        } else {
            vec![0.0, value / 2.0]
        }
    }
}

/// Zero-argument `proptest!` functions bind the unit strategy.
impl Strategy for () {
    type Value = ();
    fn generate(&self, _rng: &mut StdRng) {}
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ ))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone,)+
        {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // One component shrunk at a time, the rest held fixed.
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = candidate;
                        out.push(v);
                    }
                )+
                out
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Namespaced strategy constructors (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec`s with element strategy `S` and a length
        /// drawn from a range.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// `vec(element, len_range)` — as in `proptest::collection::vec`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: Clone,
        {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Truncate toward the minimum legal length (most
                // aggressive first), then shrink the first element.
                let mut out = Vec::new();
                let min = self.len.start;
                if value.len() > min {
                    out.push(value[..min].to_vec());
                    let half = min + (value.len() - min) / 2;
                    if half != min && half != value.len() {
                        out.push(value[..half].to_vec());
                    }
                }
                if let Some(first) = value.first() {
                    for candidate in self.element.shrink(first) {
                        let mut v = value.clone();
                        v[0] = candidate;
                        out.push(v);
                    }
                }
                out
            }
        }
    }
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRunner,
    };
}

/// `assert!` that fails the current case with context instead of
/// panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// `assert_ne!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Reject the current case (uncounted) when its inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// The test-authoring macro: each `fn name(arg in strategy, …) { body }`
/// item becomes a `#[test]` running `cases` generated cases; a failing
/// case is shrunk toward a minimal failing input before the panic
/// (see the crate docs).
#[macro_export]
macro_rules! proptest {
    (@fns $cfg:expr;) => {};
    (@fns $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            let (strategy, run) = $crate::bind(($($strat,)*), |values| {
                let ($($arg,)*) = ::std::clone::Clone::clone(values);
                $body
                Ok(())
            });
            while runner.more() {
                let mut rng = runner.case_rng();
                let values = $crate::Strategy::generate(&strategy, &mut rng);
                match run(&values) {
                    Err($crate::TestCaseError::Fail(msg)) => {
                        runner.fail_shrunk(&strategy, values, msg, run)
                    }
                    other => runner.record(other),
                }
            }
        }
        $crate::proptest!(@fns $cfg; $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod shrink_tests {
    use super::*;

    /// "Fails whenever x ≥ 17" must shrink to exactly 17.
    #[test]
    fn integers_shrink_to_the_boundary() {
        let strat = 0u64..1000;
        let run = |v: &u64| -> TestCaseResult {
            if *v >= 17 {
                Err(TestCaseError::Fail(format!("{v} too big")))
            } else {
                Ok(())
            }
        };
        let (min, msg, steps) = shrink_failure(&strat, 900, "seed".into(), &run);
        assert_eq!(min, 17, "greedy halving must land on the boundary");
        assert!(msg.contains("17"));
        assert!(steps > 0);
    }

    /// "Fails whenever the vector has ≥ 3 elements" must shrink to
    /// exactly 3 elements.
    #[test]
    fn vectors_shrink_to_minimal_length() {
        let strat = prop::collection::vec(0u32..10, 1..64);
        let run = |v: &Vec<u32>| -> TestCaseResult {
            if v.len() >= 3 {
                Err(TestCaseError::Fail(format!("len {}", v.len())))
            } else {
                Ok(())
            }
        };
        let value = vec![5; 40];
        let (min, _, _) = shrink_failure(&strat, value, "seed".into(), &run);
        assert_eq!(min.len(), 3);
    }

    /// Tuple components shrink independently: a failure depending only
    /// on the first component zeroes the second.
    #[test]
    fn tuples_shrink_componentwise() {
        let strat = (0u64..100, 0u64..100);
        let run = |v: &(u64, u64)| -> TestCaseResult {
            if v.0 >= 5 {
                Err(TestCaseError::Fail("first too big".into()))
            } else {
                Ok(())
            }
        };
        let (min, _, _) = shrink_failure(&strat, (90, 77), "seed".into(), &run);
        assert_eq!(min, (5, 0));
    }

    /// A passing candidate is never adopted: shrinking stops at the
    /// smallest still-failing input even when the predicate is spiky.
    #[test]
    fn shrinking_only_adopts_failing_candidates() {
        let strat = 0i64..200;
        let run = |v: &i64| -> TestCaseResult {
            // Fails only on even numbers ≥ 10.
            if *v >= 10 && *v % 2 == 0 {
                Err(TestCaseError::Fail("even and big".into()))
            } else {
                Ok(())
            }
        };
        let (min, _, _) = shrink_failure(&strat, 160, "seed".into(), &run);
        assert!(min >= 10 && min % 2 == 0, "minimal value still fails: {min}");
        assert!(min < 160, "some progress was made");
    }

    /// The macro's failure path reports the shrunken input in the panic
    /// message.
    #[test]
    fn macro_reports_minimal_input() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            fn always_fails_over_10(x in 0u64..1000) {
                prop_assert!(x < 10, "x = {x}");
            }
        }
        let err = std::panic::catch_unwind(always_fails_over_10)
            .expect_err("the property is falsifiable");
        let msg = err.downcast_ref::<String>().expect("panic payload");
        assert!(msg.contains("minimal failing input"), "{msg}");
        assert!(msg.contains("(10,)"), "must shrink to the boundary: {msg}");
    }
}
