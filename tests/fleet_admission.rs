//! Admission control through `FleetClient`: global and per-tenant
//! queue caps, reject vs. shed-lowest-priority, and the invariant that
//! matters most — admission decides *which* jobs run, never *what* an
//! accepted job computes (a proptest pins accepted results to the
//! uncapped scheduler bit for bit).

use lnls::core::{BitString, SearchConfig, TabuSearch};
use lnls::gpu::DeviceSpec;
use lnls::neighborhood::{Neighborhood, TwoHamming};
use lnls::prelude::{
    AdmissionPolicy, BinaryJob, FleetClient, JobSpec, JobStatus, OneMax, Scheduler,
    SchedulerConfig, SubmitError,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 22;

fn onemax_job(seed: u64, iters: u64) -> BinaryJob<OneMax, TwoHamming> {
    let hood = TwoHamming::new(N);
    let mut rng = StdRng::seed_from_u64(seed);
    let init = BitString::random(&mut rng, N);
    let search = TabuSearch::paper(SearchConfig::budget(iters).with_seed(seed), hood.size());
    BinaryJob::new(format!("onemax-{seed}"), OneMax::new(N), hood, search, init)
}

fn one_device_client(policy: AdmissionPolicy) -> FleetClient {
    let fleet = Scheduler::with_uniform_fleet(
        1,
        DeviceSpec::gtx280(),
        SchedulerConfig { max_batch: 1, ..Default::default() },
    );
    FleetClient::new(fleet, policy)
}

#[test]
fn queue_cap_rejects_overflow_with_typed_error() {
    let mut client = one_device_client(AdmissionPolicy::queue_cap(3));
    let mut accepted = Vec::new();
    let mut rejected = 0;
    for seed in 0..6u64 {
        match client.submit(onemax_job(seed, 12)) {
            Ok(h) => accepted.push(h),
            Err(e) => {
                assert!(matches!(e, SubmitError::QueueFull { limit: 3, .. }), "{e}");
                assert!(e.to_string().contains("queue full"), "{e}");
                rejected += 1;
            }
        }
    }
    assert_eq!(accepted.len(), 3);
    assert_eq!(rejected, 3);
    client.run_until_idle();
    let report = client.fleet_report();
    assert_eq!(report.jobs_completed, 3);
    assert_eq!(report.jobs_rejected, 3, "outright rejections must be observable");
    for h in accepted {
        assert_eq!(client.status(h), JobStatus::Done);
    }
}

#[test]
fn per_tenant_cap_isolates_tenants() {
    let mut client = one_device_client(AdmissionPolicy::unbounded().with_tenant_cap(2));
    // Tenant "a" fills its cap; tenant "b" is unaffected.
    for seed in 0..2u64 {
        client
            .submit_spec(JobSpec::new(onemax_job(seed, 10)).for_tenant("a"))
            .expect("under tenant cap");
    }
    let err = client
        .submit_spec(JobSpec::new(onemax_job(9, 10)).for_tenant("a"))
        .expect_err("tenant a is full");
    match err {
        SubmitError::TenantQueueFull { tenant, limit, .. } => {
            assert_eq!(tenant, "a");
            assert_eq!(limit, 2);
        }
        other => panic!("wrong error: {other}"),
    }
    client
        .submit_spec(JobSpec::new(onemax_job(3, 10)).for_tenant("b"))
        .expect("tenant b has its own cap");
    client.run_until_idle();
    assert_eq!(client.fleet_report().jobs_completed, 3);
    assert_eq!(client.fleet_report().jobs_rejected, 1);
}

#[test]
fn shedding_evicts_lowest_priority_newest_first() {
    let mut client = one_device_client(AdmissionPolicy::queue_cap(2).with_shedding());
    let low_old =
        client.submit_spec(JobSpec::new(onemax_job(0, 10)).with_priority(1)).expect("admitted");
    let low_new =
        client.submit_spec(JobSpec::new(onemax_job(1, 10)).with_priority(1)).expect("admitted");
    // Equal priority cannot shed: the submission bounces instead.
    assert!(matches!(
        client.submit_spec(JobSpec::new(onemax_job(2, 10)).with_priority(1)),
        Err(SubmitError::QueueFull { .. })
    ));
    // Higher priority sheds the *newest* of the lowest-priority jobs.
    let high = client
        .submit_spec(JobSpec::new(onemax_job(3, 10)).with_priority(5))
        .expect("shedding makes room");
    assert_eq!(client.status(low_new), JobStatus::Rejected, "newest low job is shed");
    assert_eq!(format!("{}", client.status(low_new)), "rejected");
    assert_eq!(client.status(low_old), JobStatus::Queued, "older low job survives");
    let shed_report = client.report(low_new).expect("shed jobs still report");
    assert!(shed_report.rejected);
    assert!(!shed_report.cancelled);
    assert_eq!(shed_report.outcome.iterations(), 0, "never left the queue");

    client.run_until_idle();
    assert_eq!(client.status(high), JobStatus::Done);
    assert_eq!(client.status(low_old), JobStatus::Done);
    let report = client.fleet_report();
    assert_eq!(report.jobs_completed, 2);
    // 1 shed + 1 bounced.
    assert_eq!(report.jobs_rejected, 2);
    // Rejected rows are flagged in the tenant stats and excluded from
    // the fairness aggregates.
    assert_eq!(report.tenant_stats.iter().filter(|t| t.rejected).count(), 1);
}

#[test]
fn shedding_respects_tenant_scope() {
    let mut client =
        one_device_client(AdmissionPolicy::unbounded().with_tenant_cap(1).with_shedding());
    let a_low = client
        .submit_spec(JobSpec::new(onemax_job(0, 10)).for_tenant("a").with_priority(0))
        .expect("admitted");
    let b_low = client
        .submit_spec(JobSpec::new(onemax_job(1, 10)).for_tenant("b").with_priority(0))
        .expect("admitted");
    // A high-priority submission for tenant "a" may only shed tenant
    // "a" work, not tenant "b"'s.
    client
        .submit_spec(JobSpec::new(onemax_job(2, 10)).for_tenant("a").with_priority(7))
        .expect("sheds within the tenant");
    assert_eq!(client.status(a_low), JobStatus::Rejected);
    assert_eq!(client.status(b_low), JobStatus::Queued);
    client.run_until_idle();
    assert_eq!(client.fleet_report().jobs_completed, 2);
}

#[test]
fn rejected_submissions_never_shed_anyone() {
    // Global cap would allow shedding, but the tenant cap cannot be
    // satisfied: the submission must bounce with the queue untouched —
    // admission is all-or-nothing, so an ultimately-rejected submission
    // must not evict another tenant's work on the way.
    let policy = AdmissionPolicy {
        max_queued: Some(2),
        max_queued_per_tenant: Some(1),
        shed_lowest_priority: true,
    };
    let mut client = one_device_client(policy);
    let a = client
        .submit_spec(JobSpec::new(onemax_job(0, 10)).for_tenant("x").with_priority(0))
        .expect("admitted");
    let b = client
        .submit_spec(JobSpec::new(onemax_job(1, 10)).for_tenant("y").with_priority(5))
        .expect("admitted");
    // Tenant y is at its cap and its queued job outranks the incoming
    // priority-3 submission; the global-cap shed of A must NOT happen.
    let err = client
        .submit_spec(JobSpec::new(onemax_job(2, 10)).for_tenant("y").with_priority(3))
        .expect_err("tenant cap is infeasible");
    assert!(matches!(err, SubmitError::TenantQueueFull { .. }), "{err}");
    assert_eq!(client.status(a), JobStatus::Queued, "tenant x must be untouched");
    assert_eq!(client.status(b), JobStatus::Queued);
    client.run_until_idle();
    assert_eq!(client.fleet_report().jobs_completed, 2);
    assert_eq!(client.fleet_report().jobs_rejected, 1, "only the bounced submission");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Admission on/off never changes what an accepted job computes:
    /// submit a burst through a capped client, then run exactly the
    /// accepted set through an uncapped scheduler — every (fitness,
    /// iterations, solution) triple must match bit for bit.
    #[test]
    fn accepted_jobs_are_bit_identical_with_admission_on_and_off(
        cap in 1usize..6,
        burst in 2u64..9,
        iters in 5u64..25,
    ) {
        let mut client = one_device_client(AdmissionPolicy::queue_cap(cap));
        let mut accepted_seeds = Vec::new();
        let mut accepted_handles = Vec::new();
        for seed in 0..burst {
            if let Ok(h) = client.submit(onemax_job(seed, iters)) {
                accepted_seeds.push(seed);
                accepted_handles.push(h);
            }
        }
        client.run_until_idle();

        let mut uncapped = Scheduler::with_uniform_fleet(
            1,
            DeviceSpec::gtx280(),
            SchedulerConfig { max_batch: 1, ..Default::default() },
        );
        let plain_handles: Vec<_> =
            accepted_seeds.iter().map(|&s| uncapped.submit(onemax_job(s, iters))).collect();
        uncapped.run_until_idle();

        for (ch, ph) in accepted_handles.iter().zip(&plain_handles) {
            let got = client.report(*ch).expect("accepted jobs complete");
            let want = uncapped.report(*ph).expect("uncapped jobs complete");
            let (g, w) = (
                got.outcome.as_binary().expect("binary job"),
                want.outcome.as_binary().expect("binary job"),
            );
            prop_assert_eq!(&g.best, &w.best);
            prop_assert_eq!(g.best_fitness, w.best_fitness);
            prop_assert_eq!(g.iterations, w.iterations);
            prop_assert_eq!(g.evals, w.evals);
        }
        let report = client.fleet_report();
        prop_assert_eq!(report.jobs_completed as usize, accepted_seeds.len());
        prop_assert_eq!(
            report.jobs_rejected as usize,
            burst as usize - accepted_seeds.len()
        );
    }
}
