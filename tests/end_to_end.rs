//! End-to-end scenarios across the whole stack: solving instances,
//! persistence, the identification protocol, and the multi-GPU path.

use lnls::gpu::{DeviceSpec, ExecMode, LaunchConfig, MemSpace, MultiDevice};
use lnls::neighborhood::{binomial, partition_ranges};
use lnls::ppp::{crypto, PppEvalKernel};
use lnls::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn small_instance_gets_solved_by_escalating_neighborhoods() {
    // Mirrors the ppp_crack example but as a deterministic test: some
    // k ∈ {1,2,3} must crack a 23×23 instance within the budget.
    let inst = PppInstance::generate(23, 23, 31);
    let p = Ppp::new(inst);
    let mut rng = StdRng::seed_from_u64(31);
    let init = BitString::random(&mut rng, 23);
    let mut solved = false;
    for k in 1..=3usize {
        let hood = KHamming::new(23, k);
        let mut ex = SequentialExplorer::new(hood);
        let search = TabuSearch::paper(
            SearchConfig::budget(2_000).with_seed(k as u64),
            Neighborhood::size(&hood),
        );
        let r = search.run(&p, &mut ex, init.clone());
        if r.success {
            assert!(p.inst.is_solution(&r.best));
            solved = true;
            break;
        }
    }
    assert!(solved, "no neighborhood cracked the 23×23 instance");
}

#[test]
fn recovered_key_passes_identification() {
    let (pk, _sk) = crypto::keygen(21, 21, 77);
    let p = Ppp::new(pk.inst.clone());
    let mut rng = StdRng::seed_from_u64(7);
    let init = BitString::random(&mut rng, 21);
    let hood = ThreeHamming::new(21);
    let mut ex = SequentialExplorer::new(hood);
    let search =
        TabuSearch::paper(SearchConfig::budget(3_000).with_seed(3), Neighborhood::size(&hood));
    let r = search.run(&p, &mut ex, init);
    assert!(r.success, "3-Hamming tabu should crack 21×21 (fitness {})", r.best_fitness);
    let forged = crypto::SecretKey { v: r.best };
    assert_eq!(crypto::identification_session(&pk, &forged, 12, 1), 12);
}

#[test]
fn instance_roundtrips_through_disk_format() {
    let inst = PppInstance::generate(33, 29, 123);
    let text = inst.save_to_string();
    let back = PppInstance::parse(&text).unwrap();
    assert_eq!(inst.a, back.a);
    // A solution of the original solves the round-tripped instance.
    let secret = inst.secret.unwrap();
    assert!(back.is_solution(&secret));
}

#[test]
fn multi_gpu_partition_matches_single_device() {
    let (m, n, k) = (19, 17, 3);
    let inst = PppInstance::generate(m, n, 55);
    let p = Ppp::new(inst);
    let mut rng = StdRng::seed_from_u64(2);
    let s = BitString::random(&mut rng, n);
    let state = lnls::core::IncrementalEval::init_state(&p, &s);
    let msize = binomial(n as u64, k as u64);

    // Reference: single-device explorer.
    let mut gpu = PppGpuExplorer::new(&p, k, GpuExplorerConfig::default());
    let mut reference = Vec::new();
    {
        let mut st = lnls::core::IncrementalEval::init_state(&p, &s);
        gpu.explore(&p, &s, &mut st, &mut reference);
    }

    // Partitioned across 3 simulated devices.
    let mut multi = MultiDevice::new_uniform(3, DeviceSpec::gtx280());
    let parts = partition_ranges(msize, 3);
    let vbits: Vec<u32> = s.words().iter().flat_map(|&w| [w as u32, (w >> 32) as u32]).collect();
    let wpc32 = (p.inst.a.words_per_col() * 2) as u32;
    let mut combined = vec![0i64; msize as usize];
    multi.parallel_step(|i, dev| {
        let part = parts[i];
        if part.is_empty() {
            return;
        }
        let a_cols = dev.upload_new(&p.inst.a.cols_as_u32(), MemSpace::Texture, "a");
        let hist_t = dev.upload_new(&p.inst.target_hist, MemSpace::Texture, "h");
        let vb = dev.upload_new(&vbits, MemSpace::Global, "v");
        let y = dev.upload_new(&state.y, MemSpace::Global, "y");
        let hc = dev.upload_new(&state.hist, MemSpace::Global, "hc");
        let out = dev.alloc_zeroed::<i32>(part.len() as usize, MemSpace::Global, "o");
        let kernel = PppEvalKernel {
            k: k as u8,
            n: n as u32,
            m: m as u32,
            msize: part.len(),
            base_index: part.lo,
            wpc32,
            a_cols,
            vbits: vb,
            y,
            hist_target: hist_t,
            hist_cur: hc,
            out: out.clone(),
            neg_base: state.neg_cost,
            hist_base: state.hist_cost,
        };
        dev.launch(&kernel, LaunchConfig::cover_1d(part.len(), 64), ExecMode::Auto);
        for (off, v) in dev.download(&out).into_iter().enumerate() {
            combined[(part.lo + off as u64) as usize] = v as i64;
        }
    });
    assert_eq!(combined, reference);
    assert!(multi.elapsed_parallel_s() > 0.0);
}

#[test]
fn all_drivers_run_on_ppp() {
    use lnls::core::{IteratedLocalSearch, SimulatedAnnealing, VariableNeighborhoodSearch};
    let inst = PppInstance::generate(19, 19, 8);
    let p = Ppp::new(inst);
    let mut rng = StdRng::seed_from_u64(4);
    let init = BitString::random(&mut rng, 19);

    let mut hc_ex = SequentialExplorer::new(TwoHamming::new(19));
    let hc = HillClimbing::best(SearchConfig::budget(200));
    let r = hc.run(&p, &mut hc_ex, init.clone());
    assert!(r.best_fitness >= 0);

    let sa = SimulatedAnnealing::new(
        SearchConfig::budget(5_000).with_seed(1),
        TwoHamming::new(19),
        10.0,
    );
    assert!(sa.run(&p, init.clone()).best_fitness >= 0);

    let ils = IteratedLocalSearch::new(SearchConfig::budget(20).with_seed(2));
    assert!(ils.run(&p, init.clone()).best_fitness >= 0);

    let mut ladder: Vec<Box<dyn Explorer<Ppp>>> = vec![
        Box::new(SequentialExplorer::new(OneHamming::new(19))),
        Box::new(SequentialExplorer::new(TwoHamming::new(19))),
        Box::new(SequentialExplorer::new(ThreeHamming::new(19))),
    ];
    let vns = VariableNeighborhoodSearch::new(SearchConfig::budget(100));
    assert!(vns.run(&p, &mut ladder, init).best_fitness >= 0);
}
