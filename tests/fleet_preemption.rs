//! Property test of the preemptive runtime: for *any* quantum, a mixed
//! PPP / QAP / OneMax / simulated-annealing fleet must report
//! bit-identical best fitness and iteration counts to the
//! run-to-completion scheduler — preemption is a pure scheduling
//! concern, invisible to search semantics. The fair side of the bargain
//! is asserted too: slicing never worsens the worst tenant wait.

use lnls::core::{BitString, SearchConfig, SimulatedAnnealing, TabuSearch};
use lnls::gpu::{DeviceSpec, MultiDevice};
use lnls::neighborhood::{KHamming, Neighborhood, TwoHamming};
use lnls::ppp::{Ppp, PppInstance};
use lnls::prelude::{
    AnnealJob, BinaryJob, FleetReport, OneMax, QapInstance, QapJobSpec, RobustTabu, RtsConfig,
    Scheduler, SchedulerConfig, TableEvaluator,
};
use lnls::qap::Permutation;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const PPP_N: usize = 20;
const ONEMAX_N: usize = 22;
const QAP_N: usize = 9;

fn submit_mixed(fleet: &mut Scheduler, iters: u64) {
    for seed in 0..2u64 {
        let problem = Ppp::new(PppInstance::generate(PPP_N, PPP_N, seed));
        let hood = KHamming::new(PPP_N, 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let init = BitString::random(&mut rng, PPP_N);
        let search = TabuSearch::paper(SearchConfig::budget(iters).with_seed(seed), hood.size());
        fleet.submit(BinaryJob::new(format!("ppp-{seed}"), problem, hood, search, init));
    }
    for seed in 0..2u64 {
        let hood = TwoHamming::new(ONEMAX_N);
        let mut rng = StdRng::seed_from_u64(10 + seed);
        let init = BitString::random(&mut rng, ONEMAX_N);
        let search = TabuSearch::paper(SearchConfig::budget(iters).with_seed(seed), hood.size());
        fleet.submit(
            BinaryJob::new(format!("onemax-{seed}"), OneMax::new(ONEMAX_N), hood, search, init)
                .with_priority((seed % 2) as u8 * 2),
        );
    }
    let mut rng = StdRng::seed_from_u64(77);
    let inst = QapInstance::random_uniform(&mut rng, QAP_N);
    let init = Permutation::random(&mut rng, QAP_N);
    fleet.submit(QapJobSpec::new("qap-0", inst, RtsConfig::budget(iters * 3).with_seed(5), init));
}

/// A sampling-style tenant: annealing flows through the same generic
/// submit path and must be exactly as quantum-invariant. (Kept out of
/// [`submit_mixed`] — the wait-fairness property below is a claim about
/// that specific tenant mix.)
fn submit_sa(fleet: &mut Scheduler, iters: u64) {
    let hood = TwoHamming::new(ONEMAX_N);
    let mut rng = StdRng::seed_from_u64(33);
    let init = BitString::random(&mut rng, ONEMAX_N);
    let sa = SimulatedAnnealing::new(SearchConfig::budget(iters).with_seed(3), hood, 1.4);
    fleet.submit(AnnealJob::new("sa-0", OneMax::new(ONEMAX_N), sa, init));
}

/// Run the mixed batch and collect `(best fitness, iterations)` per job
/// in id order, plus the fleet report.
fn run_mixed(
    devices: usize,
    cpu_workers: usize,
    max_batch: usize,
    quantum: Option<u64>,
    iters: u64,
) -> (Vec<(i64, u64)>, FleetReport) {
    let mut fleet = Scheduler::new(
        MultiDevice::new_uniform(devices, DeviceSpec::gtx280()),
        SchedulerConfig { cpu_workers, max_batch, quantum_iters: quantum, ..Default::default() },
    );
    submit_mixed(&mut fleet, iters);
    fleet.run_until_idle();
    let outcomes =
        fleet.reports().map(|r| (r.outcome.best_fitness(), r.outcome.iterations())).collect();
    (outcomes, fleet.fleet_report())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any quantum, any small fleet shape: identical search results to
    /// the run-to-completion scheduler, and no worse max tenant wait.
    #[test]
    fn any_quantum_is_invisible_to_results(
        quantum in 1u64..40,
        devices in 1usize..3,
        cpu_workers in 0usize..2,
        max_batch in 1usize..5,
    ) {
        let iters = 18;
        let (plain, plain_report) = run_mixed(devices, cpu_workers, max_batch, None, iters);
        let (sliced, sliced_report) =
            run_mixed(devices, cpu_workers, max_batch, Some(quantum), iters);
        prop_assert_eq!(plain, sliced);
        prop_assert!(
            sliced_report.max_wait_s <= plain_report.max_wait_s + 1e-12,
            "slicing must not worsen the worst wait: {} vs {}",
            sliced_report.max_wait_s,
            plain_report.max_wait_s
        );
    }
}

/// The quantum-invariance claim, spelled out against solo runs rather
/// than the non-preemptive scheduler (one fixed case, deeper check:
/// solutions themselves, not just fitness).
#[test]
fn preempted_fleet_matches_solo_runs_exactly() {
    let mut fleet = Scheduler::new(
        MultiDevice::new_uniform(2, DeviceSpec::gtx280()),
        SchedulerConfig { cpu_workers: 1, quantum_iters: Some(4), ..Default::default() },
    );
    submit_mixed(&mut fleet, 20);
    submit_sa(&mut fleet, 80);
    fleet.run_until_idle();

    // PPP jobs (ids 0, 1).
    for seed in 0..2u64 {
        let problem = Ppp::new(PppInstance::generate(PPP_N, PPP_N, seed));
        let hood = KHamming::new(PPP_N, 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let init = BitString::random(&mut rng, PPP_N);
        let search = TabuSearch::paper(SearchConfig::budget(20).with_seed(seed), hood.size());
        let mut ex = lnls::core::SequentialExplorer::new(hood);
        let want = search.run(&problem, &mut ex, init);
        let got = fleet.reports().nth(seed as usize).unwrap().outcome.as_binary().unwrap();
        assert_eq!(got.best, want.best, "ppp-{seed}");
        assert_eq!(got.iterations, want.iterations, "ppp-{seed}");
    }
    // QAP job (id 4).
    let mut rng = StdRng::seed_from_u64(77);
    let inst = QapInstance::random_uniform(&mut rng, QAP_N);
    let init = Permutation::random(&mut rng, QAP_N);
    let want = RobustTabu::new(RtsConfig::budget(60).with_seed(5)).run(
        &inst,
        &mut TableEvaluator::new(),
        init,
    );
    let got = fleet.reports().nth(4).unwrap().outcome.as_qap().unwrap();
    assert_eq!(got.best.as_slice(), want.best.as_slice());
    assert_eq!(got.best_cost, want.best_cost);
    assert_eq!(got.iterations, want.iterations);
    // Annealing job (id 5).
    let hood = TwoHamming::new(ONEMAX_N);
    let mut rng = StdRng::seed_from_u64(33);
    let init = BitString::random(&mut rng, ONEMAX_N);
    let sa = SimulatedAnnealing::new(SearchConfig::budget(80).with_seed(3), hood, 1.4);
    let want = sa.run(&OneMax::new(ONEMAX_N), init);
    let got = fleet.reports().nth(5).unwrap().outcome.as_binary().unwrap();
    assert_eq!(got.best, want.best, "sa-0");
    assert_eq!(got.iterations, want.iterations, "sa-0");

    let report = fleet.fleet_report();
    assert!(report.preemptions > 0, "the QAP job must have been sliced");
}
