//! Replay determinism of the workload subsystem, held to the strongest
//! standard available: for any catalog scenario and any seed, recording
//! a run and replaying its disk-round-tripped trace must produce
//! **bit-identical** `FleetReport`s — every f64 (makespans, waits,
//! percentiles, busy clocks, telemetry samples) compared through its
//! exact `Debug` rendering, which round-trips floats losslessly.
//!
//! Plus the envelope-policy edge case the drain sweep must order
//! deterministically: an iteration budget and a deadline expiring in
//! the *same* quantum.

use lnls::core::{BitString, SearchConfig, TabuSearch};
use lnls::neighborhood::{Neighborhood, TwoHamming};
use lnls::prelude::{BinaryJob, DeviceSpec, EngineConfig, LaunchMode, SelectionMode};
use lnls::prelude::{
    Driver, JobSpec, OneMax, Scenario, Scheduler, SchedulerConfig, Trace, TrafficGen,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any (scenario, seed) under any combination of the fleet pricing
    /// knobs — engine layout (GT200 vs. Fermi stream overlap), selection
    /// mode (host vs. on-device argmin), fused-span length and
    /// launch-overhead mode: record, save the trace to bytes, reload,
    /// replay — the fleet reports must match bit for bit, and so must
    /// the driver-side counters.
    #[test]
    fn any_recorded_trace_replays_bit_identically(
        scenario_idx in 0usize..6,
        seed in 0u64..1000,
        fermi in proptest::prelude::any::<bool>(),
        device_argmin in proptest::prelude::any::<bool>(),
        span in 1u64..=8,
        persistent in proptest::prelude::any::<bool>(),
    ) {
        let engines = if fermi { EngineConfig::fermi() } else { EngineConfig::gt200() };
        let selection =
            if device_argmin { SelectionMode::DeviceArgmin } else { SelectionMode::HostArgmin };
        let mode =
            if persistent { LaunchMode::PersistentSpan } else { LaunchMode::PerIteration };
        let scenario = Scenario::catalog()[scenario_idx]
            .clone()
            .with_fleet_knobs(engines, selection)
            .with_span_knobs(span, mode);
        let (trace, recorded) = Driver::record(&scenario, seed);

        let bytes = trace.to_bytes();
        let reloaded = Trace::from_bytes(&bytes).expect("traces decode");
        prop_assert_eq!(&reloaded, &trace, "byte round-trip must be lossless");

        let replayed = Driver::replay(&reloaded);
        prop_assert_eq!(
            format!("{:?}", replayed.fleet),
            format!("{:?}", recorded.fleet),
            "scenario '{}' seed {} must replay bit-identically",
            scenario.name,
            seed
        );
        prop_assert_eq!(replayed.submitted, recorded.submitted);
        prop_assert_eq!(replayed.admitted, recorded.admitted);
        prop_assert_eq!(replayed.bounced, recorded.bounced);
        prop_assert_eq!(replayed.crashes, recorded.crashes);
        prop_assert_eq!(replayed.ticks, recorded.ticks);
    }

    /// The lowering itself is a pure function of (scenario, seed).
    #[test]
    fn lowering_is_reproducible(scenario_idx in 0usize..6, seed in 0u64..1000) {
        let scenario = &Scenario::catalog()[scenario_idx];
        let a = TrafficGen::lower(scenario, seed);
        let b = TrafficGen::lower(scenario, seed);
        prop_assert_eq!(a.to_bytes(), b.to_bytes());
    }
}

/// A job that trips its iteration budget *and* its deadline inside one
/// quantum: the drain sweep checks deadlines first, so the job must
/// drain through the cancellation path (reported cancelled at the
/// boundary, with exactly the budgeted iterations executed) — not
/// complete as a budget-exhausted success. Pinning the precedence keeps
/// replay determinism honest for deadline-heavy scenarios.
#[test]
fn iter_budget_and_deadline_expiring_in_the_same_quantum_cancels() {
    let n = 24;
    let hood = TwoHamming::new(n);
    let mut rng = StdRng::seed_from_u64(1);
    let init = BitString::random(&mut rng, n);
    let search =
        TabuSearch::paper(SearchConfig::budget(50).with_seed(1).with_target(None), hood.size());
    let job = BinaryJob::new("both-expire", OneMax::new(n), hood, search, init);

    let mut fleet = Scheduler::with_uniform_fleet(
        1,
        DeviceSpec::gtx280(),
        SchedulerConfig { max_batch: 1, quantum_iters: Some(10), ..Default::default() },
    );
    // Budget of 3 iterations caps the first slice at exactly 3; any
    // positive fleet time passes the epsilon deadline in that same
    // quantum — both envelope conditions trip before the next drain.
    let handle = fleet
        .submit_spec(JobSpec::new(job).with_iter_budget(3).with_deadline(1e-12).for_tenant("edge"));
    fleet.run_until_idle();

    let report = fleet.report(handle).expect("drained jobs report");
    assert!(
        report.cancelled,
        "deadline precedence: the job must drain cancelled, not complete on budget"
    );
    assert!(!report.rejected);
    assert_eq!(report.outcome.iterations(), 3, "the budget capped the quantum");
    let fr = fleet.fleet_report();
    assert_eq!(fr.jobs_cancelled, 1);
    assert_eq!(fr.jobs_completed, 0);

    // Control: without the deadline, the same budgeted job completes.
    let hood = TwoHamming::new(n);
    let mut rng = StdRng::seed_from_u64(1);
    let init = BitString::random(&mut rng, n);
    let search =
        TabuSearch::paper(SearchConfig::budget(50).with_seed(1).with_target(None), hood.size());
    let job = BinaryJob::new("budget-only", OneMax::new(n), hood, search, init);
    let mut fleet = Scheduler::with_uniform_fleet(
        1,
        DeviceSpec::gtx280(),
        SchedulerConfig { max_batch: 1, quantum_iters: Some(10), ..Default::default() },
    );
    let handle = fleet.submit_spec(JobSpec::new(job).with_iter_budget(3));
    fleet.run_until_idle();
    let report = fleet.report(handle).unwrap();
    assert!(!report.cancelled, "budget exhaustion alone completes the job");
    assert_eq!(report.outcome.iterations(), 3);
}

/// Span length and launch mode are pricing-only at the workload level
/// too: on the deadline-free steady scenario every span setting admits,
/// completes and iterates exactly the same work — only the modeled
/// prices move. (Deadline-heavy scenarios are excluded on purpose:
/// coarser span ticks may legitimately cancel a late job at a different
/// iteration, which is a timing effect, not a search-result change.)
#[test]
fn span_knobs_preserve_steady_outcomes() {
    let (_, base) = Driver::record(&Scenario::steady(), 42);
    for span in [2u64, 5, 8] {
        for mode in [LaunchMode::PerIteration, LaunchMode::PersistentSpan] {
            let scenario = Scenario::steady().with_span_knobs(span, mode);
            let (_, report) = Driver::record(&scenario, 42);
            let fleet = &report.fleet;
            assert_eq!(fleet.jobs_completed, base.fleet.jobs_completed, "span {span} {mode:?}");
            assert_eq!(fleet.jobs_cancelled, base.fleet.jobs_cancelled, "span {span} {mode:?}");
            assert_eq!(
                fleet.iterations_executed, base.fleet.iterations_executed,
                "span {span} {mode:?}: every admitted search must run its exact budget"
            );
            assert_eq!(report.admitted, base.admitted, "span {span} {mode:?}");
        }
    }
}

/// The checkpoint-churn scenario loses exactly its checkpoint opt-outs
/// at the crash — and still replays bit-identically (both runs crash at
/// the same tick and lose the same jobs).
#[test]
fn checkpoint_churn_replays_through_the_crash() {
    let scenario = Scenario::by_name("checkpoint-churn").expect("catalog scenario");
    let (trace, recorded) = Driver::record(&scenario, 123);
    assert_eq!(recorded.crashes, 1);
    let replayed = Driver::replay(&Trace::from_bytes(&trace.to_bytes()).unwrap());
    assert_eq!(replayed.crashes, 1);
    assert_eq!(format!("{:?}", replayed.fleet), format!("{:?}", recorded.fleet));
}
