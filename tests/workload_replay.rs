//! Replay determinism of the workload subsystem, held to the strongest
//! standard available: for any catalog scenario and any seed, recording
//! a run and replaying its disk-round-tripped trace must produce
//! **bit-identical** `FleetReport`s — every f64 (makespans, waits,
//! percentiles, busy clocks, telemetry samples) compared through its
//! exact `Debug` rendering, which round-trips floats losslessly.
//!
//! Plus the envelope-policy edge case the drain sweep must order
//! deterministically: an iteration budget and a deadline expiring in
//! the *same* quantum.

use lnls::core::{BitString, SearchConfig, TabuSearch};
use lnls::neighborhood::{Neighborhood, TwoHamming};
use lnls::prelude::{BinaryJob, DeviceSpec, EngineConfig, LaunchMode, SelectionMode};
use lnls::prelude::{
    Driver, JobSpec, OneMax, Scenario, Scheduler, SchedulerConfig, Trace, TrafficGen,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any (scenario, seed) under any combination of the fleet pricing
    /// knobs — engine layout (GT200 vs. Fermi stream overlap), selection
    /// mode (host vs. on-device argmin), fused-span length and
    /// launch-overhead mode: record, save the trace to bytes, reload,
    /// replay — the fleet reports must match bit for bit, and so must
    /// the driver-side counters.
    #[test]
    fn any_recorded_trace_replays_bit_identically(
        scenario_idx in 0usize..9,
        seed in 0u64..1000,
        fermi in proptest::prelude::any::<bool>(),
        device_argmin in proptest::prelude::any::<bool>(),
        span in 1u64..=8,
        persistent in proptest::prelude::any::<bool>(),
    ) {
        let engines = if fermi { EngineConfig::fermi() } else { EngineConfig::gt200() };
        let selection =
            if device_argmin { SelectionMode::DeviceArgmin } else { SelectionMode::HostArgmin };
        let mode =
            if persistent { LaunchMode::PersistentSpan } else { LaunchMode::PerIteration };
        let scenario = Scenario::catalog()[scenario_idx]
            .clone()
            .with_fleet_knobs(engines, selection)
            .with_span_knobs(span, mode);
        let (trace, recorded) = Driver::record(&scenario, seed);

        let bytes = trace.to_bytes();
        let reloaded = Trace::from_bytes(&bytes).expect("traces decode");
        prop_assert_eq!(&reloaded, &trace, "byte round-trip must be lossless");

        let replayed = Driver::replay(&reloaded);
        prop_assert_eq!(
            format!("{:?}", replayed.fleet),
            format!("{:?}", recorded.fleet),
            "scenario '{}' seed {} must replay bit-identically",
            scenario.name,
            seed
        );
        prop_assert_eq!(replayed.submitted, recorded.submitted);
        prop_assert_eq!(replayed.admitted, recorded.admitted);
        prop_assert_eq!(replayed.bounced, recorded.bounced);
        prop_assert_eq!(replayed.crashes, recorded.crashes);
        prop_assert_eq!(replayed.ticks, recorded.ticks);
    }

    /// The lowering itself is a pure function of (scenario, seed).
    #[test]
    fn lowering_is_reproducible(scenario_idx in 0usize..9, seed in 0u64..1000) {
        let scenario = &Scenario::catalog()[scenario_idx];
        let a = TrafficGen::lower(scenario, seed);
        let b = TrafficGen::lower(scenario, seed);
        prop_assert_eq!(a.to_bytes(), b.to_bytes());
    }
}

/// A job that trips its iteration budget *and* its deadline inside one
/// quantum: the drain sweep checks deadlines first, so the job must
/// drain through the cancellation path (reported cancelled at the
/// boundary, with exactly the budgeted iterations executed) — not
/// complete as a budget-exhausted success. Pinning the precedence keeps
/// replay determinism honest for deadline-heavy scenarios.
#[test]
fn iter_budget_and_deadline_expiring_in_the_same_quantum_cancels() {
    let n = 24;
    let hood = TwoHamming::new(n);
    let mut rng = StdRng::seed_from_u64(1);
    let init = BitString::random(&mut rng, n);
    let search =
        TabuSearch::paper(SearchConfig::budget(50).with_seed(1).with_target(None), hood.size());
    let job = BinaryJob::new("both-expire", OneMax::new(n), hood, search, init);

    let mut fleet = Scheduler::with_uniform_fleet(
        1,
        DeviceSpec::gtx280(),
        SchedulerConfig { max_batch: 1, quantum_iters: Some(10), ..Default::default() },
    );
    // Budget of 3 iterations caps the first slice at exactly 3; any
    // positive fleet time passes the epsilon deadline in that same
    // quantum — both envelope conditions trip before the next drain.
    let handle = fleet
        .submit_spec(JobSpec::new(job).with_iter_budget(3).with_deadline(1e-12).for_tenant("edge"));
    fleet.run_until_idle();

    let report = fleet.report(handle).expect("drained jobs report");
    assert!(
        report.cancelled,
        "deadline precedence: the job must drain cancelled, not complete on budget"
    );
    assert!(!report.rejected);
    assert_eq!(report.outcome.iterations(), 3, "the budget capped the quantum");
    let fr = fleet.fleet_report();
    assert_eq!(fr.jobs_cancelled, 1);
    assert_eq!(fr.jobs_completed, 0);

    // Control: without the deadline, the same budgeted job completes.
    let hood = TwoHamming::new(n);
    let mut rng = StdRng::seed_from_u64(1);
    let init = BitString::random(&mut rng, n);
    let search =
        TabuSearch::paper(SearchConfig::budget(50).with_seed(1).with_target(None), hood.size());
    let job = BinaryJob::new("budget-only", OneMax::new(n), hood, search, init);
    let mut fleet = Scheduler::with_uniform_fleet(
        1,
        DeviceSpec::gtx280(),
        SchedulerConfig { max_batch: 1, quantum_iters: Some(10), ..Default::default() },
    );
    let handle = fleet.submit_spec(JobSpec::new(job).with_iter_budget(3));
    fleet.run_until_idle();
    let report = fleet.report(handle).unwrap();
    assert!(!report.cancelled, "budget exhaustion alone completes the job");
    assert_eq!(report.outcome.iterations(), 3);
}

/// Span length and launch mode are pricing-only at the workload level
/// too: on the deadline-free steady scenario every span setting admits,
/// completes and iterates exactly the same work — only the modeled
/// prices move. (Deadline-heavy scenarios are excluded on purpose:
/// coarser span ticks may legitimately cancel a late job at a different
/// iteration, which is a timing effect, not a search-result change.)
#[test]
fn span_knobs_preserve_steady_outcomes() {
    let (_, base) = Driver::record(&Scenario::steady(), 42);
    for span in [2u64, 5, 8] {
        for mode in [LaunchMode::PerIteration, LaunchMode::PersistentSpan] {
            let scenario = Scenario::steady().with_span_knobs(span, mode);
            let (_, report) = Driver::record(&scenario, 42);
            let fleet = &report.fleet;
            assert_eq!(fleet.jobs_completed, base.fleet.jobs_completed, "span {span} {mode:?}");
            assert_eq!(fleet.jobs_cancelled, base.fleet.jobs_cancelled, "span {span} {mode:?}");
            assert_eq!(
                fleet.iterations_executed, base.fleet.iterations_executed,
                "span {span} {mode:?}: every admitted search must run its exact budget"
            );
            assert_eq!(report.admitted, base.admitted, "span {span} {mode:?}");
        }
    }
}

/// The checkpoint-churn scenario loses exactly its checkpoint opt-outs
/// at the crash — and still replays bit-identically (both runs crash at
/// the same tick and lose the same jobs).
#[test]
fn checkpoint_churn_replays_through_the_crash() {
    let scenario = Scenario::by_name("checkpoint-churn").expect("catalog scenario");
    let (trace, recorded) = Driver::record(&scenario, 123);
    assert_eq!(recorded.crashes, 1);
    let replayed = Driver::replay(&Trace::from_bytes(&trace.to_bytes()).unwrap());
    assert_eq!(replayed.crashes, 1);
    assert_eq!(format!("{:?}", replayed.fleet), format!("{:?}", recorded.fleet));
}

/// The new LNS families crash and restore exactly like the rest of the
/// catalog: force a mid-run crash into the `lns-repair` and
/// `portfolio-race` scenarios and hold the crashed run to the same
/// bit-identical replay standard as `checkpoint-churn`.
#[test]
fn lns_scenarios_replay_through_a_forced_crash() {
    for mut scenario in
        [Scenario::by_name("lns-repair").unwrap(), Scenario::by_name("portfolio-race").unwrap()]
    {
        scenario.crash_at_tick = Some(9);
        let (trace, recorded) = Driver::record(&scenario, 77);
        assert_eq!(recorded.crashes, 1, "{}", scenario.name);
        let replayed = Driver::replay(&Trace::from_bytes(&trace.to_bytes()).unwrap());
        assert_eq!(replayed.crashes, 1, "{}", scenario.name);
        assert_eq!(
            format!("{:?}", replayed.fleet),
            format!("{:?}", recorded.fleet),
            "{} must replay bit-identically through the crash",
            scenario.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Preemption, fused-span length and launch mode are invisible to
    /// LNS and portfolio search results: for any quantum × span × mode,
    /// a scheduled destroy-and-repair job and a scheduled portfolio
    /// race both finish with exactly the best/iteration/eval trail of
    /// the unpreempted solo cursor.
    #[test]
    fn lns_results_are_invariant_under_quantum_span_and_mode(
        quantum in 1u64..=9,
        span in 1u64..=6,
        persistent in proptest::prelude::any::<bool>(),
        seed in 0u64..500,
    ) {
        use lnls::lns::{LnsSearch, PortfolioSearch};
        use lnls::prelude::{Knapsack, LnsJob, PortfolioJob, Qubo};
        use lnls::core::SearchCursor;

        let mode =
            if persistent { LaunchMode::PersistentSpan } else { LaunchMode::PerIteration };
        let mut fleet = Scheduler::with_uniform_fleet(
            2,
            DeviceSpec::gtx280(),
            SchedulerConfig {
                quantum_iters: Some(quantum),
                span_iters: span,
                launch_mode: mode,
                ..Default::default()
            },
        );

        let mut rng = StdRng::seed_from_u64(seed);
        let knap = Knapsack::random(&mut rng, 24, 10, 6);
        let knap_init = BitString::random(&mut rng, 24);
        let qubo = Qubo::random(&mut rng, 20, 7, 0.5);
        let qubo_init = BitString::random(&mut rng, 20);
        let lns_cfg = SearchConfig::budget(20).with_seed(seed).with_target(None);
        let race_cfg = SearchConfig::budget(24).with_seed(seed).with_target(None);

        let lns_handle = fleet.submit(
            LnsJob::new("lns", knap.clone(), LnsSearch::paper(lns_cfg.clone()), knap_init.clone())
                .with_launch_mode(mode),
        );
        let race_handle = fleet.submit(
            PortfolioJob::new(
                "race",
                qubo.clone(),
                PortfolioSearch::paper(race_cfg.clone()),
                qubo_init.clone(),
            )
            .with_launch_mode(mode),
        );
        fleet.run_until_idle();

        let solo_lns = LnsSearch::paper(lns_cfg).run(&knap, knap_init);
        let got = fleet.report(lns_handle).expect("done");
        let got = got.outcome.as_binary().expect("lns reports a SearchResult");
        prop_assert_eq!(&got.best, &solo_lns.best);
        prop_assert_eq!(got.best_fitness, solo_lns.best_fitness);
        prop_assert_eq!(got.iterations, solo_lns.iterations);
        prop_assert_eq!(got.evals, solo_lns.evals);

        let mut solo_race = PortfolioSearch::paper(race_cfg).cursor(&qubo, qubo_init);
        solo_race.step_batch(&qubo, u64::MAX);
        let report = fleet.report(race_handle).expect("done");
        let detail: &lnls::lns::PortfolioOutcome =
            report.outcome.detail().expect("portfolio attaches its race outcome");
        prop_assert_eq!(detail, &solo_race.outcome());
        prop_assert_eq!(report.outcome.best_fitness(), solo_race.best());
    }
}
