//! The true-parallel runtime's external contracts, held through the
//! facade:
//!
//! * **Bit-identity** — every catalog scenario, recorded at every
//!   worker count in `LNLS_WORKERS` (default `1,2,4,8`), produces a
//!   Debug-bit-identical merged `FleetReport` *and* byte-identical
//!   trace bytes versus the serial driver path. Worker threads are an
//!   execution detail; nothing observable may depend on them.
//! * **Closed-loop shed storms** — completion-gated recording under a
//!   per-shard in-flight bound sheds deterministically: reject counts,
//!   the tick-stamped retry schedule and the final report are the same
//!   at any worker count.
//! * **Crash + delta restore** — killing every worker mid-run (the
//!   fleet drops, all threads join) and restoring from the per-shard
//!   delta chains lands on the uninterrupted run's bits, limiter sheds
//!   included.
//! * **Typed restore errors under concurrency** — a truncated newest
//!   delta in one shard's chain surfaces as
//!   [`CheckpointError::CorruptSegment`] naming the exact file, from
//!   the coordinator, before any worker is involved. Never a panic,
//!   never a hung barrier.

use lnls::core::{BitString, SearchConfig, TabuSearch};
use lnls::neighborhood::{Neighborhood, TwoHamming};
use lnls::prelude::{
    AdmissionPolicy, BinaryJob, CheckpointError, DeviceSpec, Driver, JobHandle, JobRegistry,
    JobSpec, JobStatus, MultiDevice, OneMax, ParallelFleet, Scenario, SchedulerConfig, ShardConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::fs;
use std::path::PathBuf;

/// Worker counts under test: the `LNLS_WORKERS` env var as a comma
/// list (the CI matrix sets `1`, `4`, `8`), defaulting to `1,2,4,8`.
fn worker_counts() -> Vec<usize> {
    std::env::var("LNLS_WORKERS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&w: &usize| w >= 1)
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// For any seed, every catalog scenario recorded at every worker
    /// count produces the serial path's `FleetReport` bit for bit, the
    /// serial tick/admission counters, and byte-identical trace bytes.
    /// Covers the sharded scenarios (real barriers), the crash
    /// stressor (`checkpoint-churn` restores mid-run on the parallel
    /// loop too) and the 1-shard degenerate case.
    #[test]
    fn every_worker_count_matches_the_serial_bits(seed in 0u64..500) {
        for scenario in Scenario::catalog() {
            let (trace, serial) = Driver::record(&scenario, seed);
            let serial_report = format!("{:?}", serial.fleet);
            for &workers in &worker_counts() {
                let par_scenario = scenario.clone().with_workers(workers);
                let (par_trace, par) = Driver::record(&par_scenario, seed);
                prop_assert_eq!(
                    par_trace.to_bytes(),
                    trace.to_bytes(),
                    "scenario '{}' seed {seed}: {workers} workers must record identical \
                     trace bytes",
                    &scenario.name
                );
                prop_assert_eq!(
                    format!("{:?}", par.fleet),
                    serial_report.clone(),
                    "scenario '{}' seed {seed}: {workers} workers must reproduce the serial \
                     report bits",
                    &scenario.name
                );
                prop_assert_eq!(
                    (par.ticks, par.admitted, par.bounced, par.crashes),
                    (serial.ticks, serial.admitted, serial.bounced, serial.crashes),
                    "scenario '{}' seed {seed}: {workers} workers must keep the driver \
                     counters",
                    &scenario.name
                );
            }
        }
    }
}

/// Closed-loop recording runs *on* the parallel runtime at the
/// scenario's worker count, so recording the same scenario at different
/// counts exercises the limiter under real concurrency. Shed counts,
/// the stamped retry schedule (trace bytes) and the report must not
/// move.
#[test]
fn closed_loop_shed_storm_is_worker_independent() {
    let base = Scenario::closed_loop_saturation();
    let (trace_1, serial) = Driver::record(&base.clone().with_workers(1), 21);
    assert!(serial.bounced > 0, "the storm must shed at the in-flight bound: {serial}");
    for &workers in &worker_counts() {
        let (trace_w, par) = Driver::record(&base.clone().with_workers(workers), 21);
        assert_eq!(
            trace_w.to_bytes(),
            trace_1.to_bytes(),
            "{workers} workers: the attempt schedule (sheds included) must be identical"
        );
        assert_eq!(par.bounced, serial.bounced, "{workers} workers: same reject count");
        assert_eq!(
            format!("{:?}", par.fleet),
            format!("{:?}", serial.fleet),
            "{workers} workers: same report bits"
        );
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lnls-parfleet-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn onemax_spec(i: u64) -> JobSpec<BinaryJob<OneMax, TwoHamming>> {
    let n = 24;
    let hood = TwoHamming::new(n);
    let mut rng = StdRng::seed_from_u64(i);
    let init = BitString::random(&mut rng, n);
    let search =
        TabuSearch::paper(SearchConfig::budget(60).with_seed(i).with_target(None), hood.size());
    let job = BinaryJob::new(format!("loop-{i}"), OneMax::new(n), hood, search, init);
    JobSpec::new(job).for_tenant(format!("tenant-{}", i % 5))
}

/// A parallel fleet with telemetry off (series are not checkpointed,
/// so only a sampling-free fleet can land on an uninterrupted run's
/// bits after a crash) and a tight per-shard in-flight bound.
fn plain_fleet(shards: usize, workers: usize) -> ParallelFleet {
    let mut fleet = ParallelFleet::new(
        ShardConfig::current(),
        AdmissionPolicy::unbounded(),
        shards,
        workers,
        SchedulerConfig { quantum_iters: Some(8), max_batch: 4, ..Default::default() },
        |_| MultiDevice::new_uniform(1, DeviceSpec::gtx280()),
    );
    for i in 0..fleet.shard_count() {
        fleet.shard_mut(i).set_inflight_limit(Some(1));
    }
    fleet
}

/// Drive `fleet` closed-loop: five logical clients, one job in flight
/// each, shed submissions retried two ticks later. With `crash_at`
/// set, the fleet snapshots every tick into its per-shard delta
/// chains; at that tick it is dropped — every worker thread joins and
/// dies — and restored from the chains with the pre-crash shed counts
/// carried over. Returns the surviving fleet and the driver tick
/// count.
fn closed_loop_drive(mut fleet: ParallelFleet, crash_at: Option<u64>) -> (ParallelFleet, u64) {
    const JOBS: u64 = 12;
    const CLIENTS: usize = 5;
    let registry = JobRegistry::with_builtin();
    let mut fresh: VecDeque<u64> = (0..JOBS).collect();
    let mut retries: VecDeque<(u64, u64)> = VecDeque::new();
    let mut inflight: Vec<JobHandle> = Vec::new();
    let mut ticks = 0u64;
    let mut armed = crash_at.is_some();
    loop {
        let backing_off = retries.iter().filter(|(due, _)| *due > ticks).count();
        let mut free = CLIENTS.saturating_sub(inflight.len() + backing_off);
        while free > 0 {
            let i = if retries.front().is_some_and(|(due, _)| *due <= ticks) {
                retries.pop_front().expect("front checked").1
            } else if let Some(i) = fresh.pop_front() {
                i
            } else {
                break;
            };
            free -= 1;
            match fleet.submit_spec(onemax_spec(i)) {
                Ok((_, handle)) => inflight.push(handle),
                Err(_) => retries.push_back((ticks + 2, i)),
            }
        }
        let progressed = fleet.tick();
        ticks += 1;
        if armed {
            fleet.snapshot().expect("snapshots under load succeed");
        }
        if crash_at == Some(ticks) {
            armed = false;
            let sheds: Vec<u64> =
                (0..fleet.shard_count()).map(|i| fleet.shard(i).rejected_submissions()).collect();
            let workers = fleet.worker_count();
            let shards = fleet.shard_count();
            let dir = fleet.checkpoint_dir().expect("crashing runs are armed").to_path_buf();
            // The crash: dropping the fleet joins (kills) every worker.
            drop(fleet);
            fleet = ParallelFleet::restore(
                ShardConfig::current(),
                AdmissionPolicy::unbounded(),
                &dir,
                &registry,
                ticks,
                &sheds,
                workers,
            )
            .expect("intact chains restore");
            for i in 0..shards {
                fleet.shard_mut(i).set_inflight_limit(Some(1));
            }
        }
        inflight.retain(|&h| matches!(fleet.status(h), JobStatus::Queued | JobStatus::Running));
        if !progressed && fresh.is_empty() && retries.is_empty() && inflight.is_empty() {
            break;
        }
    }
    (fleet, ticks)
}

/// Crash every worker mid-run under closed-loop saturation and restore
/// from the per-shard delta chains: the run must finish on the
/// uninterrupted run's bits — shed counts (carried across the crash)
/// included.
#[test]
fn crashing_every_worker_restores_onto_the_uninterrupted_bits() {
    let (want, want_ticks) = closed_loop_drive(plain_fleet(3, 3), None);
    let want_sheds: u64 = (0..3).map(|i| want.shard(i).rejected_submissions()).sum();
    assert!(want_sheds > 0, "five clients over in-flight-1 shards must shed");

    let dir = tmp_dir("crash");
    let armed = plain_fleet(3, 3).with_checkpoint_dir(&dir, 4).expect("chains arm");
    let (got, got_ticks) = closed_loop_drive(armed, Some(6));
    assert_eq!(
        format!("{:?}", got.fleet_report()),
        format!("{:?}", want.fleet_report()),
        "a crashed-and-restored run must land on the uninterrupted bits"
    );
    assert_eq!(got_ticks, want_ticks, "the crash must not change the tick count");
    let _ = fs::remove_dir_all(&dir);
}

/// A truncated newest delta in one shard's chain must fail
/// [`ParallelFleet::restore`] with a typed error naming the exact
/// segment file — diagnosed on the coordinator before any worker
/// thread exists, so it can neither panic a worker nor hang a barrier.
#[test]
fn a_truncated_shard_delta_fails_restore_naming_the_file() {
    let dir = tmp_dir("corrupt");
    let mut fleet = plain_fleet(2, 2).with_checkpoint_dir(&dir, 8).expect("chains arm");
    for i in 0..10 {
        let _ = fleet.submit_spec(onemax_spec(i));
    }
    fleet.snapshot().expect("base snapshot");
    for _ in 0..3 {
        fleet.tick();
        fleet.snapshot().expect("delta snapshot");
    }
    let ticks = fleet.ticks();
    drop(fleet);

    // Truncate the *newest* delta of shard 001's chain.
    let shard1 = dir.join("shard-001");
    let mut deltas: Vec<String> = fs::read_dir(&shard1)
        .expect("shard chain dir lists")
        .map(|e| e.expect("entry").file_name().into_string().expect("utf8 name"))
        .filter(|n| n.starts_with("delta-"))
        .collect();
    deltas.sort();
    let newest = deltas.last().expect("the chain has deltas").clone();
    let path = shard1.join(&newest);
    let bytes = fs::read(&path).expect("read the delta");
    fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate the delta");

    let registry = JobRegistry::with_builtin();
    let err = match ParallelFleet::restore(
        ShardConfig::current(),
        AdmissionPolicy::unbounded(),
        &dir,
        &registry,
        ticks,
        &[0, 0],
        2,
    ) {
        Ok(_) => panic!("a truncated chain must not restore"),
        Err(e) => e,
    };
    match err {
        CheckpointError::CorruptSegment { segment, .. } => {
            assert!(
                segment.contains("shard-001") && segment.ends_with(newest.as_str()),
                "the error must name shard-001's '{newest}', got '{segment}'"
            );
        }
        other => panic!("expected CorruptSegment, got: {other}"),
    }
    let _ = fs::remove_dir_all(&dir);
}
