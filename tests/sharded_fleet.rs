//! The sharding layer's external contracts, held through the facade:
//!
//! * **Degeneracy** — a 1-shard [`ShardedFleet`] driven over any catalog
//!   scenario's trace is Debug-bit-identical to the bare scheduler path
//!   the driver takes for unsharded profiles. Sharding must be a pure
//!   superset, not a parallel implementation that drifts.
//! * **Config versioning** — a trace recorded under config v1 replays
//!   deterministically under v1 ring/steal semantics, and those
//!   semantics observably differ from v2's.
//! * **Typed chain errors** — a delta chain missing its base, missing a
//!   middle delta, or holding a truncated segment is refused with a
//!   [`CheckpointError`] naming the exact segment, never a panic or a
//!   silently wrong restore.

use lnls::core::{BitString, SearchConfig, TabuSearch};
use lnls::neighborhood::{Neighborhood, TwoHamming};
use lnls::prelude::{
    BinaryJob, CheckpointError, CheckpointStore, DeltaCheckpointer, DeviceSpec, Driver,
    FleetReport, HashRing, JobRegistry, MultiDevice, OneMax, Scenario, Scheduler, SchedulerConfig,
    ShardConfig, ShardedFleet, SnapshotKind, Trace,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::path::{Path, PathBuf};

/// Run a lowered trace through a **1-shard** `ShardedFleet` with the
/// exact loop shape the driver uses, returning the fleet report. The
/// driver itself routes 1-shard profiles down the bare path, so this
/// hand loop is the only way to pit the sharded machinery against it.
fn run_on_one_shard(trace: &Trace) -> FleetReport {
    let cfg = ShardConfig::for_version(trace.fleet.config_version).expect("catalog version");
    let spec = DeviceSpec::gtx280().with_engines(trace.fleet.engines);
    let template = SchedulerConfig {
        cpu_workers: trace.fleet.cpu_workers,
        max_batch: trace.fleet.max_batch,
        quantum_iters: trace.fleet.quantum_iters,
        telemetry_every_ticks: Some(trace.fleet.telemetry_every_ticks),
        telemetry_max_samples: trace.fleet.telemetry_max_samples,
        selection: trace.fleet.selection,
        span_iters: trace.fleet.span_iters,
        launch_mode: trace.fleet.launch_mode,
        ..Default::default()
    };
    let mut fleet = ShardedFleet::new(cfg, trace.admission.clone(), 1, template, move |_| {
        MultiDevice::new_uniform(trace.fleet.devices, spec.clone())
    });
    let mut next = 0usize;
    loop {
        while let Some(arrival) = trace.arrivals.get(next) {
            let target = fleet.shard_for(&arrival.tenant);
            let due = arrival.at_s <= fleet.shard(target).scheduler().now_s()
                || (fleet.queued_len() == 0 && fleet.running_len() == 0);
            if !due {
                break;
            }
            let _ = arrival.submit(fleet.shard_mut(target));
            next += 1;
        }
        let progressed = fleet.tick();
        if !progressed && next >= trace.arrivals.len() {
            break;
        }
    }
    fleet.fleet_report()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For every catalog scenario and any seed, a 1-shard sharded fleet
    /// produces the same `FleetReport` — bit for bit, every f64 through
    /// its exact Debug rendering — as the driver's bare scheduler path.
    #[test]
    fn one_shard_fleet_is_bit_identical_to_the_bare_path(
        scenario_idx in 0usize..9,
        seed in 0u64..500,
    ) {
        let mut scenario = Scenario::catalog()[scenario_idx].clone();
        scenario.fleet.shards = 1; // force the driver down the bare path
        scenario.crash_at_tick = None; // the hand loop has no crash machinery
        let (trace, bare) = Driver::record(&scenario, seed);
        let sharded = run_on_one_shard(&trace);
        prop_assert_eq!(
            format!("{:?}", sharded),
            format!("{:?}", bare.fleet),
            "scenario '{}' seed {}: one shard must be a bare scheduler, bit for bit",
            scenario.name,
            seed
        );
    }
}

/// A trace recorded under config v1 keeps v1 semantics on replay —
/// bit-identically — and those semantics are observably different from
/// v2's (the ring places at least one of the scenario's tenants on a
/// different shard).
#[test]
fn traces_recorded_under_v1_replay_with_v1_semantics() {
    let mut scenario = Scenario::saturation_sharded();
    scenario.fleet.config_version = 1;
    let (trace, recorded) = Driver::record(&scenario, 17);

    let reloaded = Trace::from_bytes(&trace.to_bytes()).expect("v1 traces round-trip");
    assert_eq!(reloaded.fleet.config_version, 1, "the trace must carry its recorded version");
    let replayed = Driver::replay(&reloaded);
    assert_eq!(
        format!("{:?}", recorded.fleet),
        format!("{:?}", replayed.fleet),
        "a v1 trace must replay bit-identically under v1 semantics"
    );

    // The versions genuinely differ: v1's sparser ring routes at least
    // one of this scenario's tenants to a different shard than v2's.
    let v1 = ShardConfig::for_version(1).unwrap();
    let v2 = ShardConfig::for_version(2).unwrap();
    let ring_v1 = HashRing::new(scenario.fleet.shards, v1.ring_replicas);
    let ring_v2 = HashRing::new(scenario.fleet.shards, v2.ring_replicas);
    let moved =
        trace.arrivals.iter().any(|a| ring_v1.shard_for(&a.tenant) != ring_v2.shard_for(&a.tenant));
    assert!(moved, "v1 and v2 rings must place this tenant set differently");
}

fn onemax_job(name: &str, seed: u64) -> BinaryJob<OneMax, TwoHamming> {
    let n = 24;
    let hood = TwoHamming::new(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let init = BitString::random(&mut rng, n);
    let search =
        TabuSearch::paper(SearchConfig::budget(60).with_seed(seed).with_target(None), hood.size());
    BinaryJob::new(name, OneMax::new(n), hood, search, init)
}

/// Write a base + several deltas into `dir` (jobs still in flight, so
/// every delta is non-trivial) and return the segment file names.
fn build_chain(dir: &Path) -> Vec<String> {
    let mut fleet = Scheduler::with_uniform_fleet(
        1,
        DeviceSpec::gtx280(),
        SchedulerConfig { max_batch: 2, quantum_iters: Some(8), ..Default::default() },
    );
    for i in 0..6 {
        fleet.submit(onemax_job(&format!("chain-{i}"), i));
    }
    let mut ckpt = DeltaCheckpointer::open(dir, 8).expect("store opens");
    let first = ckpt.snapshot(&fleet).expect("base writes");
    assert_eq!(first.kind, SnapshotKind::Base);
    for _ in 0..3 {
        fleet.tick();
        let stats = ckpt.snapshot(&fleet).expect("delta writes");
        assert_eq!(stats.kind, SnapshotKind::Delta);
        assert!(stats.dirty_jobs > 0, "in-flight jobs must dirty every delta");
    }
    let mut names: Vec<String> = fs::read_dir(dir)
        .expect("chain dir lists")
        .map(|e| e.expect("entry").file_name().into_string().expect("utf8 name"))
        .collect();
    names.sort();
    assert_eq!(names.len(), 4, "one base and three deltas: {names:?}");
    names
}

/// `FleetCheckpoint` carries live job state and has no `Debug`, so
/// `expect_err` cannot unwrap the chain-load result directly.
fn load_err(dir: &Path, registry: &JobRegistry) -> CheckpointError {
    match CheckpointStore::open(dir).expect("store opens").load_latest(registry) {
        Ok(_) => panic!("a broken chain must not load"),
        Err(e) => e,
    }
}

fn chain_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lnls-chain-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn a_chain_missing_its_base_is_refused_by_name() {
    let dir = chain_dir("missing-base");
    let names = build_chain(&dir);
    let base = names.iter().find(|n| n.starts_with("base-")).expect("a base segment");
    fs::remove_file(dir.join(base)).expect("delete the base");

    let registry = JobRegistry::with_builtin();
    let err = load_err(&dir, &registry);
    match err {
        CheckpointError::MissingBase { segment } => {
            assert!(segment.ends_with(base), "the error must name '{base}', got '{segment}'");
        }
        other => panic!("expected MissingBase, got: {other}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_chain_with_a_hole_names_the_missing_delta() {
    let dir = chain_dir("missing-delta");
    let names = build_chain(&dir);
    // Delete the *middle* delta; the later one keeps the chain "longer
    // than" the hole, which is what makes it a hole and not a tail.
    let middle = names.iter().filter(|n| n.starts_with("delta-")).nth(1).expect("a middle delta");
    fs::remove_file(dir.join(middle)).expect("delete the middle delta");

    let registry = JobRegistry::with_builtin();
    let err = load_err(&dir, &registry);
    match err {
        CheckpointError::MissingDelta { segment, epoch, index } => {
            assert!(segment.ends_with(middle), "must name '{middle}', got '{segment}'");
            assert_eq!((epoch, index), (1, 2), "the first chain epoch, second delta");
        }
        other => panic!("expected MissingDelta, got: {other}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_truncated_delta_is_reported_corrupt_with_its_name() {
    let dir = chain_dir("truncated");
    let names = build_chain(&dir);
    let last = names.iter().rfind(|n| n.starts_with("delta-")).expect("a delta");
    let path = dir.join(last);
    let bytes = fs::read(&path).expect("read the delta");
    fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate the delta");

    let registry = JobRegistry::with_builtin();
    let err = load_err(&dir, &registry);
    match err {
        CheckpointError::CorruptSegment { segment, .. } => {
            assert!(segment.ends_with(last.as_str()), "must name '{last}', got '{segment}'");
        }
        other => panic!("expected CorruptSegment, got: {other}"),
    }
    // An intact chain in the same store layout still loads fine.
    fs::write(&path, &bytes).expect("restore the delta");
    assert!(
        CheckpointStore::open(&dir).expect("store opens").load_latest(&registry).is_ok(),
        "the repaired chain loads"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// A chain whose *newest* segment is a base — a crash right after an
/// epoch rotation, before any delta followed it — must reproduce the
/// running jobs from the base's own active slots. (The chain replay
/// once materialized active state only from delta segments, silently
/// dropping every in-flight job of a base-terminated chain.)
#[test]
fn a_base_terminated_chain_keeps_running_jobs() {
    let dir = chain_dir("base-tail");
    let mut fleet = Scheduler::with_uniform_fleet(
        1,
        DeviceSpec::gtx280(),
        SchedulerConfig { max_batch: 2, quantum_iters: Some(8), ..Default::default() },
    );
    for i in 0..4 {
        fleet.submit(onemax_job(&format!("chain-{i}"), i));
    }
    fleet.tick();
    assert!(fleet.running_len() > 0, "the base must capture jobs mid-flight");

    let mut ckpt = DeltaCheckpointer::open(&dir, 8).expect("store opens");
    assert_eq!(ckpt.snapshot(&fleet).expect("base writes").kind, SnapshotKind::Base);

    let registry = JobRegistry::with_builtin();
    let loaded = CheckpointStore::open(&dir)
        .expect("store opens")
        .load_latest(&registry)
        .expect("base-terminated chains load");
    let mut restored = Scheduler::restore(loaded);
    assert_eq!(
        (restored.running_len(), restored.queued_len()),
        (fleet.running_len(), fleet.queued_len()),
        "running and queued jobs must survive a base-terminated chain"
    );
    while fleet.tick() {}
    while restored.tick() {}
    assert_eq!(
        format!("{:?}", restored.fleet_report()),
        format!("{:?}", fleet.fleet_report()),
        "the restored run must finish on the original run's bits"
    );
    let _ = fs::remove_dir_all(&dir);
}
