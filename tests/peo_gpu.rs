//! The ParadisEO-style layer driving the simulated-GPU backend: the
//! white-box loop must take exactly the same walk on the device as on
//! the host, and its observers must see the device's time ledger.

use lnls::core::peo::{Acceptance, FitnessTrace, MaxIterations, PeoSearch, TimeBudget};
use lnls::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

#[test]
fn peo_walk_identical_on_gpu_and_cpu_backends() {
    let (m, n) = (25, 25);
    let instance = PppInstance::generate(m, n, 42);
    let problem = Ppp::new(instance);
    let mut rng = StdRng::seed_from_u64(42);
    let init = BitString::random(&mut rng, n);

    let mut cpu_trace = FitnessTrace::default();
    let mut cpu_ex = SequentialExplorer::new(TwoHamming::new(n));
    let r_cpu = PeoSearch::new(Acceptance::Always)
        .stop_when(MaxIterations(25))
        .observe(&mut cpu_trace)
        .run(&problem, &mut cpu_ex, init.clone());

    let mut gpu_trace = FitnessTrace::default();
    let mut gpu_ex = PppGpuExplorer::new(&problem, 2, GpuExplorerConfig::default());
    let r_gpu = PeoSearch::new(Acceptance::Always)
        .stop_when(MaxIterations(25))
        .observe(&mut gpu_trace)
        .run(&problem, &mut gpu_ex, init);

    assert_eq!(r_cpu.best, r_gpu.best);
    assert_eq!(r_cpu.best_fitness, r_gpu.best_fitness);
    assert_eq!(cpu_trace.current, gpu_trace.current, "step-for-step identical walks");
    // Only the GPU run carries a priced ledger.
    assert!(r_cpu.book.is_none());
    let book = r_gpu.book.expect("gpu ledger");
    assert_eq!(book.launches, 25);
}

#[test]
fn time_budget_continuator_stops_gpu_runs() {
    let (m, n) = (41, 41);
    let problem = Ppp::new(PppInstance::generate(m, n, 7));
    let mut rng = StdRng::seed_from_u64(7);
    let init = BitString::random(&mut rng, n);
    let mut ex = PppGpuExplorer::new(&problem, 2, GpuExplorerConfig::default());
    let r = PeoSearch::new(Acceptance::Always)
        .stop_when(TimeBudget(Duration::from_millis(200)))
        .stop_when(MaxIterations(1_000_000))
        .run(&problem, &mut ex, init);
    assert!(r.wall < Duration::from_secs(30), "budget must bound the run");
    assert!(r.iterations > 0, "must have made progress before stopping");
}
