//! Integration test of the runtime subsystem through the facade: a mixed
//! batch of PPP, OneMax and QAP jobs scheduled across two simulated
//! devices must all complete, return bit-identical results to solo runs,
//! and finish in less simulated time than the serialized sum.

use lnls::core::{BitString, SearchConfig, SequentialExplorer, TabuSearch};
use lnls::gpu::{DeviceSpec, MultiDevice};
use lnls::neighborhood::{KHamming, Neighborhood, TwoHamming};
use lnls::ppp::{Ppp, PppInstance};
use lnls::prelude::{
    BinaryJob, JobStatus, OneMax, QapInstance, QapJobSpec, RobustTabu, RtsConfig, Scheduler,
    SchedulerConfig, TableEvaluator,
};
use lnls::qap::Permutation;
use rand::rngs::StdRng;
use rand::SeedableRng;

const PPP_M: usize = 25;
const PPP_N: usize = 25;
const ONEMAX_N: usize = 24;
const QAP_N: usize = 8;
const ITERS: u64 = 25;

fn ppp_job(seed: u64) -> BinaryJob<Ppp, KHamming> {
    let problem = Ppp::new(PppInstance::generate(PPP_M, PPP_N, seed));
    let hood = KHamming::new(PPP_N, 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let init = BitString::random(&mut rng, PPP_N);
    let search = TabuSearch::paper(SearchConfig::budget(ITERS).with_seed(seed), hood.size());
    BinaryJob::new(format!("ppp-{seed}"), problem, hood, search, init)
}

fn onemax_job(seed: u64) -> BinaryJob<OneMax, TwoHamming> {
    let hood = TwoHamming::new(ONEMAX_N);
    let mut rng = StdRng::seed_from_u64(seed);
    let init = BitString::random(&mut rng, ONEMAX_N);
    let search = TabuSearch::paper(SearchConfig::budget(ITERS).with_seed(seed), hood.size());
    BinaryJob::new(format!("onemax-{seed}"), OneMax::new(ONEMAX_N), hood, search, init)
}

fn qap_parts(seed: u64) -> (QapInstance, RtsConfig, Permutation) {
    let mut rng = StdRng::seed_from_u64(seed);
    let inst = QapInstance::random_uniform(&mut rng, QAP_N);
    let init = Permutation::random(&mut rng, QAP_N);
    (inst, RtsConfig::budget(ITERS).with_seed(seed), init)
}

#[test]
fn mixed_fleet_completes_and_matches_solo_runs() {
    let mut fleet = Scheduler::new(
        MultiDevice::new_uniform(2, DeviceSpec::gtx280()),
        SchedulerConfig::default(),
    );

    let ppp_handles: Vec<_> = (0..3).map(|i| fleet.submit(ppp_job(10 + i))).collect();
    let onemax_handles: Vec<_> = (0..3).map(|i| fleet.submit(onemax_job(20 + i))).collect();
    let qap_handles: Vec<_> = (0..2)
        .map(|i| {
            let (inst, cfg, init) = qap_parts(30 + i);
            fleet.submit(QapJobSpec::new(format!("qap-{i}"), inst, cfg, init))
        })
        .collect();

    fleet.run_until_idle();
    let report = fleet.fleet_report();

    // Everything completed.
    assert_eq!(report.jobs_completed, 8);
    for h in ppp_handles.iter().chain(&onemax_handles).chain(&qap_handles) {
        assert_eq!(fleet.status(*h), JobStatus::Done);
    }

    // Fleet results are bit-identical to solo runs of the same jobs.
    for (i, h) in ppp_handles.iter().enumerate() {
        let seed = 10 + i as u64;
        let job = ppp_job(seed);
        let mut ex = SequentialExplorer::new(job.hood);
        let want = job.search.run(&job.problem, &mut ex, job.init);
        let got = fleet.report(*h).unwrap().outcome.as_binary().unwrap();
        assert_eq!(got.best, want.best, "ppp job {i}");
        assert_eq!(got.best_fitness, want.best_fitness, "ppp job {i}");
        assert_eq!(got.iterations, want.iterations, "ppp job {i}");
    }
    for (i, h) in onemax_handles.iter().enumerate() {
        let seed = 20 + i as u64;
        let job = onemax_job(seed);
        let mut ex = SequentialExplorer::new(job.hood);
        let want = job.search.run(&job.problem, &mut ex, job.init);
        let got = fleet.report(*h).unwrap().outcome.as_binary().unwrap();
        assert_eq!(got.best, want.best, "onemax job {i}");
        assert_eq!(got.best_fitness, want.best_fitness, "onemax job {i}");
        assert_eq!(got.iterations, want.iterations, "onemax job {i}");
    }
    for (i, h) in qap_handles.iter().enumerate() {
        let (inst, cfg, init) = qap_parts(30 + i as u64);
        let mut eval = TableEvaluator::new();
        let want = RobustTabu::new(cfg).run(&inst, &mut eval, init);
        let got = fleet.report(*h).unwrap().outcome.as_qap().unwrap();
        assert_eq!(got.best.as_slice(), want.best.as_slice(), "qap job {i}");
        assert_eq!(got.best_cost, want.best_cost, "qap job {i}");
        assert_eq!(got.iterations, want.iterations, "qap job {i}");
    }

    // Both devices worked, and the fleet beat the serialized baseline.
    assert!(report.device_busy_s.iter().all(|&b| b > 0.0), "{:?}", report.device_busy_s);
    assert!(
        report.makespan_s < report.serialized_s,
        "fleet makespan {} must beat serialized sum {}",
        report.makespan_s,
        report.serialized_s
    );
    assert!(report.speedup_vs_serial > 1.0);

    // Same-family jobs fused at least once.
    assert!(report.fused_launches > 0, "PPP/OneMax triplets share batch keys");
}

/// A QAP job is now a steppable cursor: it can be captured *mid-run*
/// (not just while queued), revived, and still land on exactly the solo
/// result — the ROADMAP's "steppable QAP driver" item, end to end.
#[test]
fn qap_jobs_checkpoint_mid_run_and_resume_exactly() {
    let mut fleet = Scheduler::new(
        MultiDevice::new_uniform(1, DeviceSpec::gtx280()),
        SchedulerConfig { quantum_iters: Some(6), ..Default::default() },
    );
    let (inst, cfg, init) = qap_parts(42);
    let long_cfg = RtsConfig::budget(200).with_seed(cfg.seed);
    let h = fleet.submit(QapJobSpec::new("qap-long", inst.clone(), long_cfg.clone(), init.clone()));

    // Step a few slices: the job must be in flight, partway through.
    for _ in 0..3 {
        fleet.tick();
    }
    assert_eq!(fleet.status(h), JobStatus::Running);
    let checkpoint = fleet.checkpoint();
    assert_eq!(checkpoint.in_flight_jobs(), 1, "QAP cursor captured mid-run");
    drop(fleet);

    let mut resumed = Scheduler::restore(checkpoint);
    let report = resumed.await_report(h).outcome.clone();
    let want = RobustTabu::new(long_cfg).run(&inst, &mut TableEvaluator::new(), init);
    let got = report.as_qap().expect("qap outcome");
    assert_eq!(got.best.as_slice(), want.best.as_slice());
    assert_eq!(got.best_cost, want.best_cost);
    assert_eq!(got.iterations, want.iterations);
}

#[test]
fn fleet_report_prints() {
    let mut fleet = Scheduler::new(
        MultiDevice::new_uniform(2, DeviceSpec::gtx280()),
        SchedulerConfig::default(),
    );
    for i in 0..2 {
        fleet.submit(onemax_job(i));
    }
    fleet.run_until_idle();
    let text = fleet.fleet_report().to_string();
    assert!(text.contains("makespan"), "{text}");
    assert!(text.contains("dev0"), "{text}");
    assert!(text.contains("dev1"), "{text}");
}
