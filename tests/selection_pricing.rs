//! The pricing-only invariant of the two new fleet knobs: engine layout
//! (stream overlap) and selection mode (on-device argmin) change what
//! the simulator *charges*, never what the searches *compute*.
//!
//! `DeviceArgmin` must leave every job's best solution, fitness and
//! iteration count bit-identical to `HostArgmin` while cutting the
//! modeled D2H traffic per iteration by ≥ 10× at `m ≥ 1024`; a Fermi
//! engine layout must leave results bit-identical to GT200 while pricing
//! a fused-batch makespan strictly below the serial sum.

use lnls::prelude::*;
use lnls::{core::SearchConfig, core::TabuSearch, gpu::DeviceSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// 2-Hamming on 46 bits: m = C(46,2) = 1035 ≥ 1024 moves.
const DIM: usize = 46;

fn job(i: u64, iters: u64) -> BinaryJob<OneMax, KHamming> {
    let hood = KHamming::new(DIM, 2);
    let mut rng = StdRng::seed_from_u64(i);
    let init = BitString::random(&mut rng, DIM);
    let search =
        TabuSearch::paper(SearchConfig::budget(iters).with_seed(i).with_target(None), hood.size());
    BinaryJob::new(format!("tabu-{i}"), OneMax::new(DIM), hood, search, init)
}

fn run_fleet(
    selection: SelectionMode,
    engines: EngineConfig,
) -> (Vec<(BitString, i64, u64)>, FleetReport) {
    let mut fleet = Scheduler::with_uniform_fleet(
        1,
        DeviceSpec::gtx280().with_engines(engines),
        SchedulerConfig { max_batch: 4, quantum_iters: Some(4), selection, ..Default::default() },
    );
    let handles: Vec<_> = (0..4).map(|i| fleet.submit(job(i, 25))).collect();
    fleet.run_until_idle();
    let outcomes = handles
        .iter()
        .map(|h| {
            let r = fleet.report(*h).expect("done").outcome.as_binary().expect("binary");
            (r.best.clone(), r.best_fitness, r.iterations)
        })
        .collect();
    (outcomes, fleet.fleet_report())
}

#[test]
fn device_argmin_is_pricing_only_and_cuts_d2h_10x() {
    let gt200 = EngineConfig::gt200();
    let (host_outcomes, host_report) = run_fleet(SelectionMode::HostArgmin, gt200);
    let (dev_outcomes, dev_report) = run_fleet(SelectionMode::DeviceArgmin, gt200);

    assert_eq!(
        host_outcomes, dev_outcomes,
        "DeviceArgmin must never change any job's best solution or fitness"
    );
    assert_eq!(host_report.iterations_executed, dev_report.iterations_executed);

    let host_d2h = host_report.d2h_bytes_per_iteration();
    let dev_d2h = dev_report.d2h_bytes_per_iteration();
    assert!(
        host_d2h >= 10.0 * dev_d2h,
        "m = 1035 ≥ 1024 must cut modeled D2H ≥ 10×: host {host_d2h} B/iter vs device {dev_d2h}"
    );
    // Uploads are untouched; the reduction costs extra launches.
    assert_eq!(host_report.fleet_book.bytes_h2d, dev_report.fleet_book.bytes_h2d);
    assert!(dev_report.fleet_book.launches > host_report.fleet_book.launches);
}

#[test]
fn per_job_selection_override_beats_the_fleet_default() {
    let mut fleet = Scheduler::with_uniform_fleet(
        1,
        DeviceSpec::gtx280(),
        SchedulerConfig { max_batch: 1, ..Default::default() },
    );
    // Fleet default HostArgmin; this job opts into the device reduction.
    let h = fleet.submit_spec(JobSpec::new(job(7, 10)).with_selection(SelectionMode::DeviceArgmin));
    fleet.run_until_idle();
    let report = fleet.fleet_report();
    let m = KHamming::new(DIM, 2).size();
    assert!(
        report.d2h_bytes_per_iteration() < m as f64 * 8.0 / 10.0,
        "the override must price argmin readbacks: {} B/iter",
        report.d2h_bytes_per_iteration()
    );
    assert!(fleet.report(h).expect("done").outcome.iterations() > 0);
}

#[test]
fn selection_override_holds_inside_a_mixed_fused_group() {
    // Three fleet-default (HostArgmin) jobs fused with one DeviceArgmin
    // override: the opted-in lane must keep its one-record readback even
    // though the group leader runs host-side selection.
    let run = |override_one: bool| {
        let mut fleet = Scheduler::with_uniform_fleet(
            1,
            DeviceSpec::gtx280(),
            SchedulerConfig { max_batch: 4, ..Default::default() },
        );
        for i in 0..4u64 {
            let spec = JobSpec::new(job(i, 12));
            let spec = if override_one && i == 3 {
                spec.with_selection(SelectionMode::DeviceArgmin)
            } else {
                spec
            };
            fleet.submit_spec(spec);
        }
        fleet.run_until_idle();
        let outcomes: Vec<i64> = fleet.reports().map(|r| r.outcome.best_fitness()).collect();
        (outcomes, fleet.fleet_report())
    };
    let (host_outcomes, host_report) = run(false);
    let (mixed_outcomes, mixed_report) = run(true);
    assert_eq!(host_outcomes, mixed_outcomes, "mixed selection is still pricing-only");
    assert!(host_report.fused_launches > 0, "the four jobs must fuse");
    let m = KHamming::new(DIM, 2).size();
    let saved = host_report.fleet_book.bytes_d2h - mixed_report.fleet_book.bytes_d2h;
    // Every fused iteration of the opted-in lane replaces an m·8-byte
    // array with one 8-byte record; at minimum its fused iterations
    // (12 each for the four equal-budget walks here) must show up.
    assert!(
        saved >= 12 * (m * 8 - 8),
        "the overridden lane must shrink its readbacks: saved only {saved} bytes"
    );
    assert!(
        mixed_report.fleet_book.launches > host_report.fleet_book.launches,
        "mixed groups price the extra argmin launch"
    );
}

#[test]
fn fermi_layout_is_pricing_only_and_overlaps_fused_batches() {
    let (gt_outcomes, gt_report) = run_fleet(SelectionMode::HostArgmin, EngineConfig::gt200());
    let (f_outcomes, f_report) = run_fleet(SelectionMode::HostArgmin, EngineConfig::fermi());

    assert_eq!(gt_outcomes, f_outcomes, "the engine layout must never change search results");

    // GT200: nothing inside a dependent fused iteration can overlap —
    // the makespan is exactly the serial sum of the scheduled ops.
    assert!((gt_report.stream_overlap_factor() - 1.0).abs() < 1e-9, "{}", {
        gt_report.stream_overlap_factor()
    });
    // Fermi: the fused 4-lane batches overlap per-lane copies, so the
    // charged makespan drops strictly below the serial sum.
    assert!(
        f_report.stream_overlap_factor() > 1.0 + 1e-9,
        "fermi fused batches must overlap: ×{}",
        f_report.stream_overlap_factor()
    );
    assert!(
        f_report.stream_makespan_s < f_report.stream_serialized_s,
        "fused makespan must beat the serial sum"
    );
    // Overlap shows up in the fleet clock too.
    assert!(f_report.makespan_s < gt_report.makespan_s);
}
