//! The mixed-radius union neighborhood (1H ∪ 2H ∪ 3H in one flat index
//! space) driven end-to-end through the explorers and the tabu search.

use lnls::core::hillclimb::HillClimbing;
use lnls::core::problem::{BinaryProblem, IncrementalEval};
use lnls::neighborhood::{FlipMove, KHamming, Neighborhood, UnionHamming};
use lnls::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A parity trap: fitness 0 at Hamming weight 3, 1 at weight 6, 5
/// otherwise. From weight 6, no 1- or 2-flip improves (weights 4,5,7,8
/// all cost 5); only a 3-flip jumps 6 → 3. A union neighborhood solves
/// it in one best-improvement step.
struct Trap {
    n: usize,
}

impl BinaryProblem for Trap {
    fn dim(&self) -> usize {
        self.n
    }
    fn evaluate(&self, s: &BitString) -> i64 {
        match s.count_ones() {
            3 => 0,
            6 => 1,
            _ => 5,
        }
    }
    fn target_fitness(&self) -> Option<i64> {
        Some(0)
    }
}

impl IncrementalEval for Trap {
    type State = u32;
    fn init_state(&self, s: &BitString) -> u32 {
        s.count_ones()
    }
    fn state_fitness(&self, w: &u32) -> i64 {
        match *w {
            3 => 0,
            6 => 1,
            _ => 5,
        }
    }
    fn neighbor_fitness(&self, w: &mut u32, s: &BitString, mv: &FlipMove) -> i64 {
        let mut ones = *w as i64;
        for &b in mv.bits() {
            ones += if s.get(b as usize) { -1 } else { 1 };
        }
        match ones {
            3 => 0,
            6 => 1,
            _ => 5,
        }
    }
    fn apply_move(&self, w: &mut u32, s: &BitString, mv: &FlipMove) {
        let mut ones = *w as i64;
        for &b in mv.bits() {
            ones += if s.get(b as usize) { -1 } else { 1 };
        }
        *w = ones as u32;
    }
}

fn weight6(n: usize) -> BitString {
    let mut s = BitString::zeros(n);
    for i in 0..6 {
        s.flip(i);
    }
    s
}

#[test]
fn union_explorer_matches_per_radius_segments() {
    // The union's fitness vector must equal the concatenation of the
    // per-k vectors, index for index.
    let n = 14;
    let p = Trap { n };
    let mut rng = StdRng::seed_from_u64(1);
    let s = BitString::random(&mut rng, n);
    let mut st = p.init_state(&s);

    let union = UnionHamming::ladder123(n);
    let mut ex = SequentialExplorer::new(union.clone());
    let mut got = Vec::new();
    Explorer::<Trap>::explore(&mut ex, &p, &s, &mut st, &mut got);

    let mut expect = Vec::new();
    for k in 1..=3usize {
        let mut exk = SequentialExplorer::new(KHamming::new(n, k));
        let mut part = Vec::new();
        Explorer::<Trap>::explore(&mut exk, &p, &s, &mut st, &mut part);
        expect.extend(part);
    }
    assert_eq!(got, expect);
    assert_eq!(got.len() as u64, union.size());
}

#[test]
fn parallel_union_explorer_agrees_with_sequential() {
    let n = 20; // C(20,3) = 1140 + 190 + 20 > 1024 → parallel path engages
    let p = Trap { n };
    let mut rng = StdRng::seed_from_u64(2);
    let s = BitString::random(&mut rng, n);
    let mut st = p.init_state(&s);
    let union = UnionHamming::ladder123(n);

    let mut seq = SequentialExplorer::new(union.clone());
    let mut par = ParallelCpuExplorer::new(union, 5);
    let (mut a, mut b) = (Vec::new(), Vec::new());
    Explorer::<Trap>::explore(&mut seq, &p, &s, &mut st, &mut a);
    Explorer::<Trap>::explore(&mut par, &p, &s, &mut st, &mut b);
    assert_eq!(a, b);
}

#[test]
fn union_hillclimb_escapes_what_single_radii_cannot() {
    let n = 12;
    let p = Trap { n };

    // 2-Hamming alone is stuck at weight 6 immediately.
    let mut ex2 = SequentialExplorer::new(KHamming::new(n, 2));
    let hc = HillClimbing::best(SearchConfig::budget(50));
    let stuck = hc.run(&p, &mut ex2, weight6(n));
    assert_eq!(stuck.best_fitness, 1, "2-Hamming must be trapped");
    assert_eq!(stuck.iterations, 0);

    // The union sees the 3-flip and solves in one move.
    let mut exu = SequentialExplorer::new(UnionHamming::ladder123(n));
    let solved = hc.run(&p, &mut exu, weight6(n));
    assert_eq!(solved.best_fitness, 0);
    assert_eq!(solved.iterations, 1);
    assert_eq!(solved.best.count_ones(), 3);
}

#[test]
fn union_tabu_runs_and_respects_move_indices() {
    // Tabu over the union: the MoveRing memory stores flat indices that
    // now span radii; a short run must stay consistent (fitness of the
    // final state equals a full re-evaluation).
    let n = 16;
    let p = Trap { n };
    let union = UnionHamming::ladder123(n);
    let mut ex = SequentialExplorer::new(union.clone());
    let search =
        TabuSearch::paper(SearchConfig::budget(30).with_seed(3), Neighborhood::size(&union));
    let r = search.run(&p, &mut ex, weight6(n));
    assert!(r.success, "tabu over the union must reach the optimum");
    assert_eq!(r.best_fitness, p.evaluate(&r.best));
}

#[test]
fn union_works_on_a_real_problem_too() {
    // Max-Cut on a ring: the union finds the alternating optimum.
    let g = MaxCut::ring(10);
    let union = UnionHamming::new(10, &[1, 2]);
    let mut ex = SequentialExplorer::new(union.clone());
    let search = TabuSearch::paper(
        SearchConfig::budget(300).with_target(Some(-10)),
        Neighborhood::size(&union),
    );
    let r = search.run(&g, &mut ex, BitString::zeros(10));
    assert_eq!(r.best_fitness, -10);
}
