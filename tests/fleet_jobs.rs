//! The generic `SearchJob` path end to end: annealing jobs scheduled
//! through the same `submit` as tabu and QAP tenants — preemption
//! invariance against the solo `SimulatedAnnealing::run`, a mixed
//! anneal/tabu/QAP fleet surviving a disk checkpoint round-trip, the
//! rotating auto-checkpoint crash/restore path, and the `JobSpec`
//! envelope knobs (iteration budget, deadline, checkpoint opt-out).

use lnls::core::{BitString, SearchConfig, SimulatedAnnealing, TabuSearch};
use lnls::gpu::{DeviceSpec, MultiDevice};
use lnls::neighborhood::{Neighborhood, TwoHamming};
use lnls::prelude::{
    AnnealJob, BinaryJob, FleetCheckpoint, JobRegistry, JobSpec, JobStatus, OneMax, QapInstance,
    QapJobSpec, RobustTabu, RtsConfig, Scheduler, SchedulerConfig, TableEvaluator,
};
use lnls::qap::Permutation;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SA_N: usize = 26;

fn sa_parts(seed: u64, iters: u64) -> (OneMax, SimulatedAnnealing<TwoHamming>, BitString) {
    let hood = TwoHamming::new(SA_N);
    let mut rng = StdRng::seed_from_u64(seed);
    let init = BitString::random(&mut rng, SA_N);
    let sa = SimulatedAnnealing::new(SearchConfig::budget(iters).with_seed(seed), hood, 1.5);
    (OneMax::new(SA_N), sa, init)
}

fn anneal_job(seed: u64, iters: u64) -> AnnealJob<OneMax, TwoHamming> {
    let (problem, sa, init) = sa_parts(seed, iters);
    AnnealJob::new(format!("sa-{seed}"), problem, sa, init)
}

fn tabu_job(seed: u64, iters: u64) -> BinaryJob<OneMax, TwoHamming> {
    let hood = TwoHamming::new(SA_N);
    let mut rng = StdRng::seed_from_u64(100 + seed);
    let init = BitString::random(&mut rng, SA_N);
    // No fitness target: the walk runs its full budget unless the
    // scheduler's envelope stops it first.
    let search = TabuSearch::paper(
        SearchConfig::budget(iters).with_seed(seed).with_target(None),
        hood.size(),
    );
    BinaryJob::new(format!("tabu-{seed}"), OneMax::new(SA_N), hood, search, init)
}

fn qap_job(seed: u64, n: usize, iters: u64) -> QapJobSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let inst = QapInstance::random_uniform(&mut rng, n);
    let init = Permutation::random(&mut rng, n);
    QapJobSpec::new(format!("qap-{seed}"), inst, RtsConfig::budget(iters).with_seed(seed), init)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Preemption invariance for scheduled annealing: any quantum, any
    /// small fleet shape, alongside competing tabu tenants — the
    /// scheduled walk must land exactly on `SimulatedAnnealing::run`.
    #[test]
    fn scheduled_anneal_matches_solo_run_under_any_quantum(
        quantum in 1u64..40,
        devices in 1usize..3,
        cpu_workers in 0usize..2,
    ) {
        let iters = 120;
        let mut fleet = Scheduler::new(
            MultiDevice::new_uniform(devices, DeviceSpec::gtx280()),
            SchedulerConfig {
                cpu_workers,
                quantum_iters: Some(quantum),
                ..Default::default()
            },
        );
        let sa_handles: Vec<_> =
            (0..2u64).map(|s| fleet.submit(anneal_job(s, iters))).collect();
        for s in 0..2u64 {
            fleet.submit(tabu_job(s, 20));
        }
        fleet.run_until_idle();
        for (s, h) in sa_handles.iter().enumerate() {
            let (problem, sa, init) = sa_parts(s as u64, iters);
            let want = sa.run(&problem, init);
            let got = fleet.report(*h).expect("done").outcome.clone();
            let got = got.as_binary().expect("annealing reports a SearchResult");
            prop_assert_eq!(&got.best, &want.best, "sa-{}", s);
            prop_assert_eq!(got.best_fitness, want.best_fitness, "sa-{}", s);
            prop_assert_eq!(got.iterations, want.iterations, "sa-{}", s);
            prop_assert_eq!(got.evals, want.evals, "sa-{}", s);
        }
    }
}

/// A mixed anneal/tabu/QAP fleet checkpointed mid-run to disk, revived
/// through the registry, finishes with outcomes bit-identical to the
/// uninterrupted fleet — the acceptance scenario of the `SearchJob`
/// redesign.
#[test]
fn mixed_fleet_disk_roundtrip_with_anneal_jobs() {
    let build = || {
        let mut fleet = Scheduler::new(
            MultiDevice::new_uniform(2, DeviceSpec::gtx280()),
            SchedulerConfig {
                cpu_workers: 1,
                max_batch: 2,
                quantum_iters: Some(5),
                ..Default::default()
            },
        );
        for s in 0..2u64 {
            fleet.submit(anneal_job(s, 90));
        }
        for s in 0..2u64 {
            fleet.submit(tabu_job(s, 25));
        }
        fleet.submit(qap_job(7, 10, 60));
        fleet
    };
    let mut straight = build();
    straight.run_until_idle();

    let mut fleet = build();
    for _ in 0..4 {
        fleet.tick();
    }
    let checkpoint = fleet.checkpoint();
    assert!(checkpoint.pending_jobs() > 0, "captured mid-run");
    let path = std::env::temp_dir().join(format!("lnls-fleet-jobs-{}.ckpt", std::process::id()));
    checkpoint.save(&path).expect("save");
    drop(fleet);
    drop(checkpoint);

    let registry = JobRegistry::with_builtin();
    let revived = FleetCheckpoint::load(&path, &registry).expect("load");
    std::fs::remove_file(&path).ok();
    let mut resumed = Scheduler::restore(revived);
    resumed.run_until_idle();

    for (ra, rb) in straight.reports().zip(resumed.reports()) {
        assert_eq!(ra.id, rb.id);
        assert_eq!(ra.outcome.best_fitness(), rb.outcome.best_fitness(), "{}", ra.name);
        assert_eq!(ra.outcome.iterations(), rb.outcome.iterations(), "{}", ra.name);
    }
    // The annealing outcomes specifically must still be the solo walks.
    for s in 0..2u64 {
        let (problem, sa, init) = sa_parts(s, 90);
        let want = sa.run(&problem, init);
        let got = resumed.reports().nth(s as usize).unwrap();
        assert_eq!(got.outcome.as_binary().unwrap().best, want.best, "sa-{s}");
    }
}

/// Periodic auto-checkpointing: run with a tick cadence, "crash" the
/// process (drop the scheduler), revive from the rotating file, and
/// finish with exactly the results of an uninterrupted fleet.
#[test]
fn autosave_crash_restore_is_deterministic() {
    let path = std::env::temp_dir().join(format!("lnls-autosave-{}.ckpt", std::process::id()));
    let mut rotated = path.clone().into_os_string();
    rotated.push(".1");
    let rotated = std::path::PathBuf::from(rotated);

    let submit_all = |fleet: &mut Scheduler| {
        for s in 0..2u64 {
            fleet.submit(anneal_job(s, 70));
        }
        for s in 0..3u64 {
            fleet.submit(tabu_job(s, 20));
        }
    };
    let mut straight = Scheduler::with_uniform_fleet(
        2,
        DeviceSpec::gtx280(),
        SchedulerConfig { quantum_iters: Some(4), ..Default::default() },
    );
    submit_all(&mut straight);
    straight.run_until_idle();

    let mut fleet = Scheduler::with_uniform_fleet(
        2,
        DeviceSpec::gtx280(),
        SchedulerConfig {
            quantum_iters: Some(4),
            autosave_every_ticks: Some(3),
            autosave_path: Some(path.clone()),
            ..Default::default()
        },
    );
    submit_all(&mut fleet);
    for _ in 0..7 {
        fleet.tick();
    }
    let report = fleet.fleet_report();
    assert!(report.autosaves >= 2, "two cadence points passed, got {}", report.autosaves);
    assert!(path.exists(), "latest autosave on disk");
    assert!(rotated.exists(), "previous autosave rotated, not clobbered");
    drop(fleet); // the crash

    let registry = JobRegistry::with_builtin();
    let revived = FleetCheckpoint::load(&path, &registry).expect("load autosave");
    let mut resumed = Scheduler::restore(revived);
    // The revived fleet inherits the autosave cadence and keeps writing
    // snapshots as it finishes — exactly what a restarted service
    // should do; the temp files are removed once it goes idle.
    resumed.run_until_idle();
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&rotated).ok();

    assert_eq!(straight.fleet_report().jobs_completed, resumed.fleet_report().jobs_completed);
    for (ra, rb) in straight.reports().zip(resumed.reports()) {
        let (ra, rb) = (ra.outcome.as_binary().unwrap(), rb.outcome.as_binary().unwrap());
        assert_eq!(ra.best, rb.best);
        assert_eq!(ra.best_fitness, rb.best_fitness);
        assert_eq!(ra.iterations, rb.iterations);
    }
}

/// The `JobSpec` envelope: iteration budgets stop a job early (reported
/// done with partial progress), deadlines drain through the
/// cancellation path, checkpoint opt-out drops the job from snapshots,
/// and name/priority overrides land in the report.
#[test]
fn job_spec_envelope_controls_the_scheduler() {
    // Iteration budget: the job stops at the cap, not its own budget.
    let mut fleet = Scheduler::with_uniform_fleet(
        1,
        DeviceSpec::gtx280(),
        SchedulerConfig { quantum_iters: Some(4), ..Default::default() },
    );
    let capped = fleet.submit_spec(
        JobSpec::new(tabu_job(0, 50)).with_iter_budget(12).named("capped").for_tenant("budgeted"),
    );
    fleet.run_until_idle();
    let report = fleet.report(capped).expect("budgeted jobs report");
    assert_eq!(report.outcome.iterations(), 12, "stopped exactly at the budget");
    assert!(!report.cancelled, "a budget stop is a completion, not a cancellation");
    assert_eq!(report.name, "capped");
    assert_eq!(report.tenant, "budgeted");
    assert_eq!(fleet.status(capped), JobStatus::Done);

    // Deadline: a job whose deadline has passed drains as cancelled.
    let mut fleet = Scheduler::with_uniform_fleet(
        1,
        DeviceSpec::gtx280(),
        SchedulerConfig { quantum_iters: Some(2), ..Default::default() },
    );
    let long = fleet.submit(tabu_job(1, 400));
    let doomed = fleet.submit_spec(JobSpec::new(tabu_job(2, 400)).with_deadline(1e-9));
    fleet.run_until_idle();
    assert_eq!(fleet.status(long), JobStatus::Done);
    assert_eq!(fleet.status(doomed), JobStatus::Cancelled);
    let report = fleet.report(doomed).unwrap();
    assert!(report.cancelled);
    assert!(report.outcome.iterations() < 400, "drained before its own budget");

    // Checkpoint opt-out: the job is absent from snapshots.
    let mut fleet = Scheduler::with_uniform_fleet(
        1,
        DeviceSpec::gtx280(),
        SchedulerConfig { quantum_iters: Some(3), ..Default::default() },
    );
    let durable = fleet.submit(tabu_job(3, 30));
    let ephemeral = fleet.submit_spec(JobSpec::new(tabu_job(4, 30)).without_checkpoint());
    fleet.tick();
    let checkpoint = fleet.checkpoint();
    assert_eq!(checkpoint.pending_jobs(), 1, "opted-out job is not captured");
    let mut resumed = Scheduler::restore(checkpoint);
    resumed.run_until_idle();
    assert_eq!(resumed.status(durable), JobStatus::Done);
    assert_eq!(resumed.status(ephemeral), JobStatus::Unknown);
}

/// QAP robust tabu through the generic path still matches its solo
/// driver (the old `submit_qap` acceptance check, re-pinned on
/// `submit`).
#[test]
fn qap_through_generic_submit_matches_solo() {
    let mut fleet =
        Scheduler::with_uniform_fleet(1, DeviceSpec::gtx280(), SchedulerConfig::default());
    let h = fleet.submit(qap_job(42, 9, 50));
    fleet.run_until_idle();
    let mut rng = StdRng::seed_from_u64(42);
    let inst = QapInstance::random_uniform(&mut rng, 9);
    let init = Permutation::random(&mut rng, 9);
    let want = RobustTabu::new(RtsConfig::budget(50).with_seed(42)).run(
        &inst,
        &mut TableEvaluator::new(),
        init,
    );
    let got = fleet.report(h).unwrap().outcome.clone();
    let got = got.as_qap().expect("qap outcome");
    assert_eq!(got.best.as_slice(), want.best.as_slice());
    assert_eq!(got.best_cost, want.best_cost);
    assert_eq!(got.iterations, want.iterations);
}
