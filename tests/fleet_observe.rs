//! Observability invariants of the fleet: attaching event sinks and
//! metrics registries must never perturb a run (reports stay
//! bit-identical to a bare replay), event logs must be byte-identical
//! across replays of the same trace, Prometheus counters must agree
//! with the fleet report's own outcome fields, Chrome traces must be
//! structurally sound, and the telemetry memory cap must thin
//! deterministically.

use lnls::gpu::{price_fused_iteration, DeviceSpec, EngineConfig, LaneIo, StreamOp};
use lnls::prelude::{
    chrome_trace, tenant_summaries, Driver, JsonlSink, RingSink, Scenario, SelectionMode, Trace,
    TrafficGen, WhatIf,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Observation is strictly passive: for any catalog scenario and
    /// seed, a bare replay, a replay with a ring sink attached, and a
    /// metered replay must produce bit-identical fleet reports — every
    /// f64 compared through its exact `Debug` rendering.
    #[test]
    fn observers_never_perturb_a_replay(
        scenario_idx in 0usize..6,
        seed in 0u64..500,
    ) {
        let scenario = Scenario::catalog()[scenario_idx].clone();
        let trace = TrafficGen::lower(&scenario, seed);
        let bare = Driver::replay(&trace);

        let ring = RingSink::unbounded().shared();
        let observed = Driver::replay_observed(&trace, Box::new(ring.clone()));
        prop_assert_eq!(
            format!("{:?}", bare.fleet),
            format!("{:?}", observed.fleet),
            "scenario '{}' seed {}: event sink must be invisible",
            scenario.name,
            seed
        );
        prop_assert!(!ring.lock().unwrap().is_empty(), "a replay must emit events");

        let (metered, metrics) = Driver::replay_metered(&trace);
        prop_assert_eq!(
            format!("{:?}", bare.fleet),
            format!("{:?}", metered.fleet),
            "scenario '{}' seed {}: metrics registry must be invisible",
            scenario.name,
            seed
        );
        prop_assert_eq!(metrics.counter("fleet_jobs_completed_total"), bare.fleet.jobs_completed);
    }
}

/// Two replays of the same recorded trace through JSONL file sinks must
/// write byte-identical event logs — the structured log is as
/// deterministic as the simulation itself.
#[test]
fn jsonl_event_logs_are_byte_identical_across_replays() {
    let trace = TrafficGen::lower(&Scenario::saturation(), 13);
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let mut logs = Vec::new();
    for run in 0..2 {
        let path = dir.join(format!("lnls-observe-{pid}-{run}.jsonl"));
        let sink = JsonlSink::create(&path).expect("create jsonl sink");
        let _ = Driver::replay_observed(&trace, Box::new(sink));
        let bytes = std::fs::read(&path).expect("read event log");
        std::fs::remove_file(&path).ok();
        logs.push(bytes);
    }
    assert!(!logs[0].is_empty(), "the event log must not be empty");
    assert_eq!(logs[0], logs[1], "event logs must be byte-identical across replays");
    // Every line is a JSON object with the envelope fields.
    let text = String::from_utf8(logs[0].clone()).expect("utf-8");
    for line in text.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "not an object: {line}");
        assert!(line.contains("\"tick\":") && line.contains("\"now_s\":"), "{line}");
        assert!(line.contains("\"kind\":\""), "{line}");
    }
}

/// The live metrics registry's Prometheus counters must equal the fleet
/// report's own outcome fields on every catalog scenario — including
/// the crash/restore scenario, where the driver carries the registry
/// across the simulated crash.
#[test]
fn prometheus_counters_match_the_report_on_every_scenario() {
    for scenario in Scenario::catalog() {
        let trace = TrafficGen::lower(&scenario, 21);
        let (report, metrics) = Driver::replay_metered(&trace);
        let fleet = &report.fleet;
        let name = &scenario.name;
        assert_eq!(
            metrics.counter("fleet_jobs_completed_total"),
            fleet.jobs_completed,
            "{name}: completed"
        );
        assert_eq!(
            metrics.counter("fleet_jobs_cancelled_total"),
            fleet.jobs_cancelled,
            "{name}: cancelled"
        );
        assert_eq!(
            metrics.counter("fleet_jobs_rejected_total"),
            fleet.jobs_rejected,
            "{name}: rejections (sheds + bounces)"
        );
        assert_eq!(
            metrics.counter("fleet_preemptions_total"),
            fleet.preemptions,
            "{name}: preemptions"
        );
        assert_eq!(
            metrics.counter("fleet_iterations_total"),
            fleet.iterations_executed,
            "{name}: iterations"
        );
        let rendered = metrics.render_prometheus();
        assert!(
            rendered.contains(&format!("fleet_jobs_completed_total {}", fleet.jobs_completed)),
            "{name}: {rendered}"
        );
        assert!(rendered.contains("# TYPE fleet_wait_seconds histogram"), "{name}");
    }
}

/// Per-tenant event summaries must reconcile with the driver's own
/// admission accounting.
#[test]
fn tenant_summaries_reconcile_with_admission_counts() {
    let trace = TrafficGen::lower(&Scenario::burst(), 3);
    let ring = RingSink::unbounded().shared();
    let report = Driver::replay_observed(&trace, Box::new(ring.clone()));
    let summaries = tenant_summaries(&ring.lock().unwrap().records());
    assert!(!summaries.is_empty());
    let submitted: u64 = summaries.iter().map(|t| t.submitted).sum();
    let rejected: u64 = summaries.iter().map(|t| t.rejected).sum();
    let completed: u64 = summaries.iter().map(|t| t.completed).sum();
    assert_eq!(submitted, report.admitted, "Submitted events are per admitted job");
    assert_eq!(rejected, report.fleet.jobs_rejected, "bounces + sheds");
    assert_eq!(completed, report.fleet.jobs_completed);
}

/// The what-if comparator must replay one recorded trace across ≥3
/// variants and produce a comparative table, with the baseline row
/// bit-identical to a plain replay and the on-device-argmin variant
/// moving fewer bytes down the bus.
#[test]
fn what_if_compares_variants_of_one_recorded_trace() {
    let (trace, recorded) = Driver::record(&Scenario::steady(), 17);
    let grid = WhatIf::knob_grid(&trace);
    assert!(grid.len() >= 3, "the standard grid spans at least three variants");
    let report = WhatIf::compare(&trace, &grid);
    assert_eq!(report.rows.len(), grid.len() + 1);
    assert_eq!(report.baseline().variant, "as-recorded");
    assert_eq!(
        report.baseline().wait_p95_s.to_bits(),
        recorded.fleet.wait_p95_s.to_bits(),
        "baseline row must be the recorded run itself"
    );
    let host = report.rows.iter().find(|r| r.variant == "gt200/host-argmin").unwrap();
    let device = report.rows.iter().find(|r| r.variant == "gt200/device-argmin").unwrap();
    assert!(
        device.bytes_d2h < host.bytes_d2h,
        "on-device argmin must shrink readback: {} vs {}",
        device.bytes_d2h,
        host.bytes_d2h
    );
    let table = report.to_string();
    for v in &grid {
        assert!(table.contains(&v.name), "table must list {}", v.name);
    }
}

/// A fleet-level Chrome trace lowered from the event stream must be
/// structurally valid and carry quantum spans per device row.
#[test]
fn fleet_chrome_trace_has_device_rows_and_quantum_spans() {
    let trace = TrafficGen::lower(&Scenario::steady(), 5);
    let ring = RingSink::unbounded().shared();
    let _ = Driver::replay_observed(&trace, Box::new(ring.clone()));
    let json = chrome_trace(&ring.lock().unwrap().records());
    assert!(json.starts_with("{\"traceEvents\":[") && json.ends_with("]}"));
    assert!(json.contains("\"ph\":\"M\""), "thread metadata rows");
    assert!(json.contains("\"ph\":\"X\""), "quantum spans");
    assert!(json.contains("\"cat\":\"quantum\""), "{json}");
}

/// A fermi-layout stream schedule must lower to Chrome trace JSON whose
/// H2D/Kernel/D2H spans actually overlap across streams.
#[test]
fn stream_chrome_trace_shows_fermi_overlap() {
    let spec = DeviceSpec::gtx280().with_engines(EngineConfig::fermi());
    let lanes = [
        LaneIo { h2d_bytes: 1 << 16, d2h_bytes: 1 << 18 },
        LaneIo { h2d_bytes: 1 << 16, d2h_bytes: 1 << 18 },
        LaneIo { h2d_bytes: 1 << 16, d2h_bytes: 1 << 18 },
    ];
    let sched = price_fused_iteration(&spec, &lanes, &[4e-4]);
    assert!(sched.makespan < sched.serialized, "fermi must overlap the lanes");
    let json = sched.chrome_trace_json();
    assert!(json.starts_with("{\"traceEvents\":[") && json.ends_with("]}"));
    for name in ["\"H2D\"", "\"Kernel\"", "\"D2H\"", "\"stream 0\"", "\"stream 1\""] {
        assert!(json.contains(name), "missing {name}: {json}");
    }
    // Spot-check overlap in the modeled schedule itself: two D2H spans
    // on different streams share wall time.
    let d2h: Vec<_> = sched.ops.iter().filter(|o| matches!(o.op, StreamOp::D2H { .. })).collect();
    assert!(d2h.len() >= 2);
    assert!(
        d2h[1].start < d2h[0].finish,
        "dual copy engines must overlap readbacks: {:?}",
        (&d2h[0], &d2h[1])
    );
    // And the single-engine layout serializes the same work.
    let gt200 = price_fused_iteration(&DeviceSpec::gtx280(), &lanes, &[4e-4]);
    assert!((gt200.makespan - gt200.serialized).abs() < 1e-12);
}

/// The telemetry memory cap must bound every series and thin
/// deterministically — a capped replay stays bit-identical across runs
/// and across trace byte round-trips.
#[test]
fn telemetry_cap_bounds_series_and_replays_bit_identically() {
    let mut scenario = Scenario::saturation();
    scenario.fleet.telemetry_max_samples = Some(16);
    let (trace, recorded) = Driver::record(&scenario, 29);
    let telemetry = recorded.fleet.telemetry.as_ref().expect("scenarios record telemetry");
    assert!(!telemetry.is_empty());
    let capped_len = telemetry.samples().len();
    assert!(capped_len <= 16, "cap must bound the series: {capped_len}");

    let reloaded = Trace::from_bytes(&trace.to_bytes()).expect("capped traces round-trip");
    assert_eq!(reloaded.fleet.telemetry_max_samples, Some(16));
    let replayed = Driver::replay(&reloaded);
    assert_eq!(
        format!("{:?}", recorded.fleet),
        format!("{:?}", replayed.fleet),
        "capped telemetry must replay bit-identically"
    );

    // An uncapped run of the same traffic sees strictly more samples.
    let uncapped = Driver::replay(&TrafficGen::lower(&Scenario::saturation(), 29));
    let full_len = uncapped.fleet.telemetry.expect("telemetry").samples().len();
    assert!(full_len > capped_len, "{full_len} vs {capped_len}");
}

/// Selection-mode knob sanity for the observed byte columns the what-if
/// table reports: flipping to device argmin on the same trace cannot
/// increase H2D traffic.
#[test]
fn device_argmin_variant_never_uploads_more() {
    let trace = TrafficGen::lower(
        &Scenario::steady().with_fleet_knobs(EngineConfig::gt200(), SelectionMode::HostArgmin),
        11,
    );
    let report = WhatIf::compare(
        &trace,
        &[lnls::prelude::Variant::knobs(
            "device",
            &trace,
            EngineConfig::gt200(),
            SelectionMode::DeviceArgmin,
        )],
    );
    assert!(report.rows[1].bytes_h2d <= report.rows[0].bytes_h2d);
}
