//! The reproduction's success criteria (DESIGN.md §4): the *shape* of the
//! paper's results must hold — who wins, by roughly what factor, and
//! where the crossovers fall. Absolute seconds are model outputs and are
//! not asserted.
//!
//! Quality assertions run on scaled-down instances (one CPU core budget);
//! timing assertions run on the calibrated analytic model at the paper's
//! true sizes (cheap: one profiled launch per point).

use lnls::prelude::*;
use lnls_bench::{per_iteration_book, run_fig8};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Modeled speedup (CPU model / GPU model) of one steady-state tabu
/// iteration at the paper's instance shapes.
fn model_speedup(m: usize, n: usize, k: usize) -> f64 {
    let problem = Ppp::new(PppInstance::generate(m, n, 42));
    let book = per_iteration_book(&problem, k, &GpuExplorerConfig::default());
    book.host_s / book.gpu_total_s()
}

#[test]
fn table1_band_gpu_loses_on_small_neighborhoods() {
    // Paper Table I: acceleration 0.44–0.51 (GPU slower everywhere).
    for (m, n) in PppInstance::paper_sizes() {
        let s = model_speedup(m, n, 1);
        assert!(s < 1.0, "{m}x{n}: 1-Hamming speedup {s:.2} should be < 1");
        assert!(s > 0.1, "{m}x{n}: 1-Hamming speedup {s:.2} implausibly low");
    }
}

#[test]
fn table2_band_gpu_wins_clearly_and_grows() {
    // Paper Table II: ×9.9 → ×18.5, increasing with instance size.
    let speedups: Vec<f64> =
        PppInstance::paper_sizes().iter().map(|&(m, n)| model_speedup(m, n, 2)).collect();
    for (i, s) in speedups.iter().enumerate() {
        assert!((4.0..=40.0).contains(s), "instance {i}: 2-Hamming speedup {s:.1} out of band");
    }
    assert!(
        speedups.last().unwrap() > speedups.first().unwrap(),
        "2-Hamming speedup should grow with size: {speedups:?}"
    );
}

#[test]
fn table3_band_saturates_above_table2() {
    // Paper Table III: ×24.2 → ×25.8, flat (saturated) and above the
    // matching Table II rows.
    let s3: Vec<f64> =
        PppInstance::paper_sizes().iter().map(|&(m, n)| model_speedup(m, n, 3)).collect();
    for s in &s3 {
        assert!((10.0..=80.0).contains(s), "3-Hamming speedup {s:.1} out of band");
    }
    // Saturation: spread within 2x across instances.
    let (min, max) = s3.iter().fold((f64::MAX, 0.0f64), |(lo, hi), &s| (lo.min(s), hi.max(s)));
    assert!(max / min < 2.0, "3-Hamming speedups not saturated: {s3:?}");
    // Larger neighborhoods amortize at least as well as Table II's.
    let s2_73 = model_speedup(73, 73, 2);
    assert!(s3[0] > s2_73, "3-Hamming (73x73, {:.1}) should beat 2-Hamming ({s2_73:.1})", s3[0]);
}

#[test]
fn fig8_crossover_and_growth() {
    // Paper Fig. 8: CPU wins at 101-117; crossover by 201-217 (×1.1);
    // growth to ×10.8 at 1501-1517. Assert: below 1 at the smallest
    // size, ≥ 1 somewhere in [150, 400], monotone-ish growth, and a
    // final factor in [6, 30].
    let sizes: Vec<(usize, usize)> = (0..8).map(|i| (101 + 200 * i, 117 + 200 * i)).collect();
    let pts = run_fig8(100, &sizes, &GpuExplorerConfig::default(), 7);
    let accel: Vec<f64> = pts.iter().map(|p| p.acceleration()).collect();
    assert!(accel[0] < 1.2, "smallest size should not win big: {:.2}", accel[0]);
    assert!(accel[1] >= 1.0, "crossover should have happened by n=317: {accel:?}");
    let last = *accel.last().unwrap();
    assert!((6.0..=30.0).contains(&last), "final acceleration {last:.1} out of band");
    // Weak monotonicity: allow small local dips from discrete waves.
    for w in accel.windows(2) {
        assert!(w[1] > w[0] * 0.85, "acceleration regressed: {accel:?}");
    }
}

#[test]
fn quality_improves_with_neighborhood_size() {
    // The paper's effectiveness claim (Tables I→III): with the same
    // iteration budget, larger neighborhoods reach better fitness.
    // Scaled to n=31 so the full sweep runs on one core in seconds.
    // A budget tight enough that 1-Hamming usually fails while 3-Hamming
    // usually succeeds (separation is the point of Tables I→III).
    let (m, n, tries, budget) = (35, 35, 6, 500);
    let problem = Ppp::new(PppInstance::generate(m, n, 2024));
    let mut mean = [0.0f64; 4];
    let mut solved = [0usize; 4];
    for k in 1..=3usize {
        let hood = KHamming::new(n, k);
        let mut total = 0f64;
        for t in 0..tries {
            let seed = 500 + t as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let init = BitString::random(&mut rng, n);
            let mut ex = SequentialExplorer::new(hood);
            let search = TabuSearch::paper(
                SearchConfig::budget(budget).with_seed(seed),
                Neighborhood::size(&hood),
            );
            let r = search.run(&problem, &mut ex, init);
            total += r.best_fitness as f64;
            solved[k] += r.success as usize;
        }
        mean[k] = total / tries as f64;
    }
    assert!(
        mean[3] <= mean[2] && mean[3] <= mean[1],
        "3-Hamming must dominate: k1={:.1} k2={:.1} k3={:.1}",
        mean[1],
        mean[2],
        mean[3]
    );
    // The k1→k2 step is statistically noisier on small instances; allow
    // a one-unit tolerance while still catching inversions.
    assert!(
        mean[2] <= mean[1] + 1.0,
        "2-Hamming should not be clearly worse than 1-Hamming: k1={:.1} k2={:.1}",
        mean[1],
        mean[2]
    );
    // Success counts are the noisiest statistic at 6 tries; assert only
    // the endpoint ordering the paper's aggregate shows (35 vs 10 of 50).
    assert!(
        solved[3] >= solved[1],
        "3-Hamming should solve at least as often as 1-Hamming: {solved:?}"
    );
}

#[test]
fn per_move_gpu_cost_falls_with_neighborhood_size() {
    // §IV's narrative in one number: the modeled GPU cost *per neighbor*
    // must drop sharply from k=1 to k=3 (occupancy), while the CPU cost
    // per neighbor stays flat.
    let problem = Ppp::new(PppInstance::generate(101, 117, 3));
    let cfg = GpuExplorerConfig::default();
    let costs: Vec<(f64, f64)> = (1..=3)
        .map(|k| {
            let book = per_iteration_book(&problem, k, &cfg);
            let moves = lnls::neighborhood::binomial(117, k as u64) as f64;
            (book.gpu_total_s() / moves, book.host_s / moves)
        })
        .collect();
    // GPU per-move cost falls by at least 10x from k=1 to k=3.
    assert!(
        costs[0].0 / costs[2].0 > 10.0,
        "GPU per-move cost should collapse with size: {costs:?}"
    );
    // CPU per-move cost varies by at most ~3x (same algorithm per move).
    let cpu_ratio = costs[0].1 / costs[2].1;
    assert!((0.3..=3.0).contains(&cpu_ratio), "CPU per-move cost should stay flat: {costs:?}");
}
