//! The pricing-only invariant of multi-iteration fused spans: the span
//! length and the launch-overhead mode change what the simulator
//! *charges* for a fused group, never what the searches *compute*.
//!
//! Any `span_iters` × `LaunchMode` combination must leave every job's
//! best solution, fitness and iteration count bit-identical to the
//! per-iteration baseline (proptest-pinned); `PersistentSpan` must
//! price a strictly lower fleet makespan than `PerIteration` for the
//! same multi-iteration spans while reporting the amortized overhead;
//! and envelope iteration budgets must stay iteration-exact no matter
//! how long the span is.

use lnls::prelude::*;
use lnls::{core::SearchConfig, core::TabuSearch, gpu::DeviceSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 32;

fn job_shaped(i: u64, iters: u64, dim: usize, k: usize) -> BinaryJob<OneMax, KHamming> {
    let hood = KHamming::new(dim, k);
    let mut rng = StdRng::seed_from_u64(i);
    let init = BitString::random(&mut rng, dim);
    let search =
        TabuSearch::paper(SearchConfig::budget(iters).with_seed(i).with_target(None), hood.size());
    BinaryJob::new(format!("tabu-{i}"), OneMax::new(dim), hood, search, init)
}

fn job(i: u64, iters: u64) -> BinaryJob<OneMax, KHamming> {
    job_shaped(i, iters, DIM, 2)
}

fn run_fleet_shaped(
    span_iters: u64,
    launch_mode: LaunchMode,
    engines: EngineConfig,
    selection: SelectionMode,
    dim: usize,
    k: usize,
) -> (Vec<(BitString, i64, u64)>, FleetReport) {
    let mut fleet = Scheduler::with_uniform_fleet(
        1,
        DeviceSpec::gtx280().with_engines(engines),
        SchedulerConfig {
            max_batch: 4,
            quantum_iters: Some(8),
            span_iters,
            launch_mode,
            selection,
            ..Default::default()
        },
    );
    let handles: Vec<_> = (0..4).map(|i| fleet.submit(job_shaped(i, 24, dim, k))).collect();
    fleet.run_until_idle();
    let outcomes = handles
        .iter()
        .map(|h| {
            let r = fleet.report(*h).expect("done").outcome.as_binary().expect("binary");
            (r.best.clone(), r.best_fitness, r.iterations)
        })
        .collect();
    (outcomes, fleet.fleet_report())
}

fn run_fleet(
    span_iters: u64,
    launch_mode: LaunchMode,
    engines: EngineConfig,
    selection: SelectionMode,
) -> (Vec<(BitString, i64, u64)>, FleetReport) {
    run_fleet_shaped(span_iters, launch_mode, engines, selection, DIM, 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any span length under either launch mode and either engine
    /// layout: every job's best solution, fitness and iteration count
    /// must match the span-of-one per-iteration baseline bit for bit.
    #[test]
    fn span_knobs_never_change_search_results(
        span in 1u64..=8,
        persistent in any::<bool>(),
        fermi in any::<bool>(),
    ) {
        let engines = if fermi { EngineConfig::fermi() } else { EngineConfig::gt200() };
        let mode =
            if persistent { LaunchMode::PersistentSpan } else { LaunchMode::PerIteration };
        let (base_outcomes, base_report) =
            run_fleet(1, LaunchMode::PerIteration, engines, SelectionMode::HostArgmin);
        let (span_outcomes, span_report) =
            run_fleet(span, mode, engines, SelectionMode::HostArgmin);
        prop_assert_eq!(
            base_outcomes,
            span_outcomes,
            "span {} / {:?} must be pricing-only",
            span,
            mode
        );
        prop_assert_eq!(base_report.iterations_executed, span_report.iterations_executed);
        prop_assert_eq!(base_report.jobs_completed, span_report.jobs_completed);
    }
}

#[test]
fn persistent_span_amortizes_launch_overhead_and_beats_per_iteration() {
    // A kernel-dominated shape: 3-Hamming on 64 bits (m = 41 664) makes
    // the fused kernel chain ≈ 140 µs per iteration, well above the
    // single GT200 DMA engine's ≈ 96 µs of per-iteration PCIe latency —
    // and on-device argmin keeps the readbacks to one record each. The
    // kernel stream is therefore the span's critical path, so the
    // launch-overhead exemption shows up in the makespan, not just in
    // the books. (With tiny kernels the DMA engine dominates and the
    // exemption honestly changes nothing — that case is covered by the
    // bit-identity proptest above.)
    let shape =
        |mode| run_fleet_shaped(8, mode, EngineConfig::gt200(), SelectionMode::DeviceArgmin, 64, 3);
    let (per_outcomes, per_report) = shape(LaunchMode::PerIteration);
    let (span_outcomes, span_report) = shape(LaunchMode::PersistentSpan);

    assert_eq!(per_outcomes, span_outcomes, "the launch mode must never change results");

    // Multi-iteration spans actually formed on both sides.
    assert!(per_report.spans > 0, "fused device work must run in spans");
    assert!(
        per_report.mean_span_iterations() > 1.0 + 1e-9,
        "an 8-iteration span budget must form multi-iteration spans: {:.3} iters/span",
        per_report.mean_span_iterations()
    );
    assert_eq!(per_report.spans, span_report.spans);
    assert_eq!(per_report.span_iterations, span_report.span_iterations);

    // Per-iteration charges every launch; persistent charges one per
    // span and reports exactly what it amortized away.
    assert!(
        (per_report.launch_overhead_saved_s - 0.0).abs() < 1e-18,
        "per-iteration spans amortize nothing"
    );
    assert!(
        span_report.launch_overhead_saved_s > 0.0,
        "persistent spans must report the overhead they amortized"
    );
    // Two kernel positions per iteration under device argmin: the fused
    // evaluation kernel plus the appended argmin reduction.
    let expected_saved = (span_report.span_iterations - span_report.spans) as f64
        * 2.0
        * DeviceSpec::gtx280().launch_overhead_s;
    assert!(
        (span_report.launch_overhead_saved_s - expected_saved).abs() < 1e-15,
        "amortized overhead must equal (iterations − spans) · positions · overhead: {} vs {}",
        span_report.launch_overhead_saved_s,
        expected_saved
    );
    assert!(
        span_report.makespan_s < per_report.makespan_s,
        "persistent-span launches must beat per-iteration: {} vs {}",
        span_report.makespan_s,
        per_report.makespan_s
    );
    assert!(
        span_report.fleet_book.launches < per_report.fleet_book.launches,
        "the books must show fewer charged kernel-chain launches"
    );
}

#[test]
fn envelope_iteration_budgets_stay_exact_under_long_spans() {
    // A budget that is not a multiple of the span length: the span must
    // stop at the budget boundary, not overshoot to the span boundary.
    for span in [1u64, 3, 8] {
        let mut fleet = Scheduler::with_uniform_fleet(
            1,
            DeviceSpec::gtx280(),
            SchedulerConfig {
                max_batch: 4,
                quantum_iters: Some(8),
                span_iters: span,
                launch_mode: LaunchMode::PersistentSpan,
                ..Default::default()
            },
        );
        let handles: Vec<_> = (0..2)
            .map(|i| fleet.submit_spec(JobSpec::new(job(i, 24)).with_iter_budget(5)))
            .collect();
        fleet.run_until_idle();
        for h in handles {
            let report = fleet.report(h).expect("drained jobs report");
            assert!(!report.cancelled);
            assert_eq!(
                report.outcome.iterations(),
                5,
                "span {span}: the envelope budget must cap iterations exactly"
            );
        }
    }
}
