//! Cross-crate integration: the problem zoo, the QAP substrate and the
//! stream/pipeline models working together through the facade crate.

use lnls::core::peo::{Acceptance, EvalBudget, FitnessTrace, MaxIterations, PeoSearch};
use lnls::core::problem::IncrementalEval;
use lnls::core::GeneralVns;
use lnls::gpu::pipeline::{price_multiwalk_ordered, IssueOrder};
use lnls::gpu::{DeviceSpec, EngineConfig, IterationProfile};
use lnls::prelude::*;
use lnls::problems::QuboGpuExplorer;
use lnls::qap::{GpuSwapEvaluator, Permutation, RobustTabu, RtsConfig, SwapEvaluator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every zoo problem, searched with the same driver over the same
/// neighborhood, ends at a state whose stored fitness matches a full
/// re-evaluation — the cross-problem contract of `IncrementalEval`.
#[test]
fn zoo_problems_agree_with_full_reevaluation_after_search() {
    let mut rng = StdRng::seed_from_u64(42);
    let n = 30;

    fn run_and_check<P: IncrementalEval>(p: &P, n: usize, seed: u64) {
        let hood = KHamming::new(n, 2);
        let mut ex = SequentialExplorer::new(hood);
        let search = TabuSearch::paper(
            SearchConfig::budget(80).with_seed(seed).with_target(None),
            Neighborhood::size(&hood),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let init = BitString::random(&mut rng, n);
        let r = search.run(p, &mut ex, init);
        assert_eq!(r.best_fitness, p.evaluate(&r.best), "{}", p.name());
    }

    run_and_check(&OneMax::new(n), n, 1);
    run_and_check(&Qubo::random(&mut rng, n, 9, 0.5), n, 2);
    run_and_check(&MaxCut::random(&mut rng, n, 0.3, 7), n, 3);
    run_and_check(&Knapsack::random(&mut rng, n, 15, 8), n, 4);
    run_and_check(&IsingLattice::random_pm(&mut rng, 5, 1), 25, 5);
    run_and_check(&MaxSat::random(&mut rng, n, 90), n, 6);
    run_and_check(&NkLandscape::random(&mut rng, n, 3, 100), n, 7);
}

/// The paper's headline claim on the zoo: with a matched *evaluation*
/// budget, the larger neighborhood never loses (and typically wins) on
/// the spin glass.
#[test]
fn larger_neighborhoods_do_not_lose_under_matched_eval_budget() {
    let mut rng = StdRng::seed_from_u64(11);
    let ising = IsingLattice::random_pm(&mut rng, 6, 0); // 36 spins
    let budget_evals = 200_000u64;

    let mut best = Vec::new();
    for k in 1..=3usize {
        let hood = KHamming::new(36, k);
        let mut ex = SequentialExplorer::new(hood);
        let mut rng = StdRng::seed_from_u64(99);
        let init = BitString::random(&mut rng, 36);
        let r = PeoSearch::new(Acceptance::Always)
            .stop_when(EvalBudget(budget_evals))
            .run(&ising, &mut ex, init);
        best.push(r.best_fitness);
    }
    assert!(
        best[2] <= best[0],
        "3-Hamming ({}) must not lose to 1-Hamming ({}) at equal evals",
        best[2],
        best[0]
    );
}

/// GVNS on a deceptive knapsack seed reaches the DP optimum that the
/// single-neighborhood tabu misses (the plateau documented in the
/// knapsack module).
#[test]
fn gvns_solves_the_knapsack_plateau() {
    let mut rng = StdRng::seed_from_u64(5);
    let k = Knapsack::random(&mut rng, 16, 10, 8);
    let opt = k.optimum_value();
    let mut ladder: Vec<Box<dyn Explorer<Knapsack>>> = vec![
        Box::new(SequentialExplorer::new(OneHamming::new(16))),
        Box::new(SequentialExplorer::new(TwoHamming::new(16))),
        Box::new(SequentialExplorer::new(ThreeHamming::new(16))),
    ];
    let gvns = GeneralVns::new(SearchConfig::budget(200).with_seed(1).with_target(Some(-opt)));
    let r = gvns.run(&k, &mut ladder, BitString::zeros(16));
    assert_eq!(r.best_fitness, -opt);
    assert!(k.feasible(&r.best));
}

/// A full QUBO tabu run through the simulated GPU takes exactly the
/// same walk as the sequential CPU explorer (facade-level replay of the
/// unit test, with the time ledger checked).
#[test]
fn qubo_gpu_walk_matches_cpu_walk_through_facade() {
    let mut rng = StdRng::seed_from_u64(21);
    let q = Qubo::random(&mut rng, 18, 6, 0.5);
    let init = BitString::random(&mut rng, 18);
    let hood = KHamming::new(18, 2);
    let search =
        TabuSearch::paper(SearchConfig::budget(40).with_target(None), Neighborhood::size(&hood));

    let mut cpu = SequentialExplorer::new(hood);
    let r_cpu = search.run(&q, &mut cpu, init.clone());
    let mut gpu = QuboGpuExplorer::new(&q, 2, DeviceSpec::gtx280());
    let r_gpu = search.run(&q, &mut gpu, init);

    assert_eq!(r_cpu.best, r_gpu.best);
    assert_eq!(r_cpu.best_fitness, r_gpu.best_fitness);
    let book = r_gpu.book.expect("gpu ledger");
    assert_eq!(book.launches, 40);
    assert!(book.speedup().is_some());
}

/// QAP: the robust tabu walk is backend-independent and the modeled
/// speedup grows with n (Fig. 8's shape on the swap neighborhood).
#[test]
fn qap_rts_backend_equivalence_and_scaling() {
    let mut rng = StdRng::seed_from_u64(31);
    let mut speedups = Vec::new();
    for n in [12usize, 36] {
        let inst = lnls::qap::QapInstance::random_symmetric(&mut rng, n);
        let init = Permutation::random(&mut rng, n);
        let rts = RobustTabu::new(RtsConfig::budget(50).with_seed(2));
        let cpu = rts.run(&inst, &mut lnls::qap::TableEvaluator::new(), init.clone());
        let mut gpu_eval = GpuSwapEvaluator::new(&inst, DeviceSpec::gtx280());
        let gpu = rts.run(&inst, &mut gpu_eval, init);
        assert_eq!(cpu.best_cost, gpu.best_cost, "n={n}");
        assert_eq!(cpu.best, gpu.best, "n={n}");
        let book = SwapEvaluator::book(&gpu_eval).unwrap();
        speedups.push(book.speedup().unwrap());
    }
    assert!(speedups[1] > speedups[0], "modeled speedup must grow with n: {speedups:?}");
}

/// Pipelining independent walks never beats the engine bound and never
/// loses to the serial schedule; breadth-first issue dominates
/// depth-first on the GT200 layout.
#[test]
fn pipeline_bounds_hold_for_ppp_shaped_iterations() {
    let spec = DeviceSpec::gtx280();
    let profile =
        IterationProfile { h2d_bytes: 16 << 10, kernel_seconds: 300e-6, d2h_bytes: 128 << 10 };
    for walks in [1usize, 2, 4, 8] {
        let bf = price_multiwalk_ordered(
            &spec,
            EngineConfig::gt200(),
            profile,
            walks,
            200,
            walks.min(4),
            IssueOrder::BreadthFirst,
        );
        let df = price_multiwalk_ordered(
            &spec,
            EngineConfig::gt200(),
            profile,
            walks,
            200,
            walks.min(4),
            IssueOrder::DepthFirst,
        );
        assert!(bf.pipelined_s <= bf.serial_s * 1.0001, "walks={walks}");
        assert!(bf.speedup >= df.speedup - 1e-9, "issue order, walks={walks}");
        // compute engine is a hard floor
        let compute_floor =
            (profile.kernel_seconds + spec.launch_overhead_s) * walks as f64 * 200.0;
        assert!(bf.pipelined_s >= compute_floor * 0.999, "walks={walks}");
    }
}

/// Observers see exactly what the search did (facade-level check).
#[test]
fn peo_trace_is_consistent_with_result() {
    let mut rng = StdRng::seed_from_u64(77);
    let cut = MaxCut::random(&mut rng, 24, 0.4, 5);
    let mut trace = FitnessTrace::default();
    let mut ex = SequentialExplorer::new(TwoHamming::new(24));
    let r = PeoSearch::new(Acceptance::Always)
        .stop_when(MaxIterations(30))
        .observe(&mut trace)
        .run(&cut, &mut ex, BitString::zeros(24));
    assert_eq!(trace.best.len(), r.iterations as usize);
    assert_eq!(trace.best.last().copied(), Some(r.best_fitness));
    // best-so-far is monotone non-increasing
    assert!(trace.best.windows(2).all(|w| w[1] <= w[0]));
    // and equals the running min of the current-fitness trace
    let mut running = i64::MAX;
    for (cur, best) in trace.current.iter().zip(&trace.best) {
        running = running.min(*cur);
        assert_eq!(running, *best);
    }
}
