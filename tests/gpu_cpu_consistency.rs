//! Cross-crate integration: complete searches through the simulated GPU
//! backend must be *indistinguishable* from the host backends — same
//! moves, same fitness, same solution — for every neighborhood. This is
//! the property that justifies running quality experiments on the fast
//! host path and pricing them with the device model.

use lnls::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(m: usize, n: usize, seed: u64) -> (Ppp, BitString) {
    let inst = PppInstance::generate(m, n, seed);
    let p = Ppp::new(inst);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xAB);
    let s = BitString::random(&mut rng, n);
    (p, s)
}

fn run_with<E: Explorer<Ppp>>(p: &Ppp, init: &BitString, ex: &mut E, iters: u64) -> SearchResult {
    let search =
        TabuSearch::paper(SearchConfig::budget(iters).with_seed(42), Explorer::<Ppp>::size(ex));
    search.run(p, ex, init.clone())
}

#[test]
fn tabu_identical_across_backends_all_k() {
    let (p, init) = setup(27, 23, 5);
    for k in 1..=3usize {
        let hood = KHamming::new(23, k);
        let mut seq = SequentialExplorer::new(hood);
        let mut par = ParallelCpuExplorer::new(hood, 4);
        let mut gpu = PppGpuExplorer::new(&p, k, GpuExplorerConfig::default());

        let r_seq = run_with(&p, &init, &mut seq, 30);
        let r_par = run_with(&p, &init, &mut par, 30);
        let r_gpu = run_with(&p, &init, &mut gpu, 30);

        assert_eq!(r_seq.best_fitness, r_par.best_fitness, "k={k} par");
        assert_eq!(r_seq.best, r_par.best, "k={k} par solution");
        assert_eq!(r_seq.best_fitness, r_gpu.best_fitness, "k={k} gpu");
        assert_eq!(r_seq.best, r_gpu.best, "k={k} gpu solution");
        assert_eq!(r_seq.iterations, r_gpu.iterations, "k={k} gpu iterations");
    }
}

#[test]
fn gpu_backend_prices_every_iteration() {
    let (p, init) = setup(21, 21, 9);
    let mut gpu = PppGpuExplorer::new(&p, 2, GpuExplorerConfig::default());
    let r = run_with(&p, &init, &mut gpu, 25);
    let book = r.book.expect("priced");
    assert_eq!(book.launches, r.iterations);
    // Per-iteration traffic: solution bits + Y + histogram up, fitness
    // array down — all nonzero.
    assert!(book.bytes_h2d > 0);
    assert!(book.bytes_d2h > 0);
    assert!(book.kernel_s > 0.0);
    assert!(book.host_s > 0.0);
}

#[test]
fn device_spec_changes_timing_not_results() {
    let (p, init) = setup(25, 19, 11);
    let mut gtx = PppGpuExplorer::new(
        &p,
        2,
        GpuExplorerConfig { spec: DeviceSpec::gtx280(), ..Default::default() },
    );
    let mut g80 = PppGpuExplorer::new(
        &p,
        2,
        GpuExplorerConfig { spec: DeviceSpec::g80(), ..Default::default() },
    );
    let r_gtx = run_with(&p, &init, &mut gtx, 20);
    let r_g80 = run_with(&p, &init, &mut g80, 20);
    assert_eq!(r_gtx.best, r_g80.best, "results must be device-independent");
    let (b1, b2) = (r_gtx.book.unwrap(), r_g80.book.unwrap());
    assert_ne!(b1.gpu_total_s(), b2.gpu_total_s(), "timing must be device-dependent");
}

#[test]
fn block_size_changes_timing_not_results() {
    let (p, init) = setup(23, 21, 13);
    let mut bs64 =
        PppGpuExplorer::new(&p, 2, GpuExplorerConfig { block_size: 64, ..Default::default() });
    let mut bs256 =
        PppGpuExplorer::new(&p, 2, GpuExplorerConfig { block_size: 256, ..Default::default() });
    let a = run_with(&p, &init, &mut bs64, 15);
    let b = run_with(&p, &init, &mut bs256, 15);
    assert_eq!(a.best, b.best);
    assert_eq!(a.best_fitness, b.best_fitness);
}
