//! # lnls — Large Neighborhood Local Search on (simulated) GPUs
//!
//! A production-grade Rust reproduction of **Luong, Melab & Talbi,
//! "Large Neighborhood Local Search Optimization on Graphics Processing
//! Units"** (Workshop on Large-Scale Parallel Processing @ IPDPS 2010).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`neighborhood`] | 1/2/3/k-Hamming neighborhoods and the thread-id ↔ move mappings (paper §II–III, appendices A–D) |
//! | [`gpu`] | cycle-approximate functional GPU simulator with a GTX 280 timing model (the hardware substitution) |
//! | [`core`] | the local-search framework: tabu search, hill climbing, SA, ILS, VNS over pluggable exploration backends |
//! | [`ppp`] | the Permuted Perceptron Problem: instances, objective, incremental evaluation, GPU kernels (paper §IV) |
//! | [`problems`] | OneMax, QUBO, MAX-3SAT, NK landscapes, Max-Cut, knapsack, Ising — the "binary problems" generality claim, with GPU kernels |
//! | [`qap`] | the quadratic assignment problem under Taillard's robust tabu search (the paper's reference \[11\]), swap moves flat-indexed by the paper's 2D mapping |
//! | [`lns`] | large neighborhood search: destroy-and-repair cursors with an adaptive destroy radius, plus a tabu/SA/descent portfolio race — the "large neighborhood" idea applied to the *search* as well as its exploration |
//! | [`runtime`] | the fleet scheduler: batched multi-tenant search jobs over simulated multi-GPU devices, with checkpoint/resume, time-series telemetry, structured event tracing, a metrics registry and throughput reporting (§V perspective, scaled out) |
//! | [`shard`] | horizontal sharding: consistent-hash tenant placement, deterministic shard-level work stealing, per-shard delta checkpoints, versioned shard config, and a true-parallel worker-thread runtime that stays bit-identical to the serial path |
//! | [`workload`] | the scenario catalog, deterministic traffic generator, record/replay driver and what-if trace analytics that stress-test the runtime |
//!
//! ## Quickstart
//!
//! ```
//! use lnls::prelude::*;
//!
//! // A small PPP instance (the paper's application) …
//! let instance = PppInstance::generate(25, 25, 7);
//! let problem = Ppp::new(instance);
//!
//! // … a 2-Hamming neighborhood explored on the simulated GTX 280 …
//! let mut explorer = PppGpuExplorer::new(&problem, 2, GpuExplorerConfig::default());
//!
//! // … driven by the paper's tabu search.
//! let hood_size = Neighborhood::size(&TwoHamming::new(25));
//! let search = TabuSearch::paper(SearchConfig::budget(150).with_seed(1), hood_size);
//! let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
//! let init = BitString::random(&mut rng, 25);
//! let result = search.run(&problem, &mut explorer, init);
//!
//! println!("best fitness {} after {} iterations", result.best_fitness, result.iterations);
//! let book = result.book.expect("GPU runs are priced");
//! println!("modeled speedup: x{:.1}", book.speedup().unwrap_or(0.0));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use lnls_core as core;
pub use lnls_gpu_sim as gpu;
pub use lnls_lns as lns;
pub use lnls_neighborhood as neighborhood;
pub use lnls_ppp as ppp;
pub use lnls_problems as problems;
pub use lnls_qap as qap;
pub use lnls_runtime as runtime;
pub use lnls_shard as shard;
pub use lnls_workload as workload;

/// One-stop imports for applications.
pub mod prelude {
    pub use lnls_core::prelude::*;
    pub use lnls_core::{
        fmt_seconds, GeneralVns, HillClimbing, IteratedLocalSearch, SimulatedAnnealing,
        VariableNeighborhoodSearch,
    };
    pub use lnls_gpu_sim::{
        Device, DeviceSpec, EngineConfig, ExecMode, HostSpec, LaunchConfig, LaunchMode,
        MultiDevice, SelectionMode,
    };
    pub use lnls_lns::{AdaptiveRadius, DestroyOp, LnsSearch, PortfolioOutcome, PortfolioSearch};
    pub use lnls_neighborhood::{
        FlipMove, KHamming, Neighborhood, OneHamming, ThreeHamming, TwoHamming, UnionHamming,
    };
    pub use lnls_ppp::{GpuExplorerConfig, Ppp, PppGpuExplorer, PppInstance};
    pub use lnls_problems::{IsingLattice, Knapsack, MaxCut, MaxSat, NkLandscape, OneMax, Qubo};
    pub use lnls_qap::{QapInstance, RobustTabu, RtsConfig, TableEvaluator};
    pub use lnls_runtime::ConcurrencyLimiter;
    pub use lnls_runtime::{
        chrome_trace, tenant_summaries, AdmissionPolicy, AnnealJob, BinaryJob, EventRecord,
        EventSink, FleetCheckpoint, FleetClient, FleetEvent, FleetReport, Histogram, JobHandle,
        JobOutcome, JobRegistry, JobReport, JobSpec, JobStatus, JsonlSink, LnsJob, MetricsRegistry,
        PlacePolicy, PortfolioJob, QapJobSpec, RejectReason, RingSink, Scheduler, SchedulerConfig,
        SearchJob, SubmitError, Telemetry, TenantStat, TenantSummary, TickSample,
    };
    pub use lnls_runtime::{
        CheckpointError, CheckpointStore, DeltaCheckpointer, SnapshotKind, SnapshotStats, StolenJob,
    };
    pub use lnls_shard::{
        HashRing, ParallelFleet, ShardConfig, ShardedFleet, UnknownConfigVersion, CONFIG_VERSION,
    };
    pub use lnls_workload::{
        Driver, Scenario, Trace, TrafficGen, UnknownScenario, Variant, VariantOutcome, WhatIf,
        WhatIfReport, WorkloadReport,
    };
}
