//! Swap-move deltas for the QAP objective.
//!
//! `swap_delta` is the classical O(n) formula (valid for asymmetric
//! instances); [`DeltaTable`] maintains all `C(n,2)` deltas across
//! committed moves with Taillard's O(1) update for pairs disjoint from
//! the applied swap — the data structure at the heart of robust tabu
//! search (the paper's reference \[11\]).
//!
//! Table entries are flat-indexed with the *paper's own* triangular
//! mapping (`rank2`/`unrank2`, Appendices A–B): the same bijection that
//! maps GPU thread ids to 2-Hamming moves maps swap moves here, which
//! is precisely the generality claim of §III.

use crate::instance::QapInstance;
use crate::permutation::Permutation;
use lnls_neighborhood::mapping2d::{rank2, size2, unrank2};

/// Exact cost change of swapping facilities `r` and `s` in `p` — O(n).
///
/// # Panics
/// Panics if `r == s` or either index is out of range.
pub fn swap_delta(inst: &QapInstance, p: &Permutation, r: usize, s: usize) -> i64 {
    let n = inst.size();
    assert!(r < n && s < n && r != s, "bad swap ({r},{s})");
    let (pr, ps) = (p.get(r), p.get(s));
    let mut d = inst.flow(r, r) * (inst.dist(ps, ps) - inst.dist(pr, pr))
        + inst.flow(r, s) * (inst.dist(ps, pr) - inst.dist(pr, ps))
        + inst.flow(s, r) * (inst.dist(pr, ps) - inst.dist(ps, pr))
        + inst.flow(s, s) * (inst.dist(pr, pr) - inst.dist(ps, ps));
    for k in 0..n {
        if k == r || k == s {
            continue;
        }
        let pk = p.get(k);
        d += inst.flow(k, r) * (inst.dist(pk, ps) - inst.dist(pk, pr))
            + inst.flow(k, s) * (inst.dist(pk, pr) - inst.dist(pk, ps))
            + inst.flow(r, k) * (inst.dist(ps, pk) - inst.dist(pr, pk))
            + inst.flow(s, k) * (inst.dist(pr, pk) - inst.dist(ps, pk));
    }
    d
}

/// All-pairs swap deltas, kept current across committed moves.
///
/// After a swap `(r,s)` is applied, entries for pairs disjoint from
/// `{r,s}` update in O(1) (Taillard's formula); the `2n−3` pairs
/// touching `r` or `s` are recomputed with [`swap_delta`]. One commit
/// therefore costs O(n²) total for the table — amortized O(1) per
/// neighbor, which is what makes exhaustive swap neighborhoods viable
/// on the CPU at all.
#[derive(Clone, Debug)]
pub struct DeltaTable {
    n: usize,
    delta: Vec<i64>,
}

impl DeltaTable {
    /// Build the table for `p` — O(n³).
    pub fn new(inst: &QapInstance, p: &Permutation) -> Self {
        let n = inst.size();
        let mut delta = vec![0i64; size2(n as u64) as usize];
        for r in 0..n {
            for s in (r + 1)..n {
                delta[rank2(n as u64, r as u64, s as u64) as usize] = swap_delta(inst, p, r, s);
            }
        }
        Self { n, delta }
    }

    /// Number of swap moves tracked.
    pub fn len(&self) -> usize {
        self.delta.len()
    }

    /// True when `n < 2` (no swaps exist).
    pub fn is_empty(&self) -> bool {
        self.delta.is_empty()
    }

    /// Delta of the swap `(r, s)`; order-insensitive.
    #[inline]
    pub fn get(&self, r: usize, s: usize) -> i64 {
        let (a, b) = if r < s { (r, s) } else { (s, r) };
        self.delta[rank2(self.n as u64, a as u64, b as u64) as usize]
    }

    /// Delta by flat move index (the GPU thread-id view).
    #[inline]
    pub fn get_flat(&self, index: u64) -> i64 {
        self.delta[index as usize]
    }

    /// Decode a flat index into the swap it denotes.
    pub fn unrank(&self, index: u64) -> (usize, usize) {
        let (i, j) = unrank2(self.n as u64, index);
        (i as usize, j as usize)
    }

    /// The move with the minimum delta, with its flat index
    /// (ties: lowest index).
    pub fn argmin(&self) -> (u64, i64) {
        let mut best = (0u64, i64::MAX);
        for (i, &d) in self.delta.iter().enumerate() {
            if d < best.1 {
                best = (i as u64, d);
            }
        }
        best
    }

    /// Refresh the table across the commit of swap `(r, s)`.
    ///
    /// `p` must still be the **pre-swap** permutation; the caller
    /// applies the swap to `p` afterwards.
    pub fn commit(&mut self, inst: &QapInstance, p: &Permutation, r: usize, s: usize) {
        let n = self.n;
        let (a, b) = if r < s { (r, s) } else { (s, r) };
        let (pa, pb) = (p.get(a), p.get(b));
        // O(1) Taillard update for disjoint pairs (u, v).
        for u in 0..n {
            if u == a || u == b {
                continue;
            }
            let pu = p.get(u);
            for v in (u + 1)..n {
                if v == a || v == b {
                    continue;
                }
                let pv = p.get(v);
                let idx = rank2(n as u64, u as u64, v as u64) as usize;
                // δ_q(u,v) − δ_p(u,v), derived by cancelling the k ∉
                // {a,b} terms of the O(n) formula (only facilities a and
                // b changed location):
                let t1 = (inst.flow(a, u) - inst.flow(a, v) + inst.flow(b, v) - inst.flow(b, u))
                    * (inst.dist(pb, pv) - inst.dist(pb, pu) + inst.dist(pa, pu)
                        - inst.dist(pa, pv));
                let t2 = (inst.flow(u, a) - inst.flow(v, a) + inst.flow(v, b) - inst.flow(u, b))
                    * (inst.dist(pv, pb) - inst.dist(pu, pb) + inst.dist(pu, pa)
                        - inst.dist(pv, pa));
                self.delta[idx] += t1 + t2;
            }
        }
        // Pairs touching the swap: recompute exactly on the post-swap
        // permutation.
        let mut q = p.clone();
        q.swap(a, b);
        for u in 0..n {
            for &t in &[a, b] {
                if u == t {
                    continue;
                }
                let (x, y) = if u < t { (u, t) } else { (t, u) };
                self.delta[rank2(n as u64, x as u64, y as u64) as usize] =
                    swap_delta(inst, &q, x, y);
            }
        }
        // (a,b) itself: its delta simply negates for symmetric
        // instances, but recompute for generality.
        self.delta[rank2(n as u64, a as u64, b as u64) as usize] = swap_delta(inst, &q, a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_table(inst: &QapInstance, p: &Permutation, table: &DeltaTable) {
        let n = inst.size();
        let base = inst.cost(p);
        for r in 0..n {
            for s in (r + 1)..n {
                let mut q = p.clone();
                q.swap(r, s);
                assert_eq!(table.get(r, s), inst.cost(&q) - base, "pair ({r},{s}) stale");
            }
        }
    }

    #[test]
    fn swap_delta_matches_full_recompute_asymmetric() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = QapInstance::random_uniform(&mut rng, 9);
        let p = Permutation::random(&mut rng, 9);
        let base = inst.cost(&p);
        for r in 0..9 {
            for s in 0..9 {
                if r == s {
                    continue;
                }
                let mut q = p.clone();
                q.swap(r, s);
                assert_eq!(swap_delta(&inst, &p, r, s), inst.cost(&q) - base, "({r},{s})");
            }
        }
    }

    #[test]
    fn table_initializes_exactly() {
        let mut rng = StdRng::seed_from_u64(2);
        let inst = QapInstance::random_uniform(&mut rng, 8);
        let p = Permutation::random(&mut rng, 8);
        check_table(&inst, &p, &DeltaTable::new(&inst, &p));
    }

    #[test]
    fn table_stays_exact_across_commits_asymmetric() {
        let mut rng = StdRng::seed_from_u64(3);
        let inst = QapInstance::random_uniform(&mut rng, 10);
        let mut p = Permutation::random(&mut rng, 10);
        let mut table = DeltaTable::new(&inst, &p);
        for step in 0..30 {
            let r = rng.gen_range(0..10);
            let mut s = rng.gen_range(0..10);
            while s == r {
                s = rng.gen_range(0..10);
            }
            table.commit(&inst, &p, r, s);
            p.swap(r, s);
            check_table(&inst, &p, &table);
            let _ = step;
        }
    }

    #[test]
    fn table_stays_exact_across_commits_symmetric() {
        let mut rng = StdRng::seed_from_u64(4);
        let inst = QapInstance::random_symmetric(&mut rng, 9);
        let mut p = Permutation::random(&mut rng, 9);
        let mut table = DeltaTable::new(&inst, &p);
        for _ in 0..25 {
            let (idx, _) = table.argmin();
            let (r, s) = table.unrank(idx);
            table.commit(&inst, &p, r, s);
            p.swap(r, s);
            check_table(&inst, &p, &table);
        }
    }

    #[test]
    fn argmin_agrees_with_flat_indexing() {
        let mut rng = StdRng::seed_from_u64(5);
        let inst = QapInstance::random_uniform(&mut rng, 7);
        let p = Permutation::random(&mut rng, 7);
        let table = DeltaTable::new(&inst, &p);
        let (idx, val) = table.argmin();
        assert_eq!(table.get_flat(idx), val);
        let (r, s) = table.unrank(idx);
        assert_eq!(table.get(r, s), val);
        for i in 0..table.len() as u64 {
            assert!(table.get_flat(i) >= val);
        }
    }
}
