//! Permutation solutions for assignment-type problems.
//!
//! `p[i] = j` reads "facility `i` is placed at location `j`". The swap
//! neighborhood exchanges the locations of two facilities — `C(n,2)`
//! moves, flat-indexed with the *same* triangular mapping the paper
//! derives for the 2-Hamming neighborhood (Appendices A–B), which is
//! how this crate demonstrates the mappings are encoding-agnostic.

use lnls_core::Persist;
use rand::Rng;

/// A permutation of `0..n`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Permutation {
    p: Vec<u32>,
}

impl Permutation {
    /// The identity permutation of length `n`.
    pub fn identity(n: usize) -> Self {
        Self { p: (0..n as u32).collect() }
    }

    /// A uniformly random permutation (Fisher–Yates).
    pub fn random<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Self {
        let mut p: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            p.swap(i, rng.gen_range(0..=i));
        }
        Self { p }
    }

    /// Build from an explicit assignment vector.
    ///
    /// # Panics
    /// Panics if `p` is not a permutation of `0..p.len()`.
    pub fn from_vec(p: Vec<u32>) -> Self {
        let n = p.len();
        let mut seen = vec![false; n];
        for &v in &p {
            assert!((v as usize) < n, "entry {v} out of range");
            assert!(!seen[v as usize], "duplicate entry {v}");
            seen[v as usize] = true;
        }
        Self { p }
    }

    /// Length `n`.
    pub fn len(&self) -> usize {
        self.p.len()
    }

    /// True for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.p.is_empty()
    }

    /// Location of facility `i`.
    #[inline]
    pub fn get(&self, i: usize) -> usize {
        self.p[i] as usize
    }

    /// The raw assignment slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.p
    }

    /// Exchange the locations of facilities `r` and `s`.
    #[inline]
    pub fn swap(&mut self, r: usize, s: usize) {
        self.p.swap(r, s);
    }

    /// The inverse permutation (`inv[p[i]] = i`).
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0u32; self.p.len()];
        for (i, &v) in self.p.iter().enumerate() {
            inv[v as usize] = i as u32;
        }
        Permutation { p: inv }
    }
}

impl std::fmt::Display for Permutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.p.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl Persist for Permutation {
    fn write(&self, out: &mut Vec<u8>) {
        self.as_slice().to_vec().write(out);
    }
    fn read(r: &mut lnls_core::Reader<'_>) -> Result<Self, lnls_core::PersistError> {
        let p: Vec<u32> = r.read()?;
        let n = p.len();
        let mut seen = vec![false; n];
        for &v in &p {
            if (v as usize) >= n || seen[v as usize] {
                return Err(lnls_core::PersistError("not a permutation".into()));
            }
            seen[v as usize] = true;
        }
        Ok(Self::from_vec(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_and_inverse() {
        let id = Permutation::identity(5);
        assert_eq!(id.inverse(), id);
        let p = Permutation::from_vec(vec![2, 0, 1]);
        let inv = p.inverse();
        for i in 0..3 {
            assert_eq!(inv.get(p.get(i)), i);
        }
    }

    #[test]
    fn random_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 7, 40] {
            let p = Permutation::random(&mut rng, n);
            let mut sorted: Vec<u32> = p.as_slice().to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn swap_exchanges() {
        let mut p = Permutation::identity(4);
        p.swap(1, 3);
        assert_eq!(p.as_slice(), &[0, 3, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_rejected() {
        let _ = Permutation::from_vec(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let _ = Permutation::from_vec(vec![0, 3]);
    }

    #[test]
    fn display_formats() {
        let p = Permutation::from_vec(vec![1, 0]);
        assert_eq!(p.to_string(), "[1 0]");
    }
}
