//! # lnls-qap — the quadratic assignment problem under robust tabu search
//!
//! The LS paper's tabu search *is* Taillard's robust taboo search for
//! the QAP (its reference \[11\]), transplanted to binary problems. This
//! crate implements the algorithm in its original habitat and runs its
//! swap neighborhood through the same machinery the paper built for
//! binary strings:
//!
//! * the `C(n,2)` swap moves are flat-indexed with the **paper's own
//!   triangular mapping** (Appendices A–B via
//!   `lnls_neighborhood::mapping2d`) — one thread id ↔ one swap;
//! * the full-neighborhood scan runs either on the host (Taillard's
//!   O(1)-amortized [`DeltaTable`]) or on the simulated GPU
//!   ([`GpuSwapEvaluator`], one thread per swap — the paper's
//!   `MoveIncrEvalKernel` pattern);
//! * [`RobustTabu`] drives the search with randomized tenures in
//!   `[0.9n, 1.1n]` and aspiration, per the 1991 paper.
//!
//! ```
//! use lnls_qap::{Permutation, QapInstance, RobustTabu, RtsConfig, TableEvaluator};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let inst = QapInstance::random_symmetric(&mut rng, 8);
//! let (optimum, _) = inst.brute_force_optimum();
//! let rts = RobustTabu::new(RtsConfig::budget(2_000).with_target(Some(optimum)));
//! let init = Permutation::random(&mut rng, 8);
//! let result = rts.run(&inst, &mut TableEvaluator::new(), init);
//! assert_eq!(result.best_cost, optimum);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gpu;
pub mod instance;
pub mod objective;
pub mod permutation;
pub mod rts;

pub use gpu::{GpuSwapEvaluator, QapSwapKernel};
pub use instance::QapInstance;
pub use objective::{swap_delta, DeltaTable};
pub use permutation::Permutation;
pub use rts::{
    FreshEvaluator, RobustTabu, RtsConfig, RtsCursor, RtsResult, SwapEvaluator, TableEvaluator,
};
