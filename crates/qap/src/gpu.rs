//! The QAP swap-neighborhood kernel on the simulated GPU.
//!
//! One thread per swap (`C(n,2)` threads), exactly the paper's
//! `MoveIncrEvalKernel` pattern: the thread id is decoded into the swap
//! `(r,s)` with the one-to-two transformation of Appendix B (the same
//! `sqrtf` mapping as Fig. 9 — swaps and 2-Hamming moves share the
//! triangular index space), then the O(n) delta formula is evaluated
//! against device-resident `F`/`D` (texture) and the current assignment
//! (global, re-uploaded per iteration).
//!
//! [`GpuSwapEvaluator`] plugs the kernel into
//! [`RobustTabu`](crate::rts::RobustTabu) via the
//! [`crate::rts::SwapEvaluator`] trait, giving the full
//! GPU-resident search loop of the paper on the QAP.

use crate::instance::QapInstance;
use crate::permutation::Permutation;
use crate::rts::SwapEvaluator;
use lnls_gpu_sim::{
    Device, DeviceBuffer, DeviceSpec, ExecMode, Kernel, LaunchConfig, MemSpace, ThreadCtx, TimeBook,
};
use lnls_neighborhood::mapping2d::{size2, unrank2};
use std::time::{Duration, Instant};

/// Swap-delta kernel: `out[idx] = Δcost of swap unrank2(idx)`.
pub struct QapSwapKernel {
    /// Problem size.
    pub n: u32,
    /// Swaps evaluated by this launch (`C(n,2)` for a full scan).
    pub msize: u64,
    /// Row-major flows (texture).
    pub f: DeviceBuffer<i64>,
    /// Row-major distances (texture).
    pub d: DeviceBuffer<i64>,
    /// Current assignment `p` (global).
    pub p: DeviceBuffer<u32>,
    /// Output delta per flat swap index.
    pub out: DeviceBuffer<i64>,
}

impl Kernel for QapSwapKernel {
    fn name(&self) -> &'static str {
        "qap_swap_eval"
    }

    fn profile_key(&self) -> u64 {
        0x514150 ^ self.n as u64 // "QAP"
    }

    fn run<C: ThreadCtx>(&self, ctx: &mut C, _phase: u32) {
        let tid = ctx.id().global();
        if !ctx.branch(tid < self.msize) {
            return;
        }
        ctx.sfu(1); // sqrtf of the Appendix B unranking
        ctx.alu(10);
        let (r, s) = unrank2(self.n as u64, tid);
        let (r, s) = (r as usize, s as usize);
        let n = self.n as usize;

        let pr = ctx.ld(&self.p, r) as usize;
        let ps = ctx.ld(&self.p, s) as usize;

        let frr = ctx.ld(&self.f, r * n + r);
        let fss = ctx.ld(&self.f, s * n + s);
        let frs = ctx.ld(&self.f, r * n + s);
        let fsr = ctx.ld(&self.f, s * n + r);
        let dpp = ctx.ld(&self.d, pr * n + pr);
        let dss = ctx.ld(&self.d, ps * n + ps);
        let dps = ctx.ld(&self.d, pr * n + ps);
        let dsp = ctx.ld(&self.d, ps * n + pr);
        ctx.alu(12);
        let mut delta =
            frr * (dss - dpp) + frs * (dsp - dps) + fsr * (dps - dsp) + fss * (dpp - dss);

        for k in 0..n {
            if !ctx.branch(k != r && k != s) {
                continue;
            }
            let pk = ctx.ld(&self.p, k) as usize;
            let fkr = ctx.ld(&self.f, k * n + r);
            let fks = ctx.ld(&self.f, k * n + s);
            let frk = ctx.ld(&self.f, r * n + k);
            let fsk = ctx.ld(&self.f, s * n + k);
            let dkp = ctx.ld(&self.d, pk * n + pr);
            let dks = ctx.ld(&self.d, pk * n + ps);
            let dpk = ctx.ld(&self.d, pr * n + pk);
            let dsk = ctx.ld(&self.d, ps * n + pk);
            ctx.alu(12);
            delta += fkr * (dks - dkp) + fks * (dkp - dks) + frk * (dsk - dpk) + fsk * (dpk - dsk);
        }
        ctx.st(&self.out, tid as usize, delta);
    }
}

/// GPU-backed [`SwapEvaluator`]: `F`/`D` resident in texture memory,
/// the assignment re-uploaded each iteration, deltas computed on the
/// device and read back — the paper's iteration structure on the QAP.
pub struct GpuSwapEvaluator {
    n: usize,
    msize: u64,
    dev: Device,
    f: DeviceBuffer<i64>,
    d: DeviceBuffer<i64>,
    p: DeviceBuffer<u32>,
    out: DeviceBuffer<i64>,
    block_size: u32,
    scratch: Vec<i64>,
    wall: Duration,
}

impl GpuSwapEvaluator {
    /// Build for `inst` on the given device spec.
    pub fn new(inst: &QapInstance, spec: DeviceSpec) -> Self {
        let n = inst.size();
        let msize = size2(n as u64);
        let mut dev = Device::new(spec);
        let f = dev.upload_new(inst.flows(), MemSpace::Texture, "qap_f");
        let d = dev.upload_new(inst.dists(), MemSpace::Texture, "qap_d");
        let p = dev.alloc_zeroed::<u32>(n, MemSpace::Global, "qap_p");
        let out = dev.alloc_zeroed::<i64>(msize as usize, MemSpace::Global, "qap_out");
        Self {
            n,
            msize,
            dev,
            f,
            d,
            p,
            out,
            block_size: 128,
            scratch: Vec::new(),
            wall: Duration::ZERO,
        }
    }

    /// The simulated device (ledger access).
    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// Threads per block for the scan kernel (ablations).
    pub fn set_block_size(&mut self, bs: u32) {
        self.block_size = bs.max(1);
    }
}

impl SwapEvaluator for GpuSwapEvaluator {
    fn deltas(&mut self, _inst: &QapInstance, p: &Permutation) -> &[i64] {
        let t0 = Instant::now();
        self.dev.upload(&self.p, p.as_slice());
        let kernel = QapSwapKernel {
            n: self.n as u32,
            msize: self.msize,
            f: self.f.clone(),
            d: self.d.clone(),
            p: self.p.clone(),
            out: self.out.clone(),
        };
        self.dev.launch(
            &kernel,
            LaunchConfig::cover_1d(self.msize, self.block_size),
            ExecMode::Auto,
        );
        self.dev.download_into(&self.out, &mut self.scratch);
        self.wall += t0.elapsed();
        &self.scratch
    }

    fn committed(&mut self, _: &QapInstance, _: &Permutation, _: usize, _: usize) {
        // Stateless between launches: the next `deltas` call re-uploads
        // the permutation, exactly like the paper's per-iteration V
        // upload.
    }

    fn book(&self) -> Option<TimeBook> {
        Some(self.dev.book().clone())
    }

    fn backend(&self) -> String {
        "gpu-sim/qap-swap".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::swap_delta;
    use crate::rts::{RobustTabu, RtsConfig, TableEvaluator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kernel_matches_host_deltas() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = QapInstance::random_uniform(&mut rng, 13);
        let p = Permutation::random(&mut rng, 13);
        let mut gpu = GpuSwapEvaluator::new(&inst, DeviceSpec::gtx280());
        let got = gpu.deltas(&inst, &p).to_vec();
        for (idx, &g) in got.iter().enumerate() {
            let (r, s) = unrank2(13, idx as u64);
            assert_eq!(g, swap_delta(&inst, &p, r as usize, s as usize), "idx={idx}");
        }
    }

    #[test]
    fn kernel_is_race_free() {
        let mut rng = StdRng::seed_from_u64(2);
        let inst = QapInstance::random_uniform(&mut rng, 9);
        let p = Permutation::random(&mut rng, 9);
        let mut dev = Device::new(DeviceSpec::gtx280());
        let f = dev.upload_new(inst.flows(), MemSpace::Texture, "f");
        let d = dev.upload_new(inst.dists(), MemSpace::Texture, "d");
        let pb = dev.upload_new(p.as_slice(), MemSpace::Global, "p");
        let msize = size2(9);
        let out = dev.alloc_zeroed::<i64>(msize as usize, MemSpace::Global, "out");
        let k = QapSwapKernel { n: 9, msize, f, d, p: pb, out };
        let rep = dev.launch(&k, LaunchConfig::cover_1d(msize, 32), ExecMode::Trace);
        assert!(rep.races.is_empty(), "{:?}", rep.races);
    }

    #[test]
    fn gpu_rts_matches_cpu_rts() {
        let mut rng = StdRng::seed_from_u64(3);
        let inst = QapInstance::random_symmetric(&mut rng, 10);
        let init = Permutation::random(&mut rng, 10);
        let rts = RobustTabu::new(RtsConfig::budget(80).with_seed(4));
        let cpu = rts.run(&inst, &mut TableEvaluator::new(), init.clone());
        let mut gpu_eval = GpuSwapEvaluator::new(&inst, DeviceSpec::gtx280());
        let gpu = rts.run(&inst, &mut gpu_eval, init);
        assert_eq!(cpu.best_cost, gpu.best_cost);
        assert_eq!(cpu.best, gpu.best);
        assert_eq!(cpu.iterations, gpu.iterations);
        // The GPU run must have priced its launches.
        let book = gpu.book.expect("time book");
        assert_eq!(book.launches, 80);
        assert!(book.bytes_h2d > 0 && book.bytes_d2h > 0);
    }

    #[test]
    fn gpu_speedup_grows_with_n() {
        // The paper's Fig. 8 shape on the QAP: modeled speedup at n=60
        // must exceed n=15 (more threads, better occupancy).
        let mut rng = StdRng::seed_from_u64(5);
        let ratio = |n: usize, rng: &mut StdRng| {
            let inst = QapInstance::random_uniform(rng, n);
            let p = Permutation::random(rng, n);
            let mut gpu = GpuSwapEvaluator::new(&inst, DeviceSpec::gtx280());
            let _ = gpu.deltas(&inst, &p);
            let book = SwapEvaluator::book(&gpu).unwrap();
            book.host_s / book.gpu_total_s()
        };
        let small = ratio(15, &mut rng);
        let large = ratio(60, &mut rng);
        assert!(large > small, "speedup must grow: n=15 ×{small}, n=60 ×{large}");
    }
}
