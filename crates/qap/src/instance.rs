//! QAP instances: flow matrix `F` between facilities, distance matrix
//! `D` between locations; cost of an assignment `p` is
//! `Σ_{i,j} F[i][j] · D[p[i]][p[j]]`.
//!
//! The generator follows Taillard's `taiXXa` recipe — uniform integer
//! flows and distances — which is the instance family his robust tabu
//! search paper (the LS paper's reference \[11\]) evaluates on. A small
//! text format (QAPLIB-style: `n`, then `F` row-major, then `D`)
//! round-trips instances without a serialization crate.

use crate::permutation::Permutation;
use lnls_core::Persist;
use rand::Rng;

/// A QAP instance with dense integer matrices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QapInstance {
    n: usize,
    /// Row-major flows (`n²`).
    f: Vec<i64>,
    /// Row-major distances (`n²`).
    d: Vec<i64>,
}

impl QapInstance {
    /// Build from explicit matrices.
    ///
    /// # Panics
    /// Panics on size mismatch or negative entries (QAPLIB instances
    /// are non-negative; deltas rely on no overflow).
    pub fn new(n: usize, f: Vec<i64>, d: Vec<i64>) -> Self {
        assert!(n >= 2, "need at least two facilities");
        assert_eq!(f.len(), n * n, "flow matrix must be n×n");
        assert_eq!(d.len(), n * n, "distance matrix must be n×n");
        assert!(f.iter().all(|&x| x >= 0), "negative flow");
        assert!(d.iter().all(|&x| x >= 0), "negative distance");
        Self { n, f, d }
    }

    /// Taillard-style uniform random instance: flows and distances
    /// uniform in `[0, 99]`, zero diagonals.
    pub fn random_uniform<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Self {
        let gen = |rng: &mut R| {
            let mut m = vec![0i64; n * n];
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        m[i * n + j] = rng.gen_range(0..=99);
                    }
                }
            }
            m
        };
        let f = gen(rng);
        let d = gen(rng);
        Self::new(n, f, d)
    }

    /// A symmetric instance (random symmetric `F`/`D`) — the variant
    /// Taillard's tabu search assumes for its O(1) delta-table update.
    pub fn random_symmetric<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Self {
        let gen = |rng: &mut R| {
            let mut m = vec![0i64; n * n];
            for i in 0..n {
                for j in (i + 1)..n {
                    let v = rng.gen_range(0..=99);
                    m[i * n + j] = v;
                    m[j * n + i] = v;
                }
            }
            m
        };
        let f = gen(rng);
        let d = gen(rng);
        Self::new(n, f, d)
    }

    /// Problem size `n`.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Flow between facilities `i` and `j`.
    #[inline]
    pub fn flow(&self, i: usize, j: usize) -> i64 {
        self.f[i * self.n + j]
    }

    /// Distance between locations `a` and `b`.
    #[inline]
    pub fn dist(&self, a: usize, b: usize) -> i64 {
        self.d[a * self.n + b]
    }

    /// Raw row-major flow matrix (device upload).
    pub fn flows(&self) -> &[i64] {
        &self.f
    }

    /// Raw row-major distance matrix (device upload).
    pub fn dists(&self) -> &[i64] {
        &self.d
    }

    /// True if both matrices are symmetric.
    pub fn is_symmetric(&self) -> bool {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if self.flow(i, j) != self.flow(j, i) || self.dist(i, j) != self.dist(j, i) {
                    return false;
                }
            }
        }
        true
    }

    /// Full objective: `Σ_{i,j} F[i][j] · D[p[i]][p[j]]`.
    pub fn cost(&self, p: &Permutation) -> i64 {
        assert_eq!(p.len(), self.n, "permutation length");
        let mut c = 0i64;
        for i in 0..self.n {
            for j in 0..self.n {
                c += self.flow(i, j) * self.dist(p.get(i), p.get(j));
            }
        }
        c
    }

    /// QAPLIB-style text serialization: `n`, blank line, `F` rows, blank
    /// line, `D` rows.
    pub fn save_to_string(&self) -> String {
        let mut s = format!("{}\n\n", self.n);
        let dump = |m: &[i64], s: &mut String| {
            for i in 0..self.n {
                let row: Vec<String> = (0..self.n).map(|j| m[i * self.n + j].to_string()).collect();
                s.push_str(&row.join(" "));
                s.push('\n');
            }
        };
        dump(&self.f, &mut s);
        s.push('\n');
        dump(&self.d, &mut s);
        s
    }

    /// Parse the text format produced by
    /// [`save_to_string`](Self::save_to_string) (whitespace-tolerant, as
    /// QAPLIB files are).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut nums = text
            .split_whitespace()
            .map(|t| t.parse::<i64>().map_err(|e| format!("bad token {t:?}: {e}")));
        let n = nums.next().ok_or("empty input")?? as usize;
        if n < 2 {
            return Err(format!("n = {n} too small"));
        }
        let mut take = |what: &str| -> Result<Vec<i64>, String> {
            let mut m = Vec::with_capacity(n * n);
            for k in 0..n * n {
                m.push(nums.next().ok_or(format!("{what} truncated at entry {k}"))??);
            }
            Ok(m)
        };
        let f = take("flow matrix")?;
        let d = take("distance matrix")?;
        if nums.next().is_some() {
            return Err("trailing tokens after matrices".to_string());
        }
        Ok(Self::new(n, f, d))
    }

    /// Exact optimum by exhaustive permutation enumeration — usable for
    /// `n ≤ 9`; cross-checks the searches.
    pub fn brute_force_optimum(&self) -> (i64, Permutation) {
        assert!(self.n <= 9, "brute force limited to n ≤ 9");
        let mut p: Vec<u32> = (0..self.n as u32).collect();
        let mut best_cost = i64::MAX;
        let mut best = p.clone();
        // Heap's algorithm, iterative.
        let mut c = vec![0usize; self.n];
        let eval = |perm: &[u32], inst: &Self| {
            let q = Permutation::from_vec(perm.to_vec());
            inst.cost(&q)
        };
        best_cost = best_cost.min(eval(&p, self));
        let mut i = 0;
        while i < self.n {
            if c[i] < i {
                if i % 2 == 0 {
                    p.swap(0, i);
                } else {
                    p.swap(c[i], i);
                }
                let cost = eval(&p, self);
                if cost < best_cost {
                    best_cost = cost;
                    best.copy_from_slice(&p);
                }
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
        (best_cost, Permutation::from_vec(best))
    }
}

impl Persist for QapInstance {
    fn write(&self, out: &mut Vec<u8>) {
        self.n.write(out);
        self.f.write(out);
        self.d.write(out);
    }
    fn read(r: &mut lnls_core::Reader<'_>) -> Result<Self, lnls_core::PersistError> {
        let n: usize = r.read()?;
        let f: Vec<i64> = r.read()?;
        let d: Vec<i64> = r.read()?;
        if n < 2 || f.len() != n * n || d.len() != n * n {
            return Err(lnls_core::PersistError("malformed QAP instance".into()));
        }
        if f.iter().chain(&d).any(|&x| x < 0) {
            return Err(lnls_core::PersistError("negative QAP matrix entry".into()));
        }
        Ok(Self::new(n, f, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> QapInstance {
        // n=3 hand instance.
        QapInstance::new(3, vec![0, 2, 3, 2, 0, 1, 3, 1, 0], vec![0, 5, 1, 5, 0, 4, 1, 4, 0])
    }

    #[test]
    fn cost_hand_checked() {
        let inst = tiny();
        let id = Permutation::identity(3);
        // Σ F_ij D_ij = 2·(2·5 + 3·1 + 1·4) = 34
        assert_eq!(inst.cost(&id), 34);
        let p = Permutation::from_vec(vec![1, 0, 2]);
        // pairs: (0,1):F=2,D(1,0)=5→10 ; (0,2):F=3,D(1,2)=4→12 ; (1,2):F=1,D(0,2)=1→1
        // symmetric doubling → 2·23 = 46
        assert_eq!(inst.cost(&p), 46);
    }

    #[test]
    fn brute_force_finds_global() {
        let mut rng = StdRng::seed_from_u64(3);
        let inst = QapInstance::random_uniform(&mut rng, 6);
        let (opt, p) = inst.brute_force_optimum();
        assert_eq!(inst.cost(&p), opt);
        // every permutation costs at least opt (spot check a few)
        for _ in 0..20 {
            let q = Permutation::random(&mut rng, 6);
            assert!(inst.cost(&q) >= opt);
        }
    }

    #[test]
    fn text_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        let inst = QapInstance::random_uniform(&mut rng, 7);
        let text = inst.save_to_string();
        let back = QapInstance::parse(&text).expect("parse");
        assert_eq!(back, inst);
    }

    #[test]
    fn parse_rejects_truncation() {
        let inst = tiny();
        let text = inst.save_to_string();
        let cut = &text[..text.len() - 4];
        assert!(QapInstance::parse(cut).is_err());
    }

    #[test]
    fn parse_rejects_trailing() {
        let mut text = tiny().save_to_string();
        text.push_str("\n42\n");
        assert!(QapInstance::parse(&text).is_err());
    }

    #[test]
    fn symmetric_generator_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(5);
        let inst = QapInstance::random_symmetric(&mut rng, 12);
        assert!(inst.is_symmetric());
        // uniform generator generally is not
        let inst2 = QapInstance::random_uniform(&mut rng, 12);
        let _ = inst2.is_symmetric(); // no assertion — just must not panic
    }

    #[test]
    #[should_panic(expected = "n×n")]
    fn wrong_size_rejected() {
        let _ = QapInstance::new(3, vec![0; 8], vec![0; 9]);
    }
}
