//! Taillard's robust tabu search (Parallel Computing 17, 1991) — the
//! algorithm the LS paper cites as its tabu search (reference \[11\]),
//! here in its native habitat: the QAP swap neighborhood.
//!
//! Per iteration, *all* `C(n,2)` swap deltas are consulted (the paper's
//! "generate and evaluate the full neighborhood" model), the best
//! admissible move is committed, and the reverse assignments are made
//! tabu for a tenure drawn uniformly from `[0.9n, 1.1n]` — the
//! randomized tenure is what makes the search "robust". A move is tabu
//! when **both** facilities would return to locations they occupied
//! within their tenure; an aspiration criterion admits any move that
//! improves on the best cost ever seen.

use crate::instance::QapInstance;
use crate::objective::DeltaTable;
use crate::permutation::Permutation;
use lnls_gpu_sim::TimeBook;
use lnls_neighborhood::mapping2d::unrank2;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Where the swap deltas come from: a host-side [`DeltaTable`]
/// (amortized O(1) per neighbor) or the simulated GPU
/// ([`GpuSwapEvaluator`](crate::gpu::GpuSwapEvaluator), one thread per
/// swap, O(n) each — the paper's kernel structure on this problem).
pub trait SwapEvaluator {
    /// All `C(n,2)` deltas for the current permutation, flat-indexed by
    /// the triangular mapping (Appendix A).
    fn deltas(&mut self, inst: &QapInstance, p: &Permutation) -> &[i64];

    /// Notify that the search committed swap `(r, s)`; `p` is the
    /// **pre-swap** permutation.
    fn committed(&mut self, inst: &QapInstance, p: &Permutation, r: usize, s: usize);

    /// Modeled time ledger, if the backend prices its work.
    fn book(&self) -> Option<TimeBook> {
        None
    }

    /// Backend name for reports.
    fn backend(&self) -> String;
}

/// Host evaluator backed by the incrementally maintained [`DeltaTable`].
pub struct TableEvaluator {
    table: Option<DeltaTable>,
    scratch: Vec<i64>,
}

impl TableEvaluator {
    /// An empty evaluator; the table initializes on first use.
    pub fn new() -> Self {
        Self { table: None, scratch: Vec::new() }
    }
}

impl Default for TableEvaluator {
    fn default() -> Self {
        Self::new()
    }
}

impl SwapEvaluator for TableEvaluator {
    fn deltas(&mut self, inst: &QapInstance, p: &Permutation) -> &[i64] {
        let table = self.table.get_or_insert_with(|| DeltaTable::new(inst, p));
        self.scratch.clear();
        self.scratch.extend((0..table.len() as u64).map(|i| table.get_flat(i)));
        &self.scratch
    }

    fn committed(&mut self, inst: &QapInstance, p: &Permutation, r: usize, s: usize) {
        if let Some(t) = self.table.as_mut() {
            t.commit(inst, p, r, s);
        }
    }

    fn backend(&self) -> String {
        "cpu-delta-table".into()
    }
}

/// Naive host evaluator recomputing every delta from scratch each
/// iteration — the O(n³)-per-iteration baseline the benches compare
/// against.
pub struct FreshEvaluator {
    scratch: Vec<i64>,
}

impl FreshEvaluator {
    /// A stateless evaluator.
    pub fn new() -> Self {
        Self { scratch: Vec::new() }
    }
}

impl Default for FreshEvaluator {
    fn default() -> Self {
        Self::new()
    }
}

impl SwapEvaluator for FreshEvaluator {
    fn deltas(&mut self, inst: &QapInstance, p: &Permutation) -> &[i64] {
        use crate::objective::swap_delta;
        let n = inst.size() as u64;
        let m = lnls_neighborhood::mapping2d::size2(n);
        self.scratch.clear();
        self.scratch.reserve(m as usize);
        for idx in 0..m {
            let (r, s) = unrank2(n, idx);
            self.scratch.push(swap_delta(inst, p, r as usize, s as usize));
        }
        &self.scratch
    }

    fn committed(&mut self, _: &QapInstance, _: &Permutation, _: usize, _: usize) {}

    fn backend(&self) -> String {
        "cpu-fresh".into()
    }
}

/// Knobs of the robust tabu search.
#[derive(Clone, Debug)]
pub struct RtsConfig {
    /// Iteration budget.
    pub max_iters: u64,
    /// Stop early at this cost (known optima / targets).
    pub target: Option<i64>,
    /// RNG seed (initial tenure draws only; the search is otherwise
    /// deterministic given the evaluator).
    pub seed: u64,
}

impl RtsConfig {
    /// Budgeted config with no target.
    pub fn budget(max_iters: u64) -> Self {
        Self { max_iters, target: None, seed: 0 }
    }

    /// Set the target cost (builder style).
    pub fn with_target(mut self, target: Option<i64>) -> Self {
        self.target = target;
        self
    }

    /// Set the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Outcome of one robust-tabu run.
#[derive(Clone, Debug)]
pub struct RtsResult {
    /// Best assignment found.
    pub best: Permutation,
    /// Its cost.
    pub best_cost: i64,
    /// Iterations executed.
    pub iterations: u64,
    /// Swap-delta evaluations consumed.
    pub evals: u64,
    /// True if the target cost was reached.
    pub success: bool,
    /// Modeled time ledger from the evaluator, if priced.
    pub book: Option<TimeBook>,
    /// Evaluator name.
    pub backend: String,
}

/// The robust tabu search driver.
pub struct RobustTabu {
    /// Search knobs.
    pub config: RtsConfig,
}

impl RobustTabu {
    /// A driver with the given config.
    pub fn new(config: RtsConfig) -> Self {
        Self { config }
    }

    /// Run from `init` using `eval` for the neighborhood scans.
    pub fn run<E: SwapEvaluator>(
        &self,
        inst: &QapInstance,
        eval: &mut E,
        init: Permutation,
    ) -> RtsResult {
        let n = inst.size();
        assert_eq!(init.len(), n, "permutation/instance size mismatch");
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut p = init;
        let mut cost = inst.cost(&p);
        let mut best = p.clone();
        let mut best_cost = cost;
        // tabu_until[i * n + loc]: first iteration at which facility i may
        // return to location loc.
        let mut tabu_until = vec![0u64; n * n];
        let mut iterations = 0u64;
        let mut evals = 0u64;

        let (lo, hi) = (((9 * n) / 10).max(1) as u64, ((11 * n) / 10).max(2) as u64);

        while iterations < self.config.max_iters {
            if self.config.target.is_some_and(|t| best_cost <= t) {
                break;
            }
            let deltas = eval.deltas(inst, &p);
            evals += deltas.len() as u64;

            // Best admissible move: not tabu, or aspirating.
            let mut chosen: Option<(u64, i64)> = None;
            for (idx, &d) in deltas.iter().enumerate() {
                let (r, s) = unrank2(n as u64, idx as u64);
                let (r, s) = (r as usize, s as usize);
                let tabu = tabu_until[r * n + p.get(s)] > iterations
                    && tabu_until[s * n + p.get(r)] > iterations;
                let aspirates = cost + d < best_cost;
                if tabu && !aspirates {
                    continue;
                }
                if chosen.is_none_or(|(_, bd)| d < bd) {
                    chosen = Some((idx as u64, d));
                }
            }
            // Fully tabu neighborhood: take the absolute best (rare;
            // keeps the walk alive like Taillard's implementation).
            let (idx, d) = chosen.unwrap_or_else(|| {
                deltas
                    .iter()
                    .enumerate()
                    .min_by_key(|&(i, d)| (*d, i))
                    .map(|(i, &d)| (i as u64, d))
                    .expect("non-empty neighborhood")
            });

            let (r, s) = unrank2(n as u64, idx);
            let (r, s) = (r as usize, s as usize);
            // Forbid sending the facilities back to their old places.
            let tenure_r = rng.gen_range(lo..=hi);
            let tenure_s = rng.gen_range(lo..=hi);
            tabu_until[r * n + p.get(r)] = iterations + 1 + tenure_r;
            tabu_until[s * n + p.get(s)] = iterations + 1 + tenure_s;

            eval.committed(inst, &p, r, s);
            p.swap(r, s);
            cost += d;
            iterations += 1;
            if cost < best_cost {
                best_cost = cost;
                best = p.clone();
            }
        }

        debug_assert_eq!(cost, inst.cost(&p), "incremental cost drifted");
        RtsResult {
            best,
            best_cost,
            iterations,
            evals,
            success: self.config.target.is_some_and(|t| best_cost <= t),
            book: eval.book(),
            backend: eval.backend(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rts_reaches_brute_force_optimum_symmetric() {
        let mut rng = StdRng::seed_from_u64(7);
        let inst = QapInstance::random_symmetric(&mut rng, 8);
        let (opt, _) = inst.brute_force_optimum();
        let rts = RobustTabu::new(RtsConfig::budget(2_000).with_target(Some(opt)));
        let init = Permutation::random(&mut rng, 8);
        let r = rts.run(&inst, &mut TableEvaluator::new(), init);
        assert_eq!(r.best_cost, opt, "missed optimum by {}", r.best_cost - opt);
        assert!(r.success);
        assert_eq!(inst.cost(&r.best), r.best_cost);
    }

    #[test]
    fn rts_reaches_brute_force_optimum_asymmetric() {
        let mut rng = StdRng::seed_from_u64(8);
        let inst = QapInstance::random_uniform(&mut rng, 7);
        let (opt, _) = inst.brute_force_optimum();
        let rts = RobustTabu::new(RtsConfig::budget(2_000).with_target(Some(opt)));
        let init = Permutation::identity(7);
        let r = rts.run(&inst, &mut TableEvaluator::new(), init);
        assert_eq!(r.best_cost, opt);
    }

    #[test]
    fn table_and_fresh_evaluators_agree_step_for_step() {
        let mut rng = StdRng::seed_from_u64(9);
        let inst = QapInstance::random_uniform(&mut rng, 9);
        let init = Permutation::random(&mut rng, 9);
        let rts = RobustTabu::new(RtsConfig::budget(120).with_seed(5));
        let a = rts.run(&inst, &mut TableEvaluator::new(), init.clone());
        let b = rts.run(&inst, &mut FreshEvaluator::new(), init);
        assert_eq!(a.best_cost, b.best_cost);
        assert_eq!(a.best, b.best);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn budget_respected_and_cost_consistent() {
        let mut rng = StdRng::seed_from_u64(10);
        let inst = QapInstance::random_uniform(&mut rng, 12);
        let rts = RobustTabu::new(RtsConfig::budget(37));
        let r = rts.run(&inst, &mut TableEvaluator::new(), Permutation::identity(12));
        assert_eq!(r.iterations, 37);
        assert_eq!(r.evals, 37 * 66); // C(12,2) = 66 per iteration
        assert_eq!(inst.cost(&r.best), r.best_cost);
    }

    #[test]
    fn tabu_forces_uphill_exploration() {
        // From a local optimum, plain best-improvement is stuck; RTS
        // must keep moving (uphill) and, thanks to the tabu matrix, not
        // oscillate on one swap. We check it visits > 2 distinct
        // permutations from a converged start.
        let mut rng = StdRng::seed_from_u64(11);
        let inst = QapInstance::random_symmetric(&mut rng, 6);
        let (opt, popt) = inst.brute_force_optimum();
        // Start exactly at the optimum: everything is uphill from here.
        let rts = RobustTabu::new(RtsConfig::budget(25));
        let r = rts.run(&inst, &mut TableEvaluator::new(), popt.clone());
        assert_eq!(r.best_cost, opt, "must keep the optimum as best");
        assert_eq!(r.iterations, 25, "search must keep walking uphill");
    }
}
