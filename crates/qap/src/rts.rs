//! Taillard's robust tabu search (Parallel Computing 17, 1991) — the
//! algorithm the LS paper cites as its tabu search (reference \[11\]),
//! here in its native habitat: the QAP swap neighborhood.
//!
//! Per iteration, *all* `C(n,2)` swap deltas are consulted (the paper's
//! "generate and evaluate the full neighborhood" model), the best
//! admissible move is committed, and the reverse assignments are made
//! tabu for a tenure drawn uniformly from `[0.9n, 1.1n]` — the
//! randomized tenure is what makes the search "robust". A move is tabu
//! when **both** facilities would return to locations they occupied
//! within their tenure; an aspiration criterion admits any move that
//! improves on the best cost ever seen.

use crate::instance::QapInstance;
use crate::objective::DeltaTable;
use crate::permutation::Permutation;
use lnls_core::persist::{Persist, PersistError, Reader};
use lnls_core::SearchCursor;
use lnls_gpu_sim::TimeBook;
use lnls_neighborhood::mapping2d::unrank2;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Where the swap deltas come from: a host-side [`DeltaTable`]
/// (amortized O(1) per neighbor) or the simulated GPU
/// ([`GpuSwapEvaluator`](crate::gpu::GpuSwapEvaluator), one thread per
/// swap, O(n) each — the paper's kernel structure on this problem).
pub trait SwapEvaluator {
    /// All `C(n,2)` deltas for the current permutation, flat-indexed by
    /// the triangular mapping (Appendix A).
    fn deltas(&mut self, inst: &QapInstance, p: &Permutation) -> &[i64];

    /// Notify that the search committed swap `(r, s)`; `p` is the
    /// **pre-swap** permutation.
    fn committed(&mut self, inst: &QapInstance, p: &Permutation, r: usize, s: usize);

    /// Modeled time ledger, if the backend prices its work.
    fn book(&self) -> Option<TimeBook> {
        None
    }

    /// Backend name for reports.
    fn backend(&self) -> String;
}

/// Host evaluator backed by the incrementally maintained [`DeltaTable`].
pub struct TableEvaluator {
    table: Option<DeltaTable>,
    scratch: Vec<i64>,
}

impl TableEvaluator {
    /// An empty evaluator; the table initializes on first use.
    pub fn new() -> Self {
        Self { table: None, scratch: Vec::new() }
    }
}

impl Default for TableEvaluator {
    fn default() -> Self {
        Self::new()
    }
}

impl SwapEvaluator for TableEvaluator {
    fn deltas(&mut self, inst: &QapInstance, p: &Permutation) -> &[i64] {
        let table = self.table.get_or_insert_with(|| DeltaTable::new(inst, p));
        self.scratch.clear();
        self.scratch.extend((0..table.len() as u64).map(|i| table.get_flat(i)));
        &self.scratch
    }

    fn committed(&mut self, inst: &QapInstance, p: &Permutation, r: usize, s: usize) {
        if let Some(t) = self.table.as_mut() {
            t.commit(inst, p, r, s);
        }
    }

    fn backend(&self) -> String {
        "cpu-delta-table".into()
    }
}

/// Naive host evaluator recomputing every delta from scratch each
/// iteration — the O(n³)-per-iteration baseline the benches compare
/// against.
pub struct FreshEvaluator {
    scratch: Vec<i64>,
}

impl FreshEvaluator {
    /// A stateless evaluator.
    pub fn new() -> Self {
        Self { scratch: Vec::new() }
    }
}

impl Default for FreshEvaluator {
    fn default() -> Self {
        Self::new()
    }
}

impl SwapEvaluator for FreshEvaluator {
    fn deltas(&mut self, inst: &QapInstance, p: &Permutation) -> &[i64] {
        use crate::objective::swap_delta;
        let n = inst.size() as u64;
        let m = lnls_neighborhood::mapping2d::size2(n);
        self.scratch.clear();
        self.scratch.reserve(m as usize);
        for idx in 0..m {
            let (r, s) = unrank2(n, idx);
            self.scratch.push(swap_delta(inst, p, r as usize, s as usize));
        }
        &self.scratch
    }

    fn committed(&mut self, _: &QapInstance, _: &Permutation, _: usize, _: usize) {}

    fn backend(&self) -> String {
        "cpu-fresh".into()
    }
}

/// Knobs of the robust tabu search.
#[derive(Clone, Debug)]
pub struct RtsConfig {
    /// Iteration budget.
    pub max_iters: u64,
    /// Stop early at this cost (known optima / targets).
    pub target: Option<i64>,
    /// RNG seed (initial tenure draws only; the search is otherwise
    /// deterministic given the evaluator).
    pub seed: u64,
}

impl RtsConfig {
    /// Budgeted config with no target.
    pub fn budget(max_iters: u64) -> Self {
        Self { max_iters, target: None, seed: 0 }
    }

    /// Set the target cost (builder style).
    pub fn with_target(mut self, target: Option<i64>) -> Self {
        self.target = target;
        self
    }

    /// Set the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Outcome of one robust-tabu run.
#[derive(Clone, Debug)]
pub struct RtsResult {
    /// Best assignment found.
    pub best: Permutation,
    /// Its cost.
    pub best_cost: i64,
    /// Iterations executed.
    pub iterations: u64,
    /// Swap-delta evaluations consumed.
    pub evals: u64,
    /// True if the target cost was reached.
    pub success: bool,
    /// Modeled time ledger from the evaluator, if priced.
    pub book: Option<TimeBook>,
    /// Evaluator name.
    pub backend: String,
}

impl Persist for RtsConfig {
    fn write(&self, out: &mut Vec<u8>) {
        self.max_iters.write(out);
        self.target.write(out);
        self.seed.write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(RtsConfig { max_iters: r.read()?, target: r.read()?, seed: r.read()? })
    }
}

impl Persist for RtsResult {
    fn write(&self, out: &mut Vec<u8>) {
        self.best.write(out);
        self.best_cost.write(out);
        self.iterations.write(out);
        self.evals.write(out);
        self.success.write(out);
        self.book.write(out);
        self.backend.write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(RtsResult {
            best: r.read()?,
            best_cost: r.read()?,
            iterations: r.read()?,
            evals: r.read()?,
            success: r.read()?,
            book: r.read()?,
            backend: r.read()?,
        })
    }
}

/// The robust tabu search driver.
pub struct RobustTabu {
    /// Search knobs.
    pub config: RtsConfig,
}

impl RobustTabu {
    /// A driver with the given config.
    pub fn new(config: RtsConfig) -> Self {
        Self { config }
    }

    /// Build a resumable [`RtsCursor`] positioned at `init`.
    ///
    /// The cursor owns every piece of loop-carried state — the tabu
    /// matrix and the tenure RNG included — so QAP runs can be stepped a
    /// quantum at a time, checkpointed mid-run and resumed on a
    /// different evaluator without changing a single swap.
    /// [`run`](Self::run) is implemented on top of it.
    pub fn cursor(&self, inst: &QapInstance, init: Permutation) -> RtsCursor {
        let n = inst.size();
        assert_eq!(init.len(), n, "permutation/instance size mismatch");
        let cost = inst.cost(&init);
        RtsCursor {
            config: self.config.clone(),
            rng: StdRng::seed_from_u64(self.config.seed),
            best: init.clone(),
            best_cost: cost,
            p: init,
            cost,
            tabu_until: vec![0u64; n * n],
            iterations: 0,
            evals: 0,
            lo: ((9 * n) / 10).max(1) as u64,
            hi: ((11 * n) / 10).max(2) as u64,
        }
    }

    /// Run from `init` using `eval` for the neighborhood scans.
    pub fn run<E: SwapEvaluator>(
        &self,
        inst: &QapInstance,
        eval: &mut E,
        init: Permutation,
    ) -> RtsResult {
        let mut cursor = self.cursor(inst, init);
        cursor.step_batch((inst, eval as &mut dyn SwapEvaluator), u64::MAX);
        debug_assert_eq!(cursor.cost, inst.cost(&cursor.p), "incremental cost drifted");
        cursor.into_result(eval.book(), eval.backend())
    }
}

/// The loop-carried state of one robust-tabu walk, stepped externally.
///
/// Produced by [`RobustTabu::cursor`]. One step performs exactly one
/// iteration of Taillard's algorithm — scan all `C(n,2)` swap deltas,
/// commit the best admissible swap, randomize the reverse tenures — so a
/// run driven through a cursor makes swap-for-swap the moves
/// [`RobustTabu::run`] makes (which is implemented on top of it). The
/// evaluator is *external* state: deltas are exact on every backend, so
/// a walk may migrate between host tables and simulated devices
/// mid-flight without perturbing its trajectory.
#[derive(Clone, Debug)]
pub struct RtsCursor {
    config: RtsConfig,
    p: Permutation,
    cost: i64,
    best: Permutation,
    best_cost: i64,
    /// `tabu_until[i * n + loc]`: first iteration at which facility `i`
    /// may return to location `loc`.
    tabu_until: Vec<u64>,
    rng: StdRng,
    iterations: u64,
    evals: u64,
    lo: u64,
    hi: u64,
}

impl RtsCursor {
    /// One full iteration through `eval`. Returns `false` (doing
    /// nothing) when the walk is already finished.
    pub fn step<E: SwapEvaluator + ?Sized>(&mut self, inst: &QapInstance, eval: &mut E) -> bool {
        if self.is_done() {
            return false;
        }
        let n = inst.size();
        let iterations = self.iterations;
        let deltas = eval.deltas(inst, &self.p);
        self.evals += deltas.len() as u64;

        // Best admissible move: not tabu, or aspirating.
        let mut chosen: Option<(u64, i64)> = None;
        for (idx, &d) in deltas.iter().enumerate() {
            let (r, s) = unrank2(n as u64, idx as u64);
            let (r, s) = (r as usize, s as usize);
            let tabu = self.tabu_until[r * n + self.p.get(s)] > iterations
                && self.tabu_until[s * n + self.p.get(r)] > iterations;
            let aspirates = self.cost + d < self.best_cost;
            if tabu && !aspirates {
                continue;
            }
            if chosen.is_none_or(|(_, bd)| d < bd) {
                chosen = Some((idx as u64, d));
            }
        }
        // Fully tabu neighborhood: take the absolute best (rare; keeps
        // the walk alive like Taillard's implementation).
        let (idx, d) = chosen.unwrap_or_else(|| {
            deltas
                .iter()
                .enumerate()
                .min_by_key(|&(i, d)| (*d, i))
                .map(|(i, &d)| (i as u64, d))
                .expect("non-empty neighborhood")
        });

        let (r, s) = unrank2(n as u64, idx);
        let (r, s) = (r as usize, s as usize);
        // Forbid sending the facilities back to their old places.
        let tenure_r = self.rng.gen_range(self.lo..=self.hi);
        let tenure_s = self.rng.gen_range(self.lo..=self.hi);
        self.tabu_until[r * n + self.p.get(r)] = iterations + 1 + tenure_r;
        self.tabu_until[s * n + self.p.get(s)] = iterations + 1 + tenure_s;

        eval.committed(inst, &self.p, r, s);
        self.p.swap(r, s);
        self.cost += d;
        self.iterations += 1;
        if self.cost < self.best_cost {
            self.best_cost = self.cost;
            self.best = self.p.clone();
        }
        true
    }

    /// Current assignment.
    pub fn current(&self) -> &Permutation {
        &self.p
    }

    /// Best assignment seen so far.
    pub fn best_assignment(&self) -> &Permutation {
        &self.best
    }

    /// Best cost seen so far.
    pub fn best_cost(&self) -> i64 {
        self.best_cost
    }

    /// Swap-delta evaluations consumed so far.
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// Iterations left in the budget.
    pub fn remaining_iters(&self) -> u64 {
        self.config.max_iters.saturating_sub(self.iterations)
    }

    /// Finalize into an [`RtsResult`]; the caller supplies what a cursor
    /// cannot know — the evaluator's ledger and identity.
    pub fn into_result(self, book: Option<TimeBook>, backend: String) -> RtsResult {
        RtsResult {
            success: self.config.target.is_some_and(|t| self.best_cost <= t),
            best: self.best,
            best_cost: self.best_cost,
            iterations: self.iterations,
            evals: self.evals,
            book,
            backend,
        }
    }

    /// Byte-level snapshot of the walk (hand-rolled; see
    /// [`lnls_core::persist`]). The tenure window `lo`/`hi` is derived
    /// from the instance size, so it is rebuilt on decode rather than
    /// trusted from bytes.
    pub fn persist(&self, out: &mut Vec<u8>) {
        self.config.write(out);
        self.p.write(out);
        self.cost.write(out);
        self.best.write(out);
        self.best_cost.write(out);
        self.tabu_until.write(out);
        self.rng.write(out);
        self.iterations.write(out);
        self.evals.write(out);
    }

    /// Rebuild a walk captured by [`persist`](Self::persist). `inst`
    /// must be the same instance the walk ran on — the recorded
    /// incremental cost is cross-checked against it, and corrupt bytes
    /// are rejected here, not left to crash a later step.
    pub fn read_persisted(r: &mut Reader<'_>, inst: &QapInstance) -> Result<Self, PersistError> {
        let n = inst.size();
        let cursor = Self {
            config: r.read()?,
            p: r.read()?,
            cost: r.read()?,
            best: r.read()?,
            best_cost: r.read()?,
            tabu_until: r.read()?,
            rng: r.read()?,
            iterations: r.read()?,
            evals: r.read()?,
            lo: ((9 * n) / 10).max(1) as u64,
            hi: ((11 * n) / 10).max(2) as u64,
        };
        if cursor.p.len() != n || cursor.best.len() != n || cursor.tabu_until.len() != n * n {
            return Err(PersistError::new("permutation/instance size mismatch"));
        }
        if inst.cost(&cursor.p) != cursor.cost {
            return Err(PersistError::new(
                "recorded cost disagrees with the instance (wrong QAP instance?)",
            ));
        }
        if inst.cost(&cursor.best) != cursor.best_cost {
            return Err(PersistError::new("recorded best cost disagrees with the instance"));
        }
        Ok(cursor)
    }
}

impl SearchCursor for RtsCursor {
    type Ctx<'a> = (&'a QapInstance, &'a mut dyn SwapEvaluator);
    type Snapshot = Self;

    fn step_batch(&mut self, (inst, eval): Self::Ctx<'_>, quota: u64) -> u64 {
        let mut ran = 0;
        while ran < quota {
            if !self.step(inst, eval) {
                break;
            }
            ran += 1;
        }
        ran
    }

    fn is_done(&self) -> bool {
        self.iterations >= self.config.max_iters
            || self.config.target.is_some_and(|t| self.best_cost <= t)
    }

    fn best(&self) -> i64 {
        self.best_cost
    }

    fn iterations(&self) -> u64 {
        self.iterations
    }

    fn snapshot(&self) -> Self {
        self.clone()
    }

    fn restore(&mut self, snapshot: Self) {
        *self = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rts_reaches_brute_force_optimum_symmetric() {
        let mut rng = StdRng::seed_from_u64(7);
        let inst = QapInstance::random_symmetric(&mut rng, 8);
        let (opt, _) = inst.brute_force_optimum();
        let rts = RobustTabu::new(RtsConfig::budget(2_000).with_target(Some(opt)));
        let init = Permutation::random(&mut rng, 8);
        let r = rts.run(&inst, &mut TableEvaluator::new(), init);
        assert_eq!(r.best_cost, opt, "missed optimum by {}", r.best_cost - opt);
        assert!(r.success);
        assert_eq!(inst.cost(&r.best), r.best_cost);
    }

    #[test]
    fn rts_reaches_brute_force_optimum_asymmetric() {
        let mut rng = StdRng::seed_from_u64(8);
        let inst = QapInstance::random_uniform(&mut rng, 7);
        let (opt, _) = inst.brute_force_optimum();
        let rts = RobustTabu::new(RtsConfig::budget(2_000).with_target(Some(opt)));
        let init = Permutation::identity(7);
        let r = rts.run(&inst, &mut TableEvaluator::new(), init);
        assert_eq!(r.best_cost, opt);
    }

    #[test]
    fn table_and_fresh_evaluators_agree_step_for_step() {
        let mut rng = StdRng::seed_from_u64(9);
        let inst = QapInstance::random_uniform(&mut rng, 9);
        let init = Permutation::random(&mut rng, 9);
        let rts = RobustTabu::new(RtsConfig::budget(120).with_seed(5));
        let a = rts.run(&inst, &mut TableEvaluator::new(), init.clone());
        let b = rts.run(&inst, &mut FreshEvaluator::new(), init);
        assert_eq!(a.best_cost, b.best_cost);
        assert_eq!(a.best, b.best);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn budget_respected_and_cost_consistent() {
        let mut rng = StdRng::seed_from_u64(10);
        let inst = QapInstance::random_uniform(&mut rng, 12);
        let rts = RobustTabu::new(RtsConfig::budget(37));
        let r = rts.run(&inst, &mut TableEvaluator::new(), Permutation::identity(12));
        assert_eq!(r.iterations, 37);
        assert_eq!(r.evals, 37 * 66); // C(12,2) = 66 per iteration
        assert_eq!(inst.cost(&r.best), r.best_cost);
    }

    #[test]
    fn cursor_quanta_match_run_exactly() {
        // Stepping in ragged quanta — including a mid-walk evaluator
        // migration from the delta table to the naive recompute — must
        // reproduce run()'s swaps, tenure draws and best cost exactly.
        let mut rng = StdRng::seed_from_u64(21);
        let inst = QapInstance::random_uniform(&mut rng, 10);
        let init = Permutation::random(&mut rng, 10);
        let rts = RobustTabu::new(RtsConfig::budget(90).with_seed(6));
        let want = rts.run(&inst, &mut TableEvaluator::new(), init.clone());

        let mut cursor = rts.cursor(&inst, init);
        let mut table = TableEvaluator::new();
        let mut fresh = FreshEvaluator::new();
        let mut flip = false;
        loop {
            let ran = if flip {
                cursor.step_batch((&inst, &mut fresh as &mut dyn SwapEvaluator), 7)
            } else {
                cursor.step_batch((&inst, &mut table as &mut dyn SwapEvaluator), 7)
            };
            // A committed swap invalidates the idle table's incremental
            // state; rebuild it on re-entry by starting fresh.
            table = TableEvaluator::new();
            flip = !flip;
            if ran < 7 {
                break;
            }
        }
        assert!(cursor.is_done());
        assert_eq!(cursor.best_cost(), want.best_cost);
        assert_eq!(cursor.iterations(), want.iterations);
        assert_eq!(cursor.evals(), want.evals);
        assert_eq!(cursor.best_assignment().as_slice(), want.best.as_slice());
    }

    #[test]
    fn persisted_cursor_resumes_identically() {
        let mut rng = StdRng::seed_from_u64(22);
        let inst = QapInstance::random_uniform(&mut rng, 9);
        let init = Permutation::random(&mut rng, 9);
        let rts = RobustTabu::new(RtsConfig::budget(60).with_seed(2));

        let mut cursor = rts.cursor(&inst, init);
        let mut eval = FreshEvaluator::new();
        cursor.step_batch((&inst, &mut eval as &mut dyn SwapEvaluator), 23);
        let mut bytes = Vec::new();
        cursor.persist(&mut bytes);
        let mut revived =
            RtsCursor::read_persisted(&mut lnls_core::Reader::new(&bytes), &inst).expect("decode");
        cursor.step_batch((&inst, &mut eval as &mut dyn SwapEvaluator), u64::MAX);
        let mut eval2 = FreshEvaluator::new();
        revived.step_batch((&inst, &mut eval2 as &mut dyn SwapEvaluator), u64::MAX);
        assert_eq!(revived.best_cost(), cursor.best_cost());
        assert_eq!(revived.iterations(), cursor.iterations());
        assert_eq!(revived.best_assignment().as_slice(), cursor.best_assignment().as_slice());

        // Wrong instance: the cost cross-check must refuse.
        let other = QapInstance::random_uniform(&mut rng, 9);
        assert!(RtsCursor::read_persisted(&mut lnls_core::Reader::new(&bytes), &other).is_err());
    }

    #[test]
    fn tabu_forces_uphill_exploration() {
        // From a local optimum, plain best-improvement is stuck; RTS
        // must keep moving (uphill) and, thanks to the tabu matrix, not
        // oscillate on one swap. We check it visits > 2 distinct
        // permutations from a converged start.
        let mut rng = StdRng::seed_from_u64(11);
        let inst = QapInstance::random_symmetric(&mut rng, 6);
        let (opt, popt) = inst.brute_force_optimum();
        // Start exactly at the optimum: everything is uphill from here.
        let rts = RobustTabu::new(RtsConfig::budget(25));
        let r = rts.run(&inst, &mut TableEvaluator::new(), popt.clone());
        assert_eq!(r.best_cost, opt, "must keep the optimum as best");
        assert_eq!(r.iterations, 25, "search must keep walking uphill");
    }
}
