//! Property-based tests for the QAP substrate: delta exactness, the
//! incrementally maintained table, and mapping round-trips on the swap
//! index space.

use lnls_neighborhood::mapping2d::{rank2, size2, unrank2};
use lnls_qap::{swap_delta, DeltaTable, Permutation, QapInstance};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_instance(max_n: usize) -> impl Strategy<Value = (QapInstance, u64)> {
    (2usize..=max_n, any::<u64>(), any::<bool>()).prop_map(|(n, seed, sym)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = if sym {
            QapInstance::random_symmetric(&mut rng, n)
        } else {
            QapInstance::random_uniform(&mut rng, n)
        };
        (inst, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// swap_delta == full recompute, for every swap of a random
    /// permutation.
    #[test]
    fn delta_is_exact((inst, seed) in arb_instance(12)) {
        let n = inst.size();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabc);
        let p = Permutation::random(&mut rng, n);
        let base = inst.cost(&p);
        for r in 0..n {
            for s in (r + 1)..n {
                let mut q = p.clone();
                q.swap(r, s);
                prop_assert_eq!(swap_delta(&inst, &p, r, s), inst.cost(&q) - base);
            }
        }
    }

    /// The delta table stays exact across a random committed walk.
    #[test]
    fn table_exact_after_walk((inst, seed) in arb_instance(10), steps in 1usize..12) {
        let n = inst.size();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdef);
        let mut p = Permutation::random(&mut rng, n);
        let mut table = DeltaTable::new(&inst, &p);
        for step in 0..steps {
            let idx = (seed.wrapping_mul(step as u64 + 1)) % size2(n as u64);
            let (r, s) = unrank2(n as u64, idx);
            table.commit(&inst, &p, r as usize, s as usize);
            p.swap(r as usize, s as usize);
        }
        let base = inst.cost(&p);
        for r in 0..n {
            for s in (r + 1)..n {
                let mut q = p.clone();
                q.swap(r, s);
                prop_assert_eq!(table.get(r, s), inst.cost(&q) - base, "({},{})", r, s);
            }
        }
    }

    /// Swap-index bijection: every flat index decodes to an ordered pair
    /// that encodes back to itself (the Appendix A/B identity on the
    /// swap move space).
    #[test]
    fn swap_indexing_is_a_bijection(n in 2u64..200) {
        let m = size2(n);
        for idx in [0, 1, m / 2, m.saturating_sub(2), m - 1] {
            if idx >= m {
                continue; // n = 2 has a single swap
            }
            let (i, j) = unrank2(n, idx);
            prop_assert!(i < j && j < n);
            prop_assert_eq!(rank2(n, i, j), idx);
        }
    }

    /// A swap is an involution: applying it twice restores the cost.
    #[test]
    fn swap_involution((inst, seed) in arb_instance(12)) {
        let n = inst.size();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x123);
        let mut p = Permutation::random(&mut rng, n);
        let c0 = inst.cost(&p);
        let d1 = swap_delta(&inst, &p, 0, n - 1);
        p.swap(0, n - 1);
        let d2 = swap_delta(&inst, &p, 0, n - 1);
        p.swap(0, n - 1);
        prop_assert_eq!(d1, -d2);
        prop_assert_eq!(inst.cost(&p), c0);
    }

    /// Text round-trip is the identity.
    #[test]
    fn save_parse_roundtrip((inst, _) in arb_instance(10)) {
        let text = inst.save_to_string();
        let back = QapInstance::parse(&text).unwrap();
        prop_assert_eq!(back, inst);
    }
}
