//! The scenario description language and the named catalog.
//!
//! A [`Scenario`] is everything a load run needs, declaratively: how
//! jobs arrive over modeled time ([`ArrivalProcess`]), who submits them
//! and what they submit ([`TenantProfile`] — family mixes over the
//! workspace's job types, size/priority/deadline/budget distributions),
//! and what fleet they land on ([`FleetProfile`] plus an
//! [`AdmissionPolicy`]). Scenarios are *descriptions*; lowering one
//! into a concrete timed submission stream is the
//! [`TrafficGen`](crate::TrafficGen)'s job and is deterministic per
//! `(scenario, seed)`.

use lnls_gpu_sim::EngineConfig;
use lnls_runtime::{AdmissionPolicy, LaunchMode, SelectionMode};

/// How arrivals are spaced over modeled fleet seconds.
#[derive(Clone, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential inter-arrival gaps with the
    /// given mean rate.
    Poisson {
        /// Mean arrivals per modeled second.
        rate_per_s: f64,
    },
    /// Storms: groups of `burst` simultaneous arrivals separated by
    /// quiet gaps — the worst case for admission queues.
    Bursty {
        /// Arrivals per storm (all at the same instant).
        burst: u64,
        /// Quiet seconds between storms.
        gap_s: f64,
    },
    /// Piecewise-Poisson phases cycled in order — a compressed
    /// day/night load curve.
    Diurnal {
        /// `(phase duration seconds, arrivals per second)` entries,
        /// cycled until the job budget is spent.
        phases: Vec<(f64, f64)>,
    },
    /// Closed-loop clients: `clients` logical submitters each keep at
    /// most one job in flight, submitting their next the tick the
    /// previous one finishes (or retrying a fixed number of ticks after
    /// an overload shed). Arrivals are gated on completions rather than
    /// on a modeled clock, so the lowering stamps no arrival times —
    /// the recording driver stamps the delivery *tick* of every attempt
    /// into the trace, and replay follows those ticks open-loop.
    ClosedLoop {
        /// Concurrent logical clients (the in-flight upper bound).
        clients: usize,
        /// Ticks a client waits before retrying a shed submission.
        retry_after_ticks: u64,
    },
}

/// The job families a tenant can draw from. Every family flows through
/// the same generic [`SearchJob`](lnls_runtime::SearchJob) submission
/// path; the mix is what makes a scenario exercise batching (same-key
/// tabu lanes fuse), sampling-style pricing (annealing), unbatchable
/// long runs (QAP) and the problems zoo (Max-Cut).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Family {
    /// Full-neighborhood tabu over OneMax (fusable bulk work).
    TabuOneMax,
    /// Full-neighborhood tabu over the paper's PPP cryptanalysis.
    TabuPpp,
    /// Full-neighborhood tabu over random Max-Cut instances (zoo).
    TabuMaxCut,
    /// Simulated annealing over OneMax (sampling-style launches).
    Anneal,
    /// QAP robust tabu (long, unbatchable, preemption-sensitive).
    Qap,
    /// Destroy-and-repair LNS over Knapsack/Max-3-Sat/QUBO (per-round
    /// fused multi-lane repair spans, adaptive destroy radius).
    LnsRepair,
    /// Tabu/SA/descent portfolio races over Knapsack/Max-3-Sat/QUBO
    /// (heterogeneous-lane spans, budget reallocation to the leader).
    PortfolioRace,
}

impl Family {
    /// Short label used in generated job names.
    pub fn label(self) -> &'static str {
        match self {
            Family::TabuOneMax => "onemax",
            Family::TabuPpp => "ppp",
            Family::TabuMaxCut => "maxcut",
            Family::Anneal => "sa",
            Family::Qap => "qap",
            Family::LnsRepair => "lns",
            Family::PortfolioRace => "portfolio",
        }
    }
}

/// One tenant's traffic profile: its share of arrivals and the
/// distributions its submissions are drawn from.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantProfile {
    /// Tenant name (admission caps count per tenant; reports attribute).
    pub name: String,
    /// Relative share of total arrivals (weights need not sum to 1).
    pub weight: f64,
    /// Weighted family mix this tenant draws jobs from.
    pub families: Vec<(Family, f64)>,
    /// Problem sizes, chosen uniformly (QAP jobs clamp to `6..=12`).
    pub dims: Vec<usize>,
    /// Inclusive iteration-budget range of the *search itself*.
    pub iters: (u64, u64),
    /// Queue priorities, chosen uniformly.
    pub priorities: Vec<u8>,
    /// Probability a submission carries a deadline.
    pub deadline_p: f64,
    /// Inclusive relative deadline range (seconds after arrival).
    pub deadline_s: (f64, f64),
    /// Probability a submission carries an envelope iteration budget
    /// (drawn uniformly from half to the full search budget).
    pub budget_p: f64,
    /// Probability a submission opts out of checkpoints.
    pub no_checkpoint_p: f64,
}

impl TenantProfile {
    /// A plain tenant: equal-weight families, no deadlines, no envelope
    /// budgets, checkpointable, priority 0.
    pub fn new(name: impl Into<String>, families: Vec<(Family, f64)>) -> Self {
        Self {
            name: name.into(),
            weight: 1.0,
            families,
            dims: vec![24, 32],
            iters: (20, 40),
            priorities: vec![0],
            deadline_p: 0.0,
            deadline_s: (0.0, 0.0),
            budget_p: 0.0,
            no_checkpoint_p: 0.0,
        }
    }
}

/// The fleet shape a scenario runs on (uniform GTX 280 devices, as
/// everywhere else in the workspace).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FleetProfile {
    /// Simulated devices.
    pub devices: usize,
    /// CPU worker backends.
    pub cpu_workers: usize,
    /// Launch-batching width (1 disables fusing).
    pub max_batch: usize,
    /// Preemption quantum in iterations (`None` = run to completion).
    pub quantum_iters: Option<u64>,
    /// Telemetry cadence in ticks (scenarios always record).
    pub telemetry_every_ticks: u64,
    /// Telemetry memory bound: keep at most this many samples per
    /// series, thinning deterministically (`None` = unbounded); see
    /// [`SchedulerConfig::telemetry_max_samples`](lnls_runtime::SchedulerConfig::telemetry_max_samples).
    pub telemetry_max_samples: Option<usize>,
    /// Engine layout of every device: GT200 (the paper's part, nothing
    /// overlaps inside a fused iteration) or a multi-engine layout whose
    /// stream schedules overlap per-lane copies.
    pub engines: EngineConfig,
    /// Fleet-wide best-neighbor selection mode (host scan vs. on-device
    /// argmin) — pricing-only; see
    /// [`SchedulerConfig::selection`](lnls_runtime::SchedulerConfig::selection).
    pub selection: SelectionMode,
    /// Fused-span length: up to this many consecutive fused iterations
    /// are priced as one breadth-first stream schedule per tick (capped
    /// at the preemption quantum) — pricing-only; see
    /// [`SchedulerConfig::span_iters`](lnls_runtime::SchedulerConfig::span_iters).
    pub span_iters: u64,
    /// How kernel-launch overhead is charged across a fused span —
    /// pricing-only; see
    /// [`SchedulerConfig::launch_mode`](lnls_runtime::SchedulerConfig::launch_mode).
    pub launch_mode: LaunchMode,
    /// Shards in the fleet (1 = an unsharded scheduler, byte-for-byte
    /// the pre-sharding behavior). [`devices`](Self::devices) counts
    /// devices *per shard*.
    pub shards: usize,
    /// Shard-config version the scenario was authored (and any trace
    /// recorded) under — replay mints
    /// [`ShardConfig::for_version`](lnls_shard::ShardConfig::for_version)
    /// with this, so old traces keep old steal/ring semantics as
    /// defaults move.
    pub config_version: u32,
    /// Worker threads driving the shards (above one the driver runs the
    /// [`ParallelFleet`](lnls_shard::ParallelFleet) runtime). Execution
    /// knob, **not** persisted in traces: the parallel runtime is
    /// bit-identical to the serial path at every worker count, so the
    /// recorded bytes must not depend on who recorded them.
    pub workers: usize,
    /// Per-shard in-flight bound fronting each shard's client through a
    /// [`ConcurrencyLimiter`](lnls_runtime::ConcurrencyLimiter)
    /// (`None` = unbounded). Persisted: overload sheds change admission
    /// outcomes, so replay must reinstall the same limit.
    pub max_inflight: Option<usize>,
}

impl Default for FleetProfile {
    fn default() -> Self {
        Self {
            devices: 2,
            cpu_workers: 1,
            max_batch: 4,
            quantum_iters: Some(8),
            telemetry_every_ticks: 1,
            telemetry_max_samples: None,
            engines: EngineConfig::gt200(),
            selection: SelectionMode::HostArgmin,
            span_iters: 1,
            launch_mode: LaunchMode::PerIteration,
            shards: 1,
            config_version: lnls_shard::CONFIG_VERSION,
            workers: 1,
            max_inflight: None,
        }
    }
}

/// A complete, nameable load scenario: arrivals, tenants, fleet shape
/// and admission rules, lowered deterministically by
/// [`TrafficGen`](crate::TrafficGen).
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Catalog key (`Scenario::by_name` looks it up case-insensitively).
    pub name: String,
    /// One-line description for tables and reports.
    pub summary: String,
    /// Total submissions to generate.
    pub jobs: u64,
    /// Arrival spacing over modeled time.
    pub arrivals: ArrivalProcess,
    /// Who submits, and what.
    pub tenants: Vec<TenantProfile>,
    /// The fleet the traffic lands on.
    pub fleet: FleetProfile,
    /// Admission rules fronting the fleet.
    pub admission: AdmissionPolicy,
    /// Crash the fleet at this driver tick and restore it from a byte
    /// round-tripped checkpoint — the checkpoint-churn stressor.
    pub crash_at_tick: Option<u64>,
}

impl Scenario {
    /// Scale the submission count by `factor` (at least one job) — how
    /// the benches and examples grow a catalog scenario without
    /// redefining it.
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        self.jobs = ((self.jobs as f64 * factor).round() as u64).max(1);
        self
    }

    /// The same traffic on a fleet with a different engine layout and
    /// selection mode — how the benches sweep the overlap/argmin knobs
    /// across the catalog without redefining scenarios. Pricing-only:
    /// arrivals and search results are unchanged.
    #[must_use]
    pub fn with_fleet_knobs(mut self, engines: EngineConfig, selection: SelectionMode) -> Self {
        self.fleet.engines = engines;
        self.fleet.selection = selection;
        self
    }

    /// The same traffic with a different fused-span length and
    /// launch-overhead mode — how the benches sweep the multi-iteration
    /// pipelining knobs. Pricing-only: arrivals and search results are
    /// unchanged (`span_iters` clamps to at least one iteration).
    #[must_use]
    pub fn with_span_knobs(mut self, span_iters: u64, launch_mode: LaunchMode) -> Self {
        self.fleet.span_iters = span_iters.max(1);
        self.fleet.launch_mode = launch_mode;
        self
    }

    /// The same traffic driven by a different worker-thread count —
    /// execution-only: the parallel runtime is bit-identical to the
    /// serial path, so reports and trace bytes must not change.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.fleet.workers = workers.max(1);
        self
    }

    /// The named catalog: every scenario the workload subsystem ships.
    ///
    /// | name | stress |
    /// |---|---|
    /// | `steady` | steady multi-tenant mix, the regression baseline |
    /// | `burst` | arrival storms against a hard queue cap |
    /// | `priority-inversion` | bulk flood vs. rare urgent tenants, shed-lowest-priority |
    /// | `deadline-heavy` | tight deadlines, cancellations expected |
    /// | `checkpoint-churn` | mid-replay crash/restore through checkpoint bytes |
    /// | `saturation` | every family at once over an undersized fleet |
    /// | `lns-repair` | destroy-and-repair LNS over the Knapsack/Max-3-Sat/QUBO zoo |
    /// | `portfolio-race` | tabu/SA/descent portfolio races, budget follows the leader |
    /// | `saturation-sharded` | saturation pressure spread over many tenants on a 4-shard fleet |
    pub fn catalog() -> Vec<Scenario> {
        vec![
            Self::steady(),
            Self::burst(),
            Self::priority_inversion(),
            Self::deadline_heavy(),
            Self::checkpoint_churn(),
            Self::saturation(),
            Self::lns_repair(),
            Self::portfolio_race(),
            Self::saturation_sharded(),
        ]
    }

    /// Look a catalog scenario up by name (case-insensitive); an
    /// unknown name comes back as an [`UnknownScenario`] listing every
    /// valid name, so misspellings are self-diagnosing.
    pub fn by_name(name: &str) -> Result<Scenario, UnknownScenario> {
        Self::catalog().into_iter().find(|s| s.name.eq_ignore_ascii_case(name)).ok_or_else(|| {
            UnknownScenario {
                requested: name.to_string(),
                known: Self::catalog().into_iter().map(|s| s.name).collect(),
            }
        })
    }

    /// Steady multi-tenant mix: tabu bulk, PPP tries and an annealing
    /// chain arriving at a sustainable Poisson rate — the baseline the
    /// other scenarios deviate from.
    pub fn steady() -> Scenario {
        Scenario {
            name: "steady".into(),
            summary: "steady multi-tenant tabu/PPP/SA mix at a sustainable rate".into(),
            jobs: 18,
            arrivals: ArrivalProcess::Poisson { rate_per_s: 9000.0 },
            tenants: vec![
                TenantProfile {
                    weight: 2.0,
                    ..TenantProfile::new("bulk", vec![(Family::TabuOneMax, 1.0)])
                },
                TenantProfile {
                    dims: vec![20, 24],
                    ..TenantProfile::new("research", vec![(Family::TabuPpp, 1.0)])
                },
                TenantProfile {
                    iters: (40, 80),
                    ..TenantProfile::new("sampler", vec![(Family::Anneal, 1.0)])
                },
            ],
            fleet: FleetProfile::default(),
            admission: AdmissionPolicy::unbounded(),
            crash_at_tick: None,
        }
    }

    /// Burst storm: waves of simultaneous arrivals against a hard
    /// global queue cap with no shedding — rejections are the point.
    pub fn burst() -> Scenario {
        Scenario {
            name: "burst".into(),
            summary: "arrival storms against a hard queue cap (rejections expected)".into(),
            jobs: 24,
            arrivals: ArrivalProcess::Bursty { burst: 8, gap_s: 0.004 },
            tenants: vec![
                TenantProfile {
                    weight: 3.0,
                    ..TenantProfile::new("storm", vec![(Family::TabuOneMax, 1.0)])
                },
                TenantProfile {
                    dims: vec![20],
                    iters: (15, 30),
                    ..TenantProfile::new("background", vec![(Family::TabuPpp, 1.0)])
                },
            ],
            fleet: FleetProfile { devices: 1, cpu_workers: 0, ..FleetProfile::default() },
            admission: AdmissionPolicy::queue_cap(6),
            crash_at_tick: None,
        }
    }

    /// Priority-inversion stress: a low-priority bulk flood ahead of
    /// rare urgent submissions, with shed-lowest-priority admission —
    /// urgency must displace bulk, not queue behind it.
    pub fn priority_inversion() -> Scenario {
        Scenario {
            name: "priority-inversion".into(),
            summary: "bulk flood vs. rare urgent tenants under shed-lowest-priority".into(),
            jobs: 20,
            arrivals: ArrivalProcess::Poisson { rate_per_s: 4000.0 },
            tenants: vec![
                TenantProfile {
                    weight: 4.0,
                    ..TenantProfile::new("bulk", vec![(Family::TabuOneMax, 1.0)])
                },
                TenantProfile {
                    priorities: vec![6, 7],
                    iters: (15, 25),
                    ..TenantProfile::new("urgent", vec![(Family::TabuOneMax, 1.0)])
                },
            ],
            fleet: FleetProfile { devices: 1, cpu_workers: 0, ..FleetProfile::default() },
            admission: AdmissionPolicy::queue_cap(5).with_shedding(),
            crash_at_tick: None,
        }
    }

    /// Deadline-heavy: most submissions carry tight deadlines; the
    /// drain sweep must cancel the late ones and the report must show
    /// the misses.
    pub fn deadline_heavy() -> Scenario {
        Scenario {
            name: "deadline-heavy".into(),
            summary: "tight deadlines on most submissions (misses cancel)".into(),
            jobs: 16,
            arrivals: ArrivalProcess::Poisson { rate_per_s: 6000.0 },
            tenants: vec![
                TenantProfile {
                    weight: 3.0,
                    deadline_p: 0.85,
                    // Jobs price at a few hundred microseconds of fleet
                    // time; sub-millisecond deadlines guarantee misses
                    // once the queue backs up.
                    deadline_s: (0.0001, 0.0008),
                    ..TenantProfile::new("latency-bound", vec![(Family::TabuOneMax, 1.0)])
                },
                TenantProfile {
                    iters: (30, 60),
                    budget_p: 0.5,
                    ..TenantProfile::new("best-effort", vec![(Family::Anneal, 1.0)])
                },
            ],
            fleet: FleetProfile {
                devices: 1,
                cpu_workers: 1,
                quantum_iters: Some(4),
                ..FleetProfile::default()
            },
            admission: AdmissionPolicy::unbounded(),
            crash_at_tick: None,
        }
    }

    /// Checkpoint-churn: a mixed fleet crashed mid-replay and restored
    /// from byte-round-tripped checkpoints; some submissions opt out of
    /// checkpoints and are deliberately lost.
    pub fn checkpoint_churn() -> Scenario {
        Scenario {
            name: "checkpoint-churn".into(),
            summary: "mid-run crash/restore through checkpoint bytes (opt-outs lost)".into(),
            jobs: 14,
            arrivals: ArrivalProcess::Poisson { rate_per_s: 1500.0 },
            tenants: vec![
                TenantProfile {
                    weight: 2.0,
                    no_checkpoint_p: 0.3,
                    ..TenantProfile::new(
                        "durable",
                        vec![(Family::TabuOneMax, 1.0), (Family::TabuMaxCut, 1.0)],
                    )
                },
                TenantProfile {
                    dims: vec![10, 12],
                    iters: (40, 80),
                    ..TenantProfile::new("assignments", vec![(Family::Qap, 1.0)])
                },
            ],
            fleet: FleetProfile { devices: 2, cpu_workers: 1, ..FleetProfile::default() },
            admission: AdmissionPolicy::unbounded(),
            crash_at_tick: Some(25),
        }
    }

    /// Mixed-family saturation: every job family at once, arriving
    /// faster than an undersized fleet drains, behind per-tenant caps
    /// with shedding — the kitchen-sink stressor.
    pub fn saturation() -> Scenario {
        Scenario {
            name: "saturation".into(),
            summary: "every family at once over an undersized fleet, per-tenant caps".into(),
            jobs: 26,
            arrivals: ArrivalProcess::Diurnal {
                phases: vec![(0.002, 8000.0), (0.002, 2000.0), (0.002, 12000.0)],
            },
            tenants: vec![
                TenantProfile {
                    weight: 2.0,
                    ..TenantProfile::new(
                        "zoo",
                        vec![(Family::TabuOneMax, 1.0), (Family::TabuMaxCut, 1.0)],
                    )
                },
                TenantProfile {
                    dims: vec![20],
                    ..TenantProfile::new("crypto", vec![(Family::TabuPpp, 1.0)])
                },
                TenantProfile {
                    iters: (40, 70),
                    ..TenantProfile::new("sampler", vec![(Family::Anneal, 1.0)])
                },
                TenantProfile {
                    dims: vec![9, 11],
                    iters: (50, 90),
                    priorities: vec![2],
                    ..TenantProfile::new("assignments", vec![(Family::Qap, 1.0)])
                },
            ],
            fleet: FleetProfile {
                devices: 2,
                cpu_workers: 2,
                max_batch: 8,
                ..FleetProfile::default()
            },
            admission: AdmissionPolicy::unbounded().with_tenant_cap(4).with_shedding(),
            crash_at_tick: None,
        }
    }

    /// Destroy-and-repair LNS over the binary-problems zoo: every round
    /// prices its repair lanes as one fused multi-lane stream span, so
    /// this scenario exercises the stream pricer *within* single
    /// tenants, alongside an annealing chain for contrast.
    pub fn lns_repair() -> Scenario {
        Scenario {
            name: "lns-repair".into(),
            summary: "destroy-and-repair LNS over Knapsack/Max-3-Sat/QUBO (fused repair spans)"
                .into(),
            jobs: 16,
            arrivals: ArrivalProcess::Poisson { rate_per_s: 5000.0 },
            tenants: vec![
                TenantProfile {
                    weight: 3.0,
                    dims: vec![24, 32],
                    iters: (15, 30),
                    ..TenantProfile::new("repair", vec![(Family::LnsRepair, 1.0)])
                },
                TenantProfile {
                    iters: (30, 60),
                    ..TenantProfile::new("sampler", vec![(Family::Anneal, 1.0)])
                },
            ],
            fleet: FleetProfile { devices: 2, cpu_workers: 1, ..FleetProfile::default() },
            admission: AdmissionPolicy::unbounded(),
            crash_at_tick: None,
        }
    }

    /// Portfolio races: tabu, annealing and shaken descent compete on
    /// one instance inside one fused heterogeneous batch, and iteration
    /// budget follows the leading lane at reallocation boundaries.
    pub fn portfolio_race() -> Scenario {
        Scenario {
            name: "portfolio-race".into(),
            summary: "tabu/SA/descent races per instance, budget follows the leading lane".into(),
            jobs: 12,
            arrivals: ArrivalProcess::Poisson { rate_per_s: 4000.0 },
            tenants: vec![
                TenantProfile {
                    weight: 2.0,
                    dims: vec![20, 24],
                    iters: (16, 40),
                    ..TenantProfile::new("racers", vec![(Family::PortfolioRace, 1.0)])
                },
                TenantProfile {
                    dims: vec![24],
                    iters: (15, 25),
                    ..TenantProfile::new("bulk", vec![(Family::TabuOneMax, 1.0)])
                },
            ],
            fleet: FleetProfile {
                devices: 2,
                cpu_workers: 0,
                quantum_iters: Some(6),
                ..FleetProfile::default()
            },
            admission: AdmissionPolicy::unbounded(),
            crash_at_tick: None,
        }
    }

    /// Sharded saturation: `saturation`-style pressure spread over many
    /// generated tenants and a sharded fleet — the catalog face of the
    /// shard-scaling bench sweep (which calls
    /// [`saturation_sharded_sized`](Self::saturation_sharded_sized)
    /// directly to sweep 1 → 64 shards).
    pub fn saturation_sharded() -> Scenario {
        Self::saturation_sharded_sized(16, 4, 40)
    }

    /// The sharded-saturation generator at an arbitrary size: `tenants`
    /// organizations drawing from light tabu/anneal families, routed by
    /// consistent hashing onto `shards` shards of one device each,
    /// `jobs` submissions total. Tenant names are generated
    /// (`org-000`, `org-001`, …) so the tenant population scales with
    /// the fleet instead of pinning four names to sixty-four shards.
    pub fn saturation_sharded_sized(tenants: usize, shards: usize, jobs: u64) -> Scenario {
        let families = [
            vec![(Family::TabuOneMax, 1.0)],
            vec![(Family::Anneal, 1.0)],
            vec![(Family::TabuMaxCut, 1.0)],
            vec![(Family::TabuOneMax, 1.0), (Family::Anneal, 1.0)],
        ];
        let tenants = (0..tenants.max(1))
            .map(|i| TenantProfile {
                iters: (16, 32),
                dims: vec![20, 24],
                ..TenantProfile::new(format!("org-{i:03}"), families[i % families.len()].clone())
            })
            .collect();
        Scenario {
            name: "saturation-sharded".into(),
            summary: "saturation pressure spread over generated tenants on a sharded fleet".into(),
            jobs,
            arrivals: ArrivalProcess::Poisson { rate_per_s: 9000.0 },
            tenants,
            fleet: FleetProfile {
                devices: 1,
                cpu_workers: 0,
                max_batch: 8,
                shards: shards.max(1),
                ..FleetProfile::default()
            },
            admission: AdmissionPolicy::unbounded().with_tenant_cap(4),
            crash_at_tick: None,
        }
    }

    /// Closed-loop saturation (not in the catalog: its submission count
    /// is attempt-driven, so the open-loop accounting invariants do not
    /// apply verbatim). Six logical clients keep one job each in flight
    /// against a two-shard fleet whose per-shard
    /// [`max_inflight`](FleetProfile::max_inflight) bound is tighter
    /// than the offered load — overload sheds and tick-stamped retries
    /// are the point. Drive it with [`Driver::record`](crate::Driver):
    /// the recorded trace replays open-loop at any worker count.
    pub fn closed_loop_saturation() -> Scenario {
        let families = [
            vec![(Family::TabuOneMax, 1.0)],
            vec![(Family::Anneal, 1.0)],
            vec![(Family::TabuMaxCut, 1.0)],
        ];
        let tenants = (0..6)
            .map(|i| TenantProfile {
                iters: (16, 32),
                dims: vec![20, 24],
                ..TenantProfile::new(format!("loop-{i:02}"), families[i % families.len()].clone())
            })
            .collect();
        Scenario {
            name: "closed-loop-saturation".into(),
            summary: "completion-gated clients against a per-shard in-flight bound".into(),
            jobs: 20,
            arrivals: ArrivalProcess::ClosedLoop { clients: 6, retry_after_ticks: 2 },
            tenants,
            fleet: FleetProfile {
                devices: 1,
                cpu_workers: 0,
                max_batch: 4,
                shards: 2,
                workers: 2,
                max_inflight: Some(2),
                ..FleetProfile::default()
            },
            admission: AdmissionPolicy::unbounded(),
            crash_at_tick: None,
        }
    }
}

/// The typed "no such scenario" error [`Scenario::by_name`] returns:
/// carries the requested name and the full list of valid names, and
/// renders both, so a typo in e.g. `LNLS_SCENARIO` tells the user what
/// the catalog actually contains.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownScenario {
    /// The name that failed to resolve.
    pub requested: String,
    /// Every valid catalog name, in catalog order.
    pub known: Vec<String>,
}

impl std::fmt::Display for UnknownScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown scenario '{}'; valid scenarios: {}",
            self.requested,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownScenario {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_findable() {
        let catalog = Scenario::catalog();
        assert!(catalog.len() >= 9, "the catalog promises at least nine scenarios");
        let mut names: Vec<&str> = catalog.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), catalog.len(), "names must be unique");
        for s in &catalog {
            assert_eq!(Scenario::by_name(&s.name).as_ref().map(|f| &f.name), Ok(&s.name));
            assert!(s.jobs > 0 && !s.tenants.is_empty());
            assert!(s.tenants.iter().all(|t| t.weight > 0.0 && !t.families.is_empty()));
        }
        assert_eq!(Scenario::by_name("BURST").map(|s| s.name), Ok("burst".into()));
    }

    #[test]
    fn unknown_scenarios_error_with_the_full_catalog() {
        let err = Scenario::by_name("no-such-scenario").expect_err("must not resolve");
        assert_eq!(err.requested, "no-such-scenario");
        assert_eq!(err.known.len(), Scenario::catalog().len());
        let rendered = err.to_string();
        for s in Scenario::catalog() {
            assert!(rendered.contains(&s.name), "the error must list '{}': {rendered}", s.name);
        }
    }

    #[test]
    fn scaling_changes_only_the_job_count() {
        let s = Scenario::steady().scaled(2.0);
        assert_eq!(s.jobs, 36);
        assert_eq!(s.scaled(0.0).jobs, 1, "scale clamps to at least one job");
    }
}
