//! What-if trace analytics: replay one recorded [`Trace`] across fleet
//! variants and compare the outcomes.
//!
//! A trace pins the traffic — every arrival, its timing, its recipe —
//! so replaying the *same* trace on a different fleet shape isolates
//! the fleet knobs' effect exactly (no confounding from regenerated
//! traffic). [`WhatIf::compare`] runs the as-recorded baseline plus any
//! number of [`Variant`]s (engine layout, selection mode, span length,
//! launch mode, device count) and tabulates tail wait, rejections,
//! bytes moved, and device busy fraction per variant;
//! [`WhatIf::knob_grid`] builds the standard sweep the benches and the
//! `trace_diff` example walk.

use crate::trace::Trace;
use crate::Driver;
use lnls_gpu_sim::EngineConfig;
use lnls_runtime::{LaunchMode, SelectionMode};
use std::fmt;

/// One fleet-shape override to replay a recorded trace under. Arrivals
/// and search semantics are untouched; only the pricing/placement knobs
/// change.
#[derive(Clone, Debug, PartialEq)]
pub struct Variant {
    /// Display name for the comparison table.
    pub name: String,
    /// Engine layout of every device.
    pub engines: EngineConfig,
    /// Best-neighbor selection mode (host scan vs. on-device argmin).
    pub selection: SelectionMode,
    /// Fused-span length (consecutive fused iterations priced as one
    /// stream schedule; capped at the preemption quantum at runtime).
    pub span_iters: u64,
    /// How kernel-launch overhead is charged across a fused span.
    pub launch_mode: LaunchMode,
    /// Simulated device count.
    pub devices: usize,
}

impl Variant {
    /// A variant keeping the trace's own fleet shape except for the
    /// given engine layout and selection mode.
    pub fn knobs(
        name: impl Into<String>,
        trace: &Trace,
        engines: EngineConfig,
        selection: SelectionMode,
    ) -> Self {
        Self {
            name: name.into(),
            engines,
            selection,
            span_iters: trace.fleet.span_iters,
            launch_mode: trace.fleet.launch_mode,
            devices: trace.fleet.devices,
        }
    }

    /// A variant keeping the trace's own fleet shape except for the
    /// given fused-span length and launch-overhead mode.
    pub fn span(
        name: impl Into<String>,
        trace: &Trace,
        span_iters: u64,
        launch_mode: LaunchMode,
    ) -> Self {
        Self {
            name: name.into(),
            engines: trace.fleet.engines,
            selection: trace.fleet.selection,
            span_iters: span_iters.max(1),
            launch_mode,
            devices: trace.fleet.devices,
        }
    }
}

/// What one variant's replay produced — the comparison columns.
#[derive(Clone, Debug)]
pub struct VariantOutcome {
    /// Variant name (`as-recorded` for the baseline row).
    pub variant: String,
    /// 95th-percentile queue wait (modeled seconds).
    pub wait_p95_s: f64,
    /// Worst queue wait.
    pub max_wait_s: f64,
    /// Fleet makespan.
    pub makespan_s: f64,
    /// Jobs completed.
    pub completed: u64,
    /// Rejections (sheds plus outright bounces).
    pub rejected: u64,
    /// Bytes uploaded to devices over the whole run.
    pub bytes_h2d: u64,
    /// Bytes read back from devices over the whole run.
    pub bytes_d2h: u64,
    /// Mean fraction of the makespan each device was busy.
    pub busy_fraction: f64,
}

impl VariantOutcome {
    fn from_run(variant: impl Into<String>, report: &crate::WorkloadReport) -> Self {
        let fleet = &report.fleet;
        Self {
            variant: variant.into(),
            wait_p95_s: fleet.wait_p95_s,
            max_wait_s: fleet.max_wait_s,
            makespan_s: fleet.makespan_s,
            completed: fleet.jobs_completed,
            rejected: fleet.jobs_rejected + report.bounced,
            bytes_h2d: fleet.fleet_book.bytes_h2d,
            bytes_d2h: fleet.fleet_book.bytes_d2h,
            busy_fraction: fleet.mean_device_utilization(),
        }
    }
}

/// The comparative report: one row per replay, baseline first.
#[derive(Clone, Debug)]
pub struct WhatIfReport {
    /// Scenario name of the compared trace.
    pub scenario: String,
    /// Lowering seed of the compared trace.
    pub seed: u64,
    /// Outcomes, baseline (`as-recorded`) first, then one per variant
    /// in input order.
    pub rows: Vec<VariantOutcome>,
}

impl WhatIfReport {
    /// The as-recorded baseline row.
    pub fn baseline(&self) -> &VariantOutcome {
        &self.rows[0]
    }

    /// The variant with the lowest p95 wait (the baseline qualifies
    /// too).
    pub fn best_by_wait_p95(&self) -> &VariantOutcome {
        self.rows
            .iter()
            .min_by(|a, b| a.wait_p95_s.total_cmp(&b.wait_p95_s))
            .expect("a report always has its baseline row")
    }
}

impl fmt::Display for WhatIfReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "what-if '{}' (seed {}): {} replays",
            self.scenario,
            self.seed,
            self.rows.len()
        )?;
        writeln!(
            f,
            "{:<26} {:>12} {:>12} {:>10} {:>6} {:>6} {:>12} {:>12} {:>6}",
            "variant",
            "wait p95 (s)",
            "makespan (s)",
            "max wait",
            "done",
            "rej",
            "B up",
            "B down",
            "busy"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<26} {:>12.6} {:>12.6} {:>10.6} {:>6} {:>6} {:>12} {:>12} {:>5.0}%",
                row.variant,
                row.wait_p95_s,
                row.makespan_s,
                row.max_wait_s,
                row.completed,
                row.rejected,
                row.bytes_h2d,
                row.bytes_d2h,
                row.busy_fraction * 100.0
            )?;
        }
        Ok(())
    }
}

/// The what-if comparator.
pub struct WhatIf;

impl WhatIf {
    /// Replay `trace` as recorded, then once per variant with the
    /// variant's fleet knobs substituted. Row 0 of the result is always
    /// the as-recorded baseline. Every replay is a full deterministic
    /// run of the same arrival stream — comparisons are exact, not
    /// sampled.
    pub fn compare(trace: &Trace, variants: &[Variant]) -> WhatIfReport {
        let baseline = Driver::replay(trace);
        let mut rows = vec![VariantOutcome::from_run("as-recorded", &baseline)];
        for v in variants {
            let mut alt = trace.clone();
            alt.fleet.engines = v.engines;
            alt.fleet.selection = v.selection;
            alt.fleet.span_iters = v.span_iters.max(1);
            alt.fleet.launch_mode = v.launch_mode;
            alt.fleet.devices = v.devices.max(1);
            let report = Driver::replay(&alt);
            rows.push(VariantOutcome::from_run(v.name.clone(), &report));
        }
        WhatIfReport { scenario: trace.scenario.clone(), seed: trace.seed, rows }
    }

    /// The standard knob sweep for `trace`: engine layout × selection
    /// mode (GT200/Fermi × host/device argmin), two multi-iteration
    /// span settings (an eight-iteration span charged per iteration and
    /// the same span under persistent launch amortization) plus a
    /// one-more-device fleet — seven variants, so a comparison always
    /// spans the overlap, selection, pipelining and capacity axes
    /// beyond the baseline.
    pub fn knob_grid(trace: &Trace) -> Vec<Variant> {
        let mut grid = vec![
            Variant::knobs(
                "gt200/host-argmin",
                trace,
                EngineConfig::gt200(),
                SelectionMode::HostArgmin,
            ),
            Variant::knobs(
                "gt200/device-argmin",
                trace,
                EngineConfig::gt200(),
                SelectionMode::DeviceArgmin,
            ),
            Variant::knobs(
                "fermi/host-argmin",
                trace,
                EngineConfig::fermi(),
                SelectionMode::HostArgmin,
            ),
            Variant::knobs(
                "fermi/device-argmin",
                trace,
                EngineConfig::fermi(),
                SelectionMode::DeviceArgmin,
            ),
        ];
        grid.push(Variant::span("span8/per-iteration", trace, 8, LaunchMode::PerIteration));
        grid.push(Variant::span("span8/persistent", trace, 8, LaunchMode::PersistentSpan));
        grid.push(Variant {
            name: format!("{} devices", trace.fleet.devices + 1),
            engines: trace.fleet.engines,
            selection: trace.fleet.selection,
            span_iters: trace.fleet.span_iters,
            launch_mode: trace.fleet.launch_mode,
            devices: trace.fleet.devices + 1,
        });
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::TrafficGen;

    #[test]
    fn compare_keeps_the_baseline_first_and_honours_variants() {
        let trace = TrafficGen::lower(&Scenario::steady(), 7);
        let report = WhatIf::compare(&trace, &WhatIf::knob_grid(&trace));
        assert_eq!(report.rows.len(), 8, "baseline + seven grid variants");
        assert_eq!(report.baseline().variant, "as-recorded");
        // The baseline must be bit-identical to a plain replay.
        let plain = Driver::replay(&trace);
        assert_eq!(report.baseline().wait_p95_s.to_bits(), plain.fleet.wait_p95_s.to_bits());
        assert_eq!(report.baseline().bytes_d2h, plain.fleet.fleet_book.bytes_d2h);
        // Device-argmin variants must shrink readback traffic.
        let host = &report.rows[1];
        let device = &report.rows[2];
        assert!(
            device.bytes_d2h < host.bytes_d2h,
            "on-device argmin must cut D2H bytes: {} vs {}",
            device.bytes_d2h,
            host.bytes_d2h
        );
        // All work still completes under every pricing-only variant.
        for row in &report.rows {
            assert_eq!(row.completed, report.baseline().completed, "{}", row.variant);
        }
        // Amortizing launch overhead over a span can only help the
        // makespan relative to the same span charged per iteration.
        let per_iter = &report.rows[5];
        let persistent = &report.rows[6];
        assert_eq!(per_iter.variant, "span8/per-iteration");
        assert_eq!(persistent.variant, "span8/persistent");
        assert!(
            persistent.makespan_s <= per_iter.makespan_s,
            "persistent-span launches must not slow the fleet: {} vs {}",
            persistent.makespan_s,
            per_iter.makespan_s
        );
    }

    #[test]
    fn display_tabulates_every_row() {
        let trace = TrafficGen::lower(&Scenario::steady().scaled(0.5), 3);
        let grid = WhatIf::knob_grid(&trace);
        let text = WhatIf::compare(&trace, &grid).to_string();
        assert!(text.contains("as-recorded"), "{text}");
        for v in &grid {
            assert!(text.contains(&v.name), "missing row {}: {text}", v.name);
        }
        assert!(text.contains("wait p95"), "{text}");
    }
}
