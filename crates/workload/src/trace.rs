//! The trace record/replay format.
//!
//! A [`Trace`] is a fully lowered run: the fleet/admission shape plus
//! every timed [`Arrival`], encoded through the workspace's
//! [`lnls_core::persist`] codec (f64 fields round-trip as raw bits, so
//! a loaded trace replays **bit-identically** — the replay proptest
//! holds the whole [`FleetReport`](lnls_runtime::FleetReport) to that
//! standard). Traces are small by construction: recipes store sizes,
//! budgets and seeds, never instance payloads.

use crate::scenario::FleetProfile;
use crate::traffic::{Arrival, JobRecipe};
use lnls_core::persist::{Persist, PersistError, Reader};
use lnls_runtime::AdmissionPolicy;
use std::io;
use std::path::Path;

/// Magic prefix of a trace file (`LNLSTRC` + format version).
const MAGIC: &[u8; 8] = b"LNLSTRC\x06";

/// A recorded (or freshly lowered) run: everything
/// [`Driver::replay`](crate::Driver::replay) needs, self-contained.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Name of the scenario this trace was lowered from (display only —
    /// the trace itself carries every runtime parameter).
    pub scenario: String,
    /// The lowering seed.
    pub seed: u64,
    /// The fleet shape the traffic ran on.
    pub fleet: FleetProfile,
    /// The admission policy fronting the fleet.
    pub admission: AdmissionPolicy,
    /// Crash/restore tick, if the run crashes mid-replay.
    pub crash_at_tick: Option<u64>,
    /// The timed submission stream, in arrival order.
    pub arrivals: Vec<Arrival>,
}

impl Trace {
    /// Encode into bytes: the magic prefix, then the trace through the
    /// [`lnls_core::persist`] codec.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        self.write(&mut out);
        out
    }

    /// Decode a trace written by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        let mut r = Reader::new(bytes);
        r.expect_magic(MAGIC, "workload trace")?;
        let trace = Self::read(&mut r)?;
        if r.remaining() != 0 {
            return Err(PersistError::new(format!("trace has {} trailing bytes", r.remaining())));
        }
        Ok(trace)
    }

    /// Write the trace to `path` (temp file + rename, like fleet
    /// checkpoints).
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)
    }

    /// Read a trace written by [`save`](Self::save).
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

impl Persist for Trace {
    fn write(&self, out: &mut Vec<u8>) {
        self.scenario.write(out);
        self.seed.write(out);
        self.fleet.write(out);
        self.admission.write(out);
        self.crash_at_tick.write(out);
        self.arrivals.write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            scenario: r.read()?,
            seed: r.read()?,
            fleet: r.read()?,
            admission: r.read()?,
            crash_at_tick: r.read()?,
            arrivals: r.read()?,
        })
    }
}

/// [`workers`](FleetProfile::workers) is deliberately *not* written:
/// the worker-thread count is an execution knob with no observable
/// effect (the parallel runtime is bit-identical to the serial path),
/// so traces recorded at different worker counts must stay
/// byte-identical. Loaded profiles come back with `workers = 1`.
impl Persist for FleetProfile {
    fn write(&self, out: &mut Vec<u8>) {
        self.devices.write(out);
        self.cpu_workers.write(out);
        self.max_batch.write(out);
        self.quantum_iters.write(out);
        self.telemetry_every_ticks.write(out);
        self.telemetry_max_samples.write(out);
        self.engines.write(out);
        self.selection.write(out);
        self.span_iters.write(out);
        self.launch_mode.write(out);
        self.shards.write(out);
        self.config_version.write(out);
        self.max_inflight.write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            devices: r.read()?,
            cpu_workers: r.read()?,
            max_batch: r.read()?,
            quantum_iters: r.read()?,
            telemetry_every_ticks: r.read()?,
            telemetry_max_samples: r.read()?,
            engines: r.read()?,
            selection: r.read()?,
            span_iters: r.read()?,
            launch_mode: r.read()?,
            shards: r.read()?,
            config_version: r.read()?,
            workers: 1,
            max_inflight: r.read()?,
        })
    }
}

impl Persist for Arrival {
    fn write(&self, out: &mut Vec<u8>) {
        self.at_s.write(out);
        self.at_tick.write(out);
        self.name.write(out);
        self.tenant.write(out);
        self.priority.write(out);
        self.iter_budget.write(out);
        self.deadline_s.write(out);
        self.checkpoint.write(out);
        self.recipe.write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            at_s: r.read()?,
            at_tick: r.read()?,
            name: r.read()?,
            tenant: r.read()?,
            priority: r.read()?,
            iter_budget: r.read()?,
            deadline_s: r.read()?,
            checkpoint: r.read()?,
            recipe: r.read()?,
        })
    }
}

impl Persist for JobRecipe {
    fn write(&self, out: &mut Vec<u8>) {
        match *self {
            JobRecipe::TabuOneMax { dim, iters, seed } => {
                out.push(0);
                (dim, iters, seed).write(out);
            }
            JobRecipe::TabuPpp { dim, iters, seed } => {
                out.push(1);
                (dim, iters, seed).write(out);
            }
            JobRecipe::TabuMaxCut { dim, iters, seed } => {
                out.push(2);
                (dim, iters, seed).write(out);
            }
            JobRecipe::AnnealOneMax { dim, iters, seed } => {
                out.push(3);
                (dim, iters, seed).write(out);
            }
            JobRecipe::Qap { n, iters, seed } => {
                out.push(4);
                (n, iters, seed).write(out);
            }
            JobRecipe::LnsRepair { dim, iters, seed } => {
                out.push(5);
                (dim, iters, seed).write(out);
            }
            JobRecipe::PortfolioRace { dim, iters, seed } => {
                out.push(6);
                (dim, iters, seed).write(out);
            }
        }
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let tag = u8::read(r)?;
        let (dim, iters, seed): (usize, u64, u64) = r.read()?;
        Ok(match tag {
            0 => JobRecipe::TabuOneMax { dim, iters, seed },
            1 => JobRecipe::TabuPpp { dim, iters, seed },
            2 => JobRecipe::TabuMaxCut { dim, iters, seed },
            3 => JobRecipe::AnnealOneMax { dim, iters, seed },
            4 => JobRecipe::Qap { n: dim, iters, seed },
            5 => JobRecipe::LnsRepair { dim, iters, seed },
            6 => JobRecipe::PortfolioRace { dim, iters, seed },
            b => return Err(PersistError::new(format!("bad job-recipe tag {b}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::traffic::TrafficGen;

    #[test]
    fn traces_roundtrip_bit_exactly() {
        for scenario in Scenario::catalog() {
            let trace = TrafficGen::lower(&scenario, 11);
            let bytes = trace.to_bytes();
            let back = Trace::from_bytes(&bytes).expect("decode");
            assert_eq!(back, trace, "{}", scenario.name);
            assert_eq!(back.to_bytes(), bytes, "{}: re-encoding must be stable", scenario.name);
        }
    }

    #[test]
    fn worker_count_never_reaches_the_bytes() {
        let mut a = TrafficGen::lower(&Scenario::steady(), 2);
        a.fleet.max_inflight = Some(3);
        let mut b = a.clone();
        a.fleet.workers = 1;
        b.fleet.workers = 8;
        assert_eq!(a.to_bytes(), b.to_bytes(), "worker counts must not change trace bytes");
        let back = Trace::from_bytes(&a.to_bytes()).expect("decode");
        assert_eq!(back.fleet.workers, 1, "loaded traces default to one worker");
        assert_eq!(back.fleet.max_inflight, Some(3), "the in-flight bound is replay state");
    }

    #[test]
    fn disk_roundtrip_and_corruption_errors() {
        let trace = TrafficGen::lower(&Scenario::steady(), 2);
        let path =
            std::env::temp_dir().join(format!("lnls-workload-trace-{}.trc", std::process::id()));
        trace.save(&path).expect("save");
        let back = Trace::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(back, trace);

        assert!(Trace::from_bytes(b"garbage!").is_err(), "bad magic must be refused");
        let mut truncated = trace.to_bytes();
        truncated.truncate(truncated.len() - 3);
        assert!(Trace::from_bytes(&truncated).is_err(), "truncation must be refused");
        let mut trailing = trace.to_bytes();
        trailing.push(0);
        assert!(Trace::from_bytes(&trailing).is_err(), "trailing bytes must be refused");
    }
}
