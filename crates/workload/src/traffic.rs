//! Deterministic traffic generation: lowering a `(scenario, seed)` pair
//! into a concrete, timed submission stream.
//!
//! The lowering draws every random choice — arrival gaps, tenant,
//! family, size, priority, deadlines, budgets, per-job search seeds —
//! from one seeded [`StdRng`] stream in a fixed order, so the same
//! `(scenario, seed)` always produces the same [`Arrival`] list, byte
//! for byte. The lowered stream *is* the trace
//! ([`Trace`](crate::Trace)): recording a run and replaying its trace
//! execute identical submissions against identical fleets.

use crate::scenario::{ArrivalProcess, Family, Scenario, TenantProfile};
use crate::trace::Trace;
use lnls_core::{BitString, SearchConfig, SimulatedAnnealing, TabuSearch};
use lnls_lns::{LnsSearch, PortfolioSearch};
use lnls_neighborhood::{KHamming, Neighborhood};
use lnls_ppp::{Ppp, PppInstance};
use lnls_problems::{Knapsack, MaxCut, MaxSat, OneMax, Qubo};
use lnls_qap::{Permutation, QapInstance, RtsConfig};
use lnls_runtime::{
    AnnealJob, BinaryJob, FleetClient, JobHandle, JobSpec, LnsJob, PortfolioJob, QapJobSpec,
    SubmitError,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything needed to rebuild one concrete job, compactly: sizes,
/// budgets and a seed, never instance payloads (instances regenerate
/// deterministically from the seed, which keeps traces small).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobRecipe {
    /// Full-neighborhood tabu over OneMax, 2-Hamming moves.
    TabuOneMax {
        /// Bit-string length.
        dim: usize,
        /// Search iteration budget.
        iters: u64,
        /// Seed for the initial solution and the search.
        seed: u64,
    },
    /// Full-neighborhood tabu over a generated PPP instance.
    TabuPpp {
        /// Instance dimension (`m = n = dim`).
        dim: usize,
        /// Search iteration budget.
        iters: u64,
        /// Seed for instance, initial solution and search.
        seed: u64,
    },
    /// Full-neighborhood tabu over a random Max-Cut instance.
    TabuMaxCut {
        /// Vertex count.
        dim: usize,
        /// Search iteration budget.
        iters: u64,
        /// Seed for graph, initial solution and search.
        seed: u64,
    },
    /// Simulated annealing over OneMax (sampling-style pricing).
    AnnealOneMax {
        /// Bit-string length.
        dim: usize,
        /// Annealing step budget.
        iters: u64,
        /// Seed for the initial solution and the walk.
        seed: u64,
    },
    /// QAP robust tabu over a random uniform instance.
    Qap {
        /// Facility/location count.
        n: usize,
        /// Robust-tabu iteration budget.
        iters: u64,
        /// Seed for instance, initial assignment and search.
        seed: u64,
    },
    /// Destroy-and-repair LNS over a random Knapsack, Max-3-Sat or QUBO
    /// instance (`seed % 3` picks the problem kind).
    LnsRepair {
        /// Variable count.
        dim: usize,
        /// LNS round budget.
        iters: u64,
        /// Seed for instance, initial solution and search.
        seed: u64,
    },
    /// Tabu/SA/descent portfolio race over a random Knapsack, Max-3-Sat
    /// or QUBO instance (`seed % 3` picks the problem kind).
    PortfolioRace {
        /// Variable count.
        dim: usize,
        /// Race round budget.
        iters: u64,
        /// Seed for instance, initial solution and lanes.
        seed: u64,
    },
}

impl JobRecipe {
    /// The family this recipe belongs to.
    pub fn family(&self) -> Family {
        match self {
            JobRecipe::TabuOneMax { .. } => Family::TabuOneMax,
            JobRecipe::TabuPpp { .. } => Family::TabuPpp,
            JobRecipe::TabuMaxCut { .. } => Family::TabuMaxCut,
            JobRecipe::AnnealOneMax { .. } => Family::Anneal,
            JobRecipe::Qap { .. } => Family::Qap,
            JobRecipe::LnsRepair { .. } => Family::LnsRepair,
            JobRecipe::PortfolioRace { .. } => Family::PortfolioRace,
        }
    }
}

/// One timed submission: the envelope the scheduler sees plus the
/// [`JobRecipe`] that rebuilds the job itself.
#[derive(Clone, Debug, PartialEq)]
pub struct Arrival {
    /// Modeled fleet second the submission arrives at.
    pub at_s: f64,
    /// Driver tick the submission is delivered at, when the schedule is
    /// tick-stamped (closed-loop recordings stamp every attempt,
    /// including shed-and-retried ones). `Some` overrides the
    /// modeled-clock due rule: replay delivers exactly at this tick.
    pub at_tick: Option<u64>,
    /// Submission name (tenant, family and index — stable across runs).
    pub name: String,
    /// Tenant attribution.
    pub tenant: String,
    /// Queue priority.
    pub priority: u8,
    /// Envelope iteration budget, if any.
    pub iter_budget: Option<u64>,
    /// Absolute deadline in modeled seconds, if any.
    pub deadline_s: Option<f64>,
    /// False when the job opts out of checkpoints.
    pub checkpoint: bool,
    /// How to rebuild the job.
    pub recipe: JobRecipe,
}

impl Arrival {
    /// Build the concrete job and submit it through `client` under this
    /// arrival's envelope. Every family flows through the same generic
    /// [`FleetClient::submit_spec`] path.
    pub fn submit(&self, client: &mut FleetClient) -> Result<JobHandle, SubmitError> {
        match self.recipe {
            JobRecipe::TabuOneMax { dim, iters, seed } => {
                let hood = KHamming::new(dim, 2);
                let mut rng = StdRng::seed_from_u64(seed);
                let init = BitString::random(&mut rng, dim);
                let search =
                    TabuSearch::paper(SearchConfig::budget(iters).with_seed(seed), hood.size());
                self.enveloped(client, BinaryJob::new("", OneMax::new(dim), hood, search, init))
            }
            JobRecipe::TabuPpp { dim, iters, seed } => {
                let problem = Ppp::new(PppInstance::generate(dim, dim, seed));
                let hood = KHamming::new(dim, 2);
                let mut rng = StdRng::seed_from_u64(seed);
                let init = BitString::random(&mut rng, dim);
                let search =
                    TabuSearch::paper(SearchConfig::budget(iters).with_seed(seed), hood.size());
                self.enveloped(client, BinaryJob::new("", problem, hood, search, init))
            }
            JobRecipe::TabuMaxCut { dim, iters, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let problem = MaxCut::random(&mut rng, dim, 0.35, 5);
                let hood = KHamming::new(dim, 2);
                let init = BitString::random(&mut rng, dim);
                let search =
                    TabuSearch::paper(SearchConfig::budget(iters).with_seed(seed), hood.size());
                self.enveloped(client, BinaryJob::new("", problem, hood, search, init))
            }
            JobRecipe::AnnealOneMax { dim, iters, seed } => {
                let hood = KHamming::new(dim, 2);
                let mut rng = StdRng::seed_from_u64(seed);
                let init = BitString::random(&mut rng, dim);
                let sa =
                    SimulatedAnnealing::new(SearchConfig::budget(iters).with_seed(seed), hood, 1.5);
                self.enveloped(client, AnnealJob::new("", OneMax::new(dim), sa, init))
            }
            JobRecipe::Qap { n, iters, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let inst = QapInstance::random_uniform(&mut rng, n);
                let init = Permutation::random(&mut rng, n);
                self.enveloped(
                    client,
                    QapJobSpec::new("", inst, RtsConfig::budget(iters).with_seed(seed), init),
                )
            }
            JobRecipe::LnsRepair { dim, iters, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                // Knapsack and QUBO have negative fitness, so the
                // budget default `target_fitness = Some(0)` would stop
                // round 0; clear it and let each problem's own optimum
                // (known for Max-3-Sat, unknown otherwise) decide.
                let cfg = SearchConfig::budget(iters).with_seed(seed).with_target(None);
                let search = LnsSearch::paper(cfg);
                match seed % 3 {
                    0 => {
                        let problem = Knapsack::random(&mut rng, dim, 10, 6);
                        let init = BitString::random(&mut rng, dim);
                        self.enveloped(client, LnsJob::new("", problem, search, init))
                    }
                    1 => {
                        let problem = MaxSat::random(&mut rng, dim, 4 * dim);
                        let init = BitString::random(&mut rng, dim);
                        self.enveloped(client, LnsJob::new("", problem, search, init))
                    }
                    _ => {
                        let problem = Qubo::random(&mut rng, dim, 7, 0.5);
                        let init = BitString::random(&mut rng, dim);
                        self.enveloped(client, LnsJob::new("", problem, search, init))
                    }
                }
            }
            JobRecipe::PortfolioRace { dim, iters, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let cfg = SearchConfig::budget(iters).with_seed(seed).with_target(None);
                let search = PortfolioSearch::paper(cfg);
                match seed % 3 {
                    0 => {
                        let problem = Knapsack::random(&mut rng, dim, 10, 6);
                        let init = BitString::random(&mut rng, dim);
                        self.enveloped(client, PortfolioJob::new("", problem, search, init))
                    }
                    1 => {
                        let problem = MaxSat::random(&mut rng, dim, 4 * dim);
                        let init = BitString::random(&mut rng, dim);
                        self.enveloped(client, PortfolioJob::new("", problem, search, init))
                    }
                    _ => {
                        let problem = Qubo::random(&mut rng, dim, 7, 0.5);
                        let init = BitString::random(&mut rng, dim);
                        self.enveloped(client, PortfolioJob::new("", problem, search, init))
                    }
                }
            }
        }
    }

    fn enveloped<J: lnls_runtime::SearchJob>(
        &self,
        client: &mut FleetClient,
        job: J,
    ) -> Result<JobHandle, SubmitError> {
        let mut spec = JobSpec::new(job)
            .named(self.name.clone())
            .with_priority(self.priority)
            .for_tenant(self.tenant.clone());
        if let Some(budget) = self.iter_budget {
            spec = spec.with_iter_budget(budget);
        }
        if let Some(deadline) = self.deadline_s {
            spec = spec.with_deadline(deadline);
        }
        if !self.checkpoint {
            spec = spec.without_checkpoint();
        }
        client.submit_spec(spec)
    }
}

/// The deterministic lowering from a scenario to its timed stream.
pub struct TrafficGen;

impl TrafficGen {
    /// Lower `(scenario, seed)` into a [`Trace`]: `scenario.jobs` timed
    /// arrivals in non-decreasing time order, plus the fleet/admission
    /// shape a replay rebuilds. Bit-deterministic per input pair.
    pub fn lower(scenario: &Scenario, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut clock = ArrivalClock::new(scenario.arrivals.clone());
        let mut arrivals = Vec::with_capacity(scenario.jobs as usize);
        for idx in 0..scenario.jobs {
            let at_s = clock.next_arrival(&mut rng);
            let tenant = pick_tenant(&scenario.tenants, &mut rng);
            arrivals.push(sample_arrival(tenant, idx, at_s, &mut rng));
        }
        Trace {
            scenario: scenario.name.clone(),
            seed,
            fleet: scenario.fleet,
            admission: scenario.admission.clone(),
            crash_at_tick: scenario.crash_at_tick,
            arrivals,
        }
    }
}

/// Stateful arrival-time sampler over the three process shapes.
struct ArrivalClock {
    process: ArrivalProcess,
    now_s: f64,
    /// Arrivals emitted inside the current burst (bursty only).
    in_burst: u64,
    /// Current phase index and its end time (diurnal only).
    phase: usize,
    phase_end_s: f64,
}

impl ArrivalClock {
    fn new(process: ArrivalProcess) -> Self {
        let phase_end_s = match &process {
            ArrivalProcess::Diurnal { phases } => {
                // A cycle of non-positive durations would make the
                // phase-advance loop below spin forever; refuse the
                // degenerate description up front with a clear message.
                assert!(
                    phases.iter().any(|p| p.0 > 0.0),
                    "diurnal arrival processes need at least one phase with a positive duration"
                );
                phases.first().map_or(0.0, |p| p.0)
            }
            _ => 0.0,
        };
        Self { process, now_s: 0.0, in_burst: 0, phase: 0, phase_end_s }
    }

    fn next_arrival<R: Rng>(&mut self, rng: &mut R) -> f64 {
        match &self.process {
            ArrivalProcess::Poisson { rate_per_s } => {
                self.now_s += exp_gap(rng, *rate_per_s);
            }
            ArrivalProcess::Bursty { burst, gap_s } => {
                if self.in_burst >= *burst {
                    self.now_s += gap_s.max(0.0);
                    self.in_burst = 0;
                }
                self.in_burst += 1;
            }
            ArrivalProcess::Diurnal { phases } => {
                self.now_s += exp_gap(rng, phases[self.phase].1);
                while self.now_s >= self.phase_end_s {
                    self.phase = (self.phase + 1) % phases.len();
                    self.phase_end_s += phases[self.phase].0;
                }
            }
            // Closed-loop arrivals carry no modeled time: delivery is
            // gated on completions, and the recording driver stamps the
            // actual delivery tick into each attempt.
            ArrivalProcess::ClosedLoop { .. } => {}
        }
        self.now_s
    }
}

/// One exponential inter-arrival gap with the given rate (degenerate
/// rates collapse to zero gap).
fn exp_gap<R: Rng>(rng: &mut R, rate_per_s: f64) -> f64 {
    if rate_per_s <= 0.0 || !rate_per_s.is_finite() {
        return 0.0;
    }
    let u: f64 = rng.gen(); // [0, 1)
    -(1.0 - u).ln() / rate_per_s
}

fn pick_tenant<'a, R: Rng>(tenants: &'a [TenantProfile], rng: &mut R) -> &'a TenantProfile {
    let total: f64 = tenants.iter().map(|t| t.weight).sum();
    let mut x = rng.gen::<f64>() * total;
    for t in tenants {
        x -= t.weight;
        if x < 0.0 {
            return t;
        }
    }
    tenants.last().expect("scenarios have at least one tenant")
}

fn pick_family<R: Rng>(families: &[(Family, f64)], rng: &mut R) -> Family {
    let total: f64 = families.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen::<f64>() * total;
    for (f, w) in families {
        x -= w;
        if x < 0.0 {
            return *f;
        }
    }
    families.last().expect("tenants have at least one family").0
}

/// Draw one arrival from a tenant's distributions. The sampling order
/// is part of the determinism contract — never reorder the draws.
fn sample_arrival<R: Rng>(tenant: &TenantProfile, idx: u64, at_s: f64, rng: &mut R) -> Arrival {
    let family = pick_family(&tenant.families, rng);
    let dim = tenant.dims[rng.gen_range(0..tenant.dims.len())];
    let (lo, hi) = tenant.iters;
    let iters = rng.gen_range(lo..=hi.max(lo));
    let priority = tenant.priorities[rng.gen_range(0..tenant.priorities.len())];
    let job_seed: u64 = rng.gen();
    let deadline_s = (tenant.deadline_p > 0.0 && rng.gen::<f64>() < tenant.deadline_p).then(|| {
        let (dlo, dhi) = tenant.deadline_s;
        at_s + dlo + rng.gen::<f64>() * (dhi - dlo).max(0.0)
    });
    let iter_budget = (tenant.budget_p > 0.0 && rng.gen::<f64>() < tenant.budget_p)
        .then(|| rng.gen_range(iters.div_ceil(2)..=iters));
    let checkpoint = !(tenant.no_checkpoint_p > 0.0 && rng.gen::<f64>() < tenant.no_checkpoint_p);
    let recipe = match family {
        Family::TabuOneMax => JobRecipe::TabuOneMax { dim, iters, seed: job_seed },
        Family::TabuPpp => JobRecipe::TabuPpp { dim, iters, seed: job_seed },
        Family::TabuMaxCut => JobRecipe::TabuMaxCut { dim, iters, seed: job_seed },
        Family::Anneal => JobRecipe::AnnealOneMax { dim, iters, seed: job_seed },
        // QAP cost matrices are n²; keep fleet-sized instances small.
        Family::Qap => JobRecipe::Qap { n: dim.clamp(6, 12), iters, seed: job_seed },
        Family::LnsRepair => JobRecipe::LnsRepair { dim, iters, seed: job_seed },
        Family::PortfolioRace => JobRecipe::PortfolioRace { dim, iters, seed: job_seed },
    };
    Arrival {
        at_s,
        at_tick: None,
        name: format!("{}-{}-{idx}", tenant.name, family.label()),
        tenant: tenant.name.clone(),
        priority,
        iter_budget,
        deadline_s,
        checkpoint,
        recipe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn lowering_is_deterministic_per_seed() {
        for scenario in Scenario::catalog() {
            let a = TrafficGen::lower(&scenario, 7);
            let b = TrafficGen::lower(&scenario, 7);
            assert_eq!(a, b, "{}: same (scenario, seed) must lower identically", scenario.name);
            let c = TrafficGen::lower(&scenario, 8);
            assert_ne!(
                a.arrivals, c.arrivals,
                "{}: a new seed must change the stream",
                scenario.name
            );
        }
    }

    #[test]
    fn arrivals_are_timed_and_complete() {
        for scenario in Scenario::catalog() {
            let trace = TrafficGen::lower(&scenario, 3);
            assert_eq!(trace.arrivals.len() as u64, scenario.jobs, "{}", scenario.name);
            for pair in trace.arrivals.windows(2) {
                assert!(
                    pair[0].at_s <= pair[1].at_s,
                    "{}: arrivals must be time-ordered",
                    scenario.name
                );
            }
            for a in &trace.arrivals {
                assert!(a.at_s.is_finite() && a.at_s >= 0.0);
                if let Some(d) = a.deadline_s {
                    assert!(d >= a.at_s, "deadlines are after arrival");
                }
                if let Some(b) = a.iter_budget {
                    assert!(b > 0);
                }
            }
        }
    }

    #[test]
    fn burst_storms_arrive_simultaneously() {
        let trace = TrafficGen::lower(&Scenario::burst(), 1);
        let first = trace.arrivals[0].at_s;
        let same: usize = trace.arrivals.iter().filter(|a| a.at_s == first).count();
        assert!(same >= 2, "a storm must contain simultaneous arrivals");
        assert!(trace.arrivals.iter().any(|a| a.at_s > first), "storms must be separated by gaps");
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn degenerate_diurnal_phases_are_refused() {
        let mut scenario = Scenario::steady();
        scenario.arrivals = ArrivalProcess::Diurnal { phases: vec![(0.0, 100.0)] };
        let _ = TrafficGen::lower(&scenario, 1);
    }

    #[test]
    fn family_mixes_are_respected() {
        let trace = TrafficGen::lower(&Scenario::saturation(), 5);
        let families: std::collections::BTreeSet<&'static str> =
            trace.arrivals.iter().map(|a| a.recipe.family().label()).collect();
        assert!(families.len() >= 3, "saturation must mix families, got {families:?}");
        for a in &trace.arrivals {
            if let JobRecipe::Qap { n, .. } = a.recipe {
                assert!((6..=12).contains(&n), "fleet QAP instances stay small");
            }
        }
    }
}
