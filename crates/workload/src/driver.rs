//! The replay driver: interleaving a timed submission stream with
//! scheduler ticks, under admission control, with optional mid-run
//! crash/restore.
//!
//! [`Driver::record`] lowers a scenario and runs it; [`Driver::replay`]
//! runs an existing [`Trace`]. Both execute the *same* code path over
//! the same lowered stream, so a recorded run and the replay of its
//! saved trace produce bit-identical [`FleetReport`]s — the property
//! the workload proptest pins down.

use crate::scenario::{ArrivalProcess, Scenario};
use crate::trace::Trace;
use crate::traffic::Arrival;
use lnls_gpu_sim::{DeviceSpec, MultiDevice};
use lnls_runtime::{
    EventSink, FleetCheckpoint, FleetClient, FleetReport, JobHandle, JobRegistry, JobStatus,
    MetricsRegistry, Scheduler, SchedulerConfig,
};
use lnls_shard::{ParallelFleet, ShardConfig, ShardedFleet};
use std::collections::VecDeque;
use std::fmt;

/// Closed-loop recordings abandon a submission after this many shed
/// attempts — a termination backstop for admission policies that can
/// never admit it, far above anything a drainable fleet produces.
const MAX_CLOSED_LOOP_ATTEMPTS: u32 = 64;

/// What one driven run produced: the fleet's own report plus the
/// driver-side counters (submissions that bounced at admission never
/// reach the scheduler, so only the driver can count them).
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    /// Scenario name the run was lowered from.
    pub scenario: String,
    /// The lowering seed.
    pub seed: u64,
    /// Submissions attempted (the trace's arrival count).
    pub submitted: u64,
    /// Submissions admitted by the fleet client.
    pub admitted: u64,
    /// Submissions bounced outright with a
    /// [`SubmitError`](lnls_runtime::SubmitError).
    pub bounced: u64,
    /// Crash/restore cycles the driver performed.
    pub crashes: u64,
    /// Driver ticks executed.
    pub ticks: u64,
    /// The fleet's throughput/fairness/telemetry report.
    pub fleet: FleetReport,
}

impl fmt::Display for WorkloadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "workload '{}' (seed {}): {} submitted, {} admitted, {} bounced, {} crash(es), {} ticks",
            self.scenario, self.seed, self.submitted, self.admitted, self.bounced, self.crashes,
            self.ticks
        )?;
        write!(f, "{}", self.fleet)
    }
}

/// Drives traces through a [`FleetClient`]: [`record`](Self::record)
/// lowers and runs a scenario, [`replay`](Self::replay) re-runs a
/// trace bit-identically.
pub struct Driver;

impl Driver {
    /// Lower `(scenario, seed)` and run it, returning the trace (ready
    /// to [`save`](Trace::save)) alongside the report.
    ///
    /// Scenarios with [`ArrivalProcess::ClosedLoop`] arrivals take the
    /// completion-gated recording loop instead: the returned trace
    /// carries the delivery tick of every attempt, so replaying it is
    /// open-loop and bit-identical to the recording.
    pub fn record(scenario: &Scenario, seed: u64) -> (Trace, WorkloadReport) {
        if let ArrivalProcess::ClosedLoop { clients, retry_after_ticks } = scenario.arrivals {
            return Self::record_closed_loop(scenario, seed, clients, retry_after_ticks);
        }
        let trace = crate::TrafficGen::lower(scenario, seed);
        let report = Self::replay(&trace);
        (trace, report)
    }

    /// Run a lowered trace to completion.
    ///
    /// Arrivals are delivered when the fleet clock reaches their
    /// timestamp; when the fleet is fully idle the next arrival is
    /// delivered immediately (modeled time cannot advance through an
    /// empty fleet). With [`Trace::crash_at_tick`] set, the driver
    /// serializes the whole fleet to checkpoint bytes at that tick,
    /// drops it, and resumes from the decoded bytes — jobs submitted
    /// [`without_checkpoint`](lnls_runtime::JobSpec::without_checkpoint)
    /// are lost there, exactly as a real crash would lose them.
    pub fn replay(trace: &Trace) -> WorkloadReport {
        Self::run(trace, None, false).0
    }

    /// [`replay`](Self::replay) on the true-parallel runtime with an
    /// explicit worker-thread count. Bit-identical to a plain replay of
    /// the same trace at any count — the `parallel_fleet` harness pins
    /// that across the catalog — just faster once per-shard work
    /// dominates the per-tick handoff.
    pub fn replay_with_workers(trace: &Trace, workers: usize) -> WorkloadReport {
        let mut trace = trace.clone();
        trace.fleet.workers = workers.max(1);
        Self::replay(&trace)
    }

    /// [`replay`](Self::replay) with a structured event sink attached:
    /// every fleet lifecycle event (submissions, rejections, placements,
    /// quanta, preemptions, completions) flows into `sink`, stamped with
    /// tick and modeled seconds. Observation is strictly passive — the
    /// returned report is bit-identical to a bare [`replay`](Self::replay)
    /// of the same trace. Across a simulated crash the driver detaches
    /// the sink before dropping the fleet and reattaches it to the
    /// restored one, so the event stream spans the crash (checkpoints
    /// never persist observers).
    pub fn replay_observed(trace: &Trace, sink: Box<dyn EventSink>) -> WorkloadReport {
        Self::run(trace, Some(sink), false).0
    }

    /// [`replay`](Self::replay) with a live [`MetricsRegistry`]
    /// attached, returned alongside the report. Counters in the
    /// registry match the report's outcome fields (completed, cancelled,
    /// rejected, preemptions); histograms carry wait/turnaround/quantum
    /// distributions. Carried across simulated crashes like the event
    /// sink in [`replay_observed`](Self::replay_observed).
    pub fn replay_metered(trace: &Trace) -> (WorkloadReport, MetricsRegistry) {
        let (report, metrics) = Self::run(trace, None, true);
        (report, metrics.unwrap_or_default())
    }

    /// The one replay loop every public entry point shares. `sink` and
    /// `metered` attach observers; both are detached before the
    /// crash-tick `drop` and reattached after restore, so observation
    /// never leaks into checkpoint bytes (which would break replay
    /// bit-identity) and never loses events across the crash.
    ///
    /// Traces with [`FleetProfile::shards`](crate::FleetProfile::shards)
    /// above one take the sharded loop instead
    /// ([`run_sharded`](Self::run_sharded)); a 1-shard profile stays on
    /// this exact path, so pre-sharding traces replay byte-for-byte.
    /// Traces with [`FleetProfile::workers`](crate::FleetProfile::workers)
    /// above one take the worker-thread loop
    /// ([`run_parallel`](Self::run_parallel)), which produces the same
    /// bits as both serial paths.
    fn run(
        trace: &Trace,
        sink: Option<Box<dyn EventSink>>,
        metered: bool,
    ) -> (WorkloadReport, Option<MetricsRegistry>) {
        if trace.fleet.workers > 1 {
            return Self::run_parallel(trace, sink, metered);
        }
        if trace.fleet.shards > 1 {
            return Self::run_sharded(trace, sink, metered);
        }
        let registry = JobRegistry::with_builtin();
        let mut client = FleetClient::new(Self::build_fleet(trace), trace.admission.clone());
        client.set_inflight_limit(trace.fleet.max_inflight);
        if let Some(sink) = sink {
            client.attach_sink(sink);
        }
        if metered {
            client.enable_metrics();
        }
        let mut next = 0usize;
        let (mut admitted, mut bounced) = (0u64, 0u64);
        let mut crashes = 0u64;
        let mut ticks = 0u64;
        loop {
            // Deliver every arrival that is due; when the fleet is
            // drained, jump to the next arrival instead of spinning.
            while let Some(arrival) = trace.arrivals.get(next) {
                let scheduler = client.scheduler();
                let due = match arrival.at_tick {
                    Some(t) => ticks >= t,
                    None => {
                        arrival.at_s <= scheduler.now_s()
                            || (scheduler.queued_len() == 0 && scheduler.running_len() == 0)
                    }
                };
                if !due {
                    break;
                }
                match arrival.submit(&mut client) {
                    Ok(_) => admitted += 1,
                    Err(_) => bounced += 1,
                }
                next += 1;
            }
            let progressed = client.tick();
            ticks += 1;
            if trace.crash_at_tick == Some(ticks) {
                let bytes = client.checkpoint().to_bytes();
                // Observers survive the crash on the driver side — the
                // checkpoint never carries them (they are process
                // artifacts, not fleet state).
                let saved_sink = client.detach_sink();
                let saved_metrics = client.take_metrics();
                drop(client); // the crash: all in-memory state is gone
                let revived = FleetCheckpoint::from_bytes(&bytes, &registry)
                    .expect("a checkpoint the fleet just wrote must decode");
                client = FleetClient::resume(
                    Scheduler::restore(revived),
                    trace.admission.clone(),
                    bounced,
                );
                // Limiters are process state, never checkpoint bytes —
                // reinstall after every restore.
                client.set_inflight_limit(trace.fleet.max_inflight);
                if let Some(sink) = saved_sink {
                    client.attach_sink(sink);
                }
                if let Some(metrics) = saved_metrics {
                    client.attach_metrics(metrics);
                }
                crashes += 1;
            }
            if !progressed && next >= trace.arrivals.len() {
                break;
            }
        }
        // Flush the sink before the client goes away so file-backed
        // sinks are complete the moment the report is in hand.
        if let Some(mut sink) = client.detach_sink() {
            sink.flush();
        }
        let metrics = client.take_metrics();
        (
            WorkloadReport {
                scenario: trace.scenario.clone(),
                seed: trace.seed,
                submitted: trace.arrivals.len() as u64,
                admitted,
                bounced,
                crashes,
                ticks,
                fleet: client.fleet_report(),
            },
            metrics,
        )
    }

    /// The sharded replay loop. Differences from the unsharded path,
    /// all deterministic:
    ///
    /// * The fleet is a [`ShardedFleet`] minted under the trace's
    ///   recorded [`config_version`](crate::FleetProfile::config_version)
    ///   — a trace captured under v1 replays under v1 ring/steal
    ///   semantics even after the current version moves on.
    /// * An arrival is due when its *target shard's* clock reaches its
    ///   timestamp (tenants route by consistent hashing), or when the
    ///   whole fleet is idle — which reduces to the unsharded rule on
    ///   one shard.
    /// * Event sinks attach to shard 0 only: event streams are
    ///   per-scheduler time series, and samples from shards with
    ///   unsynchronized clocks do not interleave meaningfully. Metrics
    ///   registries attach to *every* shard — counters and histograms
    ///   are additive, so the per-shard registries merge into exact
    ///   fleet-wide totals at the end.
    /// * The simulated crash serializes every shard's checkpoint bytes,
    ///   drops the fleet, and reassembles it from the decoded shards
    ///   with the steal-barrier phase realigned to the crash tick.
    fn run_sharded(
        trace: &Trace,
        sink: Option<Box<dyn EventSink>>,
        metered: bool,
    ) -> (WorkloadReport, Option<MetricsRegistry>) {
        let registry = JobRegistry::with_builtin();
        let shard_cfg = ShardConfig::for_version(trace.fleet.config_version)
            .unwrap_or_else(|e| panic!("trace '{}' is unreplayable: {e}", trace.scenario));
        let mut fleet = Self::build_sharded_fleet(trace, shard_cfg);
        for i in 0..fleet.shard_count() {
            fleet.shard_mut(i).set_inflight_limit(trace.fleet.max_inflight);
        }
        if let Some(sink) = sink {
            fleet.shard_mut(0).attach_sink(sink);
        }
        if metered {
            for i in 0..fleet.shard_count() {
                fleet.shard_mut(i).enable_metrics();
            }
        }
        let mut next = 0usize;
        let (mut admitted, mut crashes, mut ticks) = (0u64, 0u64, 0u64);
        let mut bounced = vec![0u64; trace.fleet.shards];
        loop {
            while let Some(arrival) = trace.arrivals.get(next) {
                let target = fleet.shard_for(&arrival.tenant);
                let due = match arrival.at_tick {
                    Some(t) => ticks >= t,
                    None => {
                        arrival.at_s <= fleet.shard(target).scheduler().now_s()
                            || (fleet.queued_len() == 0 && fleet.running_len() == 0)
                    }
                };
                if !due {
                    break;
                }
                match arrival.submit(fleet.shard_mut(target)) {
                    Ok(_) => admitted += 1,
                    Err(_) => bounced[target] += 1,
                }
                next += 1;
            }
            let progressed = fleet.tick();
            ticks += 1;
            if trace.crash_at_tick == Some(ticks) {
                let shard_bytes: Vec<Vec<u8>> = (0..fleet.shard_count())
                    .map(|i| fleet.shard(i).checkpoint().to_bytes())
                    .collect();
                let saved_sink = fleet.shard_mut(0).detach_sink();
                let saved_metrics: Vec<Option<MetricsRegistry>> =
                    (0..fleet.shard_count()).map(|i| fleet.shard_mut(i).take_metrics()).collect();
                drop(fleet); // the crash: all in-memory state is gone
                let shards = shard_bytes
                    .iter()
                    .zip(&bounced)
                    .map(|(bytes, &shard_bounced)| {
                        let revived = FleetCheckpoint::from_bytes(bytes, &registry)
                            .expect("a checkpoint the fleet just wrote must decode");
                        let mut client = FleetClient::resume(
                            Scheduler::restore(revived),
                            trace.admission.clone(),
                            shard_bounced,
                        );
                        client.set_inflight_limit(trace.fleet.max_inflight);
                        client
                    })
                    .collect();
                fleet = ShardedFleet::from_clients(shard_cfg, shards, ticks);
                if let Some(sink) = saved_sink {
                    fleet.shard_mut(0).attach_sink(sink);
                }
                for (i, metrics) in saved_metrics.into_iter().enumerate() {
                    if let Some(metrics) = metrics {
                        fleet.shard_mut(i).attach_metrics(metrics);
                    }
                }
                crashes += 1;
            }
            if !progressed && next >= trace.arrivals.len() {
                break;
            }
        }
        if let Some(mut sink) = fleet.shard_mut(0).detach_sink() {
            sink.flush();
        }
        let mut metrics: Option<MetricsRegistry> = None;
        for i in 0..fleet.shard_count() {
            if let Some(shard_metrics) = fleet.shard_mut(i).take_metrics() {
                match metrics.as_mut() {
                    Some(merged) => merged.absorb(&shard_metrics),
                    None => metrics = Some(shard_metrics),
                }
            }
        }
        (
            WorkloadReport {
                scenario: trace.scenario.clone(),
                seed: trace.seed,
                submitted: trace.arrivals.len() as u64,
                admitted,
                bounced: bounced.iter().sum(),
                crashes,
                ticks,
                fleet: fleet.fleet_report(),
            },
            metrics,
        )
    }

    /// The parallel replay loop: the sharded loop's decisions verbatim,
    /// but shard ticks execute on [`ParallelFleet`]'s worker threads.
    /// Every driver-side decision (arrival delivery, crash, accounting)
    /// happens on the coordinator between ticks, where the fleet state
    /// is bit-identical to the serial runtimes at any worker count —
    /// the `parallel_fleet` harness pins the equivalence across the
    /// catalog.
    fn run_parallel(
        trace: &Trace,
        sink: Option<Box<dyn EventSink>>,
        metered: bool,
    ) -> (WorkloadReport, Option<MetricsRegistry>) {
        let registry = JobRegistry::with_builtin();
        let shard_cfg = ShardConfig::for_version(trace.fleet.config_version)
            .unwrap_or_else(|e| panic!("trace '{}' is unreplayable: {e}", trace.scenario));
        let mut fleet = Self::build_parallel_fleet(trace, shard_cfg);
        if let Some(sink) = sink {
            fleet.shard_mut(0).attach_sink(sink);
        }
        if metered {
            for i in 0..fleet.shard_count() {
                fleet.shard_mut(i).enable_metrics();
            }
        }
        let mut next = 0usize;
        let (mut admitted, mut crashes, mut ticks) = (0u64, 0u64, 0u64);
        let mut bounced = vec![0u64; fleet.shard_count()];
        loop {
            while let Some(arrival) = trace.arrivals.get(next) {
                let target = fleet.shard_for(&arrival.tenant);
                let due = match arrival.at_tick {
                    Some(t) => ticks >= t,
                    None => {
                        arrival.at_s <= fleet.shard(target).scheduler().now_s()
                            || (fleet.queued_len() == 0 && fleet.running_len() == 0)
                    }
                };
                if !due {
                    break;
                }
                match arrival.submit(fleet.shard_mut(target)) {
                    Ok(_) => admitted += 1,
                    Err(_) => bounced[target] += 1,
                }
                next += 1;
            }
            let progressed = fleet.tick();
            ticks += 1;
            if trace.crash_at_tick == Some(ticks) {
                let shard_bytes: Vec<Vec<u8>> = (0..fleet.shard_count())
                    .map(|i| fleet.shard(i).checkpoint().to_bytes())
                    .collect();
                let saved_sink = fleet.shard_mut(0).detach_sink();
                let saved_metrics: Vec<Option<MetricsRegistry>> =
                    (0..fleet.shard_count()).map(|i| fleet.shard_mut(i).take_metrics()).collect();
                let workers = fleet.worker_count();
                // The crash: dropping the fleet joins every worker
                // thread, so all in-memory state is gone.
                drop(fleet);
                let shards = shard_bytes
                    .iter()
                    .zip(&bounced)
                    .map(|(bytes, &shard_bounced)| {
                        let revived = FleetCheckpoint::from_bytes(bytes, &registry)
                            .expect("a checkpoint the fleet just wrote must decode");
                        let mut client = FleetClient::resume(
                            Scheduler::restore(revived),
                            trace.admission.clone(),
                            shard_bounced,
                        );
                        client.set_inflight_limit(trace.fleet.max_inflight);
                        client
                    })
                    .collect();
                fleet = ParallelFleet::from_clients(shard_cfg, shards, workers, ticks);
                if let Some(sink) = saved_sink {
                    fleet.shard_mut(0).attach_sink(sink);
                }
                for (i, metrics) in saved_metrics.into_iter().enumerate() {
                    if let Some(metrics) = metrics {
                        fleet.shard_mut(i).attach_metrics(metrics);
                    }
                }
                crashes += 1;
            }
            if !progressed && next >= trace.arrivals.len() {
                break;
            }
        }
        if let Some(mut sink) = fleet.shard_mut(0).detach_sink() {
            sink.flush();
        }
        let mut metrics: Option<MetricsRegistry> = None;
        for i in 0..fleet.shard_count() {
            if let Some(shard_metrics) = fleet.shard_mut(i).take_metrics() {
                match metrics.as_mut() {
                    Some(merged) => merged.absorb(&shard_metrics),
                    None => metrics = Some(shard_metrics),
                }
            }
        }
        (
            WorkloadReport {
                scenario: trace.scenario.clone(),
                seed: trace.seed,
                submitted: trace.arrivals.len() as u64,
                admitted,
                bounced: bounced.iter().sum(),
                crashes,
                ticks,
                fleet: fleet.fleet_report(),
            },
            metrics,
        )
    }

    /// The completion-gated recording loop behind
    /// [`record`](Self::record) for [`ArrivalProcess::ClosedLoop`]
    /// scenarios. `clients` logical submitters each keep at most one
    /// job in flight; a slot frees the tick its job turns terminal, and
    /// a shed submission backs its client off for `retry_after_ticks`
    /// before retrying. Every attempt — admitted or shed — is stamped
    /// with its delivery tick and recorded into the returned trace, so
    /// replaying it is open-loop, needs no completion feedback, and
    /// reproduces the recording bit-for-bit (sheds included, since the
    /// per-shard limiter state evolves identically).
    ///
    /// Runs on the [`ParallelFleet`] runtime at the scenario's worker
    /// count; every gating decision reads coordinator-side state
    /// between ticks, so the recording itself is worker-independent.
    fn record_closed_loop(
        scenario: &Scenario,
        seed: u64,
        clients: usize,
        retry_after_ticks: u64,
    ) -> (Trace, WorkloadReport) {
        let clients = clients.max(1);
        let retry_after_ticks = retry_after_ticks.max(1);
        let mut trace = crate::TrafficGen::lower(scenario, seed);
        assert!(
            trace.crash_at_tick.is_none(),
            "closed-loop recording does not support the crash stressor; crash a replay of the \
             recorded trace instead"
        );
        let shard_cfg = ShardConfig::for_version(trace.fleet.config_version)
            .unwrap_or_else(|e| panic!("scenario '{}' is unrunnable: {e}", scenario.name));
        let mut fleet = Self::build_parallel_fleet(&trace, shard_cfg);
        let mut pending: VecDeque<Arrival> = trace.arrivals.drain(..).collect();
        // Shed attempts waiting out their backoff: (due tick, attempts
        // so far, the arrival), in shed order.
        let mut retries: VecDeque<(u64, u32, Arrival)> = VecDeque::new();
        let mut inflight: Vec<JobHandle> = Vec::new();
        let mut recorded: Vec<Arrival> = Vec::new();
        let (mut admitted, mut bounced, mut ticks) = (0u64, 0u64, 0u64);
        loop {
            // A logical client is running a job, backing off a shed, or
            // free; only free clients submit this tick — due retries
            // first (in shed order), then fresh arrivals.
            let backing_off = retries.iter().filter(|(due, _, _)| *due > ticks).count();
            let mut free = clients.saturating_sub(inflight.len() + backing_off);
            while free > 0 {
                let (attempts, mut arrival) =
                    if retries.front().is_some_and(|(due, _, _)| *due <= ticks) {
                        let (_, attempts, arrival) = retries.pop_front().expect("front checked");
                        (attempts, arrival)
                    } else if let Some(arrival) = pending.pop_front() {
                        (0u32, arrival)
                    } else {
                        break;
                    };
                free -= 1;
                let target = fleet.shard_for(&arrival.tenant);
                arrival.at_tick = Some(ticks);
                arrival.at_s = fleet.shard(target).scheduler().now_s();
                match arrival.submit(fleet.shard_mut(target)) {
                    Ok(handle) => {
                        admitted += 1;
                        inflight.push(handle);
                    }
                    Err(_) => {
                        bounced += 1;
                        if attempts + 1 < MAX_CLOSED_LOOP_ATTEMPTS {
                            retries.push_back((
                                ticks + retry_after_ticks,
                                attempts + 1,
                                arrival.clone(),
                            ));
                        }
                    }
                }
                recorded.push(arrival);
            }
            let progressed = fleet.tick();
            ticks += 1;
            inflight.retain(|&h| matches!(fleet.status(h), JobStatus::Queued | JobStatus::Running));
            if !progressed && pending.is_empty() && retries.is_empty() && inflight.is_empty() {
                break;
            }
        }
        let report = WorkloadReport {
            scenario: trace.scenario.clone(),
            seed,
            submitted: recorded.len() as u64,
            admitted,
            bounced,
            crashes: 0,
            ticks,
            fleet: fleet.fleet_report(),
        };
        trace.arrivals = recorded;
        (trace, report)
    }

    fn scheduler_config(trace: &Trace) -> SchedulerConfig {
        SchedulerConfig {
            cpu_workers: trace.fleet.cpu_workers,
            max_batch: trace.fleet.max_batch,
            quantum_iters: trace.fleet.quantum_iters,
            telemetry_every_ticks: Some(trace.fleet.telemetry_every_ticks),
            telemetry_max_samples: trace.fleet.telemetry_max_samples,
            selection: trace.fleet.selection,
            span_iters: trace.fleet.span_iters,
            launch_mode: trace.fleet.launch_mode,
            ..Default::default()
        }
    }

    fn build_fleet(trace: &Trace) -> Scheduler {
        // The fleet knobs ride in the trace, so a replayed run prices on
        // the very engine layout and selection mode it was recorded with.
        let spec = DeviceSpec::gtx280().with_engines(trace.fleet.engines);
        Scheduler::new(
            MultiDevice::new_uniform(trace.fleet.devices, spec),
            Self::scheduler_config(trace),
        )
    }

    fn build_sharded_fleet(trace: &Trace, shard_cfg: ShardConfig) -> ShardedFleet {
        let spec = DeviceSpec::gtx280().with_engines(trace.fleet.engines);
        ShardedFleet::new(
            shard_cfg,
            trace.admission.clone(),
            trace.fleet.shards,
            Self::scheduler_config(trace),
            move |_| MultiDevice::new_uniform(trace.fleet.devices, spec.clone()),
        )
    }

    fn build_parallel_fleet(trace: &Trace, shard_cfg: ShardConfig) -> ParallelFleet {
        let spec = DeviceSpec::gtx280().with_engines(trace.fleet.engines);
        let mut fleet = ParallelFleet::new(
            shard_cfg,
            trace.admission.clone(),
            trace.fleet.shards.max(1),
            trace.fleet.workers.max(1),
            Self::scheduler_config(trace),
            move |_| MultiDevice::new_uniform(trace.fleet.devices, spec.clone()),
        );
        for i in 0..fleet.shard_count() {
            fleet.shard_mut(i).set_inflight_limit(trace.fleet.max_inflight);
        }
        fleet
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::TrafficGen;

    /// Accounting invariant of a completed run without crashes: every
    /// submission is admitted or bounced, and every admitted job ends
    /// completed, cancelled or shed.
    #[test]
    fn counters_add_up_across_the_catalog() {
        for scenario in Scenario::catalog() {
            if scenario.crash_at_tick.is_some() {
                continue; // opt-out jobs are lost at the crash, by design
            }
            let (_, report) = Driver::record(&scenario, 4);
            let name = &scenario.name;
            assert_eq!(report.submitted, scenario.jobs, "{name}");
            assert_eq!(report.admitted + report.bounced, report.submitted, "{name}");
            let fleet = &report.fleet;
            assert_eq!(fleet.jobs_queued + fleet.jobs_running, 0, "{name}: fleet drained");
            let sheds = fleet.jobs_rejected - report.bounced;
            assert_eq!(
                fleet.jobs_completed + fleet.jobs_cancelled + sheds,
                report.admitted,
                "{name}: every admitted job must account for itself"
            );
            let telemetry = fleet.telemetry.as_ref().expect("scenarios record telemetry");
            assert!(!telemetry.is_empty(), "{name}");
        }
    }

    #[test]
    fn burst_storms_trip_the_queue_cap() {
        let (_, report) = Driver::record(&Scenario::burst(), 1);
        assert!(report.bounced > 0, "storms against a hard cap must bounce submissions");
        assert!(report.fleet.jobs_completed > 0, "the fleet still serves what it admitted");
    }

    #[test]
    fn priority_inversion_sheds_bulk_not_urgent() {
        let (trace, report) = Driver::record(&Scenario::priority_inversion(), 2);
        assert!(
            trace.arrivals.iter().any(|a| a.tenant == "urgent"),
            "the mix must contain urgent arrivals (tune weights otherwise)"
        );
        let shed_by_tenant = report.fleet.rejections_by_tenant();
        assert_eq!(
            shed_by_tenant.get("urgent"),
            None,
            "urgent tenants must never be shed: {shed_by_tenant:?}"
        );
    }

    #[test]
    fn deadline_heavy_cancels_late_jobs() {
        let (trace, report) = Driver::record(&Scenario::deadline_heavy(), 3);
        assert!(trace.arrivals.iter().any(|a| a.deadline_s.is_some()));
        assert!(
            report.fleet.jobs_cancelled > 0,
            "tight deadlines must produce misses: {}",
            report.fleet
        );
    }

    #[test]
    fn checkpoint_churn_crashes_and_finishes() {
        let scenario = Scenario::checkpoint_churn();
        let (trace, report) = Driver::record(&scenario, 5);
        assert_eq!(report.crashes, 1, "the scenario crashes once");
        assert!(report.fleet.jobs_completed > 0);
        // Jobs that opted out of checkpoints may be lost at the crash;
        // nobody else may be.
        let opted_out = trace.arrivals.iter().filter(|a| !a.checkpoint).count() as u64;
        let fleet = &report.fleet;
        let accounted =
            fleet.jobs_completed + fleet.jobs_cancelled + fleet.jobs_rejected - report.bounced;
        assert!(
            report.admitted - accounted <= opted_out,
            "only checkpoint opt-outs may vanish: admitted {}, accounted {accounted}, \
             opted out {opted_out}",
            report.admitted
        );
    }

    #[test]
    fn record_equals_inline_replay() {
        let scenario = Scenario::steady();
        let (trace, recorded) = Driver::record(&scenario, 9);
        let replayed = Driver::replay(&trace);
        assert_eq!(
            format!("{:?}", recorded.fleet),
            format!("{:?}", replayed.fleet),
            "replaying the in-memory trace must be bit-identical"
        );
    }

    #[test]
    fn sharded_saturation_round_trips_bit_identically() {
        let scenario = Scenario::saturation_sharded();
        assert!(scenario.fleet.shards > 1, "the scenario must exercise the sharded loop");
        let (trace, recorded) = Driver::record(&scenario, 11);
        let reloaded =
            crate::Trace::from_bytes(&trace.to_bytes()).expect("sharded traces round-trip");
        assert_eq!(reloaded.fleet.shards, scenario.fleet.shards);
        assert_eq!(reloaded.fleet.config_version, lnls_shard::CONFIG_VERSION);
        let replayed = Driver::replay(&reloaded);
        assert_eq!(
            format!("{:?}", recorded.fleet),
            format!("{:?}", replayed.fleet),
            "a sharded trace reloaded from bytes must replay bit-identically"
        );
        assert!(recorded.fleet.jobs_completed > 0);
    }

    #[test]
    fn sharded_crash_restores_every_shard() {
        let mut scenario = Scenario::saturation_sharded();
        scenario.crash_at_tick = Some(12);
        let (trace, report) = Driver::record(&scenario, 3);
        assert_eq!(report.crashes, 1, "the driver must crash the sharded fleet once");
        assert!(report.fleet.jobs_completed > 0, "the restored fleet must finish the work");
        let replayed = Driver::replay(&trace);
        assert_eq!(
            format!("{:?}", report.fleet),
            format!("{:?}", replayed.fleet),
            "crash/restore across shards must stay deterministic"
        );
    }

    #[test]
    fn closed_loop_records_sheds_and_replays_bit_identically() {
        let scenario = Scenario::closed_loop_saturation();
        let (trace, recorded) = Driver::record(&scenario, 7);
        assert!(recorded.bounced > 0, "the in-flight bound must shed attempts: {recorded}");
        assert_eq!(recorded.admitted, scenario.jobs, "every logical job eventually admits");
        assert_eq!(recorded.admitted + recorded.bounced, recorded.submitted);
        assert!(
            trace.arrivals.iter().all(|a| a.at_tick.is_some()),
            "closed-loop recordings stamp the delivery tick of every attempt"
        );
        // Through bytes the worker count resets to one (it is not
        // persisted), so this replays the recording on the serial path.
        let reloaded = crate::Trace::from_bytes(&trace.to_bytes()).expect("round-trip");
        assert_eq!(reloaded.fleet.workers, 1);
        let replayed = Driver::replay(&reloaded);
        assert_eq!(recorded.ticks, replayed.ticks, "the delivery schedule must replay verbatim");
        assert_eq!(recorded.admitted, replayed.admitted);
        assert_eq!(recorded.bounced, replayed.bounced, "sheds must reproduce identically");
        assert_eq!(
            format!("{:?}", recorded.fleet),
            format!("{:?}", replayed.fleet),
            "a closed-loop recording must replay bit-identically on the serial path"
        );
    }

    #[test]
    fn saturation_exercises_every_backend() {
        let (trace, report) = Driver::record(&Scenario::saturation(), 6);
        assert!(report.fleet.fused_launches > 0, "same-key tabu lanes must fuse");
        assert!(
            report.fleet.device_busy_s.iter().all(|&b| b > 0.0),
            "every device must see work: {:?}",
            report.fleet.device_busy_s
        );
        let qaps =
            trace.arrivals.iter().filter(|a| a.recipe.family() == crate::Family::Qap).count();
        assert!(qaps > 0, "saturation must include QAP tenants");
    }

    #[test]
    fn report_display_names_the_scenario() {
        let trace = TrafficGen::lower(&Scenario::steady().scaled(0.3), 1);
        let report = Driver::replay(&trace);
        let text = report.to_string();
        assert!(text.contains("workload 'steady'"), "{text}");
        assert!(text.contains("wait p50/p95/p99"), "{text}");
    }
}
