//! # lnls-workload — scenario catalog, traffic generation, replay
//!
//! The runtime (`lnls-runtime`) can schedule, batch, preempt, admit and
//! checkpoint arbitrary [`SearchJob`](lnls_runtime::SearchJob)s — but a
//! scheduler is only as credible as the traffic it has survived. This
//! crate is the traffic:
//!
//! * **[`Scenario`]** — a declarative description of a load pattern:
//!   seeded arrival processes (Poisson, bursty storms, diurnal phases),
//!   tenant mixes with per-tenant family/size/priority/deadline/budget
//!   distributions over every bundled job family (binary tabu, PPP
//!   cryptanalysis, Max-Cut from the problems zoo, simulated annealing,
//!   QAP robust tabu, destroy-and-repair LNS and portfolio races over
//!   Knapsack/Max-3-Sat/QUBO), a fleet shape and an admission policy.
//!   A named [catalog](Scenario::catalog) ships nine scenarios from
//!   steady-state to crash-churn to sharded saturation.
//! * **[`TrafficGen`]** — the deterministic lowering: `(scenario, seed)`
//!   becomes a [`Trace`] of timed [`Arrival`]s, bit-reproducibly.
//! * **[`Trace`]** — the record/replay format on
//!   [`lnls_core::persist`]: save any lowered run, reload it, and
//!   replay it **bit-identically** (f64s round-trip as raw bits).
//! * **[`Driver`]** — interleaves arrivals with scheduler ticks through
//!   a [`FleetClient`](lnls_runtime::FleetClient), collects the fleet's
//!   time-series telemetry, and (for the checkpoint-churn scenario)
//!   crashes the fleet mid-run and restores it from checkpoint bytes.
//!   [`Driver::replay_observed`] and [`Driver::replay_metered`] attach
//!   structured event sinks and a live metrics registry without
//!   perturbing the replay (reports stay bit-identical).
//! * **[`WhatIf`]** — trace-diff analytics: replay one recorded trace
//!   across fleet variants (engine layout × selection mode × device
//!   count) and tabulate tail wait, rejections, bytes moved and busy
//!   fraction per variant.
//!
//! ## Quickstart
//!
//! ```
//! use lnls_workload::{Driver, Scenario, Trace};
//!
//! let scenario = Scenario::by_name("steady").expect("catalog scenario");
//! let (trace, report) = Driver::record(&scenario, 42);
//! assert_eq!(report.submitted, scenario.jobs);
//!
//! // Traces round-trip through bytes and replay bit-identically.
//! let reloaded = Trace::from_bytes(&trace.to_bytes()).expect("decode");
//! let replayed = Driver::replay(&reloaded);
//! assert_eq!(format!("{:?}", replayed.fleet), format!("{:?}", report.fleet));
//!
//! // The report carries queue-depth backpressure over time.
//! let telemetry = report.fleet.telemetry.expect("scenarios record telemetry");
//! assert!(!telemetry.is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod driver;
mod scenario;
mod trace;
mod traffic;
mod whatif;

pub use driver::{Driver, WorkloadReport};
pub use scenario::{
    ArrivalProcess, Family, FleetProfile, Scenario, TenantProfile, UnknownScenario,
};
pub use trace::Trace;
pub use traffic::{Arrival, JobRecipe, TrafficGen};
pub use whatif::{Variant, VariantOutcome, WhatIf, WhatIfReport};
