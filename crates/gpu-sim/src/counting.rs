//! Instruction and memory-transaction counting on sampled blocks.
//!
//! The profiler executes a handful of blocks with a context that records,
//! per thread, instruction-class counts and the address trace of every
//! device-memory access. Traces are then aggregated per warp:
//!
//! * the SIMT **issue cost** of a warp is the *maximum* instruction count
//!   over its threads (inactive lanes still occupy issue slots), plus one
//!   extra issue slot per additional memory transaction a divergent /
//!   scattered access generates;
//! * **coalescing** follows the GT200 rule: for every access "site"
//!   (the i-th device access of each thread, grouped across the warp),
//!   the touched 128-byte segments are counted, and each transaction is
//!   shrunk to 64/32 bytes when the warp's footprint within the segment
//!   allows.
//!
//! The per-warp aggregates are averaged and scaled to the full launch by
//! the timing model.

use crate::memory::MemSpace;

/// Instruction-class counters for one simulated thread.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct ThreadCounters {
    /// Scalar ALU instructions.
    pub alu: u64,
    /// Special-function instructions.
    pub sfu: u64,
    /// Branches executed.
    pub branches: u64,
    /// Global-space loads.
    pub ld_global: u64,
    /// Global-space stores.
    pub st_global: u64,
    /// Texture fetches.
    pub ld_texture: u64,
    /// Constant-cache loads.
    pub ld_constant: u64,
    /// Shared-memory accesses (loads + stores).
    pub shared: u64,
    /// Local-memory accesses (per-thread scratch in DRAM).
    pub local: u64,
}

impl ThreadCounters {
    /// Total dynamic instructions as seen by the issue unit (each memory
    /// access is one instruction; transaction replays are added during
    /// warp aggregation).
    #[inline]
    pub fn issue_slots(&self, sfu_issue_factor: f64) -> f64 {
        (self.alu
            + self.branches
            + self.ld_global
            + self.st_global
            + self.ld_texture
            + self.ld_constant
            + self.shared
            + self.local) as f64
            + self.sfu as f64 * sfu_issue_factor
    }

    /// Device-memory accesses that pay DRAM-class latency.
    #[inline]
    pub fn dram_accesses(&self) -> u64 {
        self.ld_global + self.st_global + self.ld_texture + self.local
    }
}

/// One recorded device-memory access (profiling mode only).
#[derive(Copy, Clone, Debug)]
pub struct AccessRec {
    /// Memory space of the buffer.
    pub space: MemSpace,
    /// Access width in bytes (4 or 8).
    pub bytes: u32,
    /// Byte address within the buffer's allocation, offset by a
    /// per-buffer base so distinct buffers never share segments.
    pub addr: u64,
    /// True for stores.
    pub store: bool,
}

/// Everything recorded about one thread during profiling.
#[derive(Clone, Debug, Default)]
pub struct ThreadTrace {
    /// Instruction-class counts.
    pub counters: ThreadCounters,
    /// Ordered device-memory access trace.
    pub accesses: Vec<AccessRec>,
    /// Ordered shared-memory cell indices (for bank-conflict analysis).
    pub shared_accesses: Vec<u32>,
    /// Branch outcomes in program order (for divergence estimation).
    pub branch_taken: Vec<bool>,
}

/// Per-launch aggregate fed to the timing model. All `per_*` quantities
/// are averages over the sampled population.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KernelCounters {
    /// Threads the launch executes in total (grid × block).
    pub total_threads: u64,
    /// Threads actually profiled.
    pub sampled_threads: u64,
    /// Warps actually profiled.
    pub sampled_warps: u64,
    /// Average per-thread instruction counters.
    pub per_thread: ThreadCounters,
    /// Average per-thread counters in floating point (exact means).
    pub per_thread_avg: ThreadAverages,
    /// Mean over warps of the max per-thread issue-slot count — the SIMT
    /// issue cost of one warp, *before* transaction replays.
    pub warp_issue_slots: f64,
    /// Mean extra transactions per warp (beyond the first) summed over
    /// all access sites — the replay cost added to the issue stream.
    pub warp_extra_transactions: f64,
    /// Mean shared-memory bank-conflict replays per warp (GT200: 16
    /// banks per half-warp, broadcast exempt).
    pub warp_bank_conflicts: f64,
    /// Texture-cache hit rate measured by replaying the sampled blocks'
    /// fetch streams through a cache model; `None` when the kernel
    /// issued no texture fetches.
    pub measured_tex_hit: Option<f64>,
    /// Mean DRAM transactions a warp generates (all spaces that reach
    /// DRAM: global + local + texture misses are derated later).
    pub warp_dram_transactions: f64,
    /// Average DRAM bytes per *thread* (after coalescing, before the
    /// texture-hit derating applied by the timing model).
    pub bytes_per_thread: BytesBySpace,
    /// Fraction of branch sites with divergent outcomes within a warp.
    pub divergent_branch_frac: f64,
}

/// Floating-point per-thread means for each instruction class.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct ThreadAverages {
    /// ALU instructions.
    pub alu: f64,
    /// Special-function instructions.
    pub sfu: f64,
    /// Branches.
    pub branches: f64,
    /// Global loads.
    pub ld_global: f64,
    /// Global stores.
    pub st_global: f64,
    /// Texture fetches.
    pub ld_texture: f64,
    /// Constant loads.
    pub ld_constant: f64,
    /// Shared accesses.
    pub shared: f64,
    /// Local accesses.
    pub local: f64,
}

/// Post-coalescing DRAM bytes per thread, by space.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct BytesBySpace {
    /// Global loads+stores.
    pub global: f64,
    /// Texture fetches (before cache-hit derating).
    pub texture: f64,
    /// Local scratch.
    pub local: f64,
}

/// GT200 coalescing: given the byte addresses one warp issues at one
/// access site, return `(transactions, bytes)` after segment merging.
///
/// Rule (CUDA programming guide, compute capability 1.2/1.3): addresses
/// are binned into aligned 128-byte segments; each touched segment is one
/// transaction, shrunk to 64 or 32 bytes if the warp's footprint inside
/// the segment fits an aligned half/quarter segment.
pub fn coalesce(addrs: &[u64], segment: u32) -> (u64, u64) {
    if addrs.is_empty() {
        return (0, 0);
    }
    let seg = segment as u64;
    // Tiny fixed-capacity set: a warp touches at most 32 segments.
    let mut segs: Vec<u64> = Vec::with_capacity(8);
    for &a in addrs {
        let s = a / seg;
        if !segs.contains(&s) {
            segs.push(s);
        }
    }
    let mut bytes = 0u64;
    for &s in &segs {
        let lo = addrs.iter().filter(|&&a| a / seg == s).min().copied().unwrap();
        let hi = addrs.iter().filter(|&&a| a / seg == s).max().copied().unwrap();
        // Footprint within the segment, aligned shrink to 32/64 bytes.
        let mut size = seg;
        for candidate in [seg / 4, seg / 2] {
            if candidate >= 32 && lo / candidate == hi / candidate {
                size = candidate;
                break;
            }
        }
        bytes += size;
    }
    (segs.len() as u64, bytes)
}

/// Aggregate the traces of one warp's threads.
#[derive(Clone, Debug, Default)]
pub struct WarpAggregate {
    /// Max issue slots over the warp's threads.
    pub issue_slots: f64,
    /// Extra transactions beyond one per access site.
    pub extra_transactions: f64,
    /// Shared-memory bank-conflict replays.
    pub bank_conflicts: f64,
    /// DRAM transactions.
    pub dram_transactions: f64,
    /// Post-coalescing bytes by space.
    pub bytes: BytesBySpace,
    /// Branch sites examined / divergent.
    pub branch_sites: u64,
    /// Divergent branch sites.
    pub divergent_sites: u64,
}

/// GT200 shared-memory bank conflicts for one access site: 16 banks of
/// 32-bit words served per *half*-warp; lanes hitting the same bank
/// serialize unless they read the very same address (broadcast). The
/// simulator's shared cells are 64-bit, so cell `i` occupies banks
/// `(2i) % 16` and `(2i+1) % 16` — modeled as bank pair `i % 8`.
///
/// Returns the number of *extra* cycles (replays) beyond a conflict-free
/// access.
pub fn bank_conflict_replays(cells: &[u32]) -> u64 {
    let mut extra = 0u64;
    for half in cells.chunks(16) {
        let mut degree = [0u32; 8];
        let mut seen: Vec<(u32, u32)> = Vec::with_capacity(half.len()); // (cell, count)
        for &c in half {
            match seen.iter_mut().find(|e| e.0 == c) {
                Some(e) => e.1 += 1, // same address: broadcast, no new bank pressure
                None => {
                    seen.push((c, 1));
                    degree[(c % 8) as usize] += 1;
                }
            }
        }
        let worst = degree.iter().copied().max().unwrap_or(0);
        extra += worst.saturating_sub(1) as u64;
    }
    extra
}

/// Replay a texture-fetch stream through a small set-associative cache
/// (GT200-class: ~8 KiB per SM, 32-byte lines, LRU within 4-way sets).
/// Returns `(hits, total)`.
pub struct TextureCacheSim {
    sets: Vec<Vec<(u64, u64)>>, // (tag, stamp) per way
    ways: usize,
    line_bytes: u64,
    stamp: u64,
    hits: u64,
    total: u64,
}

impl TextureCacheSim {
    /// A cache with `capacity_bytes` in `line_bytes` lines, 4-way LRU.
    pub fn new(capacity_bytes: u64, line_bytes: u64) -> Self {
        let ways = 4usize;
        let lines = (capacity_bytes / line_bytes).max(4) as usize;
        let sets = lines / ways;
        Self {
            sets: vec![Vec::with_capacity(ways); sets.max(1)],
            ways,
            line_bytes,
            stamp: 0,
            hits: 0,
            total: 0,
        }
    }

    /// GT200-sized default: 8 KiB, 32-byte lines.
    pub fn gt200() -> Self {
        Self::new(8 * 1024, 32)
    }

    /// Access one byte address; records hit or miss.
    pub fn access(&mut self, addr: u64) {
        self.total += 1;
        self.stamp += 1;
        let line = addr / self.line_bytes;
        let set = (line % self.sets.len() as u64) as usize;
        let ways = &mut self.sets[set];
        if let Some(entry) = ways.iter_mut().find(|e| e.0 == line) {
            entry.1 = self.stamp;
            self.hits += 1;
            return;
        }
        if ways.len() < self.ways {
            ways.push((line, self.stamp));
        } else {
            let lru = ways
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .map(|(i, _)| i)
                .expect("non-empty ways");
            ways[lru] = (line, self.stamp);
        }
    }

    /// Observed hit rate, `None` before any access.
    pub fn hit_rate(&self) -> Option<f64> {
        (self.total > 0).then(|| self.hits as f64 / self.total as f64)
    }
}

/// Aggregate one warp (≤ 32 thread traces) under the given coalescing
/// segment size and SFU issue factor.
pub fn aggregate_warp(
    traces: &[&ThreadTrace],
    segment: u32,
    sfu_issue_factor: f64,
) -> WarpAggregate {
    let mut agg = WarpAggregate::default();
    if traces.is_empty() {
        return agg;
    }
    agg.issue_slots =
        traces.iter().map(|t| t.counters.issue_slots(sfu_issue_factor)).fold(0.0, f64::max);

    // Group the i-th access of every thread as one SIMT access site.
    let max_sites = traces.iter().map(|t| t.accesses.len()).max().unwrap_or(0);
    let mut addrs: Vec<u64> = Vec::with_capacity(32);
    for site in 0..max_sites {
        addrs.clear();
        let mut space = None;
        let mut bytes_each = 4;
        for t in traces {
            if let Some(a) = t.accesses.get(site) {
                addrs.push(a.addr);
                space = Some(a.space);
                bytes_each = a.bytes;
            }
        }
        let Some(space) = space else { continue };
        match space {
            MemSpace::Global => {
                let (trans, bytes) = coalesce(&addrs, segment);
                agg.extra_transactions += (trans - 1) as f64;
                agg.dram_transactions += trans as f64;
                agg.bytes.global += bytes as f64;
            }
            MemSpace::Texture => {
                let (trans, bytes) = coalesce(&addrs, segment);
                agg.extra_transactions += (trans - 1) as f64;
                agg.dram_transactions += trans as f64;
                agg.bytes.texture += bytes as f64;
            }
            MemSpace::Constant => {
                // Broadcast-friendly: one transaction if uniform, else one
                // per distinct address (serialized by the constant cache).
                let mut distinct: Vec<u64> = Vec::new();
                for &a in &addrs {
                    if !distinct.contains(&a) {
                        distinct.push(a);
                    }
                }
                agg.extra_transactions += (distinct.len() - 1) as f64;
            }
        }
        let _ = bytes_each;
    }

    // Shared-memory bank conflicts, site by site.
    let max_sh_sites = traces.iter().map(|t| t.shared_accesses.len()).max().unwrap_or(0);
    let mut cells: Vec<u32> = Vec::with_capacity(32);
    for site in 0..max_sh_sites {
        cells.clear();
        for t in traces {
            if let Some(&c) = t.shared_accesses.get(site) {
                cells.push(c);
            }
        }
        agg.bank_conflicts += bank_conflict_replays(&cells) as f64;
    }

    // Local scratch: per-thread arrays are interleaved by the ABI, so a
    // lockstep access coalesces perfectly — one transaction, 4 bytes/lane.
    let local_accesses: u64 = traces.iter().map(|t| t.counters.local).sum();
    let local_sites = traces.iter().map(|t| t.counters.local).max().unwrap_or(0);
    agg.dram_transactions += local_sites as f64;
    agg.bytes.local += (local_accesses * 4) as f64;

    // Divergence: a site is divergent if outcomes differ within the warp.
    let max_branch_sites = traces.iter().map(|t| t.branch_taken.len()).max().unwrap_or(0);
    for site in 0..max_branch_sites {
        let mut any_taken = false;
        let mut any_not = false;
        for t in traces {
            match t.branch_taken.get(site) {
                Some(true) => any_taken = true,
                Some(false) => any_not = true,
                None => any_not = true, // retired lane ≈ not-taken path
            }
        }
        agg.branch_sites += 1;
        if any_taken && any_not {
            agg.divergent_sites += 1;
        }
    }
    agg
}

/// Combine warp aggregates and thread traces into launch-level counters.
pub fn finalize(
    total_threads: u64,
    traces: &[ThreadTrace],
    warps: &[WarpAggregate],
) -> KernelCounters {
    let sampled_threads = traces.len() as u64;
    let sampled_warps = warps.len() as u64;
    let mut k =
        KernelCounters { total_threads, sampled_threads, sampled_warps, ..Default::default() };
    if sampled_threads == 0 {
        return k;
    }
    let inv_t = 1.0 / sampled_threads as f64;
    let mut sum = ThreadCounters::default();
    for t in traces {
        let c = &t.counters;
        sum.alu += c.alu;
        sum.sfu += c.sfu;
        sum.branches += c.branches;
        sum.ld_global += c.ld_global;
        sum.st_global += c.st_global;
        sum.ld_texture += c.ld_texture;
        sum.ld_constant += c.ld_constant;
        sum.shared += c.shared;
        sum.local += c.local;
    }
    k.per_thread = ThreadCounters {
        alu: (sum.alu as f64 * inv_t) as u64,
        sfu: (sum.sfu as f64 * inv_t) as u64,
        branches: (sum.branches as f64 * inv_t) as u64,
        ld_global: (sum.ld_global as f64 * inv_t) as u64,
        st_global: (sum.st_global as f64 * inv_t) as u64,
        ld_texture: (sum.ld_texture as f64 * inv_t) as u64,
        ld_constant: (sum.ld_constant as f64 * inv_t) as u64,
        shared: (sum.shared as f64 * inv_t) as u64,
        local: (sum.local as f64 * inv_t) as u64,
    };
    k.per_thread_avg = ThreadAverages {
        alu: sum.alu as f64 * inv_t,
        sfu: sum.sfu as f64 * inv_t,
        branches: sum.branches as f64 * inv_t,
        ld_global: sum.ld_global as f64 * inv_t,
        st_global: sum.st_global as f64 * inv_t,
        ld_texture: sum.ld_texture as f64 * inv_t,
        ld_constant: sum.ld_constant as f64 * inv_t,
        shared: sum.shared as f64 * inv_t,
        local: sum.local as f64 * inv_t,
    };
    if sampled_warps > 0 {
        let inv_w = 1.0 / sampled_warps as f64;
        k.warp_issue_slots = warps.iter().map(|w| w.issue_slots).sum::<f64>() * inv_w;
        k.warp_extra_transactions = warps.iter().map(|w| w.extra_transactions).sum::<f64>() * inv_w;
        k.warp_bank_conflicts = warps.iter().map(|w| w.bank_conflicts).sum::<f64>() * inv_w;
        k.warp_dram_transactions = warps.iter().map(|w| w.dram_transactions).sum::<f64>() * inv_w;
        k.bytes_per_thread = BytesBySpace {
            global: warps.iter().map(|w| w.bytes.global).sum::<f64>() * inv_t,
            texture: warps.iter().map(|w| w.bytes.texture).sum::<f64>() * inv_t,
            local: warps.iter().map(|w| w.bytes.local).sum::<f64>() * inv_t,
        };
        let sites: u64 = warps.iter().map(|w| w.branch_sites).sum();
        let div: u64 = warps.iter().map(|w| w.divergent_sites).sum();
        k.divergent_branch_frac = if sites > 0 { div as f64 / sites as f64 } else { 0.0 };
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_contiguous_is_one_transaction() {
        // 32 threads × 4B contiguous from an aligned base: one 128B txn.
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        assert_eq!(coalesce(&addrs, 128), (1, 128));
    }

    #[test]
    fn coalesce_same_address_shrinks() {
        // All lanes hit one word: one transaction, 32 bytes (min size).
        let addrs = vec![64u64; 32];
        assert_eq!(coalesce(&addrs, 128), (1, 32));
    }

    #[test]
    fn coalesce_strided_explodes() {
        // Stride-128: every lane its own segment.
        let addrs: Vec<u64> = (0..32).map(|i| i * 128).collect();
        let (trans, bytes) = coalesce(&addrs, 128);
        assert_eq!(trans, 32);
        assert_eq!(bytes, 32 * 32); // each shrunk to 32B
    }

    #[test]
    fn coalesce_half_segment() {
        // 16 contiguous words in the upper half of a segment → 64B txn.
        let addrs: Vec<u64> = (0..16).map(|i| 64 + i * 4).collect();
        assert_eq!(coalesce(&addrs, 128), (1, 64));
    }

    #[test]
    fn coalesce_g80_smaller_segments() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        // 64B segments: the same warp needs two transactions.
        assert_eq!(coalesce(&addrs, 64).0, 2);
    }

    #[test]
    fn warp_issue_is_max_not_sum() {
        let mut a = ThreadTrace::default();
        a.counters.alu = 10;
        let mut b = ThreadTrace::default();
        b.counters.alu = 100;
        let agg = aggregate_warp(&[&a, &b], 128, 4.0);
        assert_eq!(agg.issue_slots, 100.0);
    }

    #[test]
    fn divergence_detection() {
        let a = ThreadTrace { branch_taken: vec![true, true], ..Default::default() };
        let b = ThreadTrace { branch_taken: vec![true, false], ..Default::default() };
        let agg = aggregate_warp(&[&a, &b], 128, 4.0);
        assert_eq!(agg.branch_sites, 2);
        assert_eq!(agg.divergent_sites, 1);
    }

    #[test]
    fn bank_conflicts_distinct_pairs_are_free() {
        // 8 lanes on 8 distinct bank pairs: conflict-free.
        let cells: Vec<u32> = (0..8).collect();
        assert_eq!(bank_conflict_replays(&cells), 0);
        // 16 contiguous 64-bit cells: each pair hit twice → one replay.
        let cells: Vec<u32> = (0..16).collect();
        assert_eq!(bank_conflict_replays(&cells), 1);
    }

    #[test]
    fn bank_conflicts_stride_eight_serializes() {
        // Stride-8 within a half-warp: all lanes hit bank pair 0.
        let cells: Vec<u32> = (0..16).map(|i| i * 8).collect();
        assert_eq!(bank_conflict_replays(&cells), 15);
    }

    #[test]
    fn bank_conflicts_broadcast_is_free() {
        let cells = vec![5u32; 16];
        assert_eq!(bank_conflict_replays(&cells), 0);
    }

    #[test]
    fn bank_conflicts_counted_per_half_warp() {
        // 32 lanes; each half-warp has a 2-way conflict of its own.
        let mut cells: Vec<u32> = (0..16).collect();
        cells.extend(0..16u32);
        assert_eq!(bank_conflict_replays(&cells), 2);
    }

    #[test]
    fn texture_cache_streaming_misses() {
        let mut c = TextureCacheSim::new(256, 32); // 8 lines
        for i in 0..100u64 {
            c.access(i * 32);
        }
        assert_eq!(c.hit_rate().unwrap(), 0.0);
    }

    #[test]
    fn texture_cache_reuse_hits() {
        let mut c = TextureCacheSim::new(256, 32);
        c.access(0);
        for _ in 0..99 {
            c.access(4); // same line as 0
        }
        let rate = c.hit_rate().unwrap();
        assert!((rate - 0.99).abs() < 1e-9, "rate {rate}");
    }

    #[test]
    fn texture_cache_working_set_behaviour() {
        // Working set fits: near-perfect reuse after the cold pass.
        let mut small = TextureCacheSim::new(1024, 32); // 32 lines
        for _ in 0..10 {
            for i in 0..16u64 {
                small.access(i * 32);
            }
        }
        assert!(small.hit_rate().unwrap() > 0.85);
        // Working set 4x the capacity with LRU + round-robin scan:
        // pathological streaming, hit rate collapses.
        let mut big = TextureCacheSim::new(1024, 32);
        for _ in 0..10 {
            for i in 0..128u64 {
                big.access(i * 32);
            }
        }
        assert!(big.hit_rate().unwrap() < 0.2);
    }

    #[test]
    fn finalize_averages() {
        let mut t1 = ThreadTrace::default();
        t1.counters.alu = 10;
        let mut t2 = ThreadTrace::default();
        t2.counters.alu = 20;
        let k = finalize(64, &[t1, t2], &[]);
        assert_eq!(k.total_threads, 64);
        assert_eq!(k.sampled_threads, 2);
        assert_eq!(k.per_thread.alu, 15);
        assert!((k.per_thread_avg.alu - 15.0).abs() < 1e-12);
    }
}
