//! Hardware descriptions for the analytic timing model.
//!
//! The paper's testbed is an NVIDIA GTX 280 (GT200, 30 SMs — the paper
//! says "32 multiprocessors", which matches no GT200 SKU; we expose both
//! presets and default to the datasheet value) against an Intel Xeon at
//! 3 GHz. All constants that the model multiplies counters by are listed
//! here with their provenance, so the calibration is auditable.
//!
//! Each spec also carries its **engine layout**
//! ([`EngineConfig`]): how many DMA queues
//! and concurrent-kernel slots the part exposes. The layout decides what
//! a stream schedule may overlap, so the batched fleet pricing
//! (`lnls_core::BatchedExplorer` → [`crate::stream::price_fused_iteration`])
//! reads it straight off the device it charges. Every preset ships the
//! historically accurate GT200 layout; [`DeviceSpec::with_engines`]
//! swaps in another (e.g. [`EngineConfig::fermi`]) for overlap studies.

use crate::stream::EngineConfig;

/// Static description of a simulated CUDA-class device.
///
/// Cycle quantities are in *core clock* cycles. The issue model follows
/// the GT200 generation: one warp instruction is issued per SM every
/// [`issue_cycles`](Self::issue_cycles) cycles (8 scalar pipes × 4 cycles
/// = 32 lanes).
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Streaming multiprocessors.
    pub sm_count: u32,
    /// Threads per warp (32 on every NVIDIA part).
    pub warp_size: u32,
    /// Core (shader) clock in Hz.
    pub clock_hz: f64,
    /// Peak global-memory bandwidth, bytes/second.
    pub mem_bandwidth: f64,
    /// Global-memory latency, cycles (400–600 on GT200; we use the middle).
    pub lat_global: f64,
    /// Texture-cache hit latency, cycles.
    pub lat_texture_hit: f64,
    /// Texture-cache hit rate assumed for read-only instance data.
    pub texture_hit_rate: f64,
    /// Shared-memory access latency, cycles.
    pub lat_shared: f64,
    /// Cycles to issue one warp instruction (GT200: 4).
    pub issue_cycles: f64,
    /// Issue-cycle multiplier for special-function ops (sqrt, rcp…).
    pub sfu_issue_factor: f64,
    /// Coalescing segment size in bytes (GT200 relaxed rules: 128B, the
    /// paper's §IV.B note that the GTX 280 "relaxed" the G80 alignment
    /// constraints).
    pub coalesce_segment: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// 32-bit shared-memory words per SM (16 KiB on GT200).
    pub shared_words_per_sm: u32,
    /// Kernel-launch + driver overhead per launch, seconds.
    pub launch_overhead_s: f64,
    /// Host↔device transfer: fixed latency per transfer, seconds.
    pub pcie_latency_s: f64,
    /// Host↔device transfer: sustained bandwidth, bytes/second.
    pub pcie_bandwidth: f64,
    /// Hardware queue layout: DMA engines and concurrent-kernel slots.
    /// Decides what a stream schedule may overlap on this device.
    pub engines: EngineConfig,
}

impl DeviceSpec {
    /// NVIDIA GeForce GTX 280 (GT200): the paper's card, datasheet SM
    /// count (30).
    pub fn gtx280() -> Self {
        Self {
            name: "GTX 280 (GT200, 30 SM)",
            sm_count: 30,
            warp_size: 32,
            clock_hz: 1.296e9,
            mem_bandwidth: 141.7e9,
            lat_global: 500.0,
            lat_texture_hit: 110.0,
            texture_hit_rate: 0.92,
            lat_shared: 2.0,
            issue_cycles: 4.0,
            sfu_issue_factor: 4.0,
            coalesce_segment: 128,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 8,
            max_warps_per_sm: 32,
            max_threads_per_block: 512,
            shared_words_per_sm: 4096, // 16 KiB
            launch_overhead_s: 18e-6,
            pcie_latency_s: 12e-6,
            pcie_bandwidth: 3.0e9,
            engines: EngineConfig::gt200(),
        }
    }

    /// The same silicon with a different engine layout — the overlap
    /// ablation knob (e.g. a GT200 timing model scheduled under
    /// [`EngineConfig::fermi`] queues).
    #[must_use]
    pub fn with_engines(mut self, engines: EngineConfig) -> Self {
        self.engines = engines;
        self
    }

    /// Same silicon but with the SM count the paper states (32); kept so
    /// the reproduction can be run under the paper's own numbers.
    pub fn gtx280_paper() -> Self {
        Self { name: "GTX 280 (paper: 32 SM)", sm_count: 32, ..Self::gtx280() }
    }

    /// NVIDIA 8800 GTX (G80): the previous generation the paper contrasts
    /// (strict coalescing — modeled as 64-byte segments and a lower clock,
    /// no relaxed alignment).
    pub fn g80() -> Self {
        Self {
            name: "8800 GTX (G80, 16 SM)",
            sm_count: 16,
            clock_hz: 1.35e9,
            mem_bandwidth: 86.4e9,
            coalesce_segment: 64,
            max_threads_per_sm: 768,
            max_warps_per_sm: 24,
            texture_hit_rate: 0.9,
            ..Self::gtx280()
        }
    }

    /// Tesla C1060: GT200 with more memory, marginally lower clock.
    pub fn tesla_c1060() -> Self {
        Self {
            name: "Tesla C1060 (GT200, 30 SM)",
            clock_hz: 1.296e9,
            mem_bandwidth: 102.0e9,
            ..Self::gtx280()
        }
    }

    /// Warps needed to run one block of `threads` threads.
    #[inline]
    pub fn warps_per_block(&self, threads: u32) -> u32 {
        threads.div_ceil(self.warp_size)
    }
}

/// Static description of the host CPU used as the sequential baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct HostSpec {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Average cycles per abstract ALU op (superscalar x86 ≈ 0.5–1.0; the
    /// evaluation loop is branchy integer code, so we calibrate ~0.8).
    pub cpi_alu: f64,
    /// Cycles per special-function op (sqrt etc.).
    pub cpi_sfu: f64,
    /// Cycles per memory access (instance data is cache-resident for the
    /// paper's sizes; a blend of L1/L2 hits).
    pub cpi_mem: f64,
}

impl HostSpec {
    /// Intel Xeon 3 GHz (the paper's host; it has 8 cores but the paper's
    /// CPU column is a sequential implementation).
    pub fn xeon_3ghz() -> Self {
        Self {
            name: "Xeon 3 GHz (1 core)",
            clock_hz: 3.0e9,
            cpi_alu: 0.8,
            cpi_sfu: 20.0,
            cpi_mem: 1.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtx280_peak_throughput_sanity() {
        let d = DeviceSpec::gtx280();
        // Scalar-op throughput: 30 SM × 32 lanes / 4 cycles... i.e. one
        // 32-thread warp instruction per SM per 4 cycles = 8 thread-ops
        // per cycle per SM → 240 ops/cycle → ≈311 G thread-ops/s.
        let ops_per_s = d.sm_count as f64 * d.warp_size as f64 / d.issue_cycles * d.clock_hz;
        assert!((ops_per_s - 311.0e9).abs() / 311.0e9 < 0.01);
    }

    #[test]
    fn warps_per_block_rounds_up() {
        let d = DeviceSpec::gtx280();
        assert_eq!(d.warps_per_block(1), 1);
        assert_eq!(d.warps_per_block(32), 1);
        assert_eq!(d.warps_per_block(33), 2);
        assert_eq!(d.warps_per_block(128), 4);
    }

    #[test]
    fn ratio_of_peaks_bounds_observed_speedups() {
        // The paper's best acceleration is ×25.8; the peak-throughput
        // ratio of the modeled parts must exceed that (real kernels are
        // memory/latency bound, so observed < peak).
        let d = DeviceSpec::gtx280();
        let h = HostSpec::xeon_3ghz();
        let gpu = d.sm_count as f64 * d.warp_size as f64 / d.issue_cycles * d.clock_hz;
        let cpu = h.clock_hz / h.cpi_alu;
        assert!(gpu / cpu > 25.8, "peak ratio {} too small", gpu / cpu);
    }

    #[test]
    fn presets_differ_where_documented() {
        assert_eq!(DeviceSpec::gtx280().sm_count, 30);
        assert_eq!(DeviceSpec::gtx280_paper().sm_count, 32);
        assert_eq!(DeviceSpec::g80().coalesce_segment, 64);
        assert!(DeviceSpec::tesla_c1060().mem_bandwidth < DeviceSpec::gtx280().mem_bandwidth);
    }
}
