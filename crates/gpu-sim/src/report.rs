//! Launch reports and the per-device time ledger.

use crate::counting::KernelCounters;
use crate::dim::LaunchConfig;
use crate::race::RaceEvent;
use crate::timing::TimingBreakdown;
use std::time::Duration;

/// Everything known about one completed launch.
#[derive(Clone, Debug)]
pub struct LaunchReport {
    /// Kernel name.
    pub name: &'static str,
    /// Launch geometry.
    pub cfg: LaunchConfig,
    /// Profiled counters (cached or fresh). `sampled_threads == 0` means
    /// the launch ran without any profile (pure [`ExecMode::Fast`]).
    ///
    /// [`ExecMode::Fast`]: crate::ExecMode::Fast
    pub counters: KernelCounters,
    /// Model-predicted device time.
    pub timing: TimingBreakdown,
    /// Model-predicted time for the same work on the host baseline.
    pub host_seconds: f64,
    /// Wall-clock time the *simulation* took (not the modeled time).
    pub wall: Duration,
    /// Races detected (trace mode only).
    pub races: Vec<RaceEvent>,
    /// True if this launch ran (or reused) a profile.
    pub profiled: bool,
}

/// Accumulated modeled time on one device, plus the host-equivalent cost
/// of the same launches — the two columns of the paper's tables.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeBook {
    /// Device-side kernel seconds (excluding launch overhead).
    pub kernel_s: f64,
    /// Kernel-launch overhead seconds.
    pub overhead_s: f64,
    /// Host→device transfer seconds.
    pub h2d_s: f64,
    /// Device→host transfer seconds.
    pub d2h_s: f64,
    /// Bytes uploaded.
    pub bytes_h2d: u64,
    /// Bytes downloaded.
    pub bytes_d2h: u64,
    /// Kernel launches.
    pub launches: u64,
    /// Modeled sequential-host seconds for the same kernels.
    pub host_s: f64,
}

impl TimeBook {
    /// Total modeled GPU-side seconds (kernels + overhead + transfers).
    pub fn gpu_total_s(&self) -> f64 {
        self.kernel_s + self.overhead_s + self.h2d_s + self.d2h_s
    }

    /// Modeled speedup of the device path over the sequential host path.
    /// `None` when nothing was accounted yet.
    pub fn speedup(&self) -> Option<f64> {
        let gpu = self.gpu_total_s();
        (gpu > 0.0).then(|| self.host_s / gpu)
    }

    /// Component-wise sum (for aggregating devices or searches).
    pub fn add(&mut self, other: &TimeBook) {
        self.kernel_s += other.kernel_s;
        self.overhead_s += other.overhead_s;
        self.h2d_s += other.h2d_s;
        self.d2h_s += other.d2h_s;
        self.bytes_h2d += other.bytes_h2d;
        self.bytes_d2h += other.bytes_d2h;
        self.launches += other.launches;
        self.host_s += other.host_s;
    }

    /// `self − other`, component-wise (for snapshots/deltas).
    pub fn delta_since(&self, earlier: &TimeBook) -> TimeBook {
        TimeBook {
            kernel_s: self.kernel_s - earlier.kernel_s,
            overhead_s: self.overhead_s - earlier.overhead_s,
            h2d_s: self.h2d_s - earlier.h2d_s,
            d2h_s: self.d2h_s - earlier.d2h_s,
            bytes_h2d: self.bytes_h2d - earlier.bytes_h2d,
            bytes_d2h: self.bytes_d2h - earlier.bytes_d2h,
            launches: self.launches - earlier.launches,
            host_s: self.host_s - earlier.host_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_speedup() {
        let mut b = TimeBook::default();
        assert!(b.speedup().is_none());
        b.kernel_s = 1.0;
        b.overhead_s = 0.25;
        b.h2d_s = 0.5;
        b.d2h_s = 0.25;
        b.host_s = 8.0;
        assert!((b.gpu_total_s() - 2.0).abs() < 1e-12);
        assert!((b.speedup().unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn add_and_delta_are_inverse() {
        let mut a = TimeBook { kernel_s: 1.0, launches: 3, bytes_h2d: 10, ..Default::default() };
        let b = TimeBook {
            kernel_s: 0.5,
            launches: 2,
            bytes_h2d: 5,
            host_s: 1.0,
            ..Default::default()
        };
        a.add(&b);
        let d = a.delta_since(&b);
        assert_eq!(d.launches, 3);
        assert_eq!(d.bytes_h2d, 10);
        assert!((d.kernel_s - 1.0).abs() < 1e-12);
    }
}
