//! Device memory: typed buffers in global / texture / constant space.
//!
//! Buffers are word-arrays of atomics so simulated threads on different
//! host workers can store to disjoint indices without locks or `unsafe`
//! (relaxed atomics compile to plain loads/stores on x86). Data races that
//! a real GPU kernel would exhibit are *detected* (in trace mode) rather
//! than prevented — see [`crate::race`].

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Which memory space a buffer lives in; determines latency, caching and
/// coalescing treatment in the timing model.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Off-chip DRAM, uncached on GT200, coalescing-sensitive.
    Global,
    /// Read-only, cached through the texture unit (the paper's Fig. 8
    /// "GPUTexture" configuration for the instance matrix).
    Texture,
    /// Small read-only constant cache (broadcast-friendly).
    Constant,
}

/// A value type storable in device memory (32- or 64-bit words).
pub trait DeviceWord: Copy + Send + Sync + 'static {
    /// The atomic cell backing one element.
    type Cell: Sync + Send;
    /// Bytes per element (4 or 8), used for transfer & coalescing math.
    const BYTES: u32;
    /// Construct a cell holding `v`.
    fn new_cell(v: Self) -> Self::Cell;
    /// Relaxed load.
    fn load(cell: &Self::Cell) -> Self;
    /// Relaxed store.
    fn store(cell: &Self::Cell, v: Self);
}

macro_rules! impl_word32 {
    ($t:ty) => {
        impl DeviceWord for $t {
            type Cell = AtomicU32;
            const BYTES: u32 = 4;
            #[inline]
            fn new_cell(v: Self) -> AtomicU32 {
                AtomicU32::new(v.to_bits32())
            }
            #[inline]
            fn load(cell: &AtomicU32) -> Self {
                <$t>::from_bits32(cell.load(Ordering::Relaxed))
            }
            #[inline]
            fn store(cell: &AtomicU32, v: Self) {
                cell.store(v.to_bits32(), Ordering::Relaxed);
            }
        }
    };
}

macro_rules! impl_word64 {
    ($t:ty) => {
        impl DeviceWord for $t {
            type Cell = AtomicU64;
            const BYTES: u32 = 8;
            #[inline]
            fn new_cell(v: Self) -> AtomicU64 {
                AtomicU64::new(v.to_bits64())
            }
            #[inline]
            fn load(cell: &AtomicU64) -> Self {
                <$t>::from_bits64(cell.load(Ordering::Relaxed))
            }
            #[inline]
            fn store(cell: &AtomicU64, v: Self) {
                cell.store(v.to_bits64(), Ordering::Relaxed);
            }
        }
    };
}

/// 32-bit reinterpret helpers (private plumbing for the macro impls).
trait Bits32: Copy {
    fn to_bits32(self) -> u32;
    fn from_bits32(b: u32) -> Self;
}
trait Bits64: Copy {
    fn to_bits64(self) -> u64;
    fn from_bits64(b: u64) -> Self;
}

impl Bits32 for u32 {
    fn to_bits32(self) -> u32 {
        self
    }
    fn from_bits32(b: u32) -> Self {
        b
    }
}
impl Bits32 for i32 {
    fn to_bits32(self) -> u32 {
        self as u32
    }
    fn from_bits32(b: u32) -> Self {
        b as i32
    }
}
impl Bits32 for f32 {
    fn to_bits32(self) -> u32 {
        self.to_bits()
    }
    fn from_bits32(b: u32) -> Self {
        f32::from_bits(b)
    }
}
impl Bits64 for u64 {
    fn to_bits64(self) -> u64 {
        self
    }
    fn from_bits64(b: u64) -> Self {
        b
    }
}
impl Bits64 for i64 {
    fn to_bits64(self) -> u64 {
        self as u64
    }
    fn from_bits64(b: u64) -> Self {
        b as i64
    }
}
impl Bits64 for f64 {
    fn to_bits64(self) -> u64 {
        self.to_bits()
    }
    fn from_bits64(b: u64) -> Self {
        f64::from_bits(b)
    }
}

impl_word32!(u32);
impl_word32!(i32);
impl_word32!(f32);
impl_word64!(u64);
impl_word64!(i64);
impl_word64!(f64);

struct BufInner<T: DeviceWord> {
    cells: Box<[T::Cell]>,
    space: MemSpace,
    id: u64,
    label: &'static str,
}

/// A typed device allocation. Cloning is cheap (shared handle); kernels
/// hold clones of the buffers they access.
pub struct DeviceBuffer<T: DeviceWord> {
    inner: Arc<BufInner<T>>,
}

impl<T: DeviceWord> Clone for DeviceBuffer<T> {
    fn clone(&self) -> Self {
        Self { inner: Arc::clone(&self.inner) }
    }
}

impl<T: DeviceWord + Default> DeviceBuffer<T> {
    pub(crate) fn zeroed(len: usize, space: MemSpace, id: u64, label: &'static str) -> Self {
        let cells: Box<[T::Cell]> = (0..len).map(|_| T::new_cell(T::default())).collect();
        Self { inner: Arc::new(BufInner { cells, space, id, label }) }
    }
}

impl<T: DeviceWord> DeviceBuffer<T> {
    pub(crate) fn from_slice(data: &[T], space: MemSpace, id: u64, label: &'static str) -> Self {
        let cells: Box<[T::Cell]> = data.iter().map(|&v| T::new_cell(v)).collect();
        Self { inner: Arc::new(BufInner { cells, space, id, label }) }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.cells.len()
    }

    /// True if the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inner.cells.is_empty()
    }

    /// Memory space this buffer lives in.
    #[inline]
    pub fn space(&self) -> MemSpace {
        self.inner.space
    }

    /// Unique id within its device (used by the race detector & ledger).
    #[inline]
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Debug label.
    #[inline]
    pub fn label(&self) -> &'static str {
        self.inner.label
    }

    /// Size in bytes.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.len() as u64 * T::BYTES as u64
    }

    /// Raw element access — *host-side*, no timing accounting. Simulated
    /// kernels must go through their thread context instead.
    #[inline]
    pub fn get(&self, idx: usize) -> T {
        T::load(&self.inner.cells[idx])
    }

    /// Raw element store — *host-side*, no timing accounting.
    #[inline]
    pub fn set(&self, idx: usize, v: T) {
        T::store(&self.inner.cells[idx], v);
    }

    /// Copy the device contents into a fresh host vector (no accounting;
    /// use [`crate::Device::download`] for a costed transfer).
    pub fn snapshot(&self) -> Vec<T> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Overwrite device contents from a host slice (no accounting; use
    /// [`crate::Device::upload`] for a costed transfer).
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn fill_from(&self, data: &[T]) {
        assert_eq!(data.len(), self.len(), "fill_from length mismatch");
        for (i, &v) in data.iter().enumerate() {
            self.set(i, v);
        }
    }
}

impl<T: DeviceWord> core::fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "DeviceBuffer({} #{} {:?} x{})",
            self.inner.label,
            self.inner.id,
            self.inner.space,
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_i32() {
        let b = DeviceBuffer::<i32>::from_slice(&[1, -2, 3], MemSpace::Global, 0, "t");
        assert_eq!(b.len(), 3);
        assert_eq!(b.get(1), -2);
        b.set(1, 42);
        assert_eq!(b.snapshot(), vec![1, 42, 3]);
        assert_eq!(b.bytes(), 12);
    }

    #[test]
    fn roundtrip_f32_and_u64() {
        let b = DeviceBuffer::<f32>::from_slice(&[1.5, -0.25], MemSpace::Texture, 1, "f");
        assert_eq!(b.get(0), 1.5);
        assert_eq!(b.get(1), -0.25);
        let c = DeviceBuffer::<u64>::from_slice(&[u64::MAX, 7], MemSpace::Global, 2, "u");
        assert_eq!(c.get(0), u64::MAX);
        assert_eq!(c.bytes(), 16);
    }

    #[test]
    fn zeroed_and_fill() {
        let b = DeviceBuffer::<i64>::zeroed(4, MemSpace::Global, 3, "z");
        assert_eq!(b.snapshot(), vec![0, 0, 0, 0]);
        b.fill_from(&[1, 2, 3, 4]);
        assert_eq!(b.snapshot(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn clones_share_storage() {
        let a = DeviceBuffer::<u32>::zeroed(2, MemSpace::Global, 4, "s");
        let b = a.clone();
        a.set(0, 9);
        assert_eq!(b.get(0), 9);
        assert_eq!(a.id(), b.id());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fill_length_checked() {
        DeviceBuffer::<u32>::zeroed(2, MemSpace::Global, 5, "x").fill_from(&[1]);
    }
}
