//! Intra-kernel data-race detection (trace mode).
//!
//! CUDA gives no ordering between threads of a launch except at block
//! barriers; a kernel whose result depends on such ordering is buggy on
//! real hardware and — because this simulator interleaves threads in yet
//! another order — would also be silently nondeterministic here. The
//! tracker records, per (buffer, index) and per phase, the first writer
//! and reader, and reports write/write and read/write conflicts between
//! different threads.

use std::collections::HashMap;
use std::sync::Mutex;

/// Kind of conflict detected.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RaceKind {
    /// Two distinct threads wrote the same element in one phase.
    WriteWrite,
    /// One thread read an element another thread wrote in the same phase.
    ReadWrite,
}

/// One detected conflict.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RaceEvent {
    /// Buffer id (see [`crate::memory::DeviceBuffer::id`]).
    pub buf: u64,
    /// Element index.
    pub idx: u64,
    /// Conflict kind.
    pub kind: RaceKind,
    /// The two thread ids involved (first recorded, current).
    pub threads: (u64, u64),
}

#[derive(Copy, Clone, Default)]
struct Entry {
    writer: Option<u64>,
    reader: Option<u64>,
}

/// Collects accesses for one launch. Cleared at each phase boundary
/// (barriers order accesses, so cross-phase conflicts are legal).
pub struct RaceTracker {
    state: Mutex<TrackerState>,
    cap: usize,
}

struct TrackerState {
    map: HashMap<(u64, u64), Entry>,
    events: Vec<RaceEvent>,
}

impl RaceTracker {
    /// Tracker reporting at most `cap` events (further races are counted
    /// as detected but not stored).
    pub fn new(cap: usize) -> Self {
        Self { state: Mutex::new(TrackerState { map: HashMap::new(), events: Vec::new() }), cap }
    }

    /// Record an access; returns `true` if it raced.
    pub fn on_access(&self, buf: u64, idx: u64, thread: u64, is_write: bool) -> bool {
        let mut st = self.state.lock().expect("race tracker poisoned");
        let entry = st.map.entry((buf, idx)).or_default();
        let mut event = None;
        if is_write {
            match entry.writer {
                Some(w) if w != thread => {
                    event = Some(RaceEvent {
                        buf,
                        idx,
                        kind: RaceKind::WriteWrite,
                        threads: (w, thread),
                    });
                }
                _ => {}
            }
            if event.is_none() {
                if let Some(r) = entry.reader {
                    if r != thread {
                        event = Some(RaceEvent {
                            buf,
                            idx,
                            kind: RaceKind::ReadWrite,
                            threads: (r, thread),
                        });
                    }
                }
            }
            entry.writer = Some(thread);
        } else {
            if let Some(w) = entry.writer {
                if w != thread {
                    event = Some(RaceEvent {
                        buf,
                        idx,
                        kind: RaceKind::ReadWrite,
                        threads: (w, thread),
                    });
                }
            }
            entry.reader = Some(thread);
        }
        if let Some(e) = event {
            if st.events.len() < self.cap {
                st.events.push(e);
            }
            true
        } else {
            false
        }
    }

    /// Forget all accesses (phase boundary: the barrier orders them).
    pub fn phase_boundary(&self) {
        self.state.lock().expect("race tracker poisoned").map.clear();
    }

    /// Detected events (capped).
    pub fn events(&self) -> Vec<RaceEvent> {
        self.state.lock().expect("race tracker poisoned").events.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_writes_are_clean() {
        let t = RaceTracker::new(8);
        assert!(!t.on_access(1, 0, 0, true));
        assert!(!t.on_access(1, 1, 1, true));
        assert!(t.events().is_empty());
    }

    #[test]
    fn write_write_conflict() {
        let t = RaceTracker::new(8);
        assert!(!t.on_access(1, 5, 0, true));
        assert!(t.on_access(1, 5, 1, true));
        let ev = t.events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].kind, RaceKind::WriteWrite);
        assert_eq!(ev[0].threads, (0, 1));
    }

    #[test]
    fn read_after_foreign_write_conflicts() {
        let t = RaceTracker::new(8);
        t.on_access(2, 3, 7, true);
        assert!(t.on_access(2, 3, 8, false));
        assert_eq!(t.events()[0].kind, RaceKind::ReadWrite);
    }

    #[test]
    fn write_after_foreign_read_conflicts() {
        let t = RaceTracker::new(8);
        t.on_access(2, 3, 7, false);
        assert!(t.on_access(2, 3, 8, true));
        assert_eq!(t.events()[0].kind, RaceKind::ReadWrite);
    }

    #[test]
    fn same_thread_rmw_is_fine() {
        let t = RaceTracker::new(8);
        assert!(!t.on_access(1, 0, 4, false));
        assert!(!t.on_access(1, 0, 4, true));
        assert!(!t.on_access(1, 0, 4, false));
        assert!(t.events().is_empty());
    }

    #[test]
    fn phase_boundary_resets() {
        let t = RaceTracker::new(8);
        t.on_access(1, 0, 0, true);
        t.phase_boundary();
        assert!(!t.on_access(1, 0, 1, true), "cross-phase access must not race");
    }

    #[test]
    fn event_cap_respected() {
        let t = RaceTracker::new(2);
        for i in 0..10u64 {
            t.on_access(1, 0, i, true);
        }
        assert_eq!(t.events().len(), 2);
    }
}
