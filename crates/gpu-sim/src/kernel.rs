//! The SPMD kernel programming model (paper §III.A).
//!
//! A [`Kernel`] is a function executed by every thread of a launch grid;
//! each thread sees its ids through a [`ThreadCtx`] and must route *all*
//! device-memory traffic and cost-relevant arithmetic through that context
//! so the profiler can count it. Two context implementations exist: a fast
//! one whose accounting methods compile to nothing, and a counting one
//! used on sampled blocks to feed the timing model (see
//! [`crate::counting`]).
//!
//! `__syncthreads()` is modeled by *phases*: a kernel declares how many
//! barrier-separated phases it has, and the executor runs every thread of
//! a block through phase `p` before any thread enters `p+1`. Within a
//! phase, threads of a block execute in an unspecified order — exactly the
//! guarantee CUDA gives between barriers. Intra-phase communication is a
//! data race; the trace-mode race detector flags it.

use crate::memory::{DeviceBuffer, DeviceWord};

/// Per-thread identifiers, the simulator's `threadIdx`/`blockIdx`.
#[derive(Copy, Clone, Debug)]
pub struct ThreadId {
    /// Linear block index within the grid.
    pub block: u64,
    /// Linear thread index within the block.
    pub thread: u32,
    /// Threads per block.
    pub block_dim: u32,
    /// Blocks in the grid.
    pub grid_dim: u64,
}

impl ThreadId {
    /// The flat global thread id: `blockIdx.x * blockDim.x + threadIdx.x`
    /// (the first line of every kernel in the paper's Figs. 7/9/10).
    #[inline]
    pub fn global(&self) -> u64 {
        self.block * self.block_dim as u64 + self.thread as u64
    }

    /// Warp index within the block.
    #[inline]
    pub fn warp(&self) -> u32 {
        self.thread / 32
    }

    /// Lane within the warp.
    #[inline]
    pub fn lane(&self) -> u32 {
        self.thread % 32
    }
}

/// The device-side view a kernel thread has of the machine.
///
/// Memory access methods are monomorphic over [`DeviceWord`]; accounting
/// methods ([`alu`](Self::alu), [`sfu`](Self::sfu), [`branch`](Self::branch))
/// cost nothing in fast mode. The *local* methods model CUDA local memory
/// (per-thread scratch that physically lives in DRAM on GT200): contents
/// are private to the thread and — in this simulator — do not survive a
/// phase boundary.
pub trait ThreadCtx {
    /// This thread's identifiers.
    fn id(&self) -> ThreadId;

    /// Load one element from a device buffer (global/texture/constant
    /// space is taken from the buffer).
    fn ld<T: DeviceWord>(&mut self, buf: &DeviceBuffer<T>, idx: usize) -> T;

    /// Store one element to a device buffer.
    fn st<T: DeviceWord>(&mut self, buf: &DeviceBuffer<T>, idx: usize, v: T);

    /// Load from block-shared memory (64-bit words).
    fn sh_ld(&mut self, idx: usize) -> u64;

    /// Store to block-shared memory (64-bit words).
    fn sh_st(&mut self, idx: usize, v: u64);

    /// Reserve `words` 32-bit words of per-thread local scratch; returns
    /// the base offset to use with [`local_ld`](Self::local_ld)/
    /// [`local_st`](Self::local_st). Contents start unspecified — kernels
    /// must zero what they read (costed like the stores they are).
    fn local_alloc(&mut self, words: usize) -> usize;

    /// Load a 32-bit word from local scratch.
    fn local_ld(&mut self, off: usize) -> i32;

    /// Store a 32-bit word to local scratch.
    fn local_st(&mut self, off: usize, v: i32);

    /// Account `n` scalar ALU instructions.
    fn alu(&mut self, n: u32);

    /// Account `n` special-function instructions (sqrt, rcp, …).
    fn sfu(&mut self, n: u32);

    /// Account a branch and report whether this thread takes it (used by
    /// the profiler to estimate warp divergence). Returns `taken` so it
    /// can wrap a condition inline: `if ctx.branch(x < y) { … }`.
    fn branch(&mut self, taken: bool) -> bool;
}

/// A simulated GPU kernel.
///
/// Implementations must be *pure within a launch*: every global store must
/// write a value that does not depend on other threads' stores from the
/// same phase (the executor may re-run sampled blocks for profiling, and
/// workers interleave blocks arbitrarily). Cross-phase communication
/// through shared or global memory is allowed.
pub trait Kernel: Sync {
    /// Kernel name for reports and profile caching.
    fn name(&self) -> &'static str;

    /// Number of barrier-separated phases (1 = no `__syncthreads`).
    fn phases(&self) -> u32 {
        1
    }

    /// A stable key identifying this instance's *cost shape*: launches
    /// whose `(name, profile_key, LaunchConfig)` match reuse each other's
    /// profile instead of re-counting. Instances whose per-thread work
    /// differs (e.g. different problem sizes) must return different keys.
    fn profile_key(&self) -> u64 {
        0
    }

    /// The thread function: executed once per thread per phase.
    fn run<C: ThreadCtx>(&self, ctx: &mut C, phase: u32);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_math_matches_cuda() {
        let id = ThreadId { block: 20, thread: 68, block_dim: 128, grid_dim: 21 };
        assert_eq!(id.global(), 20 * 128 + 68);
        assert_eq!(id.warp(), 2);
        assert_eq!(id.lane(), 4);
    }
}
