//! Analytic latency/throughput timing model.
//!
//! Inputs: a [`DeviceSpec`], a [`LaunchConfig`] and the profiled
//! [`KernelCounters`]. Output: a [`TimingBreakdown`] whose
//! `kernel_seconds` is the predicted device-side execution time of the
//! launch. The model is deliberately simple (three classical bounds) so
//! every term is auditable:
//!
//! 1. **Issue bound** — each SM issues one warp instruction every
//!    `issue_cycles`; scattered accesses replay once per extra memory
//!    transaction. A wave of `w` resident warps therefore needs
//!    `w · (warp_issue_slots + warp_extra_transactions) · issue_cycles`.
//! 2. **Latency bound** — a single warp's dependent chain pays DRAM
//!    latency for its accesses, overlapped by a memory-level-parallelism
//!    factor (`mem_pipeline_depth` in-flight requests per warp).
//!    When few warps are resident (the paper's Table I regime), this
//!    bound dominates and the GPU loses to the CPU.
//! 3. **Bandwidth bound** — post-coalescing DRAM bytes over peak
//!    bandwidth, with texture traffic derated by the cache hit rate.
//!
//! Kernel time = Σ over scheduling waves of max(issue, latency) per wave,
//! floored by the bandwidth bound, plus fixed launch overhead.
//!
//! The same counters also price a *sequential CPU* execution of the same
//! work ([`predict_host_seconds`]) — the model the experiment harness uses
//! for the paper's "CPU time" columns.

use crate::counting::KernelCounters;
use crate::dim::LaunchConfig;
use crate::occupancy::{occupancy, Occupancy};
use crate::spec::{DeviceSpec, HostSpec};

/// Memory-level parallelism assumed per warp: how many outstanding DRAM
/// requests overlap within one warp's instruction stream. GT200 scoreboards
/// a handful of loads per warp; 4 reproduces the latency-bound behaviour of
/// the paper's small launches. Exposed here (not in `DeviceSpec`) because
/// it is a *model* constant, not a datasheet number.
pub const MEM_PIPELINE_DEPTH: f64 = 4.0;

/// Predicted cost decomposition of one kernel launch.
#[derive(Clone, Debug, PartialEq)]
pub struct TimingBreakdown {
    /// Residency of the launch.
    pub occupancy: Occupancy,
    /// Total issue-bound cycles summed over waves.
    pub issue_cycles: f64,
    /// Latency-bound cycles of the critical warp per wave (summed).
    pub latency_cycles: f64,
    /// The max(issue, latency) aggregate actually charged.
    pub compute_cycles: f64,
    /// Seconds implied by the bandwidth bound.
    pub bandwidth_seconds: f64,
    /// Device-side execution seconds (max of compute and bandwidth).
    pub kernel_seconds: f64,
    /// Fixed launch overhead seconds (driver + dispatch).
    pub launch_overhead_seconds: f64,
    /// `kernel_seconds + launch_overhead_seconds`.
    pub total_seconds: f64,
    /// DRAM bytes charged to the launch (for reports).
    pub dram_bytes: f64,
}

/// Price one launch on `spec`.
pub fn predict(spec: &DeviceSpec, cfg: &LaunchConfig, k: &KernelCounters) -> TimingBreakdown {
    let occ = occupancy(spec, cfg);
    let blocks = cfg.grid_blocks();
    let wpb = spec.warps_per_block(cfg.block_threads()) as u64;

    // --- per-warp costs -------------------------------------------------
    let warp_issue = (k.warp_issue_slots + k.warp_extra_transactions + k.warp_bank_conflicts)
        * spec.issue_cycles;
    // Prefer the hit rate measured by the cache replay over the preset.
    let tex_hit = k.measured_tex_hit.unwrap_or(spec.texture_hit_rate);
    let lat_tex = tex_hit * spec.lat_texture_hit + (1.0 - tex_hit) * spec.lat_global;
    let a = &k.per_thread_avg;
    let dram_latency_chain = (a.ld_global + a.st_global + a.local) * spec.lat_global
        + a.ld_texture * lat_tex
        + a.shared * spec.lat_shared;
    let warp_latency = warp_issue + dram_latency_chain / MEM_PIPELINE_DEPTH;

    // --- waves ----------------------------------------------------------
    // Steady-state waves run `blocks_per_sm` blocks on every SM; the final
    // partial wave only occupies `ceil(rem / sms)` blocks per SM.
    let per_wave_blocks = (occ.blocks_per_sm as u64 * spec.sm_count as u64).max(1);
    let full_waves = blocks / per_wave_blocks;
    let rem_blocks = blocks % per_wave_blocks;

    let mut issue_total = 0.0;
    let mut latency_total = 0.0;
    let mut compute_total = 0.0;
    let mut add_wave = |blocks_in_wave: u64| {
        if blocks_in_wave == 0 {
            return;
        }
        let sms = blocks_in_wave.min(spec.sm_count as u64).max(1);
        let blocks_per_sm = blocks_in_wave.div_ceil(sms);
        let warps_per_sm = (blocks_per_sm * wpb) as f64;
        let issue = warps_per_sm * warp_issue;
        issue_total += issue;
        latency_total += warp_latency;
        compute_total += issue.max(warp_latency);
    };
    for _ in 0..full_waves {
        add_wave(per_wave_blocks);
    }
    add_wave(rem_blocks);

    // --- bandwidth ------------------------------------------------------
    let b = &k.bytes_per_thread;
    let per_thread_bytes = b.global + b.texture * (1.0 - tex_hit) + b.local;
    let dram_bytes = per_thread_bytes * k.total_threads as f64;
    let bandwidth_seconds = dram_bytes / spec.mem_bandwidth;

    let compute_seconds = compute_total / spec.clock_hz;
    let kernel_seconds = compute_seconds.max(bandwidth_seconds);
    TimingBreakdown {
        occupancy: occ,
        issue_cycles: issue_total,
        latency_cycles: latency_total,
        compute_cycles: compute_total,
        bandwidth_seconds,
        kernel_seconds,
        launch_overhead_seconds: spec.launch_overhead_s,
        total_seconds: kernel_seconds + spec.launch_overhead_s,
        dram_bytes,
    }
}

/// Price the *same work* executed sequentially on the host: the paper's
/// CPU baseline evaluates the identical neighborhood with the identical
/// algorithm, one neighbor at a time.
pub fn predict_host_seconds(host: &HostSpec, k: &KernelCounters) -> f64 {
    let a = &k.per_thread_avg;
    let cycles_per_thread = (a.alu + a.branches) * host.cpi_alu
        + a.sfu * host.cpi_sfu
        + (a.ld_global + a.st_global + a.ld_texture + a.ld_constant + a.shared + a.local)
            * host.cpi_mem;
    cycles_per_thread * k.total_threads as f64 / host.clock_hz
}

/// Price a host↔device transfer of `bytes` (one direction).
pub fn transfer_seconds(spec: &DeviceSpec, bytes: u64) -> f64 {
    spec.pcie_latency_s + bytes as f64 / spec.pcie_bandwidth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::{BytesBySpace, ThreadAverages};
    use crate::dim::LaunchConfig;

    /// A synthetic profile resembling the PPP evaluation kernel: per
    /// thread ~`work` ALU ops and `mem` DRAM accesses.
    fn synthetic(total_threads: u64, work: f64, mem: f64) -> KernelCounters {
        KernelCounters {
            total_threads,
            sampled_threads: total_threads.min(512),
            sampled_warps: (total_threads.min(512)).div_ceil(32),
            per_thread_avg: ThreadAverages {
                alu: work,
                ld_global: mem * 0.4,
                ld_texture: mem * 0.4,
                local: mem * 0.2,
                ..Default::default()
            },
            warp_issue_slots: work + mem,
            warp_extra_transactions: mem * 0.5,
            warp_dram_transactions: mem * 1.5,
            bytes_per_thread: BytesBySpace {
                global: mem * 0.4 * 4.0,
                texture: mem * 0.4 * 8.0,
                local: mem * 0.2 * 4.0,
            },
            divergent_branch_frac: 0.0,
            ..Default::default()
        }
    }

    #[test]
    fn more_threads_amortize_better() {
        // Fixed per-thread work: per-thread cost must fall as the grid
        // grows (latency hiding + SM filling), then flatten.
        let spec = DeviceSpec::gtx280();
        let cost = |threads: u64| {
            let cfg = LaunchConfig::cover_1d(threads, 128);
            let k = synthetic(threads, 500.0, 150.0);
            predict(&spec, &cfg, &k).kernel_seconds / threads as f64
        };
        let tiny = cost(73);
        let small = cost(2628);
        let large = cost(62_196);
        let huge = cost(260_130);
        assert!(tiny > small, "tiny {tiny} vs small {small}");
        assert!(small > large, "small {small} vs large {large}");
        // Saturation: beyond full occupancy the per-thread cost is flat
        // within 20%.
        assert!((large - huge).abs() / huge < 0.2, "large {large} vs huge {huge}");
    }

    #[test]
    fn latency_bound_dominates_tiny_grids() {
        let spec = DeviceSpec::gtx280();
        let cfg = LaunchConfig::cover_1d(73, 128);
        let k = synthetic(73, 500.0, 150.0);
        let t = predict(&spec, &cfg, &k);
        assert!(t.latency_cycles > t.issue_cycles);
        assert_eq!(t.occupancy.sms_used, 1);
    }

    #[test]
    fn issue_bound_dominates_saturated_grids() {
        let spec = DeviceSpec::gtx280();
        let cfg = LaunchConfig::cover_1d(260_130, 128);
        let k = synthetic(260_130, 500.0, 150.0);
        let t = predict(&spec, &cfg, &k);
        assert!(t.issue_cycles > t.latency_cycles);
    }

    #[test]
    fn host_prediction_scales_linearly() {
        let host = HostSpec::xeon_3ghz();
        let k1 = synthetic(1000, 500.0, 150.0);
        let k2 = synthetic(2000, 500.0, 150.0);
        let s1 = predict_host_seconds(&host, &k1);
        let s2 = predict_host_seconds(&host, &k2);
        assert!((s2 / s1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_cost_has_latency_floor() {
        let spec = DeviceSpec::gtx280();
        let tiny = transfer_seconds(&spec, 4);
        let big = transfer_seconds(&spec, 1 << 20);
        assert!(tiny >= spec.pcie_latency_s);
        assert!(big > tiny);
        // 1 MiB at 3 GB/s ≈ 350 µs ≫ latency.
        assert!((big - (spec.pcie_latency_s + (1 << 20) as f64 / 3.0e9)).abs() < 1e-12);
    }

    #[test]
    fn g80_is_slower_on_scattered_access() {
        // Same counters, stricter coalescing → more replay transactions
        // are *counted during profiling*, so here we emulate by comparing
        // bandwidth-bound kernels where G80's lower bandwidth shows.
        let k = synthetic(1 << 20, 50.0, 200.0);
        let cfg = LaunchConfig::cover_1d(1 << 20, 128);
        let t280 = predict(&DeviceSpec::gtx280(), &cfg, &k);
        let t80 = predict(&DeviceSpec::g80(), &cfg, &k);
        assert!(t80.kernel_seconds > t280.kernel_seconds);
    }

    #[test]
    fn speedup_band_sanity_for_ppp_shaped_kernels() {
        // End-to-end shape check with the synthetic PPP-like profile: the
        // modeled GPU/CPU ratio must land in the paper's observed regimes.
        let spec = DeviceSpec::gtx280();
        let host = HostSpec::xeon_3ghz();
        let ratio = |threads: u64| {
            let cfg = LaunchConfig::cover_1d(threads, 128);
            let k = synthetic(threads, 600.0, 160.0);
            let gpu = predict(&spec, &cfg, &k).total_seconds;
            let cpu = predict_host_seconds(&host, &k);
            cpu / gpu
        };
        let s73 = ratio(73); // Table I regime: GPU should not win big
        let s2628 = ratio(2628); // Table II: clearly faster
        let s260k = ratio(260_130); // Table III: saturated
        assert!(s73 < 2.0, "tiny-grid speedup {s73} too high");
        assert!(s2628 > 3.0, "mid-grid speedup {s2628} too low");
        assert!(s260k > s2628, "saturation did not help: {s260k} vs {s2628}");
    }
}
