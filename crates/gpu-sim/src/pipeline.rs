//! Pricing the paper's search loop under stream pipelining.
//!
//! One tabu iteration is a dependent chain — upload the current
//! solution, run `MoveIncrEvalKernel`, read the fitness array back,
//! argmin on the host — so a *single* walk gains nothing from streams.
//! The concurrency in the paper's protocol lives one level up: 50
//! independent tries (and, in §V, per-device partitions). Interleaving
//! `W` independent walks on `S` streams lets walk B's transfers hide
//! under walk A's kernel, which on copy/compute-overlap hardware
//! recovers most of the PCIe time.
//!
//! [`price_multiwalk`] builds the exact stream schedule for a window of
//! iterations with [`StreamSim`], then extrapolates the steady-state
//! rate to the full budget (the schedule is periodic after a warm-up of
//! one round per stream, so two window measurements pin the slope).

use crate::spec::DeviceSpec;
use crate::stream::{EngineConfig, Schedule, StreamSim};
use crate::timing::transfer_seconds;

/// The priced shape of one search iteration (get `kernel_seconds` from
/// [`predict`](crate::timing::predict) on the profiled kernel).
#[derive(Copy, Clone, Debug)]
pub struct IterationProfile {
    /// Bytes uploaded per iteration (current solution / state deltas).
    pub h2d_bytes: u64,
    /// Modeled kernel seconds per iteration (excl. launch overhead).
    pub kernel_seconds: f64,
    /// Bytes read back per iteration (fitness array, or one best record
    /// when on-device reduction is enabled).
    pub d2h_bytes: u64,
}

impl IterationProfile {
    /// The synchronous cost of one iteration (the paper's structure).
    pub fn serial_seconds(&self, spec: &DeviceSpec) -> f64 {
        transfer_seconds(spec, self.h2d_bytes)
            + self.kernel_seconds
            + spec.launch_overhead_s
            + transfer_seconds(spec, self.d2h_bytes)
    }
}

/// The order operations are handed to the device queues.
///
/// On hardware with strict FIFO engine queues (GT200), issue order
/// decides whether overlap happens at all: enqueuing each walk's
/// upload-kernel-readback chain *depth-first* puts every walk's
/// readback in front of the next walk's upload in the single copy
/// queue, serializing everything. *Breadth-first* issue (all uploads,
/// then all kernels, then all readbacks per round) is the standard fix
/// — the same lesson as NVIDIA's asynchronous-transfers guidance.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IssueOrder {
    /// Per walk: upload, kernel, readback, then the next walk.
    DepthFirst,
    /// Per round: every walk's upload, then every kernel, then every
    /// readback.
    BreadthFirst,
}

/// Outcome of pricing a multi-walk pipelined schedule.
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// Total modeled seconds with every operation serialized (the
    /// synchronous baseline: `walks × iterations × serial_seconds`).
    pub serial_s: f64,
    /// Total modeled seconds under the stream schedule.
    pub pipelined_s: f64,
    /// Speedup of pipelining (`serial / pipelined`).
    pub speedup: f64,
    /// The exact schedule of the measurement window (for Gantt
    /// rendering in examples).
    pub window: Schedule,
}

/// Price `walks` independent search walks of `iterations` iterations
/// each, interleaved round-robin on `streams` streams with
/// breadth-first issue (see [`IssueOrder`]).
///
/// # Panics
/// Panics if `walks`, `iterations` or `streams` is zero.
pub fn price_multiwalk(
    spec: &DeviceSpec,
    engines: EngineConfig,
    profile: IterationProfile,
    walks: usize,
    iterations: u64,
    streams: usize,
) -> PipelineReport {
    price_multiwalk_ordered(
        spec,
        engines,
        profile,
        walks,
        iterations,
        streams,
        IssueOrder::BreadthFirst,
    )
}

/// [`price_multiwalk`] with an explicit [`IssueOrder`] (the issue-order
/// ablation).
///
/// # Panics
/// Panics if `walks`, `iterations` or `streams` is zero.
pub fn price_multiwalk_ordered(
    spec: &DeviceSpec,
    engines: EngineConfig,
    profile: IterationProfile,
    walks: usize,
    iterations: u64,
    streams: usize,
    order: IssueOrder,
) -> PipelineReport {
    assert!(walks > 0 && iterations > 0 && streams > 0, "degenerate pipeline");
    let streams = streams.min(walks);

    // Build the window schedule: rounds of one iteration per walk. Each
    // walk's chain correctness is preserved by pinning it to one stream.
    let build = |rounds: u64| -> Schedule {
        let mut sim = StreamSim::with_engines(spec, engines);
        for _round in 0..rounds {
            match order {
                IssueOrder::DepthFirst => {
                    for walk in 0..walks {
                        let st = walk % streams;
                        sim.h2d(st, profile.h2d_bytes);
                        sim.kernel(st, profile.kernel_seconds);
                        sim.d2h(st, profile.d2h_bytes);
                    }
                }
                IssueOrder::BreadthFirst => {
                    for walk in 0..walks {
                        sim.h2d(walk % streams, profile.h2d_bytes);
                    }
                    for walk in 0..walks {
                        sim.kernel(walk % streams, profile.kernel_seconds);
                    }
                    for walk in 0..walks {
                        sim.d2h(walk % streams, profile.d2h_bytes);
                    }
                }
            }
        }
        sim.run()
    };

    // Steady state: measure two window sizes, extrapolate linearly.
    let w1 = iterations.min(16);
    let w2 = iterations.min(32);
    let m1 = build(w1).makespan;
    let window = build(w2);
    let m2 = window.makespan;
    let pipelined_s = if w2 == iterations {
        m2
    } else {
        let slope = (m2 - m1) / (w2 - w1) as f64;
        m2 + slope * (iterations - w2) as f64
    };

    let serial_s = profile.serial_seconds(spec) * walks as f64 * iterations as f64;
    PipelineReport { serial_s, pipelined_s, speedup: serial_s / pipelined_s, window }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;

    fn ppp_like() -> IterationProfile {
        // 2-Hamming on 101×117: upload ~n bytes, kernel ~1 ms, read back
        // m fitness values.
        IterationProfile { h2d_bytes: 128, kernel_seconds: 1.0e-3, d2h_bytes: 6786 * 4 }
    }

    #[test]
    fn one_walk_one_stream_equals_serial() {
        let spec = DeviceSpec::gtx280();
        let r = price_multiwalk(&spec, EngineConfig::gt200(), ppp_like(), 1, 40, 1);
        assert!(
            (r.pipelined_s - r.serial_s).abs() / r.serial_s < 1e-9,
            "single stream cannot overlap: {} vs {}",
            r.pipelined_s,
            r.serial_s
        );
        assert!((r.speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_walks_two_streams_beat_serial() {
        let spec = DeviceSpec::gtx280();
        let r = price_multiwalk(&spec, EngineConfig::gt200(), ppp_like(), 2, 100, 2);
        assert!(r.speedup > 1.01, "expected overlap, got ×{}", r.speedup);
        // Bound: compute is the critical resource; speedup cannot exceed
        // serial/compute ratio.
        let p = ppp_like();
        let bound = p.serial_seconds(&spec) / (p.kernel_seconds + spec.launch_overhead_s);
        assert!(r.speedup <= bound + 1e-6, "×{} exceeds engine bound ×{bound}", r.speedup);
    }

    #[test]
    fn transfer_heavy_profiles_gain_more() {
        let spec = DeviceSpec::gtx280();
        let light = IterationProfile { h2d_bytes: 64, kernel_seconds: 2e-3, d2h_bytes: 256 };
        let heavy =
            IterationProfile { h2d_bytes: 1 << 20, kernel_seconds: 2e-3, d2h_bytes: 1 << 20 };
        let rl = price_multiwalk(&spec, EngineConfig::gt200(), light, 4, 50, 4);
        let rh = price_multiwalk(&spec, EngineConfig::gt200(), heavy, 4, 50, 4);
        assert!(
            rh.speedup > rl.speedup,
            "transfer-heavy ×{} should beat transfer-light ×{}",
            rh.speedup,
            rl.speedup
        );
    }

    #[test]
    fn fermi_engines_dominate_gt200() {
        let spec = DeviceSpec::gtx280();
        let p = IterationProfile { h2d_bytes: 1 << 19, kernel_seconds: 5e-4, d2h_bytes: 1 << 19 };
        let gt = price_multiwalk(&spec, EngineConfig::gt200(), p, 4, 60, 4);
        let fermi = price_multiwalk(&spec, EngineConfig::fermi(), p, 4, 60, 4);
        assert!(fermi.pipelined_s <= gt.pipelined_s + 1e-12, "more engines can never be slower");
    }

    #[test]
    fn extrapolation_is_consistent_with_exact_simulation() {
        let spec = DeviceSpec::gtx280();
        let p = ppp_like();
        // iterations small enough that the window covers them exactly
        let exact = price_multiwalk(&spec, EngineConfig::gt200(), p, 3, 32, 2);
        // same schedule via extrapolation from 16 → 64 must stay close
        let extr = price_multiwalk(&spec, EngineConfig::gt200(), p, 3, 64, 2);
        let per_iter_exact = exact.pipelined_s / 32.0;
        let per_iter_extr = extr.pipelined_s / 64.0;
        assert!(
            (per_iter_exact - per_iter_extr).abs() / per_iter_exact < 0.05,
            "steady-state rates diverged: {per_iter_exact} vs {per_iter_extr}"
        );
    }

    #[test]
    fn depth_first_issue_kills_gt200_overlap() {
        // The classic pitfall: on a single FIFO copy queue, depth-first
        // issue interleaves each walk's readback in front of the next
        // walk's upload, so nothing overlaps; breadth-first recovers it.
        let spec = DeviceSpec::gtx280();
        // Transfer-heavy so the contrast is unmistakable.
        let p = IterationProfile { h2d_bytes: 1 << 19, kernel_seconds: 2e-4, d2h_bytes: 1 << 19 };
        let df = price_multiwalk_ordered(
            &spec,
            EngineConfig::gt200(),
            p,
            4,
            50,
            4,
            IssueOrder::DepthFirst,
        );
        let bf = price_multiwalk_ordered(
            &spec,
            EngineConfig::gt200(),
            p,
            4,
            50,
            4,
            IssueOrder::BreadthFirst,
        );
        assert!(
            (df.speedup - 1.0).abs() < 0.05,
            "depth-first should not overlap on GT200: ×{}",
            df.speedup
        );
        assert!(bf.speedup > df.speedup + 0.05, "breadth-first must win");
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_walks_rejected() {
        let spec = DeviceSpec::gtx280();
        let _ = price_multiwalk(&spec, EngineConfig::gt200(), ppp_like(), 0, 1, 1);
    }
}
