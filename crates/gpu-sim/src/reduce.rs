//! On-device argmin selection: the kernel, its analytic price, and the
//! scheduler-wide [`SelectionMode`] knob.
//!
//! The paper's search loop copies the whole fitness array back to the
//! host every iteration and lets the CPU pick the best neighbor — `m·8`
//! bytes of D2H traffic per iteration per walk. The classic follow-up
//! (mirrored in the GPU-SA-for-QAP line of work, arXiv:1208.2675)
//! reduces on the device first, shrinking the readback to **one packed
//! `(fitness, index)` record per walk**. This module is both sides of
//! that option:
//!
//! * [`MinReduceKernel`] + [`device_min`] — the *functional* tree
//!   reduction, executed for real on the simulator (and the showcase for
//!   block barriers and shared memory; the pipelining ablation uses it
//!   solo);
//! * [`SelectionMode`] + [`argmin_kernel_seconds`] — the *fleet-wide*
//!   pricing knob: `lnls-runtime`'s `SchedulerConfig` (and per-job
//!   `JobSpec` overrides) select [`SelectionMode::DeviceArgmin`] to
//!   price one extra reduction launch per fused iteration and cut each
//!   lane's modeled D2H from `m·8` bytes to [`ARGMIN_RECORD_BYTES`].
//!
//! Selection mode is **pricing-only**: the runtime's cursors still
//! commit exactly the move a host-side scan picks (the modeled kernel
//! folds admissibility — e.g. tabu status — into the packed keys, so the
//! record it would return is the very move the host selects). Search
//! results are bit-identical under either mode; only the ledger changes.
//!
//! Values are `u64` keys ordered ascending; to arg-min a fitness array,
//! pack `(fitness, index)` with [`pack_key`] so ties break toward the
//! lower index.

use crate::dim::LaunchConfig;
use crate::exec::ExecMode;
use crate::kernel::{Kernel, ThreadCtx};
use crate::memory::{DeviceBuffer, MemSpace};
use crate::spec::DeviceSpec;
use crate::Device;

/// How the best neighbor of an evaluated batch is selected — the
/// scheduler-wide knob of `lnls-runtime`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum SelectionMode {
    /// The paper's loop: download every lane's whole fitness array
    /// (`m·8` bytes) and scan on the host.
    #[default]
    HostArgmin,
    /// Reduce on the device first: one extra tree-reduction launch per
    /// fused iteration (priced by [`argmin_kernel_seconds`]), then one
    /// packed `(fitness, index)` record ([`ARGMIN_RECORD_BYTES`]) read
    /// back per lane.
    DeviceArgmin,
}

impl SelectionMode {
    /// True for [`SelectionMode::DeviceArgmin`].
    pub fn is_device(self) -> bool {
        matches!(self, SelectionMode::DeviceArgmin)
    }
}

/// Bytes read back per lane per iteration under
/// [`SelectionMode::DeviceArgmin`]: one packed `(fitness, index)` key.
pub const ARGMIN_RECORD_BYTES: u64 = 8;

/// Modeled execution seconds (excluding launch overhead) of one fused
/// argmin reduction over `keys` packed values.
///
/// The reduction streams every key once (bandwidth bound:
/// `8·keys / mem_bandwidth`) and spends ~2 abstract ops per key in the
/// shared-memory tree (issue bound, derated to 25 % of peak like every
/// measured kernel of this workspace); per-block minima fold into the
/// per-lane output records with 64-bit global atomics (native on GT200 /
/// sm_13), so one launch suffices. The caller adds the device's launch
/// overhead — in a stream schedule that happens automatically
/// ([`crate::stream::price_fused_iteration`] adds it per kernel op).
pub fn argmin_kernel_seconds(spec: &DeviceSpec, keys: u64) -> f64 {
    let bandwidth_s = (keys * ARGMIN_RECORD_BYTES) as f64 / spec.mem_bandwidth;
    let peak_ops = spec.sm_count as f64 * spec.warp_size as f64 / spec.issue_cycles * spec.clock_hz;
    let issue_s = keys as f64 * 2.0 / (peak_ops * 0.25);
    bandwidth_s.max(issue_s)
}

/// Pack a non-negative fitness and a move index into an order-preserving
/// `u64` key: smaller fitness first, then smaller index.
#[inline]
pub fn pack_key(fitness: u32, index: u32) -> u64 {
    ((fitness as u64) << 32) | index as u64
}

/// Inverse of [`pack_key`].
#[inline]
pub fn unpack_key(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// Grid-stride block min-reduction: `output[b] = min(input[i])` over the
/// indices block `b` touches. One launch reduces `n` keys to `gridDim`.
pub struct MinReduceKernel {
    /// Keys to reduce.
    pub input: DeviceBuffer<u64>,
    /// One slot per block.
    pub output: DeviceBuffer<u64>,
    /// Number of valid keys in `input`.
    pub n: u64,
}

impl MinReduceKernel {
    fn log2_bs(&self, ctx_bs: u32) -> u32 {
        debug_assert!(ctx_bs.is_power_of_two());
        ctx_bs.trailing_zeros()
    }
}

impl Kernel for MinReduceKernel {
    fn name(&self) -> &'static str {
        "min_reduce"
    }

    fn phases(&self) -> u32 {
        // Phase 0 = strided load; then log2(block size) tree phases. The
        // executor asks before knowing the launch config, so use the
        // worst case (512-thread blocks → 9 tree phases); extra phases
        // are no-ops for smaller blocks.
        1 + 9
    }

    fn profile_key(&self) -> u64 {
        self.n
    }

    fn run<C: ThreadCtx>(&self, ctx: &mut C, phase: u32) {
        let id = ctx.id();
        let bs = id.block_dim;
        let tid = id.thread;
        if phase == 0 {
            // Strided pre-reduction: thread t of block b scans keys
            // t, t+stride, … within the block's contiguous span.
            let total = bs as u64 * id.grid_dim;
            let mut best = u64::MAX;
            let mut i = id.global();
            while ctx.branch(i < self.n) {
                let v = ctx.ld(&self.input, i as usize);
                ctx.alu(2);
                best = best.min(v);
                i += total;
            }
            ctx.sh_st(tid as usize, best);
            return;
        }
        let steps = self.log2_bs(bs);
        if phase > steps {
            return; // no-op padding phases for small blocks
        }
        let stride = bs >> phase;
        if ctx.branch(tid < stride) {
            let a = ctx.sh_ld(tid as usize);
            let b = ctx.sh_ld((tid + stride) as usize);
            ctx.alu(2);
            ctx.sh_st(tid as usize, a.min(b));
            if stride == 1 && tid == 0 {
                ctx.st(&self.output, id.block as usize, a.min(b));
            }
        }
    }
}

/// Reduce `input[..n]` to its minimum key: one device pass to per-block
/// minima, then a host pass over the (small) downloaded remainder. All
/// transfers and launches are costed on `dev`.
pub fn device_min(
    dev: &mut Device,
    input: &DeviceBuffer<u64>,
    n: u64,
    block_size: u32,
    mode: ExecMode,
) -> u64 {
    assert!(block_size.is_power_of_two(), "reduction block size must be a power of two");
    assert!(n > 0, "cannot reduce an empty array");
    // Enough blocks to keep the device busy, but never more than one
    // element per thread would need.
    let max_blocks = n.div_ceil(block_size as u64);
    let blocks = max_blocks.min(4 * dev.spec().sm_count as u64).max(1);
    let cfg = LaunchConfig {
        grid: crate::dim::Dim3::x(blocks as u32),
        block: crate::dim::Dim3::x(block_size),
        shared_words: block_size * 2, // u64 cells
    };
    let output = dev.alloc_zeroed::<u64>(blocks as usize, MemSpace::Global, "block_minima");
    let kernel = MinReduceKernel { input: input.clone(), output: output.clone(), n };
    dev.launch(&kernel, cfg, mode);
    let partial = dev.download(&output);
    partial.into_iter().min().expect("at least one block")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;

    #[test]
    fn selection_mode_defaults_to_the_paper_loop() {
        assert_eq!(SelectionMode::default(), SelectionMode::HostArgmin);
        assert!(!SelectionMode::HostArgmin.is_device());
        assert!(SelectionMode::DeviceArgmin.is_device());
    }

    #[test]
    fn argmin_price_scales_and_beats_the_readback_it_replaces() {
        let spec = DeviceSpec::gtx280();
        let small = argmin_kernel_seconds(&spec, 1024);
        let large = argmin_kernel_seconds(&spec, 1 << 20);
        assert!(small > 0.0 && large > small, "price must grow with the key count");
        // At the paper's saturated scale the reduction is far cheaper
        // than the m·8-byte PCIe readback it eliminates.
        let m = 260_130u64;
        let saved = crate::timing::transfer_seconds(&spec, m * ARGMIN_RECORD_BYTES)
            - crate::timing::transfer_seconds(&spec, ARGMIN_RECORD_BYTES);
        let cost = argmin_kernel_seconds(&spec, m) + spec.launch_overhead_s;
        assert!(cost < saved, "reduction {cost}s must beat the {saved}s of PCIe it saves");
    }

    #[test]
    fn pack_orders_lexicographically() {
        assert!(pack_key(1, 999) < pack_key(2, 0));
        assert!(pack_key(5, 3) < pack_key(5, 4));
        assert_eq!(unpack_key(pack_key(123, 456)), (123, 456));
    }

    #[test]
    fn reduces_known_minimum() {
        let mut dev = Device::new(DeviceSpec::gtx280());
        let n = 10_000u64;
        let keys: Vec<u64> = (0..n).map(|i| pack_key((i % 977 + 5) as u32, i as u32)).collect();
        let expected = keys.iter().copied().min().unwrap();
        let input = dev.upload_new(&keys, MemSpace::Global, "keys");
        let got = device_min(&mut dev, &input, n, 128, ExecMode::Auto);
        assert_eq!(got, expected);
    }

    #[test]
    fn reduces_in_trace_mode_without_races() {
        let mut dev = Device::new(DeviceSpec::gtx280());
        let keys: Vec<u64> = (0..500u64).rev().map(|i| pack_key(i as u32, i as u32)).collect();
        let input = dev.upload_new(&keys, MemSpace::Global, "keys");
        // Trace mode runs the race detector across all phases: barriers
        // must make the tree reduction race-free.
        let output = dev.alloc_zeroed::<u64>(4, MemSpace::Global, "out");
        let kernel = MinReduceKernel { input: input.clone(), output: output.clone(), n: 500 };
        let cfg = LaunchConfig {
            grid: crate::dim::Dim3::x(4),
            block: crate::dim::Dim3::x(64),
            shared_words: 128,
        };
        let report = dev.launch(&kernel, cfg, ExecMode::Trace);
        assert!(report.races.is_empty(), "races: {:?}", report.races);
        let partial = dev.download(&output);
        assert_eq!(partial.into_iter().min().unwrap(), pack_key(0, 0));
    }

    #[test]
    fn single_element_and_odd_sizes() {
        let mut dev = Device::new(DeviceSpec::gtx280());
        for n in [1u64, 2, 3, 63, 64, 65, 1023] {
            let keys: Vec<u64> =
                (0..n).map(|i| pack_key(((i * 37) % 101) as u32, i as u32)).collect();
            let expected = keys.iter().copied().min().unwrap();
            let input = dev.upload_new(&keys, MemSpace::Global, "keys");
            assert_eq!(device_min(&mut dev, &input, n, 64, ExecMode::Auto), expected, "n={n}");
        }
    }

    #[test]
    fn d2h_traffic_is_small() {
        let mut dev = Device::new(DeviceSpec::gtx280());
        let n = 100_000u64;
        let keys: Vec<u64> = (0..n).map(|i| pack_key(i as u32, i as u32)).collect();
        let input = dev.upload_new(&keys, MemSpace::Global, "keys");
        let before = dev.book().bytes_d2h;
        device_min(&mut dev, &input, n, 128, ExecMode::Auto);
        let downloaded = dev.book().bytes_d2h - before;
        // ≤ 4 waves × 30 SMs blocks × 8 bytes, ≪ n × 8.
        assert!(downloaded <= 4 * 30 * 8, "downloaded {downloaded} bytes");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_block_rejected() {
        let mut dev = Device::new(DeviceSpec::gtx280());
        let input = dev.upload_new(&[1u64, 2], MemSpace::Global, "keys");
        let _ = device_min(&mut dev, &input, 2, 48, ExecMode::Auto);
    }
}
