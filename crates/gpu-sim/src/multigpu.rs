//! Multi-GPU execution (the paper's §V perspective): partition the
//! neighborhood index range, run each partition on its own device, and
//! charge wall-clock as the *slowest* device per step — devices work in
//! parallel, but each has private memory, so inputs are replicated
//! (broadcast) and results gathered per device.

use crate::report::TimeBook;
use crate::spec::DeviceSpec;
use crate::Device;

/// A group of simulated devices executing steps in parallel.
pub struct MultiDevice {
    devices: Vec<Device>,
    elapsed_parallel_s: f64,
}

impl MultiDevice {
    /// `count` identical devices.
    pub fn new_uniform(count: usize, spec: DeviceSpec) -> Self {
        Self::new_from_specs((0..count).map(|_| spec.clone()))
    }

    /// A heterogeneous fleet, one device per spec (the runtime
    /// scheduler's mixed-hardware deployments).
    pub fn new_from_specs(specs: impl IntoIterator<Item = DeviceSpec>) -> Self {
        let devices: Vec<Device> = specs.into_iter().map(Device::new).collect();
        assert!(!devices.is_empty(), "need at least one device");
        Self { devices, elapsed_parallel_s: 0.0 }
    }

    /// Spec of device `i`.
    pub fn spec(&self, i: usize) -> &DeviceSpec {
        self.devices[i].spec()
    }

    /// Modeled busy seconds per device (each ledger's GPU total) — the
    /// numerators of fleet-utilization reports.
    pub fn busy_s(&self) -> Vec<f64> {
        self.devices.iter().map(|d| d.book().gpu_total_s()).collect()
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the group is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Mutable access to one device (for allocation/bind-up steps).
    pub fn device_mut(&mut self, i: usize) -> &mut Device {
        &mut self.devices[i]
    }

    /// Shared access to one device.
    pub fn device(&self, i: usize) -> &Device {
        &self.devices[i]
    }

    /// Run one *parallel step*: `f` is called once per device (sequentially
    /// in simulation, conceptually concurrent on hardware); the step's
    /// wall-clock contribution is the maximum per-device modeled delta,
    /// which is accumulated into [`elapsed_parallel_s`](Self::elapsed_parallel_s)
    /// and returned.
    pub fn parallel_step<F: FnMut(usize, &mut Device)>(&mut self, mut f: F) -> f64 {
        let before: Vec<TimeBook> = self.devices.iter().map(|d| d.book().clone()).collect();
        for (i, dev) in self.devices.iter_mut().enumerate() {
            f(i, dev);
        }
        let step = self
            .devices
            .iter()
            .zip(&before)
            .map(|(d, b)| d.book().delta_since(b).gpu_total_s())
            .fold(0.0, f64::max);
        self.elapsed_parallel_s += step;
        step
    }

    /// Accumulated parallel wall-clock (max-per-step semantics).
    pub fn elapsed_parallel_s(&self) -> f64 {
        self.elapsed_parallel_s
    }

    /// Sum of all device ledgers (total work, not wall-clock).
    pub fn books_sum(&self) -> TimeBook {
        let mut total = TimeBook::default();
        for d in &self.devices {
            total.add(d.book());
        }
        total
    }

    /// Reset every ledger and the parallel clock.
    pub fn reset(&mut self) {
        for d in &mut self.devices {
            d.reset_book();
        }
        self.elapsed_parallel_s = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::LaunchConfig;
    use crate::exec::ExecMode;
    use crate::kernel::{Kernel, ThreadCtx};
    use crate::memory::{DeviceBuffer, MemSpace};

    struct Work {
        out: DeviceBuffer<i32>,
        lo: u64,
        hi: u64,
    }

    impl Kernel for Work {
        fn name(&self) -> &'static str {
            "work"
        }
        fn run<C: ThreadCtx>(&self, ctx: &mut C, _phase: u32) {
            let tid = ctx.id().global() + self.lo;
            if ctx.branch(tid < self.hi) {
                // some busywork so the timing model sees real cost
                let mut acc = tid as i32;
                for _ in 0..50 {
                    acc = acc.wrapping_mul(3).wrapping_add(1);
                }
                ctx.alu(100);
                ctx.st(&self.out, (tid - self.lo) as usize, acc);
            }
        }
    }

    fn run_partitioned(devices: usize, total: u64) -> (f64, f64) {
        let mut multi = MultiDevice::new_uniform(devices, DeviceSpec::gtx280());
        let per = total.div_ceil(devices as u64);
        multi.parallel_step(|i, dev| {
            let lo = per * i as u64;
            let hi = (lo + per).min(total);
            if lo >= hi {
                return;
            }
            let out = dev.alloc_zeroed::<i32>((hi - lo) as usize, MemSpace::Global, "out");
            let k = Work { out, lo, hi };
            dev.launch(&k, LaunchConfig::cover_1d(hi - lo, 128), ExecMode::Auto);
        });
        (multi.elapsed_parallel_s(), multi.books_sum().gpu_total_s())
    }

    #[test]
    fn more_devices_reduce_wallclock() {
        let total = 1 << 20;
        let (wall1, _) = run_partitioned(1, total);
        let (wall4, _) = run_partitioned(4, total);
        assert!(wall4 < wall1 * 0.5, "4 devices should beat half of 1 device: {wall4} vs {wall1}");
    }

    #[test]
    fn wallclock_is_max_not_sum() {
        let (wall, sum) = run_partitioned(4, 1 << 20);
        assert!(wall < sum, "parallel elapsed {wall} must be below total work {sum}");
    }

    #[test]
    fn imbalanced_step_charges_slowest() {
        let mut multi = MultiDevice::new_uniform(2, DeviceSpec::gtx280());
        let step = multi.parallel_step(|i, dev| {
            let n = if i == 0 { 1 << 18 } else { 1 << 10 };
            let out = dev.alloc_zeroed::<i32>(n, MemSpace::Global, "out");
            let k = Work { out, lo: 0, hi: n as u64 };
            dev.launch(&k, LaunchConfig::cover_1d(n as u64, 128), ExecMode::Auto);
        });
        let d0 = multi.device(0).book().gpu_total_s();
        let d1 = multi.device(1).book().gpu_total_s();
        assert!(d0 > d1);
        assert!((step - d0).abs() < 1e-12, "step {step} != slowest {d0}");
    }

    #[test]
    fn reset_clears_everything() {
        let mut multi = MultiDevice::new_uniform(2, DeviceSpec::gtx280());
        run_partitioned(2, 1 << 12);
        multi.reset();
        assert_eq!(multi.elapsed_parallel_s(), 0.0);
        assert_eq!(multi.books_sum().launches, 0);
    }
}
