//! The device object: allocation, transfers, launches, and the time
//! ledger tying the functional simulation to the analytic model.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::counting::{aggregate_warp, finalize, KernelCounters, WarpAggregate};
use crate::dim::LaunchConfig;
use crate::exec::{run_block_fast, run_block_trace, ExecMode};
use crate::kernel::Kernel;
use crate::memory::{DeviceBuffer, DeviceWord, MemSpace};
use crate::race::RaceTracker;
use crate::report::{LaunchReport, TimeBook};
use crate::spec::{DeviceSpec, HostSpec};
use crate::timing::{predict, predict_host_seconds, transfer_seconds};

/// Key of the profile cache: (kernel name, kernel profile key, geometry).
type ProfileKey = (&'static str, u64, u32, u64, u32);

/// A simulated GPU.
///
/// Owns the timing ledger ([`TimeBook`]) and a cache of kernel profiles so
/// that a search loop launching the same kernel thousands of times pays
/// the (simulation-side) profiling cost once.
pub struct Device {
    spec: DeviceSpec,
    host: HostSpec,
    book: TimeBook,
    profiles: HashMap<ProfileKey, KernelCounters>,
    next_buf_id: u64,
    workers: usize,
    /// Maximum number of blocks profiled per launch in `Auto` mode.
    sample_blocks: usize,
}

impl Device {
    /// A device with the given spec and the default host baseline
    /// (Xeon 3 GHz, like the paper).
    pub fn new(spec: DeviceSpec) -> Self {
        Self::with_host(spec, HostSpec::xeon_3ghz())
    }

    /// A device with an explicit host baseline for the CPU-time column.
    pub fn with_host(spec: DeviceSpec, host: HostSpec) -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self {
            spec,
            host,
            book: TimeBook::default(),
            profiles: HashMap::new(),
            next_buf_id: 1,
            workers,
            sample_blocks: 4,
        }
    }

    /// Cap the host worker threads used to simulate blocks.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Device description.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Host baseline description.
    pub fn host(&self) -> &HostSpec {
        &self.host
    }

    /// The accumulated time ledger.
    pub fn book(&self) -> &TimeBook {
        &self.book
    }

    /// Reset the ledger (e.g. between experiment repetitions).
    pub fn reset_book(&mut self) {
        self.book = TimeBook::default();
    }

    /// Merge externally priced work into this device's ledger.
    ///
    /// Higher layers that price launches analytically (the runtime
    /// scheduler's fused batches, stream schedules) account them here so
    /// fleet-level reporting ([`MultiDevice::books_sum`], per-device busy
    /// fractions) sees one consistent ledger regardless of how the work
    /// was priced.
    ///
    /// [`MultiDevice::books_sum`]: crate::MultiDevice::books_sum
    pub fn charge(&mut self, work: &TimeBook) {
        self.book.add(work);
    }

    /// Drop all cached kernel profiles.
    pub fn clear_profiles(&mut self) {
        self.profiles.clear();
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_buf_id;
        self.next_buf_id += 1;
        id
    }

    /// Allocate a zero-initialized buffer.
    pub fn alloc_zeroed<T: DeviceWord + Default>(
        &mut self,
        len: usize,
        space: MemSpace,
        label: &'static str,
    ) -> DeviceBuffer<T> {
        let id = self.fresh_id();
        DeviceBuffer::zeroed(len, space, id, label)
    }

    /// Allocate a buffer and upload `data` into it (costed H2D transfer).
    pub fn upload_new<T: DeviceWord>(
        &mut self,
        data: &[T],
        space: MemSpace,
        label: &'static str,
    ) -> DeviceBuffer<T> {
        let id = self.fresh_id();
        let buf = DeviceBuffer::from_slice(data, space, id, label);
        self.account_h2d(buf.bytes());
        buf
    }

    /// Overwrite a buffer from host data (costed H2D transfer).
    pub fn upload<T: DeviceWord>(&mut self, buf: &DeviceBuffer<T>, data: &[T]) {
        buf.fill_from(data);
        self.account_h2d(buf.bytes());
    }

    /// Read a buffer back to the host (costed D2H transfer).
    pub fn download<T: DeviceWord>(&mut self, buf: &DeviceBuffer<T>) -> Vec<T> {
        self.account_d2h(buf.bytes());
        buf.snapshot()
    }

    /// Read a buffer back into an existing host vector (costed).
    pub fn download_into<T: DeviceWord>(&mut self, buf: &DeviceBuffer<T>, out: &mut Vec<T>) {
        self.account_d2h(buf.bytes());
        out.clear();
        out.extend((0..buf.len()).map(|i| buf.get(i)));
    }

    fn account_h2d(&mut self, bytes: u64) {
        self.book.h2d_s += transfer_seconds(&self.spec, bytes);
        self.book.bytes_h2d += bytes;
    }

    fn account_d2h(&mut self, bytes: u64) {
        self.book.d2h_s += transfer_seconds(&self.spec, bytes);
        self.book.bytes_d2h += bytes;
    }

    /// Execute a kernel over `cfg` (see [`ExecMode`] for the profiling
    /// policy) and account its modeled cost in the ledger.
    pub fn launch<K: Kernel>(
        &mut self,
        kernel: &K,
        cfg: LaunchConfig,
        mode: ExecMode,
    ) -> LaunchReport {
        let t0 = Instant::now();
        let key: ProfileKey = (
            kernel.name(),
            kernel.profile_key(),
            cfg.block_threads(),
            cfg.grid_blocks(),
            cfg.shared_words,
        );
        let blocks = cfg.grid_blocks();
        let mut races = Vec::new();

        let (counters, profiled) = match mode {
            ExecMode::Trace => {
                let tracker = RaceTracker::new(32);
                let mut arena = Vec::new();
                let mut traces = Vec::with_capacity(cfg.total_threads() as usize);
                for b in 0..blocks {
                    traces.extend(run_block_trace(kernel, &cfg, b, &mut arena, Some(&tracker)));
                }
                races = tracker.events();
                let counters = self.aggregate(&cfg, &traces, cfg.total_threads());
                self.profiles.insert(key, counters.clone());
                (counters, true)
            }
            ExecMode::Auto | ExecMode::Fast => {
                let cached = self.profiles.get(&key).cloned();
                let counters = match (cached, mode) {
                    (Some(c), _) => c,
                    (None, ExecMode::Fast) => {
                        KernelCounters { total_threads: cfg.total_threads(), ..Default::default() }
                    }
                    (None, _) => {
                        // Profile a sample of blocks (kernels are pure per
                        // launch, so re-running them below is harmless).
                        let sample = sample_blocks(blocks, self.sample_blocks);
                        let tracker = RaceTracker::new(32);
                        let mut arena = Vec::new();
                        let mut traces = Vec::new();
                        for &b in &sample {
                            traces.extend(run_block_trace(
                                kernel,
                                &cfg,
                                b,
                                &mut arena,
                                Some(&tracker),
                            ));
                        }
                        races = tracker.events();
                        let counters = self.aggregate(&cfg, &traces, cfg.total_threads());
                        self.profiles.insert(key, counters.clone());
                        counters
                    }
                };
                self.execute_all(kernel, &cfg);
                (counters, true)
            }
        };

        let timing = predict(&self.spec, &cfg, &counters);
        let host_seconds = predict_host_seconds(&self.host, &counters);
        self.book.kernel_s += timing.kernel_seconds;
        self.book.overhead_s += timing.launch_overhead_seconds;
        self.book.host_s += host_seconds;
        self.book.launches += 1;

        LaunchReport {
            name: kernel.name(),
            cfg,
            counters,
            timing,
            host_seconds,
            wall: t0.elapsed(),
            races,
            profiled,
        }
    }

    /// Run every block functionally (fast contexts), in parallel when the
    /// launch is big enough to amortize thread spawning.
    fn execute_all<K: Kernel>(&self, kernel: &K, cfg: &LaunchConfig) {
        let blocks = cfg.grid_blocks();
        let parallel = self.workers > 1 && blocks >= 4 && cfg.total_threads() >= 4096;
        if !parallel {
            let mut arena = Vec::new();
            for b in 0..blocks {
                run_block_fast(kernel, cfg, b, &mut arena);
            }
            return;
        }
        let next = AtomicU64::new(0);
        let workers = self.workers.min(blocks as usize);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let mut arena = Vec::new();
                    loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= blocks {
                            break;
                        }
                        run_block_fast(kernel, cfg, b, &mut arena);
                    }
                });
            }
        });
    }

    /// Warp-aggregate sampled thread traces into launch counters, and
    /// replay the texture-fetch streams through a per-SM cache model to
    /// measure the hit rate the timing model should use.
    fn aggregate(
        &self,
        cfg: &LaunchConfig,
        traces: &[crate::counting::ThreadTrace],
        total_threads: u64,
    ) -> KernelCounters {
        let warp = self.spec.warp_size as usize;
        let mut warps: Vec<WarpAggregate> = Vec::with_capacity(traces.len() / warp + 1);
        let bs = cfg.block_threads() as usize;
        let mut tex_hits = 0u64;
        let mut tex_total = 0u64;
        for block_traces in traces.chunks(bs.max(1)) {
            for w in block_traces.chunks(warp) {
                let refs: Vec<&crate::counting::ThreadTrace> = w.iter().collect();
                warps.push(aggregate_warp(
                    &refs,
                    self.spec.coalesce_segment,
                    self.spec.sfu_issue_factor,
                ));
            }
            // One texture cache per block (blocks land on arbitrary SMs;
            // a fresh cache per block is the conservative choice). The
            // replay interleaves lanes warp by warp, site by site —
            // the SIMT issue order.
            let mut cache = crate::counting::TextureCacheSim::gt200();
            for w in block_traces.chunks(warp) {
                let max_sites = w.iter().map(|t| t.accesses.len()).max().unwrap_or(0);
                for site in 0..max_sites {
                    for t in w {
                        if let Some(a) = t.accesses.get(site) {
                            if a.space == crate::memory::MemSpace::Texture {
                                cache.access(a.addr);
                            }
                        }
                    }
                }
            }
            if let Some(rate) = cache.hit_rate() {
                // Accumulate weighted by this block's fetch count.
                let total = block_traces.iter().map(|t| t.counters.ld_texture).sum::<u64>();
                tex_hits += (rate * total as f64) as u64;
                tex_total += total;
            }
        }
        let mut counters = finalize(total_threads, traces, &warps);
        counters.measured_tex_hit = (tex_total > 0).then(|| tex_hits as f64 / tex_total as f64);
        counters
    }
}

/// Choose up to `max` representative blocks: ends plus evenly spaced
/// interior blocks (skewed away from the final partially-guarded block
/// when the grid is large enough to afford it).
fn sample_blocks(blocks: u64, max: usize) -> Vec<u64> {
    if blocks as usize <= max {
        return (0..blocks).collect();
    }
    let mut picks = vec![0u64];
    let interior = max - 1;
    for i in 1..=interior {
        let b = (blocks - 1) * i as u64 / (interior as u64 + 1);
        if !picks.contains(&b) {
            picks.push(b);
        }
    }
    picks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ThreadCtx;

    struct AddOne {
        buf: DeviceBuffer<i32>,
        out: DeviceBuffer<i32>,
        n: u64,
    }

    impl Kernel for AddOne {
        fn name(&self) -> &'static str {
            "add_one"
        }
        fn run<C: ThreadCtx>(&self, ctx: &mut C, _phase: u32) {
            let tid = ctx.id().global();
            if ctx.branch(tid < self.n) {
                let v = ctx.ld(&self.buf, tid as usize);
                ctx.alu(1);
                ctx.st(&self.out, tid as usize, v + 1);
            }
        }
    }

    fn setup(dev: &mut Device, n: usize) -> AddOne {
        let data: Vec<i32> = (0..n as i32).collect();
        let buf = dev.upload_new(&data, MemSpace::Global, "in");
        let out = dev.alloc_zeroed::<i32>(n, MemSpace::Global, "out");
        AddOne { buf, out, n: n as u64 }
    }

    #[test]
    fn launch_computes_and_accounts() {
        let mut dev = Device::new(DeviceSpec::gtx280());
        let k = setup(&mut dev, 1000);
        let report = dev.launch(&k, LaunchConfig::cover_1d(1000, 128), ExecMode::Auto);
        assert_eq!(k.out.get(999), 1000);
        assert!(report.timing.total_seconds > 0.0);
        assert!(report.host_seconds > 0.0);
        assert_eq!(dev.book().launches, 1);
        assert!(dev.book().h2d_s > 0.0);
        assert!(dev.book().kernel_s > 0.0);
    }

    #[test]
    fn profile_cache_hits_across_launches() {
        let mut dev = Device::new(DeviceSpec::gtx280());
        let k = setup(&mut dev, 1000);
        let cfg = LaunchConfig::cover_1d(1000, 128);
        let r1 = dev.launch(&k, cfg, ExecMode::Auto);
        let r2 = dev.launch(&k, cfg, ExecMode::Auto);
        assert_eq!(r1.counters, r2.counters, "second launch must reuse the profile");
        assert_eq!(dev.book().launches, 2);
    }

    #[test]
    fn fast_mode_without_profile_still_computes() {
        let mut dev = Device::new(DeviceSpec::gtx280());
        let k = setup(&mut dev, 256);
        let r = dev.launch(&k, LaunchConfig::cover_1d(256, 64), ExecMode::Fast);
        assert_eq!(k.out.get(0), 1);
        assert_eq!(r.counters.sampled_threads, 0);
    }

    #[test]
    fn trace_mode_profiles_everything() {
        let mut dev = Device::new(DeviceSpec::gtx280());
        let k = setup(&mut dev, 200);
        let r = dev.launch(&k, LaunchConfig::cover_1d(200, 64), ExecMode::Trace);
        // 4 blocks × 64 threads sampled.
        assert_eq!(r.counters.sampled_threads, 256);
        assert!(r.races.is_empty());
    }

    #[test]
    fn parallel_and_sequential_execution_agree() {
        let mut dev = Device::new(DeviceSpec::gtx280());
        dev.set_workers(8);
        let n = 100_000;
        let k = setup(&mut dev, n);
        dev.launch(&k, LaunchConfig::cover_1d(n as u64, 128), ExecMode::Auto);
        let parallel_result = k.out.snapshot();

        let mut dev2 = Device::new(DeviceSpec::gtx280());
        dev2.set_workers(1);
        let k2 = setup(&mut dev2, n);
        dev2.launch(&k2, LaunchConfig::cover_1d(n as u64, 128), ExecMode::Auto);
        assert_eq!(parallel_result, k2.out.snapshot());
    }

    #[test]
    fn download_accounts_bytes() {
        let mut dev = Device::new(DeviceSpec::gtx280());
        let k = setup(&mut dev, 64);
        dev.launch(&k, LaunchConfig::cover_1d(64, 64), ExecMode::Auto);
        let v = dev.download(&k.out);
        assert_eq!(v[5], 6);
        assert_eq!(dev.book().bytes_d2h, 64 * 4);
    }

    #[test]
    fn sample_blocks_shapes() {
        assert_eq!(sample_blocks(3, 4), vec![0, 1, 2]);
        let s = sample_blocks(2033, 4);
        assert_eq!(s[0], 0);
        assert!(s.len() <= 4);
        assert!(s.iter().all(|&b| b < 2033));
    }

    #[test]
    fn bigger_grids_predict_better_throughput() {
        // The whole point of the paper: per-move cost falls with grid size.
        let mut dev = Device::new(DeviceSpec::gtx280());
        let k_small = setup(&mut dev, 73);
        let r_small = dev.launch(&k_small, LaunchConfig::cover_1d(73, 128), ExecMode::Auto);
        let k_big = setup(&mut dev, 62_196);
        let r_big = dev.launch(&k_big, LaunchConfig::cover_1d(62_196, 128), ExecMode::Auto);
        let per_small = r_small.timing.kernel_seconds / 73.0;
        let per_big = r_big.timing.kernel_seconds / 62_196.0;
        assert!(per_big < per_small, "per-thread {per_big} !< {per_small}");
    }
}
