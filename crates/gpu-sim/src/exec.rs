//! Thread contexts and block execution.
//!
//! Two [`ThreadCtx`] implementations drive every kernel:
//!
//! * `FastCtx` — all accounting methods are no-ops that the optimizer
//!   erases; memory ops are relaxed atomic loads/stores.
//! * `TraceCtx` — records instruction counts, the device-memory address
//!   trace (for coalescing analysis) and feeds the race detector.
//!
//! Blocks are the unit of parallelism: a block's threads run sequentially
//! on one host worker, phase by phase — precisely the visibility CUDA
//! guarantees (nothing within a phase, everything across a barrier).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::counting::{AccessRec, ThreadTrace};
use crate::dim::LaunchConfig;
use crate::kernel::{Kernel, ThreadCtx, ThreadId};
use crate::memory::{DeviceBuffer, DeviceWord, MemSpace};
use crate::race::RaceTracker;

/// How a launch is executed and profiled.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Profile sampled blocks if this kernel/config has no cached profile,
    /// then run everything fast. The default.
    #[default]
    Auto,
    /// Never profile; reuse a cached profile if one exists (timing falls
    /// back to zero counters otherwise).
    Fast,
    /// Profile *every* block with race detection; slow, for tests and
    /// small launches.
    Trace,
}

/// Per-block shared memory (64-bit cells; `LaunchConfig::shared_words`
/// counts 32-bit words for occupancy, rounded up here).
pub(crate) struct SharedMem {
    cells: Vec<AtomicU64>,
}

impl SharedMem {
    pub(crate) fn new(words32: u32) -> Self {
        let n = (words32 as usize).div_ceil(2);
        Self { cells: (0..n).map(|_| AtomicU64::new(0)).collect() }
    }

    #[inline]
    fn ld(&self, idx: usize) -> u64 {
        self.cells[idx].load(Ordering::Relaxed)
    }

    #[inline]
    fn st(&self, idx: usize, v: u64) {
        self.cells[idx].store(v, Ordering::Relaxed);
    }
}

/// Zero-overhead context for production runs.
pub(crate) struct FastCtx<'a> {
    pub(crate) id: ThreadId,
    pub(crate) shared: &'a SharedMem,
    pub(crate) local: &'a mut Vec<i32>,
    pub(crate) local_top: usize,
}

impl ThreadCtx for FastCtx<'_> {
    #[inline]
    fn id(&self) -> ThreadId {
        self.id
    }

    #[inline]
    fn ld<T: DeviceWord>(&mut self, buf: &DeviceBuffer<T>, idx: usize) -> T {
        buf.get(idx)
    }

    #[inline]
    fn st<T: DeviceWord>(&mut self, buf: &DeviceBuffer<T>, idx: usize, v: T) {
        buf.set(idx, v);
    }

    #[inline]
    fn sh_ld(&mut self, idx: usize) -> u64 {
        self.shared.ld(idx)
    }

    #[inline]
    fn sh_st(&mut self, idx: usize, v: u64) {
        self.shared.st(idx, v);
    }

    #[inline]
    fn local_alloc(&mut self, words: usize) -> usize {
        let base = self.local_top;
        self.local_top += words;
        if self.local.len() < self.local_top {
            self.local.resize(self.local_top, 0);
        }
        base
    }

    #[inline]
    fn local_ld(&mut self, off: usize) -> i32 {
        self.local[off]
    }

    #[inline]
    fn local_st(&mut self, off: usize, v: i32) {
        self.local[off] = v;
    }

    #[inline]
    fn alu(&mut self, _n: u32) {}

    #[inline]
    fn sfu(&mut self, _n: u32) {}

    #[inline]
    fn branch(&mut self, taken: bool) -> bool {
        taken
    }
}

/// Counting context for profiled runs.
pub(crate) struct TraceCtx<'a> {
    pub(crate) id: ThreadId,
    pub(crate) shared: &'a SharedMem,
    pub(crate) local: &'a mut Vec<i32>,
    pub(crate) local_top: usize,
    pub(crate) trace: ThreadTrace,
    pub(crate) race: Option<&'a RaceTracker>,
}

impl TraceCtx<'_> {
    #[inline]
    fn record_access(&mut self, space: MemSpace, bytes: u32, addr: u64, store: bool) {
        self.trace.accesses.push(AccessRec { space, bytes, addr, store });
    }
}

/// Address base separating buffers in the coalescing analysis: buffer id
/// in the high bits, byte offset in the low 40.
#[inline]
fn buf_addr(buf_id: u64, byte_off: u64) -> u64 {
    (buf_id << 40) | byte_off
}

impl ThreadCtx for TraceCtx<'_> {
    #[inline]
    fn id(&self) -> ThreadId {
        self.id
    }

    fn ld<T: DeviceWord>(&mut self, buf: &DeviceBuffer<T>, idx: usize) -> T {
        let c = &mut self.trace.counters;
        match buf.space() {
            MemSpace::Global => c.ld_global += 1,
            MemSpace::Texture => c.ld_texture += 1,
            MemSpace::Constant => c.ld_constant += 1,
        }
        self.record_access(
            buf.space(),
            T::BYTES,
            buf_addr(buf.id(), idx as u64 * T::BYTES as u64),
            false,
        );
        if let Some(r) = self.race {
            // Reads of read-only spaces cannot race.
            if buf.space() == MemSpace::Global {
                r.on_access(buf.id(), idx as u64, self.id.global(), false);
            }
        }
        buf.get(idx)
    }

    fn st<T: DeviceWord>(&mut self, buf: &DeviceBuffer<T>, idx: usize, v: T) {
        assert_eq!(
            buf.space(),
            MemSpace::Global,
            "stores are only legal to global memory (buffer '{}')",
            buf.label()
        );
        self.trace.counters.st_global += 1;
        self.record_access(
            MemSpace::Global,
            T::BYTES,
            buf_addr(buf.id(), idx as u64 * T::BYTES as u64),
            true,
        );
        if let Some(r) = self.race {
            r.on_access(buf.id(), idx as u64, self.id.global(), true);
        }
        buf.set(idx, v);
    }

    fn sh_ld(&mut self, idx: usize) -> u64 {
        self.trace.counters.shared += 1;
        self.trace.shared_accesses.push(idx as u32);
        if let Some(r) = self.race {
            // Shared memory is per block: fold block id into the "buffer".
            r.on_access(u64::MAX - self.id.block, idx as u64, self.id.global(), false);
        }
        self.shared.ld(idx)
    }

    fn sh_st(&mut self, idx: usize, v: u64) {
        self.trace.counters.shared += 1;
        self.trace.shared_accesses.push(idx as u32);
        if let Some(r) = self.race {
            r.on_access(u64::MAX - self.id.block, idx as u64, self.id.global(), true);
        }
        self.shared.st(idx, v);
    }

    #[inline]
    fn local_alloc(&mut self, words: usize) -> usize {
        let base = self.local_top;
        self.local_top += words;
        if self.local.len() < self.local_top {
            self.local.resize(self.local_top, 0);
        }
        base
    }

    #[inline]
    fn local_ld(&mut self, off: usize) -> i32 {
        self.trace.counters.local += 1;
        self.local[off]
    }

    #[inline]
    fn local_st(&mut self, off: usize, v: i32) {
        self.trace.counters.local += 1;
        self.local[off] = v;
    }

    #[inline]
    fn alu(&mut self, n: u32) {
        self.trace.counters.alu += n as u64;
    }

    #[inline]
    fn sfu(&mut self, n: u32) {
        self.trace.counters.sfu += n as u64;
    }

    #[inline]
    fn branch(&mut self, taken: bool) -> bool {
        self.trace.counters.branches += 1;
        self.trace.branch_taken.push(taken);
        taken
    }
}

/// Run one block in fast mode (all phases, all threads).
pub(crate) fn run_block_fast<K: Kernel>(
    kernel: &K,
    cfg: &LaunchConfig,
    block: u64,
    arena: &mut Vec<i32>,
) {
    let bs = cfg.block_threads();
    let shared = SharedMem::new(cfg.shared_words);
    let phases = kernel.phases();
    for phase in 0..phases {
        for t in 0..bs {
            let mut ctx = FastCtx {
                id: ThreadId { block, thread: t, block_dim: bs, grid_dim: cfg.grid_blocks() },
                shared: &shared,
                local: arena,
                local_top: 0,
            };
            kernel.run(&mut ctx, phase);
        }
    }
}

/// Run one block in trace mode; returns the per-thread traces.
pub(crate) fn run_block_trace<K: Kernel>(
    kernel: &K,
    cfg: &LaunchConfig,
    block: u64,
    arena: &mut Vec<i32>,
    race: Option<&RaceTracker>,
) -> Vec<ThreadTrace> {
    let bs = cfg.block_threads();
    let shared = SharedMem::new(cfg.shared_words);
    let phases = kernel.phases();
    let mut traces: Vec<ThreadTrace> = vec![ThreadTrace::default(); bs as usize];
    for phase in 0..phases {
        if phase > 0 {
            if let Some(r) = race {
                r.phase_boundary();
            }
        }
        for t in 0..bs {
            let mut ctx = TraceCtx {
                id: ThreadId { block, thread: t, block_dim: bs, grid_dim: cfg.grid_blocks() },
                shared: &shared,
                local: arena,
                local_top: 0,
                trace: std::mem::take(&mut traces[t as usize]),
                race,
            };
            kernel.run(&mut ctx, phase);
            traces[t as usize] = ctx.trace;
        }
    }
    traces
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::ThreadCounters;
    use crate::memory::DeviceBuffer;

    /// Sum of every counter class (test helper).
    fn counters_total(c: &ThreadCounters) -> u64 {
        c.alu
            + c.sfu
            + c.branches
            + c.ld_global
            + c.st_global
            + c.ld_texture
            + c.ld_constant
            + c.shared
            + c.local
    }

    /// y[i] = x[i] * 2 with explicit accounting.
    struct Doubler {
        x: DeviceBuffer<i32>,
        y: DeviceBuffer<i32>,
        n: u64,
    }

    impl Kernel for Doubler {
        fn name(&self) -> &'static str {
            "doubler"
        }

        fn run<C: ThreadCtx>(&self, ctx: &mut C, _phase: u32) {
            let tid = ctx.id().global();
            if ctx.branch(tid < self.n) {
                let v = ctx.ld(&self.x, tid as usize);
                ctx.alu(1);
                ctx.st(&self.y, tid as usize, v * 2);
            }
        }
    }

    fn doubler(n: usize) -> Doubler {
        let x =
            DeviceBuffer::from_slice(&(0..n as i32).collect::<Vec<_>>(), MemSpace::Global, 1, "x");
        let y = DeviceBuffer::<i32>::zeroed(n, MemSpace::Global, 2, "y");
        Doubler { x, y, n: n as u64 }
    }

    #[test]
    fn fast_block_computes() {
        let k = doubler(100);
        let cfg = LaunchConfig::cover_1d(100, 64);
        let mut arena = Vec::new();
        for b in 0..cfg.grid_blocks() {
            run_block_fast(&k, &cfg, b, &mut arena);
        }
        assert_eq!(k.y.snapshot(), (0..100).map(|v| v * 2).collect::<Vec<i32>>());
    }

    #[test]
    fn trace_block_counts_and_computes() {
        let k = doubler(100);
        let cfg = LaunchConfig::cover_1d(100, 64);
        let mut arena = Vec::new();
        let mut all = Vec::new();
        for b in 0..cfg.grid_blocks() {
            all.extend(run_block_trace(&k, &cfg, b, &mut arena, None));
        }
        assert_eq!(k.y.get(42), 84);
        assert_eq!(all.len(), 128);
        // Active threads: 1 branch + 1 ld + 1 alu + 1 st.
        let active = &all[10].counters;
        assert_eq!(active.ld_global, 1);
        assert_eq!(active.st_global, 1);
        assert_eq!(active.alu, 1);
        assert_eq!(active.branches, 1);
        // Guard threads: branch only.
        let guard = &all[110].counters;
        assert_eq!(counters_total(guard), 1);
        assert_eq!(guard.branches, 1);
    }

    #[test]
    fn trace_detects_overlapping_writes() {
        struct Clash {
            out: DeviceBuffer<i32>,
        }
        impl Kernel for Clash {
            fn name(&self) -> &'static str {
                "clash"
            }
            fn run<C: ThreadCtx>(&self, ctx: &mut C, _phase: u32) {
                // every thread writes index 0: a write/write race
                ctx.st(&self.out, 0, ctx.id().global() as i32);
            }
        }
        let k = Clash { out: DeviceBuffer::<i32>::zeroed(1, MemSpace::Global, 9, "out") };
        let cfg = LaunchConfig::cover_1d(8, 8);
        let race = RaceTracker::new(4);
        let mut arena = Vec::new();
        run_block_trace(&k, &cfg, 0, &mut arena, Some(&race));
        assert!(!race.events().is_empty(), "expected a write/write race");
    }

    #[test]
    fn local_scratch_is_private_per_thread() {
        struct Scratch {
            out: DeviceBuffer<i32>,
            n: u64,
        }
        impl Kernel for Scratch {
            fn name(&self) -> &'static str {
                "scratch"
            }
            fn run<C: ThreadCtx>(&self, ctx: &mut C, _phase: u32) {
                let tid = ctx.id().global();
                if !ctx.branch(tid < self.n) {
                    return;
                }
                let base = ctx.local_alloc(4);
                for i in 0..4 {
                    ctx.local_st(base + i, (tid as i32 + 1) * (i as i32 + 1));
                }
                let mut acc = 0;
                for i in 0..4 {
                    acc += ctx.local_ld(base + i);
                }
                ctx.st(&self.out, tid as usize, acc);
            }
        }
        let n = 50;
        let k =
            Scratch { out: DeviceBuffer::<i32>::zeroed(n, MemSpace::Global, 3, "o"), n: n as u64 };
        let cfg = LaunchConfig::cover_1d(n as u64, 32);
        let mut arena = Vec::new();
        for b in 0..cfg.grid_blocks() {
            run_block_fast(&k, &cfg, b, &mut arena);
        }
        // acc = (tid+1) * (1+2+3+4)
        for t in 0..n {
            assert_eq!(k.out.get(t), (t as i32 + 1) * 10);
        }
    }

    #[test]
    fn stores_to_texture_space_rejected_in_trace() {
        struct BadStore {
            t: DeviceBuffer<i32>,
        }
        impl Kernel for BadStore {
            fn name(&self) -> &'static str {
                "bad"
            }
            fn run<C: ThreadCtx>(&self, ctx: &mut C, _phase: u32) {
                ctx.st(&self.t, 0, 1);
            }
        }
        let k = BadStore { t: DeviceBuffer::<i32>::zeroed(1, MemSpace::Texture, 4, "t") };
        let cfg = LaunchConfig::cover_1d(1, 1);
        let mut arena = Vec::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_block_trace(&k, &cfg, 0, &mut arena, None);
        }));
        assert!(result.is_err(), "texture store must be rejected");
    }
}
