//! # lnls-gpu-sim — a cycle-approximate functional GPU simulator
//!
//! The experiments of Luong, Melab & Talbi (LSPP @ IPDPS 2010) ran CUDA
//! kernels on an NVIDIA GTX 280. This crate substitutes that hardware with
//! a **functional simulator plus analytic timing model** so the paper's
//! system can be built, tested and measured anywhere:
//!
//! * **Functional**: kernels (implementors of [`Kernel`]) execute for real
//!   on host threads, producing bit-exact results — searches driven
//!   through the simulator make exactly the moves a CUDA implementation
//!   would make.
//! * **Cycle-approximate**: sampled blocks run under a counting context
//!   that records instruction mix, memory-address traces (for GT200
//!   coalescing analysis) and branch divergence; an analytic model
//!   ([`timing`]) converts the counts into predicted device seconds using
//!   a [`DeviceSpec`] (GTX 280 preset included) — and predicted *host*
//!   seconds using a [`HostSpec`], giving the paper's CPU/GPU columns.
//!
//! The execution model mirrors CUDA's: grids of blocks of threads
//! ([`Dim3`], [`LaunchConfig`]), warp-granular SIMT costing, global /
//! texture / constant memory spaces ([`MemSpace`]), per-block shared
//! memory with `__syncthreads` modeled as kernel *phases*, per-thread
//! local scratch, and PCIe transfer accounting. A data-race detector
//! ([`race`]) flags kernels that depend on intra-phase thread ordering.
//!
//! ## Example
//!
//! ```
//! use lnls_gpu_sim::{Device, DeviceSpec, ExecMode, Kernel, LaunchConfig, MemSpace, ThreadCtx};
//!
//! // out[i] = a*x[i] + y[i]. Kernels must be idempotent within a launch
//! // (the profiler may re-run sampled blocks), so inputs and outputs are
//! // distinct buffers.
//! struct Saxpy {
//!     a: i32,
//!     x: lnls_gpu_sim::DeviceBuffer<i32>,
//!     y: lnls_gpu_sim::DeviceBuffer<i32>,
//!     out: lnls_gpu_sim::DeviceBuffer<i32>,
//!     n: u64,
//! }
//!
//! impl Kernel for Saxpy {
//!     fn name(&self) -> &'static str { "saxpy" }
//!     fn run<C: ThreadCtx>(&self, ctx: &mut C, _phase: u32) {
//!         let tid = ctx.id().global();
//!         if ctx.branch(tid < self.n) {
//!             let xv = ctx.ld(&self.x, tid as usize);
//!             let yv = ctx.ld(&self.y, tid as usize);
//!             ctx.alu(2);
//!             ctx.st(&self.out, tid as usize, self.a * xv + yv);
//!         }
//!     }
//! }
//!
//! let mut dev = Device::new(DeviceSpec::gtx280());
//! let x = dev.upload_new(&[1, 2, 3, 4], MemSpace::Global, "x");
//! let y = dev.upload_new(&[10, 20, 30, 40], MemSpace::Global, "y");
//! let out = dev.alloc_zeroed::<i32>(4, MemSpace::Global, "out");
//! let k = Saxpy { a: 2, x, y, out: out.clone(), n: 4 };
//! let report = dev.launch(&k, LaunchConfig::cover_1d(4, 128), ExecMode::Auto);
//! assert_eq!(dev.download(&out), vec![12, 24, 36, 48]);
//! assert!(report.timing.total_seconds > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod counting;
pub mod dim;
pub mod exec;
pub mod kernel;
pub mod memory;
pub mod multigpu;
pub mod occupancy;
pub mod pipeline;
pub mod race;
pub mod reduce;
pub mod report;
pub mod spec;
pub mod stream;
pub mod timing;

mod device;

pub use device::Device;
pub use dim::{Dim3, LaunchConfig};
pub use exec::ExecMode;
pub use kernel::{Kernel, ThreadCtx, ThreadId};
pub use memory::{DeviceBuffer, DeviceWord, MemSpace};
pub use multigpu::MultiDevice;
pub use occupancy::{occupancy, Limit, Occupancy};
pub use pipeline::{price_multiwalk, IterationProfile, PipelineReport};
pub use race::{RaceEvent, RaceKind};
pub use reduce::{argmin_kernel_seconds, SelectionMode, ARGMIN_RECORD_BYTES};
pub use report::{LaunchReport, TimeBook};
pub use spec::{DeviceSpec, HostSpec};
pub use stream::{
    price_fused_iteration, price_fused_span, EngineConfig, EventId, LaneIo, LaunchMode, Schedule,
    ScheduledOp, StreamOp, StreamSim,
};
pub use timing::{predict, predict_host_seconds, transfer_seconds, TimingBreakdown};
