//! CUDA streams and events: modeled asynchronous execution.
//!
//! The paper's search loop is synchronous — upload the solution, launch
//! the evaluation kernel, read the fitness array back, pick the best
//! move (§IV.B). Each iteration depends on the previous readback, so a
//! *single* search cannot overlap anything. But the paper's protocol
//! runs 50 independent tries, and its §V perspective partitions work
//! across devices; both expose concurrency that CUDA exposes through
//! **streams**: FIFO queues whose operations may overlap across queues
//! subject to the device's engine layout.
//!
//! This module prices such schedules with a discrete-event model:
//!
//! * every operation (H2D copy, kernel, D2H copy) is enqueued on a
//!   stream; operations within one stream serialize in enqueue order;
//! * the device runs the [`EngineConfig`] its [`DeviceSpec`] carries —
//!   one **copy engine** and one **compute engine** on every preset (the
//!   GT200 layout — concurrent copy + execute, but no concurrent kernels
//!   and a single DMA queue shared by both copy directions);
//!   [`DeviceSpec::with_engines`] relaxes this to model newer parts;
//! * **events** impose cross-stream edges (`record_event` /
//!   `wait_event`), exactly like `cudaStreamWaitEvent`.
//!
//! The output [`Schedule`] reports per-operation start/finish times, the
//! makespan, engine busy times, and the fully-serialized time for
//! comparison — the quantity the pipelining ablation reports.

use crate::spec::DeviceSpec;
use crate::timing::transfer_seconds;

/// How many hardware queues the device can run concurrently.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Independent DMA engines (GT200: 1; Fermi Tesla parts: 2, one per
    /// direction).
    pub copy_engines: usize,
    /// Kernels that may execute concurrently (GT200: 1; Fermi+: up to
    /// 16 — modeled here as distinct compute slots).
    pub concurrent_kernels: usize,
}

impl EngineConfig {
    /// The GT200 / GTX 280 layout: one copy engine, serial kernels.
    pub fn gt200() -> Self {
        Self { copy_engines: 1, concurrent_kernels: 1 }
    }

    /// A Fermi-class layout: dual copy engines, concurrent kernels.
    ///
    /// Caveat: compute slots are modeled as fully independent, which is
    /// exact for queueing semantics but optimistic for *throughput* —
    /// real concurrent kernels share the SMs. Use this layout to study
    /// scheduling (what overlaps with what), not to predict speedups of
    /// compute-bound kernels.
    pub fn fermi() -> Self {
        Self { copy_engines: 2, concurrent_kernels: 16 }
    }
}

/// How kernel-launch overhead is charged across the iterations of a
/// fused span (see [`price_fused_span`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum LaunchMode {
    /// Every iteration re-launches its kernel chain, so launch overhead
    /// is charged once per kernel per iteration — the paper's
    /// synchronous loop (§IV.B).
    #[default]
    PerIteration,
    /// A persistent kernel stays resident on the device for the whole
    /// span: launch overhead is charged once per kernel position for the
    /// span's *first* iteration only; later iterations are device-side
    /// loop trips that re-synchronize through events, not fresh
    /// launches.
    PersistentSpan,
}

/// An operation enqueued on a stream.
#[derive(Clone, Debug, PartialEq)]
pub enum StreamOp {
    /// Host→device copy of `bytes`.
    H2D {
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Device→host copy of `bytes`.
    D2H {
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Kernel execution of a known modeled duration (price it first with
    /// [`predict`](crate::timing::predict)).
    Kernel {
        /// Modeled execution seconds (excluding launch overhead, which
        /// the stream model adds itself).
        seconds: f64,
    },
    /// Record an event visible to `wait_event`.
    RecordEvent(
        /// Event id, from [`StreamSim::new_event`].
        EventId,
    ),
    /// Block later operations of this stream until the event fires.
    WaitEvent(
        /// Event id, from [`StreamSim::new_event`].
        EventId,
    ),
}

/// Handle to a recorded event.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct EventId(usize);

/// One scheduled operation in the output timeline.
#[derive(Clone, Debug)]
pub struct ScheduledOp {
    /// Stream the op ran on.
    pub stream: usize,
    /// The operation.
    pub op: StreamOp,
    /// Modeled start time (seconds from schedule origin).
    pub start: f64,
    /// Modeled finish time.
    pub finish: f64,
}

/// The priced schedule.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Every operation with its start/finish times, in enqueue order.
    pub ops: Vec<ScheduledOp>,
    /// Time the last operation finishes.
    pub makespan: f64,
    /// Total busy seconds of the copy engine(s).
    pub copy_busy: f64,
    /// Total busy seconds of the compute engine(s).
    pub compute_busy: f64,
    /// What the same operations would cost executed back-to-back on one
    /// queue (the synchronous baseline).
    pub serialized: f64,
}

impl Schedule {
    /// Overlap efficiency: serialized time over makespan (≥ 1; higher is
    /// better; 1 = no overlap achieved).
    pub fn overlap_factor(&self) -> f64 {
        if self.makespan > 0.0 {
            self.serialized / self.makespan
        } else {
            1.0
        }
    }

    /// A small ASCII Gantt chart (one row per stream) for reports and
    /// examples. `width` is the number of character cells representing
    /// the makespan.
    pub fn gantt_ascii(&self, width: usize) -> String {
        let width = width.max(10);
        let streams = self.ops.iter().map(|o| o.stream).max().map_or(0, |m| m + 1);
        let scale = |t: f64| ((t / self.makespan) * width as f64).round() as usize;
        let mut rows = vec![vec![b'.'; width]; streams];
        for op in &self.ops {
            let glyph = match op.op {
                StreamOp::H2D { .. } => b'U',
                StreamOp::D2H { .. } => b'D',
                StreamOp::Kernel { .. } => b'K',
                _ => continue,
            };
            let (a, b) = (scale(op.start), scale(op.finish).max(scale(op.start) + 1));
            for cell in rows[op.stream][a..b.min(width)].iter_mut() {
                *cell = glyph;
            }
        }
        let mut out = String::new();
        for (i, row) in rows.iter().enumerate() {
            out.push_str(&format!("s{i} |"));
            out.push_str(std::str::from_utf8(row).expect("ascii"));
            out.push_str("|\n");
        }
        out.push_str(&format!(
            "    makespan {:.3} ms, serialized {:.3} ms, overlap ×{:.2}\n",
            self.makespan * 1e3,
            self.serialized * 1e3,
            self.overlap_factor()
        ));
        out
    }

    /// Lower the schedule to Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` format `chrome://tracing` and Perfetto
    /// open directly). Each stream becomes a trace thread named
    /// `stream {i}`; every copy and kernel becomes a complete (`ph:"X"`)
    /// span with microsecond timestamps, category `copy` or `compute`,
    /// and the modeled bytes/seconds as args. Zero-duration event
    /// bookkeeping ops (`RecordEvent`/`WaitEvent`) are omitted.
    pub fn chrome_trace_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v:?}")
            } else {
                "0".to_string()
            }
        }
        let us = |seconds: f64| num(seconds * 1e6);
        let streams = self.ops.iter().map(|o| o.stream).max().map_or(0, |m| m + 1);
        let mut events = Vec::new();
        for i in 0..streams {
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{i},\
                 \"args\":{{\"name\":\"stream {i}\"}}}}"
            ));
        }
        for op in &self.ops {
            let (name, cat, args) = match op.op {
                StreamOp::H2D { bytes } => ("H2D", "copy", format!("{{\"bytes\":{bytes}}}")),
                StreamOp::D2H { bytes } => ("D2H", "copy", format!("{{\"bytes\":{bytes}}}")),
                StreamOp::Kernel { seconds } => {
                    ("Kernel", "compute", format!("{{\"seconds\":{}}}", num(seconds)))
                }
                StreamOp::RecordEvent(_) | StreamOp::WaitEvent(_) => continue,
            };
            events.push(format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"pid\":1,\
                 \"tid\":{},\"ts\":{},\"dur\":{},\"args\":{args}}}",
                op.stream,
                us(op.start),
                us(op.finish - op.start),
            ));
        }
        format!("{{\"traceEvents\":[{}]}}", events.join(","))
    }
}

/// Builder + simulator for a stream schedule on one device.
pub struct StreamSim<'a> {
    spec: &'a DeviceSpec,
    engines: EngineConfig,
    // (stream, op, overhead-exempt): the flag marks kernels that are
    // device-side loop trips of a persistent span — they occupy a
    // compute slot for their modeled seconds but pay no launch
    // overhead (see `LaunchMode::PersistentSpan`).
    queued: Vec<(usize, StreamOp, bool)>,
    n_events: usize,
}

impl<'a> StreamSim<'a> {
    /// A simulator for `spec` with the engine layout the spec itself
    /// carries ([`DeviceSpec::engines`] — GT200 for every preset).
    pub fn new(spec: &'a DeviceSpec) -> Self {
        Self::with_engines(spec, spec.engines)
    }

    /// Override the engine layout (ablations).
    pub fn with_engines(spec: &'a DeviceSpec, engines: EngineConfig) -> Self {
        assert!(engines.copy_engines >= 1, "need at least one copy engine");
        assert!(engines.concurrent_kernels >= 1, "need at least one compute slot");
        Self { spec, engines, queued: Vec::new(), n_events: 0 }
    }

    /// Allocate an event handle.
    pub fn new_event(&mut self) -> EventId {
        self.n_events += 1;
        EventId(self.n_events - 1)
    }

    /// Enqueue a host→device copy on `stream`.
    pub fn h2d(&mut self, stream: usize, bytes: u64) -> &mut Self {
        self.queued.push((stream, StreamOp::H2D { bytes }, false));
        self
    }

    /// Enqueue a device→host copy on `stream`.
    pub fn d2h(&mut self, stream: usize, bytes: u64) -> &mut Self {
        self.queued.push((stream, StreamOp::D2H { bytes }, false));
        self
    }

    /// Enqueue a kernel of `seconds` modeled duration on `stream`.
    pub fn kernel(&mut self, stream: usize, seconds: f64) -> &mut Self {
        assert!(seconds >= 0.0 && seconds.is_finite(), "kernel duration must be finite");
        self.queued.push((stream, StreamOp::Kernel { seconds }, false));
        self
    }

    /// Enqueue a kernel that pays no launch overhead: a device-side loop
    /// trip of an already-resident persistent kernel. Private — reached
    /// through [`price_fused_span`] with [`LaunchMode::PersistentSpan`].
    fn kernel_resident(&mut self, stream: usize, seconds: f64) -> &mut Self {
        assert!(seconds >= 0.0 && seconds.is_finite(), "kernel duration must be finite");
        self.queued.push((stream, StreamOp::Kernel { seconds }, true));
        self
    }

    /// Record `event` on `stream` (fires when all earlier ops of the
    /// stream finish).
    pub fn record_event(&mut self, stream: usize, event: EventId) -> &mut Self {
        self.queued.push((stream, StreamOp::RecordEvent(event), false));
        self
    }

    /// Make later ops of `stream` wait until `event` fires.
    pub fn wait_event(&mut self, stream: usize, event: EventId) -> &mut Self {
        self.queued.push((stream, StreamOp::WaitEvent(event), false));
        self
    }

    fn duration_of(&self, op: &StreamOp, overhead_exempt: bool) -> f64 {
        match *op {
            StreamOp::H2D { bytes } | StreamOp::D2H { bytes } => transfer_seconds(self.spec, bytes),
            StreamOp::Kernel { seconds } if overhead_exempt => seconds,
            StreamOp::Kernel { seconds } => seconds + self.spec.launch_overhead_s,
            StreamOp::RecordEvent(_) | StreamOp::WaitEvent(_) => 0.0,
        }
    }

    /// Price the queued schedule.
    ///
    /// Engines are granted in global enqueue order (the hardware's FIFO
    /// behaviour): an operation starts at the max of (its stream's ready
    /// time, its engine's ready time, any awaited events).
    ///
    /// # Panics
    /// Panics if a `WaitEvent` precedes the matching `RecordEvent` in
    /// enqueue order (a deadlock on real hardware too).
    pub fn run(&self) -> Schedule {
        let mut stream_ready: Vec<f64> = Vec::new();
        let mut copy_ready = vec![0.0f64; self.engines.copy_engines];
        let mut compute_ready = vec![0.0f64; self.engines.concurrent_kernels];
        let mut event_time: Vec<Option<f64>> = vec![None; self.n_events];
        let mut ops = Vec::with_capacity(self.queued.len());
        let mut makespan = 0.0f64;
        let mut copy_busy = 0.0;
        let mut compute_busy = 0.0;
        let mut serialized = 0.0;

        for &(stream, ref op, overhead_exempt) in &self.queued {
            if stream >= stream_ready.len() {
                stream_ready.resize(stream + 1, 0.0);
            }
            let dur = self.duration_of(op, overhead_exempt);
            serialized += dur;
            let mut start = stream_ready[stream];
            match *op {
                StreamOp::WaitEvent(EventId(e)) => {
                    let t = event_time[e]
                        .unwrap_or_else(|| panic!("wait on unrecorded event {e} (deadlock)"));
                    start = start.max(t);
                    stream_ready[stream] = start;
                    ops.push(ScheduledOp { stream, op: op.clone(), start, finish: start });
                    continue;
                }
                StreamOp::RecordEvent(EventId(e)) => {
                    event_time[e] = Some(start);
                    ops.push(ScheduledOp { stream, op: op.clone(), start, finish: start });
                    continue;
                }
                _ => {}
            }
            // Grab the earliest-free engine of the right kind.
            let pool: &mut Vec<f64> = match op {
                StreamOp::Kernel { .. } => &mut compute_ready,
                _ => &mut copy_ready,
            };
            let (engine_idx, &engine_free) = pool
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
                .expect("non-empty engine pool");
            start = start.max(engine_free);
            let finish = start + dur;
            pool[engine_idx] = finish;
            match op {
                StreamOp::Kernel { .. } => compute_busy += dur,
                _ => copy_busy += dur,
            }
            stream_ready[stream] = finish;
            makespan = makespan.max(finish);
            ops.push(ScheduledOp { stream, op: op.clone(), start, finish });
        }

        Schedule { ops, makespan, copy_busy, compute_busy, serialized }
    }
}

/// Per-lane PCIe traffic of one fused evaluation iteration (see
/// [`price_fused_iteration`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LaneIo {
    /// Bytes this lane uploads (solution bits + incremental state).
    pub h2d_bytes: u64,
    /// Bytes this lane reads back (its fitness array, or one packed
    /// argmin record under on-device selection).
    pub d2h_bytes: u64,
}

/// Price one fused multi-lane iteration as a **breadth-first** stream
/// schedule on `spec` (under [`DeviceSpec::engines`]): every lane's
/// upload is enqueued first (one stream per lane), then the fused kernel
/// chain on a dedicated compute stream gated on all uploads by events,
/// then every lane's readback gated on the kernels. `kernels` is the
/// dependent kernel chain of the iteration — the fused evaluation
/// kernel, optionally followed by the on-device argmin reduction — each
/// entry in modeled seconds *excluding* launch overhead (the stream
/// model adds it per kernel).
///
/// Breadth-first issue matters: on a single-copy-engine part (GT200),
/// depth-first enqueueing puts each lane's readback in front of the next
/// lane's upload in the one DMA queue and serializes everything; see
/// [`IssueOrder`](crate::pipeline::IssueOrder). Under GT200 layouts this
/// schedule's makespan equals its serialized sum (nothing can overlap
/// within one dependent iteration); multi-engine layouts overlap the
/// per-lane copies against each other, and [`Schedule::makespan`] prices
/// the win.
///
/// # Panics
/// Panics when `lanes` or `kernels` is empty.
pub fn price_fused_iteration(spec: &DeviceSpec, lanes: &[LaneIo], kernels: &[f64]) -> Schedule {
    assert!(!lanes.is_empty(), "cannot price an empty fused iteration");
    assert!(!kernels.is_empty(), "a fused iteration launches at least one kernel");
    let mut sim = StreamSim::new(spec);
    let kernel_stream = lanes.len();
    let mut uploaded = Vec::with_capacity(lanes.len());
    for (stream, lane) in lanes.iter().enumerate() {
        sim.h2d(stream, lane.h2d_bytes);
        let ev = sim.new_event();
        sim.record_event(stream, ev);
        uploaded.push(ev);
    }
    for ev in uploaded {
        sim.wait_event(kernel_stream, ev);
    }
    for &seconds in kernels {
        sim.kernel(kernel_stream, seconds);
    }
    let done = sim.new_event();
    sim.record_event(kernel_stream, done);
    for (stream, lane) in lanes.iter().enumerate() {
        sim.wait_event(stream, done);
        sim.d2h(stream, lane.d2h_bytes);
    }
    sim.run()
}

/// Price `n` consecutive fused iterations of the same multi-lane shape
/// as **one** breadth-first stream/event schedule on `spec` — the
/// cross-iteration pipelining rung above [`price_fused_iteration`].
///
/// Layout (`L = lanes.len()`): each lane uploads on its own stream
/// `0..L`; the fused kernel chain runs on the dedicated compute stream
/// `L`; each lane reads back on its own *download* stream `L+1..=2L`.
/// Downloads ride separate streams from uploads on purpose: per-stream
/// FIFO order would otherwise re-serialize iteration *k+1*'s H2D behind
/// iteration *k*'s D2H, defeating the pipeline.
///
/// Two cross-iteration effects are modeled:
///
/// * **Double-buffered H2D** — two upload buffers per lane, so
///   iteration *k*'s uploads are event-gated only on *buffer release*:
///   the completion of iteration *k−2*'s kernel chain (the last consumer
///   of the re-used buffer), never on any D2H. Iterations 0 and 1 start
///   uploading immediately.
/// * **[`LaunchMode`]** — under [`LaunchMode::PerIteration`] every
///   iteration's kernels pay [`DeviceSpec::launch_overhead_s`] (the
///   paper's synchronous loop); under [`LaunchMode::PersistentSpan`] the
///   kernel chain stays resident and only iteration 0 pays it, so the
///   span amortizes `(n−1)·kernels.len()` launches. Both the makespan
///   *and* [`Schedule::serialized`] reflect the exemption, keeping
///   [`Schedule::overlap_factor`] an overlap measure rather than an
///   amortization measure.
///
/// Issue order is the breadth-first software pipeline: iteration
/// *k+1*'s uploads are **enqueued before** iteration *k*'s readbacks,
/// so DMA engines (granted in enqueue order) serve the eager uploads
/// first and the pipeline actually fills. With `n = 1` and
/// [`LaunchMode::PerIteration`] the makespan and serialized sum equal
/// [`price_fused_iteration`]'s exactly. Engine contention stays honest:
/// a GT200 layout's single DMA queue still serializes H2D against D2H,
/// but the eager issue order lets it overlap the next iteration's
/// upload against the current kernel — partial pipelining plus launch
/// amortization — while multi-engine layouts overlap uploads, kernels
/// and readbacks of adjacent iterations fully.
///
/// # Panics
/// Panics when `lanes` or `kernels` is empty, or when `n == 0`.
pub fn price_fused_span(
    spec: &DeviceSpec,
    lanes: &[LaneIo],
    kernels: &[f64],
    n: usize,
    mode: LaunchMode,
) -> Schedule {
    assert!(!lanes.is_empty(), "cannot price an empty fused span");
    assert!(!kernels.is_empty(), "a fused span launches at least one kernel");
    assert!(n >= 1, "a span covers at least one iteration");
    let mut sim = StreamSim::new(spec);
    let kernel_stream = lanes.len();
    let download_base = lanes.len() + 1;
    let mut kernel_done: Vec<EventId> = Vec::with_capacity(n);
    let enqueue_downloads = |sim: &mut StreamSim<'_>, done: EventId| {
        for (i, lane) in lanes.iter().enumerate() {
            sim.wait_event(download_base + i, done);
            sim.d2h(download_base + i, lane.d2h_bytes);
        }
    };
    for iter in 0..n {
        let mut uploaded = Vec::with_capacity(lanes.len());
        for (lane_stream, lane) in lanes.iter().enumerate() {
            if iter >= 2 {
                // Buffer release: this iteration re-uses the upload
                // buffer iteration `iter - 2` consumed.
                sim.wait_event(lane_stream, kernel_done[iter - 2]);
            }
            sim.h2d(lane_stream, lane.h2d_bytes);
            let ev = sim.new_event();
            sim.record_event(lane_stream, ev);
            uploaded.push(ev);
        }
        // Eager issue: the previous iteration's readbacks go in *after*
        // this iteration's uploads so they never hog the DMA queue
        // ahead of them.
        if iter >= 1 {
            enqueue_downloads(&mut sim, kernel_done[iter - 1]);
        }
        for ev in uploaded {
            sim.wait_event(kernel_stream, ev);
        }
        let resident = mode == LaunchMode::PersistentSpan && iter > 0;
        for &seconds in kernels {
            if resident {
                sim.kernel_resident(kernel_stream, seconds);
            } else {
                sim.kernel(kernel_stream, seconds);
            }
        }
        let done = sim.new_event();
        sim.record_event(kernel_stream, done);
        kernel_done.push(done);
    }
    enqueue_downloads(&mut sim, kernel_done[n - 1]);
    sim.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;

    const EPS: f64 = 1e-12;

    fn spec() -> DeviceSpec {
        DeviceSpec::gtx280()
    }

    #[test]
    fn single_stream_serializes_everything() {
        let s = spec();
        let mut sim = StreamSim::new(&s);
        sim.h2d(0, 1 << 20).kernel(0, 1e-3).d2h(0, 1 << 16);
        let sched = sim.run();
        assert!((sched.makespan - sched.serialized).abs() < EPS);
        assert!((sched.overlap_factor() - 1.0).abs() < EPS);
        // ops strictly ordered
        for w in sched.ops.windows(2) {
            assert!(w[1].start >= w[0].finish - EPS);
        }
    }

    #[test]
    fn two_streams_overlap_copy_with_compute() {
        let s = spec();
        let mut sim = StreamSim::new(&s);
        // Stream 0 computes for a long time; stream 1 uploads meanwhile.
        sim.kernel(0, 5e-3);
        sim.h2d(1, 1 << 20); // ≈ 350 µs ≪ 5 ms
        let sched = sim.run();
        assert!(sched.makespan < sched.serialized - EPS, "no overlap achieved");
        // Both started at 0.
        assert!(sched.ops[0].start.abs() < EPS);
        assert!(sched.ops[1].start.abs() < EPS);
    }

    #[test]
    fn gt200_serializes_two_copies() {
        let s = spec();
        let mut sim = StreamSim::new(&s);
        sim.h2d(0, 1 << 20);
        sim.d2h(1, 1 << 20);
        let sched = sim.run();
        // One copy engine: the second copy waits for the first.
        assert!((sched.makespan - sched.serialized).abs() < EPS);
        assert!(sched.ops[1].start >= sched.ops[0].finish - EPS);
    }

    #[test]
    fn fermi_runs_two_copies_concurrently() {
        let s = spec();
        let mut sim = StreamSim::with_engines(&s, EngineConfig::fermi());
        sim.h2d(0, 1 << 20);
        sim.d2h(1, 1 << 20);
        let sched = sim.run();
        assert!(sched.makespan < sched.serialized - EPS);
        assert!(sched.ops[1].start.abs() < EPS, "second copy should start immediately");
    }

    #[test]
    fn gt200_serializes_kernels() {
        let s = spec();
        let mut sim = StreamSim::new(&s);
        sim.kernel(0, 1e-3);
        sim.kernel(1, 1e-3);
        let sched = sim.run();
        assert!(sched.ops[1].start >= sched.ops[0].finish - EPS);
    }

    #[test]
    fn events_order_across_streams() {
        let s = spec();
        let mut sim = StreamSim::new(&s);
        let ev = sim.new_event();
        sim.h2d(0, 1 << 20);
        sim.record_event(0, ev);
        sim.wait_event(1, ev);
        sim.kernel(1, 1e-3);
        let sched = sim.run();
        let kernel = sched.ops.last().unwrap();
        let copy = &sched.ops[0];
        assert!(kernel.start >= copy.finish - EPS, "kernel must wait for the upload");
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn wait_before_record_panics() {
        let s = spec();
        let mut sim = StreamSim::new(&s);
        let ev = sim.new_event();
        sim.wait_event(0, ev);
        sim.run();
    }

    #[test]
    fn makespan_bounds() {
        // makespan ≤ serialized; makespan ≥ each engine's busy time.
        let s = spec();
        let mut sim = StreamSim::new(&s);
        for st in 0..4usize {
            sim.h2d(st, 1 << 18);
            sim.kernel(st, 2e-4);
            sim.d2h(st, 1 << 14);
        }
        let sched = sim.run();
        assert!(sched.makespan <= sched.serialized + EPS);
        assert!(sched.makespan >= sched.copy_busy - EPS);
        assert!(sched.makespan >= sched.compute_busy - EPS);
    }

    #[test]
    fn per_stream_ops_never_overlap() {
        let s = spec();
        let mut sim = StreamSim::new(&s);
        for st in 0..3usize {
            sim.h2d(st, 1 << 19).kernel(st, 1e-4).d2h(st, 1 << 12);
        }
        let sched = sim.run();
        for stream in 0..3usize {
            let mine: Vec<_> = sched.ops.iter().filter(|o| o.stream == stream).collect();
            for w in mine.windows(2) {
                assert!(w[1].start >= w[0].finish - EPS, "stream {stream} overlapped itself");
            }
        }
    }

    #[test]
    fn gantt_renders_all_streams() {
        let s = spec();
        let mut sim = StreamSim::new(&s);
        sim.h2d(0, 1 << 20).kernel(0, 1e-3);
        sim.h2d(1, 1 << 20).kernel(1, 1e-3);
        let g = sim.run().gantt_ascii(40);
        assert!(g.contains("s0 |"));
        assert!(g.contains("s1 |"));
        assert!(g.contains('U') && g.contains('K'));
        assert!(g.contains("overlap"));
    }

    #[test]
    fn chrome_trace_lowers_spans_per_stream() {
        let s = spec();
        let mut sim = StreamSim::with_engines(&s, EngineConfig::fermi());
        let ev = sim.new_event();
        sim.h2d(0, 1 << 20);
        sim.record_event(0, ev);
        sim.wait_event(1, ev);
        sim.kernel(1, 1e-3);
        sim.d2h(1, 1 << 16);
        let json = sim.run().chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"stream 0\""));
        assert!(json.contains("\"name\":\"stream 1\""));
        assert!(json.contains("\"name\":\"H2D\"") && json.contains("\"cat\":\"copy\""));
        assert!(json.contains("\"name\":\"Kernel\"") && json.contains("\"cat\":\"compute\""));
        assert!(json.contains("\"name\":\"D2H\""));
        // Event bookkeeping is omitted, and spans carry ph:"X".
        assert!(!json.contains("RecordEvent") && !json.contains("WaitEvent"));
        assert!(json.contains("\"ph\":\"X\""));
        // Deterministic: same schedule, same bytes.
        assert_eq!(json, sim.run().chrome_trace_json());
    }

    #[test]
    fn fused_iteration_gt200_equals_serialized() {
        let s = spec();
        let lanes = [
            LaneIo { h2d_bytes: 64, d2h_bytes: 4096 },
            LaneIo { h2d_bytes: 128, d2h_bytes: 8192 },
            LaneIo { h2d_bytes: 32, d2h_bytes: 2048 },
        ];
        let sched = price_fused_iteration(&s, &lanes, &[1e-3]);
        // One copy engine + a dependent chain: nothing can overlap.
        assert!((sched.makespan - sched.serialized).abs() < EPS);
        // Serialized = per-lane transfers + the kernel with its overhead.
        let expect: f64 = lanes
            .iter()
            .map(|l| {
                crate::timing::transfer_seconds(&s, l.h2d_bytes)
                    + crate::timing::transfer_seconds(&s, l.d2h_bytes)
            })
            .sum::<f64>()
            + 1e-3
            + s.launch_overhead_s;
        assert!((sched.serialized - expect).abs() < EPS);
    }

    #[test]
    fn fused_iteration_fermi_overlaps_per_lane_copies() {
        let s = spec().with_engines(EngineConfig::fermi());
        let lanes = [
            LaneIo { h2d_bytes: 1 << 16, d2h_bytes: 1 << 16 },
            LaneIo { h2d_bytes: 1 << 16, d2h_bytes: 1 << 16 },
        ];
        let sched = price_fused_iteration(&s, &lanes, &[5e-4]);
        assert!(
            sched.makespan < sched.serialized - EPS,
            "dual copy engines must overlap the two lanes' transfers"
        );
        // The kernel still waits for both uploads.
        let kernel = sched.ops.iter().find(|o| matches!(o.op, StreamOp::Kernel { .. })).unwrap();
        let last_upload = sched
            .ops
            .iter()
            .filter(|o| matches!(o.op, StreamOp::H2D { .. }))
            .map(|o| o.finish)
            .fold(0.0, f64::max);
        assert!(kernel.start >= last_upload - EPS);
    }

    #[test]
    fn fused_iteration_kernel_chain_serializes() {
        // Eval kernel then argmin kernel: same stream, strict order, one
        // launch overhead each.
        let s = spec();
        let lanes = [LaneIo { h2d_bytes: 64, d2h_bytes: 8 }];
        let sched = price_fused_iteration(&s, &lanes, &[1e-3, 1e-5]);
        let kernels: Vec<_> =
            sched.ops.iter().filter(|o| matches!(o.op, StreamOp::Kernel { .. })).collect();
        assert_eq!(kernels.len(), 2);
        assert!(kernels[1].start >= kernels[0].finish - EPS);
        let readback = sched.ops.iter().rfind(|o| matches!(o.op, StreamOp::D2H { .. })).unwrap();
        assert!(readback.start >= kernels[1].finish - EPS, "readback waits for the reduction");
    }

    #[test]
    #[should_panic(expected = "empty fused iteration")]
    fn fused_iteration_rejects_empty_batches() {
        let _ = price_fused_iteration(&spec(), &[], &[1e-3]);
    }

    #[test]
    fn kernel_duration_includes_launch_overhead() {
        let s = spec();
        let mut sim = StreamSim::new(&s);
        sim.kernel(0, 1e-3);
        let sched = sim.run();
        assert!((sched.makespan - (1e-3 + s.launch_overhead_s)).abs() < EPS);
    }

    #[test]
    fn span_of_one_matches_fused_iteration() {
        let s = spec();
        let lanes =
            [LaneIo { h2d_bytes: 64, d2h_bytes: 4096 }, LaneIo { h2d_bytes: 128, d2h_bytes: 8192 }];
        let kernels = [1e-3, 1e-5];
        let single = price_fused_iteration(&s, &lanes, &kernels);
        let span = price_fused_span(&s, &lanes, &kernels, 1, LaunchMode::PerIteration);
        assert!((span.makespan - single.makespan).abs() < EPS);
        assert!((span.serialized - single.serialized).abs() < EPS);
    }

    #[test]
    fn persistent_span_charges_launch_overhead_once() {
        // Kernel-dominated shape on GT200: transfers (≈12 µs) hide under
        // the 1 ms kernel chain, so the kernel chain is the critical
        // path and residency saves exactly (n-1)·kernels·overhead.
        let s = spec();
        let lanes = [LaneIo { h2d_bytes: 8, d2h_bytes: 8 }];
        let kernels = [1e-3, 1e-5];
        let n = 5;
        let per = price_fused_span(&s, &lanes, &kernels, n, LaunchMode::PerIteration);
        let single = price_fused_iteration(&s, &lanes, &kernels);
        assert!(
            per.makespan < n as f64 * single.makespan - EPS,
            "even GT200 overlaps the next upload against the current kernel"
        );
        let resident = price_fused_span(&s, &lanes, &kernels, n, LaunchMode::PersistentSpan);
        let saved = (n - 1) as f64 * kernels.len() as f64 * s.launch_overhead_s;
        assert!((per.makespan - resident.makespan - saved).abs() < EPS);
        assert!((per.serialized - resident.serialized - saved).abs() < EPS);
    }

    #[test]
    fn fermi_span_pipelines_iterations() {
        let s = spec().with_engines(EngineConfig::fermi());
        let lanes = [LaneIo { h2d_bytes: 1 << 16, d2h_bytes: 1 << 16 }; 2];
        let kernels = [5e-4];
        let n = 3;
        let single = price_fused_iteration(&s, &lanes, &kernels);
        let span = price_fused_span(&s, &lanes, &kernels, n, LaunchMode::PerIteration);
        assert!(
            span.makespan < n as f64 * single.makespan - EPS,
            "cross-iteration pipelining must beat {} back-to-back iterations: {} vs {}",
            n,
            span.makespan,
            n as f64 * single.makespan
        );
        let resident = price_fused_span(&s, &lanes, &kernels, n, LaunchMode::PersistentSpan);
        assert!(resident.makespan < span.makespan + EPS, "residency never hurts");
    }

    #[test]
    fn double_buffered_uploads_gate_on_buffer_release_not_d2h() {
        let s = spec().with_engines(EngineConfig::fermi());
        let lanes = [LaneIo { h2d_bytes: 1 << 16, d2h_bytes: 1 << 18 }];
        let sched = price_fused_span(&s, &lanes, &[5e-4], 3, LaunchMode::PerIteration);
        let uploads: Vec<_> =
            sched.ops.iter().filter(|o| matches!(o.op, StreamOp::H2D { .. })).collect();
        let kernels: Vec<_> =
            sched.ops.iter().filter(|o| matches!(o.op, StreamOp::Kernel { .. })).collect();
        let downloads: Vec<_> =
            sched.ops.iter().filter(|o| matches!(o.op, StreamOp::D2H { .. })).collect();
        assert_eq!((uploads.len(), kernels.len(), downloads.len()), (3, 3, 3));
        // Iteration 1's upload starts before iteration 0's readback
        // finishes — gated on the kernel, not the D2H.
        assert!(uploads[1].start < downloads[0].finish - EPS);
        // Iteration 2's upload waits for buffer release: iteration 0's
        // kernel completion.
        assert!(uploads[2].start >= kernels[0].finish - EPS);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn span_rejects_zero_iterations() {
        let lanes = [LaneIo { h2d_bytes: 64, d2h_bytes: 64 }];
        let _ = price_fused_span(&spec(), &lanes, &[1e-3], 0, LaunchMode::PerIteration);
    }
}
