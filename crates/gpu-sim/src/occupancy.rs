//! CUDA-occupancy-calculator clone: how many blocks of a given shape fit
//! on one SM, and how well the resulting warp population hides latency.
//! This is the quantity the paper's §IV.C invokes ("the number of threads
//! per block is not enough to fully cover the memory access latency") and
//! §IV.D credits for the 2-Hamming speedups ("GPU can take full advantage
//! of the multiprocessors occupancy").

use crate::dim::LaunchConfig;
use crate::spec::DeviceSpec;

/// Residency and utilization of one launch on one device.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Occupancy {
    /// Blocks resident per SM (the CUDA occupancy-calculator output).
    pub blocks_per_sm: u32,
    /// Warps resident per SM under that residency.
    pub warps_per_sm: u32,
    /// `warps_per_sm / max_warps_per_sm`, the usual occupancy metric.
    pub occupancy: f64,
    /// Scheduling waves needed to run the whole grid.
    pub waves: u64,
    /// SMs actually used in the first wave (< SM count for tiny grids —
    /// the Table I regime).
    pub sms_used: u32,
    /// Which hardware limit bounded the residency.
    pub limited_by: Limit,
}

/// The hardware resource that capped block residency.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Limit {
    /// Max resident blocks per SM.
    Blocks,
    /// Max resident threads (or warps) per SM.
    Threads,
    /// Shared-memory capacity.
    SharedMem,
    /// The grid itself has fewer blocks than one full wave.
    GridSize,
}

/// Compute residency for `cfg` on `spec`.
///
/// # Panics
/// Panics if the block shape itself is illegal for the device (more
/// threads per block than the hardware maximum, or a shared-memory
/// request exceeding one SM).
pub fn occupancy(spec: &DeviceSpec, cfg: &LaunchConfig) -> Occupancy {
    let bs = cfg.block_threads();
    assert!(bs >= 1, "empty blocks are not a launch");
    assert!(
        bs <= spec.max_threads_per_block,
        "{} threads/block exceeds device limit {}",
        bs,
        spec.max_threads_per_block
    );
    assert!(
        cfg.shared_words <= spec.shared_words_per_sm,
        "shared request {} words exceeds SM capacity {}",
        cfg.shared_words,
        spec.shared_words_per_sm
    );

    let wpb = spec.warps_per_block(bs);
    let by_blocks = spec.max_blocks_per_sm;
    let by_threads = spec.max_threads_per_sm / bs;
    let by_warps = spec.max_warps_per_sm / wpb;
    let by_shared = spec.shared_words_per_sm.checked_div(cfg.shared_words).unwrap_or(u32::MAX);

    let mut r = by_blocks.min(by_threads).min(by_warps).min(by_shared);
    let mut limited_by = if r == by_shared && cfg.shared_words > 0 {
        Limit::SharedMem
    } else if r == by_threads || r == by_warps {
        Limit::Threads
    } else {
        Limit::Blocks
    };
    // A block that fits nowhere cannot launch; the asserts above keep
    // r >= 1 for all legal configurations.
    assert!(r >= 1, "block does not fit on an SM");

    let blocks = cfg.grid_blocks();
    let full_wave = spec.sm_count as u64 * r as u64;
    if blocks < full_wave {
        // The grid cannot even fill one wave: residency is limited by the
        // grid, spread blocks round-robin across SMs.
        let sms_used = blocks.min(spec.sm_count as u64) as u32;
        let per_sm = blocks.div_ceil(sms_used.max(1) as u64) as u32;
        if per_sm < r {
            r = per_sm.max(1);
            limited_by = Limit::GridSize;
        }
        let warps = r * wpb;
        return Occupancy {
            blocks_per_sm: r,
            warps_per_sm: warps,
            occupancy: warps as f64 / spec.max_warps_per_sm as f64,
            waves: 1,
            sms_used,
            limited_by,
        };
    }

    let warps = (r * wpb).min(spec.max_warps_per_sm);
    Occupancy {
        blocks_per_sm: r,
        warps_per_sm: warps,
        occupancy: warps as f64 / spec.max_warps_per_sm as f64,
        waves: blocks.div_ceil(full_wave),
        sms_used: spec.sm_count,
        limited_by,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::LaunchConfig;

    fn gtx() -> DeviceSpec {
        DeviceSpec::gtx280()
    }

    #[test]
    fn full_residency_128_thread_blocks() {
        // 128-thread blocks: 8 blocks/SM = 1024 threads = 32 warps (full).
        let cfg = LaunchConfig::cover_1d(260_130, 128);
        let occ = occupancy(&gtx(), &cfg);
        assert_eq!(occ.blocks_per_sm, 8);
        assert_eq!(occ.warps_per_sm, 32);
        assert!((occ.occupancy - 1.0).abs() < 1e-9);
        assert_eq!(occ.sms_used, 30);
        // 2033 blocks over 240 resident → 9 waves.
        assert_eq!(occ.waves, 2033u64.div_ceil(240));
    }

    #[test]
    fn tiny_grid_is_gridsize_limited() {
        // Table I regime: 73 moves in one block.
        let cfg = LaunchConfig::cover_1d(73, 128);
        let occ = occupancy(&gtx(), &cfg);
        assert_eq!(occ.sms_used, 1);
        assert_eq!(occ.blocks_per_sm, 1);
        assert_eq!(occ.waves, 1);
        assert_eq!(occ.limited_by, Limit::GridSize);
        assert!(occ.occupancy < 0.2);
    }

    #[test]
    fn midsize_grid_partial_waves() {
        // 2628 moves (2-Hamming n=73) in 128-thread blocks = 21 blocks.
        let cfg = LaunchConfig::cover_1d(2628, 128);
        let occ = occupancy(&gtx(), &cfg);
        assert_eq!(occ.sms_used, 21);
        assert_eq!(occ.blocks_per_sm, 1);
        assert_eq!(occ.warps_per_sm, 4);
        assert_eq!(occ.waves, 1);
    }

    #[test]
    fn big_blocks_limited_by_threads() {
        let cfg = LaunchConfig::cover_1d(1 << 20, 512);
        let occ = occupancy(&gtx(), &cfg);
        // 1024 / 512 = 2 blocks/SM.
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limited_by, Limit::Threads);
    }

    #[test]
    fn shared_memory_limits_residency() {
        // 2048 words/block on a 4096-word SM → 2 blocks/SM.
        let cfg = LaunchConfig::cover_1d(1 << 20, 64).with_shared_words(2048);
        let occ = occupancy(&gtx(), &cfg);
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limited_by, Limit::SharedMem);
    }

    #[test]
    #[should_panic(expected = "exceeds device limit")]
    fn oversized_block_rejected() {
        let cfg = LaunchConfig::cover_1d(2048, 1024); // > 512 on GT200
        let _ = occupancy(&gtx(), &cfg);
    }

    #[test]
    #[should_panic(expected = "exceeds SM capacity")]
    fn oversized_shared_rejected() {
        let cfg = LaunchConfig::cover_1d(128, 128).with_shared_words(1 << 20);
        let _ = occupancy(&gtx(), &cfg);
    }
}
