//! Grid/block geometry, mirroring the CUDA execution configuration
//! (paper §III.A: "Blocks can be organized into a one-dimensional or
//! two-dimensional grid of thread blocks, and threads inside a block are
//! grouped in a similar way").

/// A 3-component extent or index, like CUDA's `dim3`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Dim3 {
    /// Fastest-varying component.
    pub x: u32,
    /// Middle component.
    pub y: u32,
    /// Slowest-varying component.
    pub z: u32,
}

impl Dim3 {
    /// 1-D extent `(x, 1, 1)`.
    #[inline]
    pub const fn x(x: u32) -> Self {
        Self { x, y: 1, z: 1 }
    }

    /// 2-D extent `(x, y, 1)`.
    #[inline]
    pub const fn xy(x: u32, y: u32) -> Self {
        Self { x, y, z: 1 }
    }

    /// Full 3-D extent.
    #[inline]
    pub const fn xyz(x: u32, y: u32, z: u32) -> Self {
        Self { x, y, z }
    }

    /// Total number of elements (`x·y·z`).
    #[inline]
    pub const fn count(&self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }

    /// Linearize an index within this extent (x fastest).
    #[inline]
    pub const fn linear(&self, idx: Dim3) -> u64 {
        (idx.z as u64 * self.y as u64 + idx.y as u64) * self.x as u64 + idx.x as u64
    }

    /// Inverse of [`linear`](Self::linear).
    #[inline]
    pub const fn delinearize(&self, lin: u64) -> Dim3 {
        let x = (lin % self.x as u64) as u32;
        let rest = lin / self.x as u64;
        let y = (rest % self.y as u64) as u32;
        let z = (rest / self.y as u64) as u32;
        Dim3 { x, y, z }
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Self {
        Dim3::x(x)
    }
}

/// A kernel launch configuration: grid of blocks × block of threads,
/// plus the per-block shared-memory request (in 32-bit words).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of blocks in the grid.
    pub grid: Dim3,
    /// Number of threads per block.
    pub block: Dim3,
    /// Dynamic shared memory per block, in 32-bit words.
    pub shared_words: u32,
}

impl LaunchConfig {
    /// 1-D launch covering at least `total` threads with blocks of
    /// `block_size` threads (the idiom of the paper's Figs. 7/9/10:
    /// `⌈N / blockDim⌉` blocks, guard `if (move_index < N)`).
    pub fn cover_1d(total: u64, block_size: u32) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let blocks = total.div_ceil(block_size as u64);
        assert!(blocks <= u32::MAX as u64, "grid too large: {blocks} blocks");
        Self { grid: Dim3::x(blocks.max(1) as u32), block: Dim3::x(block_size), shared_words: 0 }
    }

    /// With a dynamic shared-memory request (in 32-bit words).
    pub fn with_shared_words(mut self, words: u32) -> Self {
        self.shared_words = words;
        self
    }

    /// Threads per block.
    #[inline]
    pub fn block_threads(&self) -> u32 {
        self.block.count() as u32
    }

    /// Blocks in the grid.
    #[inline]
    pub fn grid_blocks(&self) -> u64 {
        self.grid.count()
    }

    /// Total threads launched (including guard-excess threads).
    #[inline]
    pub fn total_threads(&self) -> u64 {
        self.grid_blocks() * self.block_threads() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linearize_roundtrip() {
        let ext = Dim3::xyz(5, 3, 2);
        for lin in 0..ext.count() {
            let idx = ext.delinearize(lin);
            assert!(idx.x < 5 && idx.y < 3 && idx.z < 2);
            assert_eq!(ext.linear(idx), lin);
        }
    }

    #[test]
    fn cover_1d_matches_paper_idiom() {
        // 2628 moves (PPP n=73, 2-Hamming) with 128-thread blocks.
        let cfg = LaunchConfig::cover_1d(2628, 128);
        assert_eq!(cfg.grid_blocks(), 21);
        assert_eq!(cfg.block_threads(), 128);
        assert_eq!(cfg.total_threads(), 2688); // 60 guard threads
                                               // Exact fit.
        let cfg = LaunchConfig::cover_1d(256, 128);
        assert_eq!(cfg.grid_blocks(), 2);
        // Tiny neighborhood still launches one block.
        let cfg = LaunchConfig::cover_1d(0, 128);
        assert_eq!(cfg.grid_blocks(), 1);
    }

    #[test]
    fn dim_conversions() {
        let d: Dim3 = 7u32.into();
        assert_eq!(d, Dim3::x(7));
        assert_eq!(Dim3::xy(4, 4).count(), 16);
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_rejected() {
        let _ = LaunchConfig::cover_1d(10, 0);
    }
}
