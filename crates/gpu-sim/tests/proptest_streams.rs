//! Property-based tests of the stream-overlap invariants behind the
//! fleet's fused-batch pricing (`price_fused_iteration`): a breadth-
//! first schedule's makespan never exceeds the serialized sum of its
//! operations, equals it on the GT200 single-engine layout (where
//! nothing inside one dependent fused iteration can overlap), and is
//! strictly smaller for a two-lane fused batch under a Fermi-class
//! layout (dual copy engines overlap the per-lane transfers).

use lnls_gpu_sim::{
    price_fused_iteration, price_fused_span, transfer_seconds, DeviceSpec, EngineConfig, LaneIo,
    LaunchMode, StreamOp,
};
use proptest::prelude::*;

const EPS: f64 = 1e-12;

fn lanes_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..1 << 20, 0u64..1 << 20), 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any breadth-first fused schedule, any engine layout: the makespan
    /// is bounded by the serialized sum, floored by every engine's busy
    /// time, and the serialized sum is exactly the per-op durations.
    #[test]
    fn makespan_bounded_by_serialized(
        shapes in lanes_strategy(),
        kernel_us in 1u64..5_000,
        argmin_us in 0u64..200,
        copy_engines in 1usize..4,
        kernel_slots in 1usize..4,
    ) {
        let spec = DeviceSpec::gtx280()
            .with_engines(EngineConfig { copy_engines, concurrent_kernels: kernel_slots });
        let lanes: Vec<LaneIo> = shapes
            .iter()
            .map(|&(h2d_bytes, d2h_bytes)| LaneIo { h2d_bytes, d2h_bytes })
            .collect();
        let mut kernels = vec![kernel_us as f64 * 1e-6];
        if argmin_us > 0 {
            kernels.push(argmin_us as f64 * 1e-6);
        }
        let sched = price_fused_iteration(&spec, &lanes, &kernels);

        prop_assert!(sched.makespan <= sched.serialized + EPS);
        prop_assert!(sched.makespan >= sched.copy_busy / copy_engines as f64 - EPS);
        prop_assert!(sched.makespan >= sched.compute_busy - EPS, "one kernel chain");

        let expect_serialized: f64 = lanes
            .iter()
            .map(|l| transfer_seconds(&spec, l.h2d_bytes) + transfer_seconds(&spec, l.d2h_bytes))
            .sum::<f64>()
            + kernels.iter().map(|k| k + spec.launch_overhead_s).sum::<f64>();
        prop_assert!((sched.serialized - expect_serialized).abs() < EPS);
    }

    /// GT200 layout (one DMA queue, serial kernels): a fused iteration
    /// is one dependent chain through single-capacity engines, so the
    /// makespan *equals* the serialized time — the stream model
    /// reproduces the paper-era serial-sum pricing exactly.
    #[test]
    fn gt200_fused_iteration_cannot_overlap(
        shapes in lanes_strategy(),
        kernel_us in 1u64..5_000,
        with_argmin in any::<bool>(),
    ) {
        let spec = DeviceSpec::gtx280();
        prop_assert_eq!(spec.engines, EngineConfig::gt200());
        let lanes: Vec<LaneIo> = shapes
            .iter()
            .map(|&(h2d_bytes, d2h_bytes)| LaneIo { h2d_bytes, d2h_bytes })
            .collect();
        let mut kernels = vec![kernel_us as f64 * 1e-6];
        if with_argmin {
            kernels.push(2e-6);
        }
        let sched = price_fused_iteration(&spec, &lanes, &kernels);
        prop_assert!(
            (sched.makespan - sched.serialized).abs() < EPS,
            "GT200 must serialize the whole fused iteration: makespan {} vs serialized {}",
            sched.makespan,
            sched.serialized
        );
    }

    /// Fermi layout, two fused lanes: the dual copy engines run the two
    /// lanes' uploads (and readbacks) concurrently, so the makespan is
    /// *strictly* below the serialized sum — every transfer carries at
    /// least the PCIe setup latency, so there is always something to
    /// hide.
    #[test]
    fn fermi_two_lane_batch_strictly_overlaps(
        h2d in 0u64..1 << 20,
        d2h in 0u64..1 << 20,
        kernel_us in 1u64..5_000,
    ) {
        let spec = DeviceSpec::gtx280().with_engines(EngineConfig::fermi());
        let lanes = [LaneIo { h2d_bytes: h2d, d2h_bytes: d2h }; 2];
        let sched = price_fused_iteration(&spec, &lanes, &[kernel_us as f64 * 1e-6]);
        prop_assert!(
            sched.makespan < sched.serialized - EPS,
            "two-lane fermi batch must overlap: makespan {} vs serialized {}",
            sched.makespan,
            sched.serialized
        );
        // The overlap is real concurrency, not dropped work: both
        // uploads start before the kernel, both readbacks after it.
        let kernel_start = sched
            .ops
            .iter()
            .find(|o| matches!(o.op, StreamOp::Kernel { .. }))
            .expect("one kernel")
            .start;
        for op in sched.ops.iter().filter(|o| matches!(o.op, StreamOp::H2D { .. })) {
            prop_assert!(op.finish <= kernel_start + EPS);
        }
    }

    /// A multi-iteration span (any engine layout, either launch mode)
    /// never costs more than the same iterations priced back to back:
    /// double-buffered uploads and persistent kernels only relax
    /// constraints. Under `PersistentSpan` the serialized sum drops by
    /// exactly the amortized launch overheads, and the makespan by at
    /// most that plus whatever pipelining hides.
    #[test]
    fn span_makespan_bounded_by_per_iteration_sum(
        shapes in lanes_strategy(),
        kernel_us in 1u64..5_000,
        argmin_us in 0u64..200,
        n in 1usize..6,
        copy_engines in 1usize..4,
        kernel_slots in 1usize..4,
    ) {
        let spec = DeviceSpec::gtx280()
            .with_engines(EngineConfig { copy_engines, concurrent_kernels: kernel_slots });
        let lanes: Vec<LaneIo> = shapes
            .iter()
            .map(|&(h2d_bytes, d2h_bytes)| LaneIo { h2d_bytes, d2h_bytes })
            .collect();
        let mut kernels = vec![kernel_us as f64 * 1e-6];
        if argmin_us > 0 {
            kernels.push(argmin_us as f64 * 1e-6);
        }
        let single = price_fused_iteration(&spec, &lanes, &kernels);
        let per = price_fused_span(&spec, &lanes, &kernels, n, LaunchMode::PerIteration);
        let resident = price_fused_span(&spec, &lanes, &kernels, n, LaunchMode::PersistentSpan);
        let bound = n as f64 * single.makespan;
        prop_assert!(
            per.makespan <= bound + EPS,
            "span must never exceed per-iteration pricing: {} vs {}",
            per.makespan,
            bound
        );
        prop_assert!(resident.makespan <= per.makespan + EPS, "residency never hurts");
        let amortized = (n - 1) as f64 * kernels.len() as f64 * spec.launch_overhead_s;
        prop_assert!((per.serialized - resident.serialized - amortized).abs() < EPS);
        prop_assert!(per.makespan - resident.makespan <= amortized + EPS);
    }

    /// Fermi layout, ≥2 fused lanes, n ≥ 2 iterations: cross-iteration
    /// pipelining is a *strict* win — the next iteration's uploads
    /// always overlap something (kernel, readback, or the other lane's
    /// transfers), so the span beats n back-to-back fused iterations.
    #[test]
    fn fermi_multi_iteration_span_strictly_pipelines(
        h2d in 0u64..1 << 20,
        d2h in 0u64..1 << 20,
        kernel_us in 1u64..5_000,
        n in 2usize..6,
        persistent in any::<bool>(),
    ) {
        let spec = DeviceSpec::gtx280().with_engines(EngineConfig::fermi());
        let lanes = [LaneIo { h2d_bytes: h2d, d2h_bytes: d2h }; 2];
        let kernels = [kernel_us as f64 * 1e-6];
        let mode =
            if persistent { LaunchMode::PersistentSpan } else { LaunchMode::PerIteration };
        let single = price_fused_iteration(&spec, &lanes, &kernels);
        let span = price_fused_span(&spec, &lanes, &kernels, n, mode);
        prop_assert!(
            span.makespan < n as f64 * single.makespan - EPS,
            "a {}-iteration fermi span must strictly pipeline: {} vs {}",
            n,
            span.makespan,
            n as f64 * single.makespan
        );
    }
}
