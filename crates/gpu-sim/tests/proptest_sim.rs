//! Property-based tests of the simulator's invariants: coalescing
//! arithmetic, occupancy limits, grid geometry, reduction correctness,
//! and monotonicity of the timing model.

use lnls_gpu_sim::counting::coalesce;
use lnls_gpu_sim::reduce::{device_min, pack_key, unpack_key};
use lnls_gpu_sim::{occupancy, Device, DeviceSpec, Dim3, ExecMode, LaunchConfig, MemSpace};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Coalescing bounds: between 1 and min(lanes, segments-spanned)
    /// transactions; bytes within [32·trans, 128·trans]; covering at
    /// least every distinct address once.
    #[test]
    fn coalesce_bounds(addrs in prop::collection::vec(0u64..100_000, 1..32)) {
        let (trans, bytes) = coalesce(&addrs, 128);
        prop_assert!(trans >= 1);
        prop_assert!(trans <= addrs.len() as u64);
        prop_assert!(bytes >= 32 * trans);
        prop_assert!(bytes <= 128 * trans);
        // Determinism under permutation.
        let mut rev = addrs.clone();
        rev.reverse();
        prop_assert_eq!(coalesce(&rev, 128), (trans, bytes));
    }

    /// A uniform (same-address) warp access is always one minimal
    /// transaction.
    #[test]
    fn coalesce_uniform(addr in 0u64..1_000_000, lanes in 1usize..32) {
        let addrs = vec![addr; lanes];
        prop_assert_eq!(coalesce(&addrs, 128), (1, 32));
    }

    /// Occupancy never exceeds the hardware limits and always schedules
    /// every block.
    #[test]
    fn occupancy_respects_limits(total in 1u64..5_000_000, bs_exp in 5u32..9, sw in 0u32..4096) {
        let spec = DeviceSpec::gtx280();
        let bs = 1u32 << bs_exp; // 32..256
        let cfg = LaunchConfig::cover_1d(total, bs).with_shared_words(sw);
        let occ = occupancy(&spec, &cfg);
        prop_assert!(occ.blocks_per_sm >= 1);
        prop_assert!(occ.blocks_per_sm <= spec.max_blocks_per_sm);
        prop_assert!(occ.warps_per_sm <= spec.max_warps_per_sm);
        prop_assert!(occ.occupancy > 0.0 && occ.occupancy <= 1.0);
        prop_assert!(occ.sms_used >= 1 && occ.sms_used <= spec.sm_count);
        // Every block is covered by waves × capacity.
        let capacity = occ.waves * spec.sm_count as u64 * occ.blocks_per_sm as u64;
        prop_assert!(capacity >= cfg.grid_blocks());
    }

    /// Dim3 linearization is a bijection.
    #[test]
    fn dim3_linearize_roundtrip(x in 1u32..64, y in 1u32..64, z in 1u32..8, pick in any::<u64>()) {
        let ext = Dim3::xyz(x, y, z);
        let lin = pick % ext.count();
        let idx = ext.delinearize(lin);
        prop_assert_eq!(ext.linear(idx), lin);
    }

    /// pack/unpack round-trips and preserves (fitness, index) order.
    #[test]
    fn pack_key_order(f1 in any::<u32>(), i1 in any::<u32>(), f2 in any::<u32>(), i2 in any::<u32>()) {
        prop_assert_eq!(unpack_key(pack_key(f1, i1)), (f1, i1));
        let lhs = (f1, i1) <= (f2, i2);
        prop_assert_eq!(pack_key(f1, i1) <= pack_key(f2, i2), lhs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The on-device reduction finds the true minimum for arbitrary
    /// contents and sizes (heavier: launches the simulator).
    #[test]
    fn device_min_is_exact(values in prop::collection::vec(any::<u32>(), 1..5000)) {
        let mut dev = Device::new(DeviceSpec::gtx280());
        let keys: Vec<u64> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| pack_key(v, i as u32))
            .collect();
        let expected = keys.iter().copied().min().unwrap();
        let buf = dev.upload_new(&keys, MemSpace::Global, "keys");
        let got = device_min(&mut dev, &buf, keys.len() as u64, 64, ExecMode::Auto);
        prop_assert_eq!(got, expected);
    }
}

/// Random stream programs: scheduling invariants that must hold for any
/// mix of copies and kernels on any engine layout.
mod stream_properties {
    use super::*;
    use lnls_gpu_sim::{EngineConfig, StreamOp, StreamSim};

    #[derive(Debug, Clone)]
    struct RandomOp {
        stream: usize,
        kind: u8,
        bytes: u64,
        kernel_us: u32,
    }

    fn random_ops() -> impl Strategy<Value = Vec<RandomOp>> {
        prop::collection::vec(
            (0usize..4, 0u8..3, 1u64..(1 << 22), 1u32..5_000).prop_map(
                |(stream, kind, bytes, kernel_us)| RandomOp { stream, kind, bytes, kernel_us },
            ),
            1..40,
        )
    }

    fn build(spec: &DeviceSpec, engines: EngineConfig, ops: &[RandomOp]) -> lnls_gpu_sim::Schedule {
        let mut sim = StreamSim::with_engines(spec, engines);
        for op in ops {
            match op.kind {
                0 => sim.h2d(op.stream, op.bytes),
                1 => sim.d2h(op.stream, op.bytes),
                _ => sim.kernel(op.stream, op.kernel_us as f64 * 1e-6),
            };
        }
        sim.run()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Makespan is bounded below by every engine's busy time and the
        /// longest single stream, and above by full serialization.
        #[test]
        fn makespan_sandwich(ops in random_ops()) {
            let spec = DeviceSpec::gtx280();
            let sched = build(&spec, EngineConfig::gt200(), &ops);
            prop_assert!(sched.makespan <= sched.serialized + 1e-9);
            prop_assert!(sched.makespan >= sched.copy_busy - 1e-9);
            prop_assert!(sched.makespan >= sched.compute_busy - 1e-9);
            // per-stream serial time is also a lower bound
            let mut per_stream = std::collections::HashMap::new();
            for op in &sched.ops {
                *per_stream.entry(op.stream).or_insert(0.0f64) += op.finish - op.start;
            }
            for (&stream, &busy) in &per_stream {
                prop_assert!(
                    sched.makespan >= busy - 1e-9,
                    "stream {} busy {} exceeds makespan {}", stream, busy, sched.makespan
                );
            }
        }

        /// Within a stream, operations never overlap and preserve enqueue
        /// order.
        #[test]
        fn streams_are_fifo(ops in random_ops()) {
            let spec = DeviceSpec::gtx280();
            let sched = build(&spec, EngineConfig::gt200(), &ops);
            for stream in 0..4usize {
                let mine: Vec<_> = sched.ops.iter().filter(|o| o.stream == stream).collect();
                for w in mine.windows(2) {
                    prop_assert!(w[1].start >= w[0].finish - 1e-9);
                }
            }
        }

        /// Adding engines never slows a schedule down.
        #[test]
        fn more_engines_monotone(ops in random_ops()) {
            let spec = DeviceSpec::gtx280();
            let gt = build(&spec, EngineConfig::gt200(), &ops);
            let fermi = build(&spec, EngineConfig::fermi(), &ops);
            prop_assert!(fermi.makespan <= gt.makespan + 1e-9);
        }

        /// Durations are conserved: each op's scheduled span equals its
        /// priced duration, and the serialized total is their sum.
        #[test]
        fn durations_conserved(ops in random_ops()) {
            let spec = DeviceSpec::gtx280();
            let sched = build(&spec, EngineConfig::gt200(), &ops);
            let sum: f64 = sched.ops.iter().map(|o| o.finish - o.start).sum();
            prop_assert!((sum - sched.serialized).abs() < 1e-9);
            for op in &sched.ops {
                let d = op.finish - op.start;
                match op.op {
                    StreamOp::Kernel { seconds } => {
                        prop_assert!((d - (seconds + spec.launch_overhead_s)).abs() < 1e-12)
                    }
                    StreamOp::H2D { bytes } | StreamOp::D2H { bytes } => {
                        let t = lnls_gpu_sim::transfer_seconds(&spec, bytes);
                        prop_assert!((d - t).abs() < 1e-12)
                    }
                    _ => {}
                }
            }
        }
    }
}
