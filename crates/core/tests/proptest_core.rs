//! Property-based tests of the framework plumbing: bit strings, Zobrist
//! incrementality, explorer equivalence, and tabu-search invariants.

use lnls_core::problem::{BinaryProblem, IncrementalEval};
use lnls_core::{
    zobrist_table, BitString, Explorer, ParallelCpuExplorer, SearchConfig, SequentialExplorer,
    TabuSearch, TabuStrategy,
};
use lnls_neighborhood::{FlipMove, KHamming, Neighborhood};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Minimize the zero count — a transparent reference problem.
struct ZeroCount(usize);
impl BinaryProblem for ZeroCount {
    fn dim(&self) -> usize {
        self.0
    }
    fn evaluate(&self, s: &BitString) -> i64 {
        self.0 as i64 - s.count_ones() as i64
    }
    fn target_fitness(&self) -> Option<i64> {
        Some(0)
    }
}
impl IncrementalEval for ZeroCount {
    type State = i64;
    fn init_state(&self, s: &BitString) -> i64 {
        self.evaluate(s)
    }
    fn state_fitness(&self, st: &i64) -> i64 {
        *st
    }
    fn neighbor_fitness(&self, st: &mut i64, s: &BitString, mv: &FlipMove) -> i64 {
        mv.bits().iter().fold(*st, |f, &b| f + if s.get(b as usize) { 1 } else { -1 })
    }
    fn apply_move(&self, st: &mut i64, s: &BitString, mv: &FlipMove) {
        *st = self.neighbor_fitness(st, s, mv);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Applying a move twice is the identity on bit strings.
    #[test]
    fn double_apply_is_identity(n in 4usize..200, seed in any::<u64>(), x in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = BitString::random(&mut rng, n);
        let orig = s.clone();
        let k = (x % 4 + 1) as usize;
        let hood = KHamming::new(n, k.min(n));
        let mv = hood.unrank(x % hood.size());
        s.apply(&mv);
        prop_assert_eq!(s.hamming(&orig), mv.k() as u32);
        s.apply(&mv);
        prop_assert_eq!(s, orig);
    }

    /// The incremental Zobrist update equals recomputation.
    #[test]
    fn zobrist_incremental(n in 4usize..200, seed in any::<u64>(), x in any::<u64>()) {
        let table = zobrist_table(n, 99);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = BitString::random(&mut rng, n);
        let mut h = s.zobrist(&table);
        let k = (x % 4 + 1) as usize;
        let hood = KHamming::new(n, k.min(n));
        let mv = hood.unrank(x % hood.size());
        for &b in mv.bits() {
            h ^= table[b as usize];
        }
        s.apply(&mv);
        prop_assert_eq!(s.zobrist(&table), h);
    }

    /// Distinct strings hash differently with overwhelming probability
    /// (sanity for the solution-ring memory).
    #[test]
    fn zobrist_discriminates(n in 8usize..100, seed in any::<u64>(), flip in any::<usize>()) {
        let table = zobrist_table(n, 7);
        let mut rng = StdRng::seed_from_u64(seed);
        let s = BitString::random(&mut rng, n);
        let mut t = s.clone();
        t.flip(flip % n);
        prop_assert_ne!(s.zobrist(&table), t.zobrist(&table));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sequential and parallel explorers produce identical fitness
    /// vectors for arbitrary problems/neighborhoods.
    #[test]
    fn explorer_equivalence(n in 8usize..40, k in 1usize..=3, seed in any::<u64>(), workers in 2usize..6) {
        let p = ZeroCount(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let s = BitString::random(&mut rng, n);
        let mut st = p.init_state(&s);
        let hood = KHamming::new(n, k);
        let mut seq = SequentialExplorer::new(hood);
        let mut par = ParallelCpuExplorer::new(hood, workers);
        let mut a = Vec::new();
        let mut b = Vec::new();
        Explorer::<ZeroCount>::explore(&mut seq, &p, &s, &mut st, &mut a);
        Explorer::<ZeroCount>::explore(&mut par, &p, &s, &mut st, &mut b);
        prop_assert_eq!(a, b);
    }

    /// Tabu search reports internally consistent results for arbitrary
    /// configurations: best fitness matches a re-evaluation, iteration
    /// and eval counts line up, success implies target reached.
    #[test]
    fn tabu_result_invariants(
        n in 6usize..24,
        k in 1usize..=3,
        seed in any::<u64>(),
        iters in 1u64..60,
        strategy in 0usize..3,
    ) {
        let p = ZeroCount(n);
        let hood = KHamming::new(n, k);
        let strategy = match strategy {
            0 => TabuStrategy::SolutionRing { len: 8 },
            1 => TabuStrategy::MoveRing { len: 8 },
            _ => TabuStrategy::Attribute { tenure: 4 },
        };
        let search = TabuSearch {
            config: SearchConfig::budget(iters).with_seed(seed),
            strategy,
            aspiration: true,
            keep_history: true,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let init = BitString::random(&mut rng, n);
        let mut ex = SequentialExplorer::new(hood);
        let r = search.run(&p, &mut ex, init);
        prop_assert_eq!(p.evaluate(&r.best), r.best_fitness);
        prop_assert!(r.iterations <= iters);
        prop_assert_eq!(r.evals, r.iterations * hood.size());
        prop_assert_eq!(r.success, r.best_fitness <= 0);
        let h = r.history.unwrap();
        prop_assert_eq!(h.len() as u64, r.iterations);
        prop_assert!(h.windows(2).all(|w| w[1] <= w[0]));
        // Trajectory pointwise ≥ best-so-far.
        let t = r.trajectory.unwrap();
        prop_assert!(h.iter().zip(&t).all(|(hb, tc)| tc >= hb));
    }
}
