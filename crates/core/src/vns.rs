//! Variable neighborhood search over the 1/2/3-Hamming ladder — the LS
//! heuristic that most directly exercises the paper's thesis, switching
//! to a *larger* neighborhood exactly when the smaller one is exhausted.

use crate::bitstring::BitString;
use crate::explore::Explorer;
use crate::problem::IncrementalEval;
use crate::search::{SearchConfig, SearchResult};
use std::time::Instant;

/// Best-improvement VNS cycling through the supplied explorers (ordered
/// small → large). On improvement it returns to the smallest
/// neighborhood; when every neighborhood fails it stops (a local optimum
/// of the union).
pub struct VariableNeighborhoodSearch {
    /// Generic search knobs (`max_iters` counts accepted moves).
    pub config: SearchConfig,
}

impl VariableNeighborhoodSearch {
    /// VNS with the given budget.
    pub fn new(config: SearchConfig) -> Self {
        Self { config }
    }

    /// Run from `init` over the neighborhood ladder `explorers`.
    pub fn run<P: IncrementalEval>(
        &self,
        problem: &P,
        explorers: &mut [Box<dyn Explorer<P>>],
        init: BitString,
    ) -> SearchResult {
        assert!(!explorers.is_empty(), "VNS needs at least one neighborhood");
        let wall0 = Instant::now();
        let mut s = init;
        let mut state = problem.init_state(&s);
        let mut cur = problem.state_fitness(&state);
        let mut out = Vec::new();
        let mut level = 0usize;
        let mut moves = 0u64;
        let mut evals = 0u64;

        while moves < self.config.max_iters {
            if self.config.target_fitness.is_some_and(|t| cur <= t) {
                break;
            }
            if let Some(limit) = self.config.time_limit {
                if wall0.elapsed() >= limit {
                    break;
                }
            }
            let ex = &mut explorers[level];
            ex.explore(problem, &s, &mut state, &mut out);
            evals += out.len() as u64;
            let (best_idx, &best_f) = out
                .iter()
                .enumerate()
                .min_by_key(|&(i, f)| (*f, i))
                .expect("non-empty neighborhood");
            if best_f < cur {
                let mv = ex.unrank(best_idx as u64);
                problem.apply_move(&mut state, &s, &mv);
                s.apply(&mv);
                ex.committed(problem, &s, &state, &mv);
                cur = best_f;
                moves += 1;
                level = 0; // improvement: restart the ladder
            } else if level + 1 < explorers.len() {
                level += 1; // escalate to the larger neighborhood
            } else {
                break; // local optimum of every neighborhood
            }
        }

        SearchResult {
            best: s,
            best_fitness: cur,
            iterations: moves,
            success: self.config.target_fitness.is_some_and(|t| cur <= t),
            evals,
            wall: wall0.elapsed(),
            book: None,
            backend: format!("vns/{} levels", explorers.len()),
            history: None,
            trajectory: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::SequentialExplorer;
    use crate::problem::testutil::ZeroCount;
    use lnls_neighborhood::{OneHamming, ThreeHamming, TwoHamming};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ladder(n: usize) -> Vec<Box<dyn Explorer<ZeroCount>>> {
        vec![
            Box::new(SequentialExplorer::new(OneHamming::new(n))),
            Box::new(SequentialExplorer::new(TwoHamming::new(n))),
            Box::new(SequentialExplorer::new(ThreeHamming::new(n))),
        ]
    }

    #[test]
    fn vns_solves_zerocount() {
        let n = 20;
        let p = ZeroCount { n };
        let mut rng = StdRng::seed_from_u64(8);
        let init = BitString::random(&mut rng, n);
        let vns = VariableNeighborhoodSearch::new(SearchConfig::budget(1000));
        let r = vns.run(&p, &mut ladder(n), init);
        assert!(r.success);
    }

    #[test]
    fn vns_escalates_on_parity_trap() {
        // A problem where 1- and 2-flip moves cannot improve but a 3-flip
        // can: fitness = |ones − 3| forces weight exactly 3 from weight 0
        // via odd flips; from 0⃗, 1-flip improves though. Use weight 6 →
        // target 3: the 2-flip neighborhood changes weight by {−2, 0, +2},
        // 1-flip by ±1, so build fitness that penalizes intermediate
        // weights: f(w) = 0 if w == 3, 1 if w == 6, 5 otherwise.
        struct Trap {
            n: usize,
        }
        impl crate::problem::BinaryProblem for Trap {
            fn dim(&self) -> usize {
                self.n
            }
            fn evaluate(&self, s: &BitString) -> i64 {
                match s.count_ones() {
                    3 => 0,
                    6 => 1,
                    _ => 5,
                }
            }
            fn target_fitness(&self) -> Option<i64> {
                Some(0)
            }
        }
        impl IncrementalEval for Trap {
            type State = u32;
            fn init_state(&self, s: &BitString) -> u32 {
                s.count_ones()
            }
            fn state_fitness(&self, state: &u32) -> i64 {
                match *state {
                    3 => 0,
                    6 => 1,
                    _ => 5,
                }
            }
            fn neighbor_fitness(
                &self,
                state: &mut u32,
                s: &BitString,
                mv: &lnls_neighborhood::FlipMove,
            ) -> i64 {
                let mut w = *state as i64;
                for &b in mv.bits() {
                    w += if s.get(b as usize) { -1 } else { 1 };
                }
                match w {
                    3 => 0,
                    6 => 1,
                    _ => 5,
                }
            }
            fn apply_move(&self, state: &mut u32, s: &BitString, mv: &lnls_neighborhood::FlipMove) {
                let mut w = *state as i64;
                for &b in mv.bits() {
                    w += if s.get(b as usize) { -1 } else { 1 };
                }
                *state = w as u32;
            }
        }
        let n = 12;
        let p = Trap { n };
        let mut init = BitString::zeros(n);
        for i in 0..6 {
            init.flip(i);
        }
        let mut explorers: Vec<Box<dyn Explorer<Trap>>> = vec![
            Box::new(SequentialExplorer::new(OneHamming::new(n))),
            Box::new(SequentialExplorer::new(TwoHamming::new(n))),
            Box::new(SequentialExplorer::new(ThreeHamming::new(n))),
        ];
        let vns = VariableNeighborhoodSearch::new(SearchConfig::budget(100));
        let r = vns.run(&p, &mut explorers, init);
        // Only the 3-Hamming level can jump 6 → 3 in one move.
        assert!(r.success, "fitness {}", r.best_fitness);
        assert_eq!(r.best.count_ones(), 3);
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn vns_stops_at_union_local_optimum() {
        let n = 10;
        let p = ZeroCount { n };
        // Start at the optimum: no neighborhood can improve; must stop
        // immediately without moves.
        let mut init = BitString::zeros(n);
        for i in 0..n {
            init.flip(i);
        }
        let vns = VariableNeighborhoodSearch::new(SearchConfig::budget(100).with_target(None));
        let r = vns.run(&p, &mut ladder(n), init);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.best_fitness, 0);
    }
}
