//! Packed binary solution encoding (paper §II: "any candidate solution is
//! represented by a vector (or string) of binary values").

use lnls_neighborhood::FlipMove;
use rand::Rng;

/// A fixed-length bit vector packed into `u64` words.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BitString {
    words: Vec<u64>,
    len: usize,
}

impl BitString {
    /// All-zeros string of length `n`.
    pub fn zeros(n: usize) -> Self {
        Self { words: vec![0; n.div_ceil(64)], len: n }
    }

    /// Uniformly random string of length `n`.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Self {
        let mut s = Self::zeros(n);
        for w in &mut s.words {
            *w = rng.gen();
        }
        s.mask_tail();
        s
    }

    /// Build from explicit bits.
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut s = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                s.set(i, true);
            }
        }
        s
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the string has no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Write bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if v {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Flip bit `i`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// Apply a move: flip every bit it names.
    #[inline]
    pub fn apply(&mut self, mv: &FlipMove) {
        for &b in mv.bits() {
            self.flip(b as usize);
        }
    }

    /// The ±1 value conventional for the PPP encoding: bit 0 ↦ +1,
    /// bit 1 ↦ −1.
    #[inline]
    pub fn sign(&self, i: usize) -> i32 {
        1 - 2 * (self.get(i) as i32)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Hamming distance to another string of the same length.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn hamming(&self, other: &Self) -> u32 {
        assert_eq!(self.len, other.len, "hamming distance needs equal lengths");
        self.words.iter().zip(&other.words).map(|(a, b)| (a ^ b).count_ones()).sum()
    }

    /// The packed words (read-only; tail bits beyond `len` are zero).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Incremental Zobrist hash: XOR of `table[i]` over set bits. Combined
    /// with [`FlipMove`], the hash of a neighbor is
    /// `hash ^ table[b]` for each flipped bit — O(k) per candidate.
    pub fn zobrist(&self, table: &[u64]) -> u64 {
        debug_assert!(table.len() >= self.len);
        let mut h = 0u64;
        for (i, t) in table.iter().enumerate().take(self.len) {
            if self.get(i) {
                h ^= t;
            }
        }
        h
    }

    /// Bits as a `Vec<bool>` (tests & display).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }
}

impl core::fmt::Display for BitString {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        const MAX_SHOWN: usize = 96;
        for i in 0..self.len.min(MAX_SHOWN) {
            write!(f, "{}", self.get(i) as u8)?;
        }
        if self.len > MAX_SHOWN {
            write!(f, "…({} bits)", self.len)?;
        }
        Ok(())
    }
}

/// Deterministic Zobrist table for strings of length `n`, derived from a
/// seed with SplitMix64 (stable across platforms and `rand` versions).
pub fn zobrist_table(n: usize, seed: u64) -> Vec<u64> {
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    (0..n).map(|_| next()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn get_set_flip() {
        let mut s = BitString::zeros(100);
        assert_eq!(s.count_ones(), 0);
        s.set(3, true);
        s.set(99, true);
        assert!(s.get(3) && s.get(99) && !s.get(4));
        s.flip(3);
        assert!(!s.get(3));
        assert_eq!(s.count_ones(), 1);
    }

    #[test]
    fn apply_move_flips_exactly_those_bits() {
        let mut s = BitString::zeros(10);
        s.apply(&FlipMove::three(1, 5, 9));
        assert_eq!(s.count_ones(), 3);
        assert!(s.get(1) && s.get(5) && s.get(9));
        s.apply(&FlipMove::three(1, 5, 9));
        assert_eq!(s.count_ones(), 0);
    }

    #[test]
    fn sign_convention() {
        let mut s = BitString::zeros(4);
        assert_eq!(s.sign(0), 1);
        s.flip(0);
        assert_eq!(s.sign(0), -1);
    }

    #[test]
    fn random_is_masked_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = BitString::random(&mut rng, 70);
        // Tail bits beyond len must be zero.
        assert_eq!(a.words()[1] >> 6, 0);
        let mut rng2 = StdRng::seed_from_u64(7);
        let b = BitString::random(&mut rng2, 70);
        assert_eq!(a, b);
    }

    #[test]
    fn hamming_distance() {
        let mut a = BitString::zeros(130);
        let mut b = BitString::zeros(130);
        assert_eq!(a.hamming(&b), 0);
        a.flip(0);
        a.flip(64);
        b.flip(129);
        assert_eq!(a.hamming(&b), 3);
        b.flip(0);
        assert_eq!(a.hamming(&b), 2);
    }

    #[test]
    fn zobrist_is_incremental() {
        let table = zobrist_table(50, 42);
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = BitString::random(&mut rng, 50);
        let h = s.zobrist(&table);
        let mv = FlipMove::two(7, 31);
        let predicted = h ^ table[7] ^ table[31];
        s.apply(&mv);
        assert_eq!(s.zobrist(&table), predicted);
    }

    #[test]
    fn zobrist_table_is_stable() {
        // Pinned values: the table must never change across releases
        // (solution-ring tabu reproducibility depends on it).
        let t = zobrist_table(2, 0);
        assert_eq!(t, zobrist_table(2, 0));
        assert_ne!(t[0], t[1]);
        let u = zobrist_table(2, 1);
        assert_ne!(t[0], u[0]);
    }

    #[test]
    fn display_truncates() {
        let s = BitString::zeros(200);
        let shown = s.to_string();
        assert!(shown.contains("…(200 bits)"));
    }
}
