//! Simulated annealing — one of the "common LS heuristics of the
//! literature" the paper's introduction enumerates. SA samples *random*
//! neighbors instead of sweeping the whole neighborhood, which makes it
//! the natural consumer of the unranking functions as samplers: drawing a
//! uniform move index and unranking it yields a uniform k-flip move
//! without rejection.

use crate::bitstring::BitString;
use crate::problem::IncrementalEval;
use crate::search::{SearchConfig, SearchResult};
use lnls_neighborhood::Neighborhood;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Geometric-cooling simulated annealing.
pub struct SimulatedAnnealing<N: Neighborhood> {
    /// Generic search knobs (`max_iters` counts proposed moves).
    pub config: SearchConfig,
    /// Neighborhood sampled for proposals.
    pub hood: N,
    /// Initial temperature.
    pub t0: f64,
    /// Geometric cooling factor per step (0 < alpha < 1).
    pub alpha: f64,
    /// Steps between cooling events.
    pub steps_per_temp: u64,
}

impl<N: Neighborhood> SimulatedAnnealing<N> {
    /// A standard configuration: `t0` scaled to the problem, cooling 0.999.
    pub fn new(config: SearchConfig, hood: N, t0: f64) -> Self {
        Self { config, hood, t0, alpha: 0.999, steps_per_temp: 1 }
    }

    /// Run from `init`.
    pub fn run<P: IncrementalEval>(&self, problem: &P, init: BitString) -> SearchResult {
        let wall0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let m = self.hood.size();
        let mut s = init;
        let mut state = problem.init_state(&s);
        let mut cur = problem.state_fitness(&state);
        let mut best = s.clone();
        let mut best_fitness = cur;
        let mut temp = self.t0.max(f64::MIN_POSITIVE);
        let mut evals = 0u64;
        let mut iterations = 0u64;

        while iterations < self.config.max_iters {
            if self.config.target_fitness.is_some_and(|t| best_fitness <= t) {
                break;
            }
            if let Some(limit) = self.config.time_limit {
                if wall0.elapsed() >= limit {
                    break;
                }
            }
            iterations += 1;
            // Uniform neighbor via unranking — no rejection sampling.
            let idx = rng.gen_range(0..m);
            let mv = self.hood.unrank(idx);
            let f = problem.neighbor_fitness(&mut state, &s, &mv);
            evals += 1;
            let delta = f - cur;
            let accept = delta <= 0 || {
                let p = (-(delta as f64) / temp).exp();
                rng.gen::<f64>() < p
            };
            if accept {
                problem.apply_move(&mut state, &s, &mv);
                s.apply(&mv);
                cur = f;
                if cur < best_fitness {
                    best_fitness = cur;
                    best = s.clone();
                }
            }
            if iterations.is_multiple_of(self.steps_per_temp) {
                temp = (temp * self.alpha).max(1e-12);
            }
        }

        SearchResult {
            best,
            best_fitness,
            iterations,
            success: self.config.target_fitness.is_some_and(|t| best_fitness <= t),
            evals,
            wall: wall0.elapsed(),
            book: None,
            backend: format!("sa/{}", self.hood.name()),
            history: None,
            trajectory: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::testutil::ZeroCount;
    use lnls_neighborhood::{OneHamming, TwoHamming};

    #[test]
    fn sa_solves_zerocount() {
        let p = ZeroCount { n: 32 };
        let mut rng = StdRng::seed_from_u64(1);
        let init = BitString::random(&mut rng, 32);
        let sa = SimulatedAnnealing::new(
            SearchConfig::budget(50_000).with_seed(2),
            OneHamming::new(32),
            2.0,
        );
        let r = sa.run(&p, init);
        assert!(r.success, "fitness {}", r.best_fitness);
    }

    #[test]
    fn sa_is_deterministic_per_seed() {
        let p = ZeroCount { n: 24 };
        let mut rng = StdRng::seed_from_u64(9);
        let init = BitString::random(&mut rng, 24);
        let run = |seed| {
            let sa = SimulatedAnnealing::new(
                SearchConfig { max_iters: 500, target_fitness: None, time_limit: None, seed },
                TwoHamming::new(24),
                1.5,
            );
            sa.run(&p, init.clone()).best_fitness
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn zero_temperature_behaves_greedily() {
        // With t0 ≈ 0 only improving/equal moves are accepted: fitness
        // must be monotone non-increasing, hence final ≤ initial.
        let p = ZeroCount { n: 40 };
        let mut rng = StdRng::seed_from_u64(3);
        let init = BitString::random(&mut rng, 40);
        let init_fitness = {
            use crate::problem::BinaryProblem;
            p.evaluate(&init)
        };
        let sa = SimulatedAnnealing::new(
            SearchConfig::budget(5_000).with_seed(4),
            OneHamming::new(40),
            1e-9,
        );
        let r = sa.run(&p, init);
        assert!(r.best_fitness <= init_fitness);
    }
}
