//! Simulated annealing — one of the "common LS heuristics of the
//! literature" the paper's introduction enumerates. SA samples *random*
//! neighbors instead of sweeping the whole neighborhood, which makes it
//! the natural consumer of the unranking functions as samplers: drawing a
//! uniform move index and unranking it yields a uniform k-flip move
//! without rejection.
//!
//! Like tabu search, the walk is driven through a resumable cursor
//! ([`AnnealCursor`], a [`SearchCursor`]): [`SimulatedAnnealing::run`]
//! is implemented on top of it, so a cursor stepped in quanta of any
//! size makes bit-for-bit the moves an uninterrupted run makes —
//! temperature schedule, RNG stream and all.

use crate::bitstring::BitString;
use crate::cursor::SearchCursor;
use crate::problem::IncrementalEval;
use crate::search::{SearchConfig, SearchResult};
use lnls_neighborhood::Neighborhood;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Geometric-cooling simulated annealing.
pub struct SimulatedAnnealing<N: Neighborhood> {
    /// Generic search knobs (`max_iters` counts proposed moves).
    pub config: SearchConfig,
    /// Neighborhood sampled for proposals.
    pub hood: N,
    /// Initial temperature.
    pub t0: f64,
    /// Geometric cooling factor per step (0 < alpha < 1).
    pub alpha: f64,
    /// Steps between cooling events.
    pub steps_per_temp: u64,
}

impl<N: Neighborhood> SimulatedAnnealing<N> {
    /// A standard configuration: `t0` scaled to the problem, cooling 0.999.
    pub fn new(config: SearchConfig, hood: N, t0: f64) -> Self {
        Self { config, hood, t0, alpha: 0.999, steps_per_temp: 1 }
    }

    /// Build a resumable [`AnnealCursor`] positioned at `init`.
    ///
    /// The cursor owns every piece of loop-carried state — RNG stream
    /// and temperature included — so the walk can be stepped in quanta,
    /// snapshotted mid-flight, and resumed without changing a single
    /// accept/reject decision.
    pub fn cursor<P: IncrementalEval>(&self, problem: &P, init: BitString) -> AnnealCursor<P, N>
    where
        N: Clone,
    {
        assert_eq!(init.len(), problem.dim(), "initial solution has wrong length");
        let s = init;
        let state = problem.init_state(&s);
        let cur = problem.state_fitness(&state);
        AnnealCursor {
            max_iters: self.config.max_iters,
            target: self.config.target_fitness,
            hood: self.hood.clone(),
            alpha: self.alpha,
            steps_per_temp: self.steps_per_temp,
            rng: StdRng::seed_from_u64(self.config.seed),
            best: s.clone(),
            best_fitness: cur,
            s,
            state,
            cur,
            temp: self.t0.max(f64::MIN_POSITIVE),
            iterations: 0,
            evals: 0,
        }
    }

    /// Run from `init`.
    pub fn run<P: IncrementalEval>(&self, problem: &P, init: BitString) -> SearchResult
    where
        N: Clone,
    {
        let wall0 = Instant::now();
        let mut cursor = self.cursor(problem, init);
        loop {
            if let Some(limit) = self.config.time_limit {
                if wall0.elapsed() >= limit {
                    break;
                }
            }
            if cursor.step_batch(problem, 1) == 0 {
                break;
            }
        }
        cursor.into_result(wall0.elapsed(), self.hood.name())
    }
}

/// The loop-carried state of one simulated-annealing walk, stepped
/// externally. Produced by [`SimulatedAnnealing::cursor`]; one step is
/// one proposed move (sample, evaluate, accept/reject, cool).
pub struct AnnealCursor<P: IncrementalEval, N: Neighborhood> {
    max_iters: u64,
    target: Option<i64>,
    hood: N,
    alpha: f64,
    steps_per_temp: u64,
    rng: StdRng,
    s: BitString,
    state: P::State,
    cur: i64,
    best: BitString,
    best_fitness: i64,
    temp: f64,
    iterations: u64,
    evals: u64,
}

impl<P: IncrementalEval, N: Neighborhood + Clone> Clone for AnnealCursor<P, N> {
    fn clone(&self) -> Self {
        Self {
            max_iters: self.max_iters,
            target: self.target,
            hood: self.hood.clone(),
            alpha: self.alpha,
            steps_per_temp: self.steps_per_temp,
            rng: self.rng.clone(),
            s: self.s.clone(),
            state: self.state.clone(),
            cur: self.cur,
            best: self.best.clone(),
            best_fitness: self.best_fitness,
            temp: self.temp,
            iterations: self.iterations,
            evals: self.evals,
        }
    }
}

impl<P: IncrementalEval, N: Neighborhood + Clone> AnnealCursor<P, N> {
    /// Current solution.
    pub fn current(&self) -> &BitString {
        &self.s
    }

    /// The neighborhood this walk samples from.
    pub fn hood(&self) -> &N {
        &self.hood
    }

    /// Best solution seen so far.
    pub fn best_solution(&self) -> &BitString {
        &self.best
    }

    /// Current temperature.
    pub fn temperature(&self) -> f64 {
        self.temp
    }

    /// Neighbor evaluations consumed so far.
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// Byte-level snapshot of the walk (hand-rolled; see
    /// [`crate::persist`]). The incremental state is left out and
    /// rebuilt from the problem by
    /// [`read_persisted`](Self::read_persisted).
    pub fn persist(&self, out: &mut Vec<u8>)
    where
        N: crate::persist::Persist,
    {
        use crate::persist::Persist;
        self.max_iters.write(out);
        self.target.write(out);
        self.hood.write(out);
        self.alpha.write(out);
        self.steps_per_temp.write(out);
        self.rng.write(out);
        self.s.write(out);
        self.cur.write(out);
        self.best.write(out);
        self.best_fitness.write(out);
        self.temp.write(out);
        self.iterations.write(out);
        self.evals.write(out);
    }

    /// Rebuild a walk captured by [`persist`](Self::persist). `problem`
    /// must be the instance the walk ran on — the rebuilt incremental
    /// state is cross-checked against the recorded fitness.
    pub fn read_persisted(
        r: &mut crate::persist::Reader<'_>,
        problem: &P,
    ) -> Result<Self, crate::persist::PersistError>
    where
        N: crate::persist::Persist,
    {
        use crate::persist::PersistError;
        let max_iters: u64 = r.read()?;
        let target: Option<i64> = r.read()?;
        let hood: N = r.read()?;
        let alpha: f64 = r.read()?;
        let steps_per_temp: u64 = r.read()?;
        let rng: StdRng = r.read()?;
        let s: BitString = r.read()?;
        let cur: i64 = r.read()?;
        let best: BitString = r.read()?;
        let best_fitness: i64 = r.read()?;
        let temp: f64 = r.read()?;
        let iterations: u64 = r.read()?;
        let evals: u64 = r.read()?;
        if s.len() != problem.dim() || best.len() != problem.dim() {
            return Err(PersistError::new("solution length does not match the problem"));
        }
        if hood.dim() != problem.dim() {
            return Err(PersistError::new("neighborhood/problem dimension mismatch"));
        }
        if steps_per_temp == 0 || !temp.is_finite() || temp <= 0.0 {
            return Err(PersistError::new("corrupt annealing schedule"));
        }
        let state = problem.init_state(&s);
        if problem.state_fitness(&state) != cur {
            return Err(PersistError::new(
                "rebuilt state fitness disagrees with the snapshot (wrong problem instance?)",
            ));
        }
        Ok(Self {
            max_iters,
            target,
            hood,
            alpha,
            steps_per_temp,
            rng,
            s,
            state,
            cur,
            best,
            best_fitness,
            temp,
            iterations,
            evals,
        })
    }

    /// Finalize into a [`SearchResult`]; the caller supplies elapsed
    /// wall-clock and the neighborhood name (a cursor has no clock).
    pub fn into_result(self, wall: std::time::Duration, hood_name: &str) -> SearchResult {
        SearchResult {
            success: self.target.is_some_and(|t| self.best_fitness <= t),
            best: self.best,
            best_fitness: self.best_fitness,
            iterations: self.iterations,
            evals: self.evals,
            wall,
            book: None,
            backend: format!("sa/{hood_name}"),
            history: None,
            trajectory: None,
        }
    }
}

impl<P: IncrementalEval, N: Neighborhood + Clone> SearchCursor for AnnealCursor<P, N> {
    type Ctx<'a>
        = &'a P
    where
        Self: 'a;
    type Snapshot = Self;

    fn step_batch(&mut self, problem: &P, quota: u64) -> u64 {
        let m = self.hood.size();
        let mut ran = 0;
        while ran < quota {
            if self.iterations >= self.max_iters
                || self.target.is_some_and(|t| self.best_fitness <= t)
            {
                break;
            }
            self.iterations += 1;
            // Uniform neighbor via unranking — no rejection sampling.
            let idx = self.rng.gen_range(0..m);
            let mv = self.hood.unrank(idx);
            let f = problem.neighbor_fitness(&mut self.state, &self.s, &mv);
            self.evals += 1;
            let delta = f - self.cur;
            let accept = delta <= 0 || {
                let p = (-(delta as f64) / self.temp).exp();
                self.rng.gen::<f64>() < p
            };
            if accept {
                problem.apply_move(&mut self.state, &self.s, &mv);
                self.s.apply(&mv);
                self.cur = f;
                if self.cur < self.best_fitness {
                    self.best_fitness = self.cur;
                    self.best = self.s.clone();
                }
            }
            if self.iterations.is_multiple_of(self.steps_per_temp) {
                self.temp = (self.temp * self.alpha).max(1e-12);
            }
            ran += 1;
        }
        ran
    }

    fn is_done(&self) -> bool {
        self.iterations >= self.max_iters || self.target.is_some_and(|t| self.best_fitness <= t)
    }

    fn best(&self) -> i64 {
        self.best_fitness
    }

    fn iterations(&self) -> u64 {
        self.iterations
    }

    fn snapshot(&self) -> Self {
        self.clone()
    }

    fn restore(&mut self, snapshot: Self) {
        *self = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::testutil::ZeroCount;
    use lnls_neighborhood::{OneHamming, TwoHamming};

    #[test]
    fn sa_solves_zerocount() {
        let p = ZeroCount { n: 32 };
        let mut rng = StdRng::seed_from_u64(1);
        let init = BitString::random(&mut rng, 32);
        let sa = SimulatedAnnealing::new(
            SearchConfig::budget(50_000).with_seed(2),
            OneHamming::new(32),
            2.0,
        );
        let r = sa.run(&p, init);
        assert!(r.success, "fitness {}", r.best_fitness);
    }

    #[test]
    fn sa_is_deterministic_per_seed() {
        let p = ZeroCount { n: 24 };
        let mut rng = StdRng::seed_from_u64(9);
        let init = BitString::random(&mut rng, 24);
        let run = |seed| {
            let sa = SimulatedAnnealing::new(
                SearchConfig { max_iters: 500, target_fitness: None, time_limit: None, seed },
                TwoHamming::new(24),
                1.5,
            );
            sa.run(&p, init.clone()).best_fitness
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn zero_temperature_behaves_greedily() {
        // With t0 ≈ 0 only improving/equal moves are accepted: fitness
        // must be monotone non-increasing, hence final ≤ initial.
        let p = ZeroCount { n: 40 };
        let mut rng = StdRng::seed_from_u64(3);
        let init = BitString::random(&mut rng, 40);
        let init_fitness = {
            use crate::problem::BinaryProblem;
            p.evaluate(&init)
        };
        let sa = SimulatedAnnealing::new(
            SearchConfig::budget(5_000).with_seed(4),
            OneHamming::new(40),
            1e-9,
        );
        let r = sa.run(&p, init);
        assert!(r.best_fitness <= init_fitness);
    }

    #[test]
    fn cursor_steps_match_run_exactly() {
        // The ragged-quantum walk must reproduce run()'s RNG stream,
        // temperature schedule and accept decisions bit for bit.
        let p = ZeroCount { n: 28 };
        let mut rng = StdRng::seed_from_u64(6);
        let init = BitString::random(&mut rng, 28);
        let sa = SimulatedAnnealing::new(
            SearchConfig::budget(700).with_seed(11),
            TwoHamming::new(28),
            1.2,
        );
        let want = sa.run(&p, init.clone());

        let mut cursor = sa.cursor(&p, init);
        for quota in [13u64, 1, 200, 5].iter().cycle() {
            if cursor.step_batch(&p, *quota) == 0 {
                break;
            }
        }
        let got = cursor.into_result(std::time::Duration::ZERO, sa.hood.name());
        assert_eq!(got.best, want.best);
        assert_eq!(got.best_fitness, want.best_fitness);
        assert_eq!(got.iterations, want.iterations);
        assert_eq!(got.evals, want.evals);
    }

    #[test]
    fn cursor_persists_mid_walk_and_resumes_exactly() {
        let p = ZeroCount { n: 26 };
        let mut rng = StdRng::seed_from_u64(12);
        let init = BitString::random(&mut rng, 26);
        let sa = SimulatedAnnealing::new(
            SearchConfig::budget(400).with_seed(21),
            TwoHamming::new(26),
            1.3,
        );
        let want = sa.run(&p, init.clone());

        // Walk part-way, snapshot to bytes, revive, finish.
        let mut cursor = sa.cursor(&p, init);
        cursor.step_batch(&p, 137);
        let mut bytes = Vec::new();
        cursor.persist(&mut bytes);
        let mut revived: AnnealCursor<ZeroCount, TwoHamming> =
            AnnealCursor::read_persisted(&mut crate::persist::Reader::new(&bytes), &p)
                .expect("decode");
        assert_eq!(revived.iterations(), 137);
        revived.step_batch(&p, u64::MAX);
        assert_eq!(revived.best(), want.best_fitness);
        assert_eq!(revived.iterations(), want.iterations);
        assert_eq!(revived.evals(), want.evals);

        // The wrong problem instance is rejected, as is truncation.
        let wrong = ZeroCount { n: 24 };
        assert!(AnnealCursor::<ZeroCount, TwoHamming>::read_persisted(
            &mut crate::persist::Reader::new(&bytes),
            &wrong
        )
        .is_err());
        assert!(AnnealCursor::<ZeroCount, TwoHamming>::read_persisted(
            &mut crate::persist::Reader::new(&bytes[..bytes.len() - 3]),
            &p
        )
        .is_err());
    }
}
