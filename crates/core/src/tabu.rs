//! Tabu search (paper §IV.B): the general LS model of Fig. 1 driven by a
//! short-term memory. The paper follows Taillard's robust taboo search
//! and sets "the tabu list size … to m/6 where m is the number of
//! neighbors", with the list holding "the solutions that have been
//! visited in the recent past".
//!
//! Two faithful readings are implemented:
//!
//! * [`TabuStrategy::SolutionRing`] (default, the literal reading): a
//!   ring of the last `L` visited solutions; a move is tabu when it would
//!   recreate one of them. Solutions are compared by 64-bit Zobrist hash,
//!   updated in O(k) per candidate.
//! * [`TabuStrategy::Attribute`]: the classic attribute memory — a bit
//!   flipped in the last `tenure` iterations may not be flipped back.
//!
//! Aspiration: a tabu move is admissible anyway when it improves on the
//! best fitness seen so far.

use crate::bitstring::{zobrist_table, BitString};
use crate::cursor::SearchCursor;
use crate::explore::Explorer;
use crate::persist::{Persist, PersistError, Reader};
use crate::problem::IncrementalEval;
use crate::search::{SearchConfig, SearchResult, StopReason};
use lnls_gpu_sim::TimeBook;
use lnls_neighborhood::FlipMove;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Short-term memory variant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TabuStrategy {
    /// Ring of the last `len` visited solutions (Zobrist hashes). A move
    /// is tabu when it would recreate one of them — the most literal
    /// reading of "the tabu list contains the solutions that have been
    /// visited in the recent past".
    SolutionRing {
        /// Ring capacity; the paper uses `m/6`.
        len: usize,
    },
    /// Ring of the last `len` *applied move indices*. Re-applying a
    /// k-flip move undoes it exactly, so this forbids recent reversals;
    /// it is the reading under which "size m/6" scales sensibly with
    /// every neighborhood (m = neighborhood size).
    MoveRing {
        /// Ring capacity; the paper uses `m/6`.
        len: usize,
    },
    /// Attribute memory: a flipped bit is tabu for `tenure` iterations
    /// (Taillard's robust taboo search, which the paper cites as its
    /// tabu base).
    Attribute {
        /// Iterations a bit stays tabu after being flipped.
        tenure: u64,
    },
}

impl TabuStrategy {
    /// The paper's configuration for a neighborhood of size `m`: a
    /// short-term memory of `m/6` entries, interpreted as a move ring
    /// (see variant docs; the solution-ring reading is available
    /// explicitly).
    pub fn paper_default(neighborhood_size: u64) -> Self {
        TabuStrategy::MoveRing { len: ((neighborhood_size / 6).max(1) as usize).min(1 << 22) }
    }
}

/// Tabu-search driver over any [`Explorer`] backend.
#[derive(Clone)]
pub struct TabuSearch {
    /// Generic search knobs.
    pub config: SearchConfig,
    /// Short-term memory variant.
    pub strategy: TabuStrategy,
    /// Allow tabu moves that improve the global best.
    pub aspiration: bool,
    /// Record the best-so-far trajectory.
    pub keep_history: bool,
}

impl TabuSearch {
    /// A tabu search with the paper's configuration for a neighborhood of
    /// `m` moves: solution ring of `m/6`, aspiration on.
    pub fn paper(config: SearchConfig, neighborhood_size: u64) -> Self {
        Self {
            config,
            strategy: TabuStrategy::paper_default(neighborhood_size),
            aspiration: true,
            keep_history: false,
        }
    }

    /// Build a resumable [`TabuCursor`] positioned at `init`.
    ///
    /// The cursor owns every piece of loop-carried state, so callers can
    /// interleave many searches iteration by iteration (the runtime
    /// scheduler's launch batching), snapshot them mid-flight
    /// (checkpoint/resume), or drive them to completion like
    /// [`run`](Self::run) does.
    pub fn cursor<P: IncrementalEval>(&self, problem: &P, init: BitString) -> TabuCursor<P> {
        let n = problem.dim();
        assert_eq!(init.len(), n, "initial solution has wrong length");

        let s = init;
        let state = problem.init_state(&s);
        let cur_fitness = problem.state_fitness(&state);

        let ztable = zobrist_table(n, 0xC0FFEE ^ self.config.seed);
        let cur_hash = s.zobrist(&ztable);
        let ring_len = match self.strategy {
            TabuStrategy::SolutionRing { len } => len,
            _ => 0,
        };
        let mut ring: Vec<u64> = Vec::new();
        let mut ring_set: HashMap<u64, u32> = HashMap::new();
        if ring_len > 0 {
            ring_set.insert(cur_hash, 1);
            ring.push(cur_hash);
        }
        let mring_len = match self.strategy {
            TabuStrategy::MoveRing { len } => len,
            _ => 0,
        };

        TabuCursor {
            search: self.clone(),
            best: s.clone(),
            best_fitness: cur_fitness,
            history: self.keep_history.then(Vec::new),
            trajectory: self.keep_history.then(Vec::new),
            s,
            state,
            cur_fitness,
            ztable,
            cur_hash,
            ring,
            ring_pos: 0,
            ring_set,
            ring_len,
            mring: Vec::new(),
            mring_pos: 0,
            mring_set: HashMap::new(),
            mring_len,
            last_flip: vec![u64::MAX; n],
            iterations: 0,
            evals: 0,
            last_committed: None,
            out_scratch: Vec::new(),
        }
    }

    /// Run from the given initial solution.
    pub fn run<P, E>(&self, problem: &P, explorer: &mut E, init: BitString) -> SearchResult
    where
        P: IncrementalEval,
        E: Explorer<P> + ?Sized,
    {
        let t0 = Instant::now();
        let mut cursor = self.cursor(problem, init);
        loop {
            if let Some(limit) = self.config.time_limit {
                if t0.elapsed() >= limit {
                    break;
                }
            }
            if cursor.step(problem, explorer).is_some() {
                break;
            }
        }
        cursor.into_result(t0.elapsed(), explorer.book(), explorer.backend())
    }
}

/// Borrowed enumerator handing `(flat index, move)` pairs to a visitor
/// in index order — how the selection pass walks a fitness vector.
type EnumerateMoves<'a> = &'a dyn Fn(&mut dyn FnMut(u64, FlipMove) -> bool);

/// The loop-carried state of one tabu-search walk, stepped externally.
///
/// Produced by [`TabuSearch::cursor`]. One [`step`](Self::step) performs
/// exactly one iteration of the paper's model — explore the full
/// neighborhood, select the best admissible move, commit it — so a run
/// driven through a cursor makes bit-for-bit the moves
/// [`TabuSearch::run`] makes (which is implemented on top of it).
///
/// For backends that evaluate *several* walks per device launch
/// (`BatchedExplorer`), the exploration and selection halves are exposed
/// separately: evaluate the neighborhood externally into a fitness
/// vector, then feed it to [`select_and_commit`](Self::select_and_commit).
///
/// The cursor is `Clone` (the problem state `P::State` always is), which
/// is what makes in-flight jobs checkpointable in the runtime scheduler.
pub struct TabuCursor<P: IncrementalEval> {
    search: TabuSearch,
    s: BitString,
    state: P::State,
    cur_fitness: i64,
    best: BitString,
    best_fitness: i64,
    history: Option<Vec<i64>>,
    trajectory: Option<Vec<i64>>,
    ztable: Vec<u64>,
    cur_hash: u64,
    ring: Vec<u64>,
    ring_pos: usize,
    ring_set: HashMap<u64, u32>,
    ring_len: usize,
    mring: Vec<u64>,
    mring_pos: usize,
    mring_set: HashMap<u64, u32>,
    mring_len: usize,
    last_flip: Vec<u64>,
    iterations: u64,
    evals: u64,
    last_committed: Option<FlipMove>,
    out_scratch: Vec<i64>,
}

impl<P: IncrementalEval> Clone for TabuCursor<P> {
    fn clone(&self) -> Self {
        Self {
            search: self.search.clone(),
            s: self.s.clone(),
            state: self.state.clone(),
            cur_fitness: self.cur_fitness,
            best: self.best.clone(),
            best_fitness: self.best_fitness,
            history: self.history.clone(),
            trajectory: self.trajectory.clone(),
            ztable: self.ztable.clone(),
            cur_hash: self.cur_hash,
            ring: self.ring.clone(),
            ring_pos: self.ring_pos,
            ring_set: self.ring_set.clone(),
            ring_len: self.ring_len,
            mring: self.mring.clone(),
            mring_pos: self.mring_pos,
            mring_set: self.mring_set.clone(),
            mring_len: self.mring_len,
            last_flip: self.last_flip.clone(),
            iterations: self.iterations,
            evals: self.evals,
            last_committed: self.last_committed,
            out_scratch: Vec::new(),
        }
    }
}

impl<P: IncrementalEval> TabuCursor<P> {
    /// Why the walk must stop now, if it must (target reached or budget
    /// exhausted). Wall-clock limits are the caller's concern — a cursor
    /// has no clock.
    pub fn stop_reason(&self) -> Option<StopReason> {
        let target = self.search.config.target_fitness;
        if target.is_some_and(|t| self.best_fitness <= t) {
            Some(StopReason::Target)
        } else if self.iterations >= self.search.config.max_iters {
            Some(StopReason::MaxIters)
        } else {
            None
        }
    }

    /// One full iteration through `explorer`. Returns `None` when the
    /// iteration ran, or the [`StopReason`] when the walk is finished and
    /// nothing was done.
    pub fn step<E>(&mut self, problem: &P, explorer: &mut E) -> Option<StopReason>
    where
        E: Explorer<P> + ?Sized,
    {
        if let Some(reason) = self.stop_reason() {
            return Some(reason);
        }
        let m = explorer.size();
        let mut out = std::mem::take(&mut self.out_scratch);
        explorer.explore(problem, &self.s, &mut self.state, &mut out);
        self.evals += m;
        self.iterations += 1;
        let iter = self.iterations - 1;
        self.select_commit_inner(
            problem,
            &|f| explorer.for_each_move(0, out.len() as u64, f),
            &out,
            iter,
        );
        self.out_scratch = out;
        if let Some(mv) = self.last_move() {
            explorer.committed(problem, &self.s, &self.state, &mv);
        }
        None
    }

    /// Selection half of one iteration, for externally evaluated
    /// neighborhoods: `out[i]` must hold the fitness of the neighbor with
    /// flat move index `i` under `hood`'s enumeration (the contract of
    /// [`Explorer::explore`]). Returns `false` (and does nothing) when
    /// the walk is already finished.
    pub fn select_and_commit<N: lnls_neighborhood::Neighborhood>(
        &mut self,
        problem: &P,
        hood: &N,
        out: &[i64],
    ) -> bool {
        if self.stop_reason().is_some() {
            return false;
        }
        self.evals += out.len() as u64;
        self.iterations += 1;
        let iter = self.iterations - 1;
        self.select_commit_inner(
            problem,
            &|f| hood.for_each_move_in(0, out.len() as u64, f),
            out,
            iter,
        );
        true
    }

    /// The move committed by the latest iteration (for explorer resync).
    pub fn last_move(&self) -> Option<FlipMove> {
        self.last_committed
    }

    fn select_commit_inner(
        &mut self,
        problem: &P,
        enumerate: EnumerateMoves<'_>,
        out: &[i64],
        iter: u64,
    ) {
        // Selection pass: best admissible move (ties → lowest index),
        // falling back to the best move overall if everything is tabu.
        // Moves are enumerated through the caller so mixed-radius
        // neighborhoods (`UnionHamming`) stay index-aligned with `out`.
        let mut best_adm: Option<(i64, u64, FlipMove)> = None;
        let mut best_any: Option<(i64, u64, FlipMove)> = None;
        enumerate(&mut |idx, mv| {
            let f = out[idx as usize];
            if best_any.is_none() || f < best_any.as_ref().unwrap().0 {
                best_any = Some((f, idx, mv));
            }
            if best_adm.as_ref().is_some_and(|(bf, _, _)| f >= *bf) {
                return true; // not better than current admissible best
            }
            let tabu = match self.search.strategy {
                TabuStrategy::SolutionRing { .. } => {
                    let mut h = self.cur_hash;
                    for &b in mv.bits() {
                        h ^= self.ztable[b as usize];
                    }
                    self.ring_set.contains_key(&h)
                }
                TabuStrategy::MoveRing { .. } => self.mring_set.contains_key(&idx),
                TabuStrategy::Attribute { tenure } => mv.bits().iter().any(|&b| {
                    let lf = self.last_flip[b as usize];
                    lf != u64::MAX && iter.saturating_sub(lf) < tenure
                }),
            };
            let admissible = !tabu || (self.search.aspiration && f < self.best_fitness);
            if admissible {
                best_adm = Some((f, idx, mv));
            }
            true
        });

        let (f, chosen_idx, mv) = best_adm.or(best_any).expect("non-empty neighborhood");

        // Commit the move.
        problem.apply_move(&mut self.state, &self.s, &mv);
        self.s.apply(&mv);
        self.cur_fitness = f;
        debug_assert_eq!(problem.state_fitness(&self.state), self.cur_fitness);
        for &b in mv.bits() {
            self.cur_hash ^= self.ztable[b as usize];
            self.last_flip[b as usize] = iter;
        }
        self.last_committed = Some(mv);

        if self.ring_len > 0 {
            if self.ring.len() < self.ring_len {
                self.ring.push(self.cur_hash);
            } else {
                let evicted = std::mem::replace(&mut self.ring[self.ring_pos], self.cur_hash);
                self.ring_pos = (self.ring_pos + 1) % self.ring_len;
                if let Some(c) = self.ring_set.get_mut(&evicted) {
                    *c -= 1;
                    if *c == 0 {
                        self.ring_set.remove(&evicted);
                    }
                }
            }
            *self.ring_set.entry(self.cur_hash).or_insert(0) += 1;
        }
        if self.mring_len > 0 {
            if self.mring.len() < self.mring_len {
                self.mring.push(chosen_idx);
            } else {
                let evicted = std::mem::replace(&mut self.mring[self.mring_pos], chosen_idx);
                self.mring_pos = (self.mring_pos + 1) % self.mring_len;
                if let Some(c) = self.mring_set.get_mut(&evicted) {
                    *c -= 1;
                    if *c == 0 {
                        self.mring_set.remove(&evicted);
                    }
                }
            }
            *self.mring_set.entry(chosen_idx).or_insert(0) += 1;
        }

        if self.cur_fitness < self.best_fitness {
            self.best_fitness = self.cur_fitness;
            self.best = self.s.clone();
        }
        if let Some(h) = self.history.as_mut() {
            h.push(self.best_fitness);
        }
        if let Some(t) = self.trajectory.as_mut() {
            t.push(self.cur_fitness);
        }
    }

    /// Current solution.
    pub fn current(&self) -> &BitString {
        &self.s
    }

    /// The `(solution, state)` pair an external evaluation needs, split
    /// so both can be borrowed at once (a `BatchLane` holds the solution
    /// shared and the state mutably).
    pub fn explore_parts(&mut self) -> (&BitString, &mut P::State) {
        (&self.s, &mut self.state)
    }

    /// Iterations left in the budget.
    pub fn remaining_iters(&self) -> u64 {
        self.search.config.max_iters.saturating_sub(self.iterations)
    }

    /// Problem state of the current solution.
    pub fn state(&self) -> &P::State {
        &self.state
    }

    /// Mutable problem state (exploration backends use scratch space
    /// inside it).
    pub fn state_mut(&mut self) -> &mut P::State {
        &mut self.state
    }

    /// Best fitness seen so far.
    pub fn best_fitness(&self) -> i64 {
        self.best_fitness
    }

    /// Best solution seen so far.
    pub fn best_solution(&self) -> &BitString {
        &self.best
    }

    /// Iterations executed so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Neighbor evaluations consumed so far.
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// Byte-level snapshot of the walk (hand-rolled; see
    /// [`crate::persist`]). Everything derivable is left out and rebuilt
    /// by [`read_persisted`](Self::read_persisted): the Zobrist table
    /// comes from `(n, seed)`, the incremental state from the problem,
    /// and the ring lookup sets from the rings themselves.
    pub fn persist(&self, out: &mut Vec<u8>) {
        self.search.config.write(out);
        self.search.strategy.write(out);
        self.search.aspiration.write(out);
        self.search.keep_history.write(out);
        self.s.write(out);
        self.best.write(out);
        self.cur_fitness.write(out);
        self.best_fitness.write(out);
        self.history.write(out);
        self.trajectory.write(out);
        self.ring.write(out);
        self.ring_pos.write(out);
        self.mring.write(out);
        self.mring_pos.write(out);
        self.last_flip.write(out);
        self.iterations.write(out);
        self.evals.write(out);
        self.last_committed.write(out);
    }

    /// Rebuild a walk captured by [`persist`](Self::persist). `problem`
    /// must be the same instance the walk ran on — the rebuilt
    /// incremental state is cross-checked against the recorded fitness.
    pub fn read_persisted(r: &mut Reader<'_>, problem: &P) -> Result<Self, PersistError> {
        let search = TabuSearch {
            config: r.read()?,
            strategy: r.read()?,
            aspiration: r.read()?,
            keep_history: r.read()?,
        };
        let s: BitString = r.read()?;
        let n = problem.dim();
        if s.len() != n {
            return Err(PersistError::new("solution length does not match the problem"));
        }
        let best: BitString = r.read()?;
        let cur_fitness: i64 = r.read()?;
        let best_fitness: i64 = r.read()?;
        let history: Option<Vec<i64>> = r.read()?;
        let trajectory: Option<Vec<i64>> = r.read()?;
        let ring: Vec<u64> = r.read()?;
        let ring_pos: usize = r.read()?;
        let mring: Vec<u64> = r.read()?;
        let mring_pos: usize = r.read()?;
        let last_flip: Vec<u64> = r.read()?;
        let iterations: u64 = r.read()?;
        let evals: u64 = r.read()?;
        let last_committed: Option<FlipMove> = r.read()?;

        let state = problem.init_state(&s);
        if problem.state_fitness(&state) != cur_fitness {
            return Err(PersistError::new(
                "rebuilt state fitness disagrees with the snapshot (wrong problem instance?)",
            ));
        }
        let ztable = zobrist_table(n, 0xC0FFEE ^ search.config.seed);
        let cur_hash = s.zobrist(&ztable);
        let ring_len = match search.strategy {
            TabuStrategy::SolutionRing { len } => len,
            _ => 0,
        };
        let mring_len = match search.strategy {
            TabuStrategy::MoveRing { len } => len,
            _ => 0,
        };
        // Corrupt bytes must be rejected here, not crash a later step:
        // rings never exceed the strategy's capacity, eviction cursors
        // stay inside it, and the attribute memory covers every bit.
        if best.len() != n || last_flip.len() != n {
            return Err(PersistError::new("best/last-flip length does not match the problem"));
        }
        if ring.len() > ring_len || ring_pos >= ring_len.max(1) {
            return Err(PersistError::new("solution ring exceeds its strategy capacity"));
        }
        if mring.len() > mring_len || mring_pos >= mring_len.max(1) {
            return Err(PersistError::new("move ring exceeds its strategy capacity"));
        }
        let mut ring_set: HashMap<u64, u32> = HashMap::new();
        for &h in &ring {
            *ring_set.entry(h).or_insert(0) += 1;
        }
        let mut mring_set: HashMap<u64, u32> = HashMap::new();
        for &idx in &mring {
            *mring_set.entry(idx).or_insert(0) += 1;
        }
        Ok(Self {
            search,
            s,
            state,
            cur_fitness,
            best,
            best_fitness,
            history,
            trajectory,
            ztable,
            cur_hash,
            ring,
            ring_pos,
            ring_set,
            ring_len,
            mring,
            mring_pos,
            mring_set,
            mring_len,
            last_flip,
            iterations,
            evals,
            last_committed,
            out_scratch: Vec::new(),
        })
    }

    /// Finalize into a [`SearchResult`]; the caller supplies what a
    /// cursor cannot know — elapsed wall-clock and the backend identity.
    pub fn into_result(
        self,
        wall: Duration,
        book: Option<TimeBook>,
        backend: String,
    ) -> SearchResult {
        let target = self.search.config.target_fitness;
        SearchResult {
            best: self.best,
            best_fitness: self.best_fitness,
            iterations: self.iterations,
            success: target.is_some_and(|t| self.best_fitness <= t),
            evals: self.evals,
            wall,
            book,
            backend,
            history: self.history,
            trajectory: self.trajectory,
        }
    }
}

impl<P: IncrementalEval> SearchCursor for TabuCursor<P> {
    type Ctx<'a>
        = (&'a P, &'a mut dyn Explorer<P>)
    where
        Self: 'a;
    type Snapshot = Self;

    fn step_batch(&mut self, (problem, explorer): Self::Ctx<'_>, quota: u64) -> u64 {
        let mut ran = 0;
        while ran < quota {
            if self.step(problem, explorer).is_some() {
                break;
            }
            ran += 1;
        }
        ran
    }

    fn is_done(&self) -> bool {
        self.stop_reason().is_some()
    }

    fn best(&self) -> i64 {
        self.best_fitness
    }

    fn iterations(&self) -> u64 {
        self.iterations
    }

    fn snapshot(&self) -> Self {
        self.clone()
    }

    fn restore(&mut self, snapshot: Self) {
        *self = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::SequentialExplorer;
    use crate::problem::testutil::ZeroCount;
    use lnls_neighborhood::{Neighborhood, OneHamming, TwoHamming};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_zerocount(n: usize, strategy: TabuStrategy, iters: u64) -> SearchResult {
        let p = ZeroCount { n };
        let mut rng = StdRng::seed_from_u64(11);
        let init = BitString::random(&mut rng, n);
        let mut ex = SequentialExplorer::new(OneHamming::new(n));
        let search = TabuSearch {
            config: SearchConfig::budget(iters).with_seed(1),
            strategy,
            aspiration: true,
            keep_history: true,
        };
        search.run(&p, &mut ex, init)
    }

    #[test]
    fn solves_zerocount_with_solution_ring() {
        let r = run_zerocount(32, TabuStrategy::SolutionRing { len: 50 }, 200);
        assert!(r.success, "fitness {}", r.best_fitness);
        assert_eq!(r.best_fitness, 0);
        assert_eq!(r.best.count_ones(), 32);
        // ZeroCount under best-improvement 1-flip: strictly decreasing, so
        // iterations ≈ number of zero bits in the start solution.
        assert!(r.iterations <= 33);
    }

    #[test]
    fn solves_zerocount_with_attribute_memory() {
        let r = run_zerocount(32, TabuStrategy::Attribute { tenure: 5 }, 200);
        assert!(r.success);
    }

    #[test]
    fn history_is_monotone_best_so_far() {
        let r = run_zerocount(24, TabuStrategy::SolutionRing { len: 20 }, 100);
        let h = r.history.expect("history requested");
        assert!(h.windows(2).all(|w| w[1] <= w[0]), "best-so-far must not regress");
    }

    /// Count-of-ones (minimize), used to observe oscillation: starting at
    /// the optimum (all zeros), every move goes uphill and the tempting
    /// move is always straight back.
    struct CountOnes {
        n: usize,
    }
    impl crate::problem::BinaryProblem for CountOnes {
        fn dim(&self) -> usize {
            self.n
        }
        fn evaluate(&self, s: &BitString) -> i64 {
            s.count_ones() as i64
        }
    }
    impl IncrementalEval for CountOnes {
        type State = i64;
        fn init_state(&self, s: &BitString) -> i64 {
            s.count_ones() as i64
        }
        fn state_fitness(&self, state: &i64) -> i64 {
            *state
        }
        fn neighbor_fitness(&self, state: &mut i64, s: &BitString, mv: &FlipMove) -> i64 {
            let mut f = *state;
            for &b in mv.bits() {
                f += if s.get(b as usize) { -1 } else { 1 };
            }
            f
        }
        fn apply_move(&self, state: &mut i64, s: &BitString, mv: &FlipMove) {
            *state = self.neighbor_fitness(state, s, mv);
        }
    }

    fn oscillation_trajectory(strategy: TabuStrategy) -> Vec<i64> {
        let p = CountOnes { n: 8 };
        let mut ex = SequentialExplorer::new(OneHamming::new(8));
        let search = TabuSearch {
            config: SearchConfig { max_iters: 6, target_fitness: None, time_limit: None, seed: 0 },
            strategy,
            aspiration: true,
            keep_history: true,
        };
        let r = search.run(&p, &mut ex, BitString::zeros(8));
        r.trajectory.expect("history requested")
    }

    #[test]
    fn ring_prevents_immediate_backtracking() {
        // Start at the optimum (weight 0). The first move must go uphill
        // to weight 1. Without memory, the best neighbor of weight-1 is
        // weight-0 again: the trajectory would oscillate 1,0,1,0….
        // The ring forbids recreating a visited solution, so weight 0 can
        // never reappear.
        let with_ring = oscillation_trajectory(TabuStrategy::SolutionRing { len: 16 });
        assert_eq!(with_ring[0], 1);
        assert!(
            with_ring.iter().all(|&f| f > 0),
            "ring failed to prevent revisiting the start: {with_ring:?}"
        );

        // Degenerate memory (ring of 1 = only the current solution) lets
        // the search bounce straight back.
        let no_memory = oscillation_trajectory(TabuStrategy::SolutionRing { len: 1 });
        assert!(no_memory.contains(&0), "expected oscillation without memory: {no_memory:?}");
    }

    #[test]
    fn paper_default_list_size() {
        match TabuStrategy::paper_default(2628) {
            TabuStrategy::MoveRing { len } => assert_eq!(len, 438),
            _ => panic!("wrong strategy"),
        }
    }

    #[test]
    fn move_ring_prevents_reversal() {
        // Same setup as the solution-ring test: with a move ring the
        // immediate undo (same move index) is tabu, so weight 0 cannot
        // reappear right away.
        let with_ring = oscillation_trajectory(TabuStrategy::MoveRing { len: 16 });
        assert_eq!(with_ring[0], 1);
        assert!(with_ring[1] > 0, "move ring failed to forbid the undo: {with_ring:?}");
    }

    #[test]
    fn two_hamming_tabu_runs() {
        let p = ZeroCount { n: 16 };
        let mut rng = StdRng::seed_from_u64(2);
        let init = BitString::random(&mut rng, 16);
        let hood = TwoHamming::new(16);
        let mut ex = SequentialExplorer::new(hood);
        let search = TabuSearch::paper(SearchConfig::budget(100), hood.size());
        let r = search.run(&p, &mut ex, init.clone());
        // 2-flips preserve parity of ones-count relative to init: success
        // only possible if parity matches; either way fitness ≤ init's.
        let p0 = ZeroCount { n: 16 };
        use crate::problem::BinaryProblem;
        assert!(r.best_fitness <= p0.evaluate(&init));
        assert!(r.iterations > 0);
    }

    #[test]
    fn persisted_cursor_resumes_identically() {
        let p = ZeroCount { n: 24 };
        let hood = TwoHamming::new(24);
        let mut rng = StdRng::seed_from_u64(13);
        let init = BitString::random(&mut rng, 24);
        let search = TabuSearch {
            config: SearchConfig::budget(30).with_seed(3),
            strategy: TabuStrategy::SolutionRing { len: 9 },
            aspiration: true,
            keep_history: true,
        };
        let mut cursor = search.cursor(&p, init);
        let mut ex = SequentialExplorer::new(hood);
        for _ in 0..7 {
            cursor.step(&p, &mut ex);
        }
        let mut bytes = Vec::new();
        cursor.persist(&mut bytes);
        let mut revived = TabuCursor::read_persisted(&mut Reader::new(&bytes), &p).expect("decode");
        while cursor.step(&p, &mut ex).is_none() {}
        let mut ex2 = SequentialExplorer::new(hood);
        while revived.step(&p, &mut ex2).is_none() {}
        assert_eq!(revived.best_fitness(), cursor.best_fitness());
        assert_eq!(revived.iterations(), cursor.iterations());
        assert_eq!(revived.evals(), cursor.evals());
        assert_eq!(revived.best_solution(), cursor.best_solution());
    }

    #[test]
    fn persisted_cursor_rejects_wrong_problem() {
        let p = ZeroCount { n: 16 };
        let search = TabuSearch::paper(SearchConfig::budget(5), 16);
        let cursor = search.cursor(&p, BitString::zeros(16));
        let mut bytes = Vec::new();
        cursor.persist(&mut bytes);
        let wrong = ZeroCount { n: 20 };
        assert!(TabuCursor::read_persisted(&mut Reader::new(&bytes), &wrong).is_err());
    }

    #[test]
    fn time_limit_stops_early() {
        let p = ZeroCount { n: 64 };
        let mut ex = SequentialExplorer::new(TwoHamming::new(64));
        let search = TabuSearch {
            config: SearchConfig {
                max_iters: u64::MAX,
                target_fitness: None, // never satisfied
                time_limit: Some(std::time::Duration::from_millis(50)),
                seed: 0,
            },
            strategy: TabuStrategy::paper_default(TwoHamming::new(64).size()),
            aspiration: true,
            keep_history: false,
        };
        let r = search.run(&p, &mut ex, BitString::zeros(64));
        assert!(r.wall < std::time::Duration::from_secs(10));
        assert!(!r.success);
    }
}
