//! Tabu search (paper §IV.B): the general LS model of Fig. 1 driven by a
//! short-term memory. The paper follows Taillard's robust taboo search
//! and sets "the tabu list size … to m/6 where m is the number of
//! neighbors", with the list holding "the solutions that have been
//! visited in the recent past".
//!
//! Two faithful readings are implemented:
//!
//! * [`TabuStrategy::SolutionRing`] (default, the literal reading): a
//!   ring of the last `L` visited solutions; a move is tabu when it would
//!   recreate one of them. Solutions are compared by 64-bit Zobrist hash,
//!   updated in O(k) per candidate.
//! * [`TabuStrategy::Attribute`]: the classic attribute memory — a bit
//!   flipped in the last `tenure` iterations may not be flipped back.
//!
//! Aspiration: a tabu move is admissible anyway when it improves on the
//! best fitness seen so far.

use crate::bitstring::{zobrist_table, BitString};
use crate::explore::Explorer;
use crate::problem::IncrementalEval;
use crate::search::{SearchConfig, SearchResult};
use lnls_neighborhood::FlipMove;
use std::collections::HashMap;
use std::time::Instant;

/// Short-term memory variant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TabuStrategy {
    /// Ring of the last `len` visited solutions (Zobrist hashes). A move
    /// is tabu when it would recreate one of them — the most literal
    /// reading of "the tabu list contains the solutions that have been
    /// visited in the recent past".
    SolutionRing {
        /// Ring capacity; the paper uses `m/6`.
        len: usize,
    },
    /// Ring of the last `len` *applied move indices*. Re-applying a
    /// k-flip move undoes it exactly, so this forbids recent reversals;
    /// it is the reading under which "size m/6" scales sensibly with
    /// every neighborhood (m = neighborhood size).
    MoveRing {
        /// Ring capacity; the paper uses `m/6`.
        len: usize,
    },
    /// Attribute memory: a flipped bit is tabu for `tenure` iterations
    /// (Taillard's robust taboo search, which the paper cites as its
    /// tabu base).
    Attribute {
        /// Iterations a bit stays tabu after being flipped.
        tenure: u64,
    },
}

impl TabuStrategy {
    /// The paper's configuration for a neighborhood of size `m`: a
    /// short-term memory of `m/6` entries, interpreted as a move ring
    /// (see variant docs; the solution-ring reading is available
    /// explicitly).
    pub fn paper_default(neighborhood_size: u64) -> Self {
        TabuStrategy::MoveRing { len: ((neighborhood_size / 6).max(1) as usize).min(1 << 22) }
    }
}

/// Tabu-search driver over any [`Explorer`] backend.
pub struct TabuSearch {
    /// Generic search knobs.
    pub config: SearchConfig,
    /// Short-term memory variant.
    pub strategy: TabuStrategy,
    /// Allow tabu moves that improve the global best.
    pub aspiration: bool,
    /// Record the best-so-far trajectory.
    pub keep_history: bool,
}

impl TabuSearch {
    /// A tabu search with the paper's configuration for a neighborhood of
    /// `m` moves: solution ring of `m/6`, aspiration on.
    pub fn paper(config: SearchConfig, neighborhood_size: u64) -> Self {
        Self {
            config,
            strategy: TabuStrategy::paper_default(neighborhood_size),
            aspiration: true,
            keep_history: false,
        }
    }

    /// Run from the given initial solution.
    pub fn run<P, E>(&self, problem: &P, explorer: &mut E, init: BitString) -> SearchResult
    where
        P: IncrementalEval,
        E: Explorer<P> + ?Sized,
    {
        let t0 = Instant::now();
        let n = problem.dim();
        assert_eq!(init.len(), n, "initial solution has wrong length");
        let m = explorer.size();
        let target = self.config.target_fitness;

        let mut s = init;
        let mut state = problem.init_state(&s);
        let mut cur_fitness = problem.state_fitness(&state);
        let mut best = s.clone();
        let mut best_fitness = cur_fitness;
        let mut history = self.keep_history.then(Vec::new);
        let mut trajectory = self.keep_history.then(Vec::new);

        // Solution-ring memory.
        let ztable = zobrist_table(n, 0xC0FFEE ^ self.config.seed);
        let mut cur_hash = s.zobrist(&ztable);
        let mut ring: Vec<u64> = Vec::new();
        let mut ring_pos = 0usize;
        let mut ring_set: HashMap<u64, u32> = HashMap::new();
        let ring_len = match self.strategy {
            TabuStrategy::SolutionRing { len } => len,
            _ => 0,
        };
        if ring_len > 0 {
            ring_set.insert(cur_hash, 1);
            ring.push(cur_hash);
        }

        // Move-ring memory.
        let mring_len = match self.strategy {
            TabuStrategy::MoveRing { len } => len,
            _ => 0,
        };
        let mut mring: Vec<u64> = Vec::new();
        let mut mring_pos = 0usize;
        let mut mring_set: HashMap<u64, u32> = HashMap::new();

        // Attribute memory.
        let mut last_flip: Vec<u64> = vec![u64::MAX; n];

        let mut out: Vec<i64> = Vec::new();
        let mut iterations = 0u64;
        let mut evals = 0u64;

        'outer: for iter in 0..self.config.max_iters {
            if let Some(limit) = self.config.time_limit {
                if t0.elapsed() >= limit {
                    break 'outer;
                }
            }
            if target.is_some_and(|t| best_fitness <= t) {
                break 'outer;
            }

            explorer.explore(problem, &s, &mut state, &mut out);
            evals += m;
            iterations += 1;

            // Selection pass: best admissible move (ties → lowest index),
            // falling back to the best move overall if everything is tabu.
            // Moves are enumerated through the explorer so mixed-radius
            // neighborhoods (`UnionHamming`) stay index-aligned with `out`.
            let mut best_adm: Option<(i64, u64, FlipMove)> = None;
            let mut best_any: Option<(i64, u64, FlipMove)> = None;
            explorer.for_each_move(0, out.len() as u64, &mut |idx, mv| {
                let f = out[idx as usize];
                if best_any.is_none() || f < best_any.as_ref().unwrap().0 {
                    best_any = Some((f, idx, mv));
                }
                if best_adm.as_ref().is_some_and(|(bf, _, _)| f >= *bf) {
                    return true; // not better than current admissible best
                }
                let tabu = match self.strategy {
                    TabuStrategy::SolutionRing { .. } => {
                        let mut h = cur_hash;
                        for &b in mv.bits() {
                            h ^= ztable[b as usize];
                        }
                        ring_set.contains_key(&h)
                    }
                    TabuStrategy::MoveRing { .. } => mring_set.contains_key(&idx),
                    TabuStrategy::Attribute { tenure } => mv.bits().iter().any(|&b| {
                        let lf = last_flip[b as usize];
                        lf != u64::MAX && iter.saturating_sub(lf) < tenure
                    }),
                };
                let admissible = !tabu || (self.aspiration && f < best_fitness);
                if admissible {
                    best_adm = Some((f, idx, mv));
                }
                true
            });

            let (f, chosen_idx, mv) = best_adm.or(best_any).expect("non-empty neighborhood");

            // Commit the move.
            problem.apply_move(&mut state, &s, &mv);
            s.apply(&mv);
            cur_fitness = f;
            debug_assert_eq!(problem.state_fitness(&state), cur_fitness);
            explorer.committed(problem, &s, &state, &mv);
            for &b in mv.bits() {
                cur_hash ^= ztable[b as usize];
                last_flip[b as usize] = iter;
            }

            if ring_len > 0 {
                if ring.len() < ring_len {
                    ring.push(cur_hash);
                } else {
                    let evicted = std::mem::replace(&mut ring[ring_pos], cur_hash);
                    ring_pos = (ring_pos + 1) % ring_len;
                    if let Some(c) = ring_set.get_mut(&evicted) {
                        *c -= 1;
                        if *c == 0 {
                            ring_set.remove(&evicted);
                        }
                    }
                }
                *ring_set.entry(cur_hash).or_insert(0) += 1;
            }
            if mring_len > 0 {
                if mring.len() < mring_len {
                    mring.push(chosen_idx);
                } else {
                    let evicted = std::mem::replace(&mut mring[mring_pos], chosen_idx);
                    mring_pos = (mring_pos + 1) % mring_len;
                    if let Some(c) = mring_set.get_mut(&evicted) {
                        *c -= 1;
                        if *c == 0 {
                            mring_set.remove(&evicted);
                        }
                    }
                }
                *mring_set.entry(chosen_idx).or_insert(0) += 1;
            }

            if cur_fitness < best_fitness {
                best_fitness = cur_fitness;
                best = s.clone();
            }
            if let Some(h) = history.as_mut() {
                h.push(best_fitness);
            }
            if let Some(t) = trajectory.as_mut() {
                t.push(cur_fitness);
            }
        }

        SearchResult {
            best,
            best_fitness,
            iterations,
            success: target.is_some_and(|t| best_fitness <= t),
            evals,
            wall: t0.elapsed(),
            book: explorer.book(),
            backend: explorer.backend(),
            history,
            trajectory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::SequentialExplorer;
    use crate::problem::testutil::ZeroCount;
    use lnls_neighborhood::{Neighborhood, OneHamming, TwoHamming};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_zerocount(n: usize, strategy: TabuStrategy, iters: u64) -> SearchResult {
        let p = ZeroCount { n };
        let mut rng = StdRng::seed_from_u64(11);
        let init = BitString::random(&mut rng, n);
        let mut ex = SequentialExplorer::new(OneHamming::new(n));
        let search = TabuSearch {
            config: SearchConfig::budget(iters).with_seed(1),
            strategy,
            aspiration: true,
            keep_history: true,
        };
        search.run(&p, &mut ex, init)
    }

    #[test]
    fn solves_zerocount_with_solution_ring() {
        let r = run_zerocount(32, TabuStrategy::SolutionRing { len: 50 }, 200);
        assert!(r.success, "fitness {}", r.best_fitness);
        assert_eq!(r.best_fitness, 0);
        assert_eq!(r.best.count_ones(), 32);
        // ZeroCount under best-improvement 1-flip: strictly decreasing, so
        // iterations ≈ number of zero bits in the start solution.
        assert!(r.iterations <= 33);
    }

    #[test]
    fn solves_zerocount_with_attribute_memory() {
        let r = run_zerocount(32, TabuStrategy::Attribute { tenure: 5 }, 200);
        assert!(r.success);
    }

    #[test]
    fn history_is_monotone_best_so_far() {
        let r = run_zerocount(24, TabuStrategy::SolutionRing { len: 20 }, 100);
        let h = r.history.expect("history requested");
        assert!(h.windows(2).all(|w| w[1] <= w[0]), "best-so-far must not regress");
    }

    /// Count-of-ones (minimize), used to observe oscillation: starting at
    /// the optimum (all zeros), every move goes uphill and the tempting
    /// move is always straight back.
    struct CountOnes {
        n: usize,
    }
    impl crate::problem::BinaryProblem for CountOnes {
        fn dim(&self) -> usize {
            self.n
        }
        fn evaluate(&self, s: &BitString) -> i64 {
            s.count_ones() as i64
        }
    }
    impl IncrementalEval for CountOnes {
        type State = i64;
        fn init_state(&self, s: &BitString) -> i64 {
            s.count_ones() as i64
        }
        fn state_fitness(&self, state: &i64) -> i64 {
            *state
        }
        fn neighbor_fitness(&self, state: &mut i64, s: &BitString, mv: &FlipMove) -> i64 {
            let mut f = *state;
            for &b in mv.bits() {
                f += if s.get(b as usize) { -1 } else { 1 };
            }
            f
        }
        fn apply_move(&self, state: &mut i64, s: &BitString, mv: &FlipMove) {
            *state = self.neighbor_fitness(&mut state.clone(), s, mv);
        }
    }

    fn oscillation_trajectory(strategy: TabuStrategy) -> Vec<i64> {
        let p = CountOnes { n: 8 };
        let mut ex = SequentialExplorer::new(OneHamming::new(8));
        let search = TabuSearch {
            config: SearchConfig { max_iters: 6, target_fitness: None, time_limit: None, seed: 0 },
            strategy,
            aspiration: true,
            keep_history: true,
        };
        let r = search.run(&p, &mut ex, BitString::zeros(8));
        r.trajectory.expect("history requested")
    }

    #[test]
    fn ring_prevents_immediate_backtracking() {
        // Start at the optimum (weight 0). The first move must go uphill
        // to weight 1. Without memory, the best neighbor of weight-1 is
        // weight-0 again: the trajectory would oscillate 1,0,1,0….
        // The ring forbids recreating a visited solution, so weight 0 can
        // never reappear.
        let with_ring = oscillation_trajectory(TabuStrategy::SolutionRing { len: 16 });
        assert_eq!(with_ring[0], 1);
        assert!(
            with_ring.iter().all(|&f| f > 0),
            "ring failed to prevent revisiting the start: {with_ring:?}"
        );

        // Degenerate memory (ring of 1 = only the current solution) lets
        // the search bounce straight back.
        let no_memory = oscillation_trajectory(TabuStrategy::SolutionRing { len: 1 });
        assert!(
            no_memory.iter().any(|&f| f == 0),
            "expected oscillation without memory: {no_memory:?}"
        );
    }

    #[test]
    fn paper_default_list_size() {
        match TabuStrategy::paper_default(2628) {
            TabuStrategy::MoveRing { len } => assert_eq!(len, 438),
            _ => panic!("wrong strategy"),
        }
    }

    #[test]
    fn move_ring_prevents_reversal() {
        // Same setup as the solution-ring test: with a move ring the
        // immediate undo (same move index) is tabu, so weight 0 cannot
        // reappear right away.
        let with_ring = oscillation_trajectory(TabuStrategy::MoveRing { len: 16 });
        assert_eq!(with_ring[0], 1);
        assert!(with_ring[1] > 0, "move ring failed to forbid the undo: {with_ring:?}");
    }

    #[test]
    fn two_hamming_tabu_runs() {
        let p = ZeroCount { n: 16 };
        let mut rng = StdRng::seed_from_u64(2);
        let init = BitString::random(&mut rng, 16);
        let hood = TwoHamming::new(16);
        let mut ex = SequentialExplorer::new(hood);
        let search = TabuSearch::paper(SearchConfig::budget(100), hood.size());
        let r = search.run(&p, &mut ex, init.clone());
        // 2-flips preserve parity of ones-count relative to init: success
        // only possible if parity matches; either way fitness ≤ init's.
        let p0 = ZeroCount { n: 16 };
        use crate::problem::BinaryProblem;
        assert!(r.best_fitness <= p0.evaluate(&init));
        assert!(r.iterations > 0);
    }

    #[test]
    fn time_limit_stops_early() {
        let p = ZeroCount { n: 64 };
        let mut ex = SequentialExplorer::new(TwoHamming::new(64));
        let search = TabuSearch {
            config: SearchConfig {
                max_iters: u64::MAX,
                target_fitness: None, // never satisfied
                time_limit: Some(std::time::Duration::from_millis(50)),
                seed: 0,
            },
            strategy: TabuStrategy::paper_default(TwoHamming::new(64).size()),
            aspiration: true,
            keep_history: false,
        };
        let r = search.run(&p, &mut ex, BitString::zeros(64));
        assert!(r.wall < std::time::Duration::from_secs(10));
        assert!(!r.success);
    }
}
