//! General Variable Neighborhood Search (Mladenović & Hansen): the
//! shake-and-descend metaheuristic built on top of the
//! [`crate::vns::VariableNeighborhoodSearch`] descent.
//!
//! Where the plain descent stops at a local optimum of the neighborhood
//! union, GVNS *shakes* — jumps to a random solution of the k-th
//! neighborhood — and descends again, escalating k each time the descent
//! falls back to the incumbent. The shake draws a uniform flat index in
//! `[0, m_k)` and decodes it with the paper's `unrank` mappings, which
//! makes the one-to-two / one-to-three index transformations of
//! appendices B–C double as samplers.

use crate::bitstring::BitString;
use crate::explore::Explorer;
use crate::problem::IncrementalEval;
use crate::search::{SearchConfig, SearchResult};
use crate::vns::VariableNeighborhoodSearch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Shake-based General VNS over a neighborhood ladder.
pub struct GeneralVns {
    /// Generic search knobs. `max_iters` bounds the number of
    /// shake-descend rounds; each inner descent gets
    /// [`descent_budget`](Self::descent_budget) accepted moves.
    pub config: SearchConfig,
    /// Accepted-move budget handed to each inner descent.
    pub descent_budget: u64,
    /// How many consecutive shake levels to try before a full restart
    /// from a fresh random solution (0 disables restarts).
    pub restart_after: usize,
}

impl GeneralVns {
    /// GVNS with the given outer budget and a default inner descent
    /// budget of 1 000 accepted moves, no restarts.
    pub fn new(config: SearchConfig) -> Self {
        Self { config, descent_budget: 1_000, restart_after: 0 }
    }

    /// Replace the inner descent budget (builder style).
    pub fn with_descent_budget(mut self, budget: u64) -> Self {
        self.descent_budget = budget;
        self
    }

    /// Enable random restarts after `rounds` fruitless shake escalations.
    pub fn with_restarts(mut self, rounds: usize) -> Self {
        self.restart_after = rounds;
        self
    }

    /// Run from `init` over the ladder `explorers` (ordered small →
    /// large, as for the descent).
    pub fn run<P: IncrementalEval>(
        &self,
        problem: &P,
        explorers: &mut [Box<dyn Explorer<P>>],
        init: BitString,
    ) -> SearchResult {
        assert!(!explorers.is_empty(), "GVNS needs at least one neighborhood");
        let wall0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let n = problem.dim();

        let mut incumbent = init;
        let mut incumbent_f = problem.evaluate(&incumbent);
        let mut best = incumbent.clone();
        let mut best_f = incumbent_f;
        let mut evals = 1u64;
        let mut rounds = 0u64;
        let mut fruitless = 0usize;

        let descent = VariableNeighborhoodSearch::new(SearchConfig {
            max_iters: self.descent_budget,
            target_fitness: self.config.target_fitness,
            time_limit: self.config.time_limit,
            seed: self.config.seed,
        });

        // Round 0: descend from the initial solution before any shake.
        let r0 = descent.run(problem, explorers, incumbent.clone());
        evals += r0.evals;
        incumbent = r0.best;
        incumbent_f = r0.best_fitness;
        if incumbent_f < best_f {
            best = incumbent.clone();
            best_f = incumbent_f;
        }

        let mut level = 0usize;
        while rounds < self.config.max_iters {
            if self.config.target_fitness.is_some_and(|t| best_f <= t) {
                break;
            }
            if let Some(limit) = self.config.time_limit {
                if wall0.elapsed() >= limit {
                    break;
                }
            }

            // Shake: random neighbor in the level-th neighborhood.
            let ex = &explorers[level];
            let mv = ex.unrank(rng.gen_range(0..ex.size()));
            let mut shaken = incumbent.clone();
            shaken.apply(&mv);

            // Descend from the shaken point.
            let r = descent.run(problem, explorers, shaken);
            evals += r.evals + 1;
            rounds += 1;

            if r.best_fitness < incumbent_f {
                incumbent = r.best;
                incumbent_f = r.best_fitness;
                level = 0;
                fruitless = 0;
                if incumbent_f < best_f {
                    best = incumbent.clone();
                    best_f = incumbent_f;
                }
            } else if level + 1 < explorers.len() {
                level += 1;
            } else {
                level = 0;
                fruitless += 1;
                if self.restart_after > 0 && fruitless >= self.restart_after {
                    incumbent = BitString::random(&mut rng, n);
                    incumbent_f = problem.evaluate(&incumbent);
                    evals += 1;
                    fruitless = 0;
                }
            }
        }

        SearchResult {
            best,
            best_fitness: best_f,
            iterations: rounds,
            success: self.config.target_fitness.is_some_and(|t| best_f <= t),
            evals,
            wall: wall0.elapsed(),
            book: None,
            backend: format!("gvns/{} levels", explorers.len()),
            history: None,
            trajectory: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::SequentialExplorer;
    use crate::problem::testutil::ZeroCount;
    use lnls_neighborhood::{OneHamming, ThreeHamming, TwoHamming};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ladder(n: usize) -> Vec<Box<dyn Explorer<ZeroCount>>> {
        vec![
            Box::new(SequentialExplorer::new(OneHamming::new(n))),
            Box::new(SequentialExplorer::new(TwoHamming::new(n))),
            Box::new(SequentialExplorer::new(ThreeHamming::new(n))),
        ]
    }

    #[test]
    fn gvns_solves_zerocount() {
        let n = 24;
        let p = ZeroCount { n };
        let mut rng = StdRng::seed_from_u64(3);
        let init = BitString::random(&mut rng, n);
        let gvns = GeneralVns::new(SearchConfig::budget(50).with_seed(3));
        let r = gvns.run(&p, &mut ladder(n), init);
        assert!(r.success, "fitness {}", r.best_fitness);
        assert_eq!(r.backend, "gvns/3 levels");
    }

    #[test]
    fn gvns_escapes_descent_local_optimum() {
        // Deceptive trap: fitness 0 at all-ones, otherwise
        // 1 + number of ones — the descent from 0⃗ walks *downhill* to
        // 0⃗ = fitness 1 (a strict local optimum for any k ≤ 3 because
        // adding ones increases fitness until all n are set). Only
        // repeated shaking can cross the barrier; plain descent cannot.
        struct Trap {
            n: usize,
        }
        impl crate::problem::BinaryProblem for Trap {
            fn dim(&self) -> usize {
                self.n
            }
            fn evaluate(&self, s: &BitString) -> i64 {
                let ones = s.count_ones() as i64;
                if ones == self.n as i64 {
                    0
                } else {
                    1 + ones
                }
            }
            fn target_fitness(&self) -> Option<i64> {
                Some(0)
            }
        }
        impl IncrementalEval for Trap {
            type State = i64;
            fn init_state(&self, s: &BitString) -> i64 {
                crate::problem::BinaryProblem::evaluate(self, s)
            }
            fn state_fitness(&self, st: &i64) -> i64 {
                *st
            }
            fn neighbor_fitness(
                &self,
                _: &mut i64,
                s: &BitString,
                mv: &lnls_neighborhood::FlipMove,
            ) -> i64 {
                let mut ones = s.count_ones() as i64;
                for &b in mv.bits() {
                    ones += if s.get(b as usize) { -1 } else { 1 };
                }
                if ones == self.n as i64 {
                    0
                } else {
                    1 + ones
                }
            }
            fn apply_move(&self, st: &mut i64, s: &BitString, mv: &lnls_neighborhood::FlipMove) {
                *st = self.neighbor_fitness(&mut 0, s, mv);
            }
        }
        // Tiny n so that a shake plausibly lands near all-ones.
        let n = 5;
        let p = Trap { n };
        let mut explorers: Vec<Box<dyn Explorer<Trap>>> = vec![
            Box::new(SequentialExplorer::new(OneHamming::new(n))),
            Box::new(SequentialExplorer::new(TwoHamming::new(n))),
            Box::new(SequentialExplorer::new(ThreeHamming::new(n))),
        ];
        let gvns = GeneralVns::new(SearchConfig::budget(5_000).with_seed(7)).with_restarts(3);
        let r = gvns.run(&p, &mut explorers, BitString::zeros(n));
        assert!(r.success, "GVNS should eventually restart/shake into the optimum");
        assert!(r.iterations > 0);
    }

    #[test]
    fn gvns_respects_round_budget() {
        let n = 30;
        let p = ZeroCount { n };
        let gvns = GeneralVns::new(SearchConfig {
            max_iters: 4,
            target_fitness: None,
            time_limit: None,
            seed: 0,
        })
        .with_descent_budget(2);
        let r = gvns.run(&p, &mut ladder(n), BitString::zeros(n));
        assert_eq!(r.iterations, 4);
        assert!(!r.success);
    }

    #[test]
    fn gvns_builders() {
        let g = GeneralVns::new(SearchConfig::budget(1)).with_descent_budget(9).with_restarts(2);
        assert_eq!(g.descent_budget, 9);
        assert_eq!(g.restart_after, 2);
    }
}
