//! Iterated local search: descend to a local optimum, perturb with a few
//! random flips, repeat — keeping the best optimum seen. Another of the
//! "common LS heuristics" in the paper's introduction.

use crate::bitstring::BitString;
use crate::hillclimb::descend_in_place;
use crate::problem::IncrementalEval;
use crate::search::{SearchConfig, SearchResult};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// ILS over the `k`-Hamming descent neighborhood.
pub struct IteratedLocalSearch {
    /// Generic search knobs (`max_iters` counts outer perturbation
    /// rounds).
    pub config: SearchConfig,
    /// Hamming weight of the descent moves (1..=4).
    pub k: usize,
    /// Bits flipped by a perturbation.
    pub perturbation: usize,
    /// Cap on descent moves per round.
    pub descent_budget: u64,
}

impl IteratedLocalSearch {
    /// Standard ILS: 1-flip descent, perturbation of 4 random flips.
    pub fn new(config: SearchConfig) -> Self {
        Self { config, k: 1, perturbation: 4, descent_budget: 1 << 20 }
    }

    /// Run from `init`.
    pub fn run<P: IncrementalEval>(&self, problem: &P, init: BitString) -> SearchResult {
        let wall0 = Instant::now();
        let n = problem.dim();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut s = init;
        let mut state = problem.init_state(&s);
        let mut evals_total = 0u64;

        let (first_opt, evals) =
            descend_in_place(problem, &mut s, &mut state, self.k, self.descent_budget);
        evals_total += evals;
        let mut best = s.clone();
        let mut best_fitness = first_opt;
        let mut rounds = 0u64;
        let mut positions: Vec<u32> = (0..n as u32).collect();

        while rounds < self.config.max_iters {
            if self.config.target_fitness.is_some_and(|t| best_fitness <= t) {
                break;
            }
            if let Some(limit) = self.config.time_limit {
                if wall0.elapsed() >= limit {
                    break;
                }
            }
            rounds += 1;

            // Perturb: flip `perturbation` distinct random bits.
            positions.shuffle(&mut rng);
            for &b in positions.iter().take(self.perturbation.min(n)) {
                // Applying single flips keeps the incremental state exact.
                let mv = lnls_neighborhood::FlipMove::one(b);
                problem.apply_move(&mut state, &s, &mv);
                s.flip(b as usize);
            }

            let (f, evals) =
                descend_in_place(problem, &mut s, &mut state, self.k, self.descent_budget);
            evals_total += evals;
            if f < best_fitness {
                best_fitness = f;
                best = s.clone();
            } else {
                // Restart the walk from the incumbent (better-acceptance).
                s = best.clone();
                state = problem.init_state(&s);
            }
        }

        SearchResult {
            best,
            best_fitness,
            iterations: rounds,
            success: self.config.target_fitness.is_some_and(|t| best_fitness <= t),
            evals: evals_total,
            wall: wall0.elapsed(),
            book: None,
            backend: format!("ils/{}-flip", self.k),
            history: None,
            trajectory: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::testutil::ZeroCount;

    #[test]
    fn ils_solves_zerocount_quickly() {
        let p = ZeroCount { n: 40 };
        let mut rng = StdRng::seed_from_u64(1);
        let init = BitString::random(&mut rng, 40);
        let ils = IteratedLocalSearch::new(SearchConfig::budget(50).with_seed(7));
        let r = ils.run(&p, init);
        assert!(r.success);
        assert_eq!(r.best_fitness, 0);
    }

    #[test]
    fn better_acceptance_never_regresses() {
        let p = ZeroCount { n: 30 };
        let mut rng = StdRng::seed_from_u64(2);
        let init = BitString::random(&mut rng, 30);
        let short = IteratedLocalSearch {
            config: SearchConfig { max_iters: 3, target_fitness: None, time_limit: None, seed: 3 },
            k: 1,
            perturbation: 6,
            descent_budget: 1 << 20,
        };
        let long = IteratedLocalSearch {
            config: SearchConfig { max_iters: 30, target_fitness: None, time_limit: None, seed: 3 },
            k: 1,
            perturbation: 6,
            descent_budget: 1 << 20,
        };
        let f_short = short.run(&p, init.clone()).best_fitness;
        let f_long = long.run(&p, init).best_fitness;
        assert!(f_long <= f_short, "more rounds must not be worse: {f_long} vs {f_short}");
    }
}
