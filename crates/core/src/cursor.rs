//! The steppable-search contract every schedulable driver implements.
//!
//! The paper's core observation is that *one neighborhood iteration* —
//! generate the full neighborhood, evaluate it on the device, commit the
//! selected move — is the unit of GPU work. That makes it the natural
//! preemption quantum for a multi-tenant fleet: any search whose
//! loop-carried state can be held in a resumable cursor can be stepped a
//! quantum at a time, checkpointed mid-run, and interleaved with other
//! tenants without changing a single move it makes.
//!
//! [`SearchCursor`] captures that contract. A cursor owns every piece of
//! loop-carried state (current solution, memory structures, RNG,
//! counters); what it does *not* own — the problem instance and the
//! evaluation backend — is passed to [`step_batch`](SearchCursor::step_batch)
//! as the [`Ctx`](SearchCursor::Ctx) associated type, so one trait covers
//! drivers with very different externals:
//!
//! * [`TabuCursor`](crate::tabu::TabuCursor) steps against
//!   `(&P, &mut dyn Explorer<P>)` — full-neighborhood tabu search;
//! * [`AnnealCursor`](crate::anneal::AnnealCursor) steps against `&P` —
//!   simulated annealing samples its own neighbors;
//! * `lnls_qap::RtsCursor` steps against
//!   `(&QapInstance, &mut dyn SwapEvaluator)` — Taillard's robust tabu
//!   on the QAP swap neighborhood.
//!
//! Implementations must be **bit-exact** with their run-to-completion
//! drivers: stepping a cursor in quanta of any size makes exactly the
//! moves one uninterrupted run makes. The runtime scheduler's preemption
//! tests enforce this property end to end.

/// One resumable search walk, steppable in iteration quanta.
///
/// See the [module docs](self) for the contract. Wall-clock limits are
/// deliberately outside the trait — a cursor has no clock; drivers that
/// honor [`SearchConfig::time_limit`](crate::search::SearchConfig)
/// check it between `step_batch` calls.
///
/// `SearchCursor` is not object-safe (the `Ctx` GAT names each driver's
/// externals precisely); schedulers that need a uniform handle bundle a
/// cursor with its externals behind [`DynCursor`] — see
/// [`ProblemCursor`] for the ready-made adapter covering every cursor
/// that steps against `&P` alone.
pub trait SearchCursor {
    /// External dependencies one step needs (problem instance,
    /// evaluation backend). Borrowed per call so the cursor itself stays
    /// a self-contained, cloneable bundle of loop-carried state.
    type Ctx<'a>
    where
        Self: 'a;

    /// Self-contained deep copy of the loop-carried state. Restoring it
    /// and continuing reproduces the original walk move for move.
    type Snapshot;

    /// Run at most `quota` iterations; returns how many actually ran.
    /// A short count means the walk finished ([`is_done`](Self::is_done)
    /// turned true) before the quota was spent. `quota == u64::MAX`
    /// means "run to completion".
    fn step_batch(&mut self, ctx: Self::Ctx<'_>, quota: u64) -> u64;

    /// True when the walk has nothing left to do (target reached or
    /// budget exhausted); `step_batch` is a no-op from then on.
    fn is_done(&self) -> bool;

    /// Best fitness (cost) seen so far.
    fn best(&self) -> i64;

    /// Iterations executed so far.
    fn iterations(&self) -> u64;

    /// Capture the walk mid-flight.
    fn snapshot(&self) -> Self::Snapshot;

    /// Rewind the walk to a captured snapshot.
    fn restore(&mut self, snapshot: Self::Snapshot);
}

/// Object-safe view of a steppable walk: a [`SearchCursor`] *bundled
/// with the externals its steps need*, so callers that cannot name the
/// concrete `Ctx` type (job schedulers, registries, plugin layers) can
/// still drive it through `Box<dyn DynCursor>`.
///
/// The contract is inherited from [`SearchCursor`]: stepping in quanta
/// of any size makes exactly the moves one uninterrupted run makes.
pub trait DynCursor: Send {
    /// Run at most `quota` iterations; returns how many actually ran
    /// (see [`SearchCursor::step_batch`]).
    fn step(&mut self, quota: u64) -> u64;

    /// True when the walk has nothing left to do.
    fn is_done(&self) -> bool;

    /// Best fitness (cost) seen so far.
    fn best(&self) -> i64;

    /// Iterations executed so far.
    fn iterations(&self) -> u64;
}

/// Adapter turning any cursor whose [`Ctx`](SearchCursor::Ctx) is a
/// plain problem borrow (`&P`) into an object-safe [`DynCursor`] by
/// bundling it with a shared handle to that problem.
///
/// [`AnnealCursor`](crate::anneal::AnnealCursor) is the bundled
/// implementation: simulated annealing samples its own neighbors, so
/// the problem instance is the only external a step needs. Cursors with
/// richer externals (an evaluation backend, a device ledger) keep their
/// own purpose-built executors.
pub struct ProblemCursor<P, C> {
    problem: std::sync::Arc<P>,
    cursor: C,
}

impl<P, C> ProblemCursor<P, C> {
    /// Bundle `cursor` with the problem it steps against.
    pub fn new(problem: std::sync::Arc<P>, cursor: C) -> Self {
        Self { problem, cursor }
    }

    /// The bundled problem instance.
    pub fn problem(&self) -> &std::sync::Arc<P> {
        &self.problem
    }

    /// The wrapped cursor.
    pub fn cursor(&self) -> &C {
        &self.cursor
    }

    /// Unbundle into the problem handle and the cursor.
    pub fn into_parts(self) -> (std::sync::Arc<P>, C) {
        (self.problem, self.cursor)
    }
}

impl<P, C: Clone> Clone for ProblemCursor<P, C> {
    fn clone(&self) -> Self {
        Self { problem: std::sync::Arc::clone(&self.problem), cursor: self.cursor.clone() }
    }
}

impl<P, C> DynCursor for ProblemCursor<P, C>
where
    P: Send + Sync + 'static,
    C: Send + 'static + for<'a> SearchCursor<Ctx<'a> = &'a P>,
{
    fn step(&mut self, quota: u64) -> u64 {
        self.cursor.step_batch(&self.problem, quota)
    }

    fn is_done(&self) -> bool {
        self.cursor.is_done()
    }

    fn best(&self) -> i64 {
        self.cursor.best()
    }

    fn iterations(&self) -> u64 {
        self.cursor.iterations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anneal::{AnnealCursor, SimulatedAnnealing};
    use crate::bitstring::BitString;
    use crate::explore::{Explorer, SequentialExplorer};
    use crate::problem::testutil::ZeroCount;
    use crate::search::SearchConfig;
    use crate::tabu::TabuSearch;
    use lnls_neighborhood::{Neighborhood, TwoHamming};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Stepping a cursor in ragged quanta — with a snapshot/restore
    /// detour in the middle — lands on exactly the run-to-completion
    /// result. Exercised for both core cursors through the one trait.
    #[test]
    fn quanta_and_snapshots_are_invisible_tabu() {
        let p = ZeroCount { n: 24 };
        let hood = TwoHamming::new(24);
        let mut rng = StdRng::seed_from_u64(3);
        let init = BitString::random(&mut rng, 24);
        let search = TabuSearch::paper(SearchConfig::budget(40).with_seed(9), hood.size());

        let mut ex = SequentialExplorer::new(hood);
        let want = search.run(&p, &mut ex, init.clone());

        let mut cursor = search.cursor(&p, init);
        let mut ex2 = SequentialExplorer::new(hood);
        let mut ran = 0;
        for quota in [1u64, 3, 2, 7, 1, u64::MAX] {
            let snap = cursor.snapshot();
            let a = cursor.step_batch((&p, &mut ex2 as &mut dyn Explorer<ZeroCount>), quota);
            // Rewind and replay the same quota: identical progress.
            cursor.restore(snap);
            let b = cursor.step_batch((&p, &mut ex2 as &mut dyn Explorer<ZeroCount>), quota);
            assert_eq!(a, b, "replay after restore must be deterministic");
            ran += b;
            if cursor.is_done() {
                break;
            }
        }
        assert_eq!(ran, want.iterations);
        assert_eq!(cursor.best(), want.best_fitness);
        assert_eq!(cursor.iterations(), want.iterations);
    }

    #[test]
    fn quanta_and_snapshots_are_invisible_anneal() {
        let p = ZeroCount { n: 20 };
        let hood = TwoHamming::new(20);
        let mut rng = StdRng::seed_from_u64(4);
        let init = BitString::random(&mut rng, 20);
        let sa = SimulatedAnnealing::new(SearchConfig::budget(300).with_seed(7), hood, 1.5);
        let want = sa.run(&p, init.clone());

        let mut cursor: AnnealCursor<ZeroCount, TwoHamming> = sa.cursor(&p, init);
        while !cursor.is_done() {
            let snap = cursor.snapshot();
            cursor.step_batch(&p, 11);
            let after = cursor.iterations();
            cursor.restore(snap);
            cursor.step_batch(&p, 11);
            assert_eq!(cursor.iterations(), after);
        }
        assert_eq!(cursor.best(), want.best_fitness);
        assert_eq!(cursor.iterations(), want.iterations);
    }

    /// The object-safe adapter must reproduce the typed walk exactly:
    /// a boxed `dyn DynCursor` stepped in ragged quanta lands on the
    /// run-to-completion result.
    #[test]
    fn problem_cursor_erases_without_changing_the_walk() {
        let p = ZeroCount { n: 20 };
        let hood = TwoHamming::new(20);
        let mut rng = StdRng::seed_from_u64(8);
        let init = BitString::random(&mut rng, 20);
        let sa = SimulatedAnnealing::new(SearchConfig::budget(250).with_seed(13), hood, 1.4);
        let want = sa.run(&p, init.clone());

        let cursor = sa.cursor(&p, init);
        let mut walk: Box<dyn DynCursor> =
            Box::new(ProblemCursor::new(std::sync::Arc::new(p), cursor));
        for quota in [5u64, 1, 90, 3].iter().cycle() {
            if walk.step(*quota) == 0 {
                break;
            }
        }
        assert!(walk.is_done());
        assert_eq!(walk.best(), want.best_fitness);
        assert_eq!(walk.iterations(), want.iterations);
    }
}
