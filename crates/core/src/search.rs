//! Common search plumbing: stopping criteria, results, run statistics.

use crate::bitstring::BitString;
use lnls_gpu_sim::TimeBook;
use std::time::Duration;

/// Generic knobs shared by every local-search driver.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Hard iteration cap (the paper: `n(n−1)(n−2)/6`).
    pub max_iters: u64,
    /// Stop as soon as this fitness is reached (the paper: 0).
    pub target_fitness: Option<i64>,
    /// Wall-clock budget for one run, if any.
    pub time_limit: Option<Duration>,
    /// RNG seed (initial solutions, tie-breaking, perturbations).
    pub seed: u64,
}

impl SearchConfig {
    /// A config with the given iteration budget and everything else
    /// defaulted (target 0 fitness, no time limit, seed 0).
    pub fn budget(max_iters: u64) -> Self {
        Self { max_iters, target_fitness: Some(0), time_limit: None, seed: 0 }
    }

    /// Replace the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the target fitness (builder style).
    pub fn with_target(mut self, target: Option<i64>) -> Self {
        self.target_fitness = target;
        self
    }
}

/// Outcome of one search run.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// Best solution found.
    pub best: BitString,
    /// Its fitness.
    pub best_fitness: i64,
    /// Iterations executed.
    pub iterations: u64,
    /// True if the target fitness was reached.
    pub success: bool,
    /// Neighbor evaluations performed.
    pub evals: u64,
    /// Wall-clock duration of the run (simulation time, not modeled time).
    pub wall: Duration,
    /// Modeled device/host time ledger, when the backend prices its work.
    pub book: Option<TimeBook>,
    /// Backend that explored the neighborhoods.
    pub backend: String,
    /// Fitness trajectory (best-so-far per iteration), kept only when
    /// requested — costs memory on long runs.
    pub history: Option<Vec<i64>>,
    /// Fitness of the *current* solution per iteration (tabu search may
    /// move uphill); kept together with `history`.
    pub trajectory: Option<Vec<i64>>,
}

impl SearchResult {
    /// Convenience: the modeled GPU seconds, if any.
    pub fn gpu_seconds(&self) -> Option<f64> {
        self.book.as_ref().map(TimeBook::gpu_total_s)
    }

    /// Convenience: the modeled sequential-host seconds, if any.
    pub fn host_seconds(&self) -> Option<f64> {
        self.book.as_ref().map(|b| b.host_s)
    }
}

/// Why a run stopped.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Target fitness reached.
    Target,
    /// Iteration budget exhausted.
    MaxIters,
    /// Wall-clock budget exhausted.
    TimeLimit,
    /// The driver had nowhere left to go (e.g. hill climber at a local
    /// optimum).
    Converged,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders() {
        let c = SearchConfig::budget(100).with_seed(7).with_target(None);
        assert_eq!(c.max_iters, 100);
        assert_eq!(c.seed, 7);
        assert_eq!(c.target_fitness, None);
    }

    #[test]
    fn result_accessors() {
        let r = SearchResult {
            best: BitString::zeros(4),
            best_fitness: 3,
            iterations: 10,
            success: false,
            evals: 40,
            wall: Duration::from_millis(5),
            book: None,
            backend: "test".into(),
            history: None,
            trajectory: None,
        };
        assert!(r.gpu_seconds().is_none());
        assert!(r.host_seconds().is_none());
    }
}
