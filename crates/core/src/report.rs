//! Aggregation of repeated runs into paper-style table rows.
//!
//! The paper's Tables I–III report, per instance: average fitness with the
//! standard deviation as a subscript, the average iteration count, the
//! number of successful tries out of 50, CPU time, GPU time and the
//! acceleration factor. [`TableRow`] carries exactly those columns.

use crate::search::SearchResult;

/// One row of a paper-style results table.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Instance label, e.g. `"73 × 73"`.
    pub label: String,
    /// Number of tries aggregated.
    pub tries: usize,
    /// Mean best fitness over tries.
    pub mean_fitness: f64,
    /// Standard deviation of best fitness (the paper's subscript).
    pub std_fitness: f64,
    /// Mean iterations per try.
    pub mean_iters: f64,
    /// Tries reaching the target fitness.
    pub solutions: usize,
    /// Modeled sequential-CPU seconds per try (mean), if available.
    pub cpu_time_s: Option<f64>,
    /// Modeled GPU seconds per try (mean), if available.
    pub gpu_time_s: Option<f64>,
    /// Measured wall-clock seconds per try (mean) of the simulation.
    pub wall_s: f64,
}

impl TableRow {
    /// Aggregate repeated runs of one instance.
    pub fn aggregate(label: impl Into<String>, results: &[SearchResult]) -> Self {
        assert!(!results.is_empty(), "cannot aggregate zero runs");
        let tries = results.len();
        let nf = tries as f64;
        let mean_fitness = results.iter().map(|r| r.best_fitness as f64).sum::<f64>() / nf;
        let var = results
            .iter()
            .map(|r| {
                let d = r.best_fitness as f64 - mean_fitness;
                d * d
            })
            .sum::<f64>()
            / nf;
        let mean_iters = results.iter().map(|r| r.iterations as f64).sum::<f64>() / nf;
        let solutions = results.iter().filter(|r| r.success).count();
        let cpu: Vec<f64> = results.iter().filter_map(SearchResult::host_seconds).collect();
        let gpu: Vec<f64> = results.iter().filter_map(SearchResult::gpu_seconds).collect();
        let mean_opt = |v: &[f64]| (!v.is_empty()).then(|| v.iter().sum::<f64>() / v.len() as f64);
        TableRow {
            label: label.into(),
            tries,
            mean_fitness,
            std_fitness: var.sqrt(),
            mean_iters,
            solutions,
            cpu_time_s: mean_opt(&cpu),
            gpu_time_s: mean_opt(&gpu),
            wall_s: results.iter().map(|r| r.wall.as_secs_f64()).sum::<f64>() / nf,
        }
    }

    /// The acceleration factor ("×9.9" in Table II), when both modeled
    /// times are present.
    pub fn acceleration(&self) -> Option<f64> {
        match (self.cpu_time_s, self.gpu_time_s) {
            (Some(c), Some(g)) if g > 0.0 => Some(c / g),
            _ => None,
        }
    }

    /// Paper-style header matching [`Display`](std::fmt::Display)'s
    /// columns.
    pub fn header() -> &'static str {
        "Problem        Fitness(std)      #iter      #sol   CPU time   GPU time   Accel."
    }
}

impl core::fmt::Display for TableRow {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:<14} {:>7.1}({:<6.1}) {:>9.1} {:>6}/{:<3}",
            self.label,
            self.mean_fitness,
            self.std_fitness,
            self.mean_iters,
            self.solutions,
            self.tries
        )?;
        match self.cpu_time_s {
            Some(c) => write!(f, " {:>9}", fmt_seconds(c))?,
            None => write!(f, " {:>9}", "-")?,
        }
        match self.gpu_time_s {
            Some(g) => write!(f, " {:>9}", fmt_seconds(g))?,
            None => write!(f, " {:>9}", "-")?,
        }
        match self.acceleration() {
            Some(a) => write!(f, "   x{a:<6.1}"),
            None => write!(f, "   {:<7}", "-"),
        }
    }
}

/// Human-scale seconds formatting (`950ms`, `4.0s`, `1947s`).
pub fn fmt_seconds(s: f64) -> String {
    if s < 0.0995 {
        format!("{:.0}ms", s * 1000.0)
    } else if s < 100.0 {
        format!("{s:.1}s")
    } else {
        format!("{s:.0}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstring::BitString;
    use lnls_gpu_sim::TimeBook;
    use std::time::Duration;

    fn result(fitness: i64, iters: u64, success: bool, cpu: f64, gpu: f64) -> SearchResult {
        let book = TimeBook { kernel_s: gpu, host_s: cpu, ..Default::default() };
        SearchResult {
            best: BitString::zeros(4),
            best_fitness: fitness,
            iterations: iters,
            success,
            evals: 0,
            wall: Duration::from_millis(10),
            book: Some(book),
            backend: "test".into(),
            history: None,
            trajectory: None,
        }
    }

    #[test]
    fn aggregates_match_hand_computation() {
        let rows = [
            result(10, 100, false, 4.0, 9.0),
            result(0, 50, true, 4.0, 9.0),
            result(20, 150, false, 4.0, 9.0),
        ];
        let row = TableRow::aggregate("73 × 73", &rows);
        assert_eq!(row.tries, 3);
        assert!((row.mean_fitness - 10.0).abs() < 1e-12);
        assert!((row.std_fitness - (200.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((row.mean_iters - 100.0).abs() < 1e-12);
        assert_eq!(row.solutions, 1);
        assert!((row.cpu_time_s.unwrap() - 4.0).abs() < 1e-12);
        assert!((row.acceleration().unwrap() - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn display_contains_key_columns() {
        let rows = [result(7, 10, false, 81.0, 8.0)];
        let row = TableRow::aggregate("73 × 73", &rows);
        let s = row.to_string();
        assert!(s.contains("73 × 73"), "{s}");
        assert!(s.contains("0/1"), "{s}");
        assert!(s.contains("x10.1") || s.contains("x10.2"), "{s}");
        assert!(!TableRow::header().is_empty());
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_seconds(0.05), "50ms");
        assert_eq!(fmt_seconds(4.0), "4.0s");
        assert_eq!(fmt_seconds(1947.3), "1947s");
    }

    #[test]
    #[should_panic(expected = "zero runs")]
    fn empty_aggregate_rejected() {
        let _ = TableRow::aggregate("x", &[]);
    }
}
