//! Hill climbing (steepest descent / first improvement) — the simplest
//! instance of the paper's Fig. 1 model, and the inner loop of ILS.

use crate::bitstring::BitString;
use crate::explore::Explorer;
use crate::problem::IncrementalEval;
use crate::search::{SearchConfig, SearchResult};
use lnls_neighborhood::{lex_advance, FlipMove};
use std::time::Instant;

/// Pivot rule for hill climbing.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Pivot {
    /// Evaluate the whole neighborhood, take the best improving move.
    BestImprovement,
    /// Take the first improving move found (lexicographic scan).
    FirstImprovement,
}

/// Deterministic hill climber over an [`Explorer`] backend. Stops at a
/// local optimum, the iteration budget, or the target fitness.
pub struct HillClimbing {
    /// Generic search knobs.
    pub config: SearchConfig,
    /// Pivot rule.
    pub pivot: Pivot,
}

impl HillClimbing {
    /// Best-improvement climber with the given budget.
    pub fn best(config: SearchConfig) -> Self {
        Self { config, pivot: Pivot::BestImprovement }
    }

    /// First-improvement climber with the given budget.
    pub fn first(config: SearchConfig) -> Self {
        Self { config, pivot: Pivot::FirstImprovement }
    }

    /// Run from `init`.
    pub fn run<P, E>(&self, problem: &P, explorer: &mut E, init: BitString) -> SearchResult
    where
        P: IncrementalEval,
        E: Explorer<P> + ?Sized,
    {
        let t0 = Instant::now();
        let mut s = init;
        let mut state = problem.init_state(&s);
        let mut cur = problem.state_fitness(&state);
        let mut out = Vec::new();
        let mut iterations = 0;
        let mut evals = 0u64;

        while iterations < self.config.max_iters {
            if self.config.target_fitness.is_some_and(|t| cur <= t) {
                break;
            }
            if let Some(limit) = self.config.time_limit {
                if t0.elapsed() >= limit {
                    break;
                }
            }
            let mv = match self.pivot {
                Pivot::BestImprovement => {
                    explorer.explore(problem, &s, &mut state, &mut out);
                    evals += out.len() as u64;
                    let (best_idx, &best_f) = out
                        .iter()
                        .enumerate()
                        .min_by_key(|&(i, f)| (*f, i))
                        .expect("non-empty neighborhood");
                    if best_f >= cur {
                        break; // local optimum
                    }
                    cur = best_f;
                    explorer.unrank(best_idx as u64)
                }
                Pivot::FirstImprovement => {
                    // Enumerate through the explorer (union-safe) and
                    // stop at the first improving move.
                    let mut found: Option<FlipMove> = None;
                    explorer.for_each_move(0, explorer.size(), &mut |_, mv| {
                        evals += 1;
                        let f = problem.neighbor_fitness(&mut state, &s, &mv);
                        if f < cur {
                            cur = f;
                            found = Some(mv);
                            return false;
                        }
                        true
                    });
                    match found {
                        Some(mv) => mv,
                        None => break, // local optimum
                    }
                }
            };
            problem.apply_move(&mut state, &s, &mv);
            s.apply(&mv);
            explorer.committed(problem, &s, &state, &mv);
            iterations += 1;
        }

        let success = self.config.target_fitness.is_some_and(|t| cur <= t);
        SearchResult {
            best: s,
            best_fitness: cur,
            iterations,
            success,
            evals,
            wall: t0.elapsed(),
            book: explorer.book(),
            backend: explorer.backend(),
            history: None,
            trajectory: None,
        }
    }
}

/// Free-standing first-improvement descent used by drivers that do not
/// carry an explorer (SA restarts, ILS inner loop): descends `s` in place
/// until a local optimum of the `k`-Hamming neighborhood, returning the
/// final fitness and evaluations spent.
pub fn descend_in_place<P: IncrementalEval>(
    problem: &P,
    s: &mut BitString,
    state: &mut P::State,
    k: usize,
    max_moves: u64,
) -> (i64, u64) {
    let n = problem.dim();
    let mut cur = problem.state_fitness(state);
    let mut evals = 0u64;
    let mut moves = 0u64;
    'outer: while moves < max_moves {
        let mut bits = [0u32; 4];
        for (i, b) in bits.iter_mut().enumerate().take(k) {
            *b = i as u32;
        }
        loop {
            let mv = FlipMove::from_sorted(&bits[..k]);
            evals += 1;
            let f = problem.neighbor_fitness(state, s, &mv);
            if f < cur {
                problem.apply_move(state, s, &mv);
                s.apply(&mv);
                cur = f;
                moves += 1;
                continue 'outer;
            }
            if !lex_advance(&mut bits[..k], n as u32) {
                break 'outer; // full scan, no improvement
            }
        }
    }
    (cur, evals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::SequentialExplorer;
    use crate::problem::testutil::ZeroCount;
    use lnls_neighborhood::OneHamming;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn best_improvement_solves_zerocount() {
        let p = ZeroCount { n: 48 };
        let mut rng = StdRng::seed_from_u64(3);
        let init = BitString::random(&mut rng, 48);
        let mut ex = SequentialExplorer::new(OneHamming::new(48));
        let hc = HillClimbing::best(SearchConfig::budget(1000));
        let r = hc.run(&p, &mut ex, init);
        assert!(r.success);
        assert_eq!(r.best_fitness, 0);
    }

    #[test]
    fn first_improvement_solves_zerocount_with_fewer_evals_per_step() {
        let p = ZeroCount { n: 48 };
        let mut rng = StdRng::seed_from_u64(3);
        let init = BitString::random(&mut rng, 48);
        let zeros_at_start = {
            use crate::problem::BinaryProblem;
            p.evaluate(&init) as u64
        };
        let mut ex = SequentialExplorer::new(OneHamming::new(48));
        let hc = HillClimbing::first(SearchConfig::budget(1000));
        let r = hc.run(&p, &mut ex, init);
        assert!(r.success);
        // First improvement on ZeroCount touches each zero bit once; the
        // scan resets each iteration, so evals ≤ iterations × n.
        assert_eq!(r.iterations, zeros_at_start);
        assert!(r.evals <= r.iterations * 48);
    }

    #[test]
    fn stops_at_local_optimum() {
        // ZeroCount has no local optima under 1-flip except the global
        // one, so force a budgeted stop instead.
        let p = ZeroCount { n: 32 };
        let mut rng = StdRng::seed_from_u64(4);
        let init = BitString::random(&mut rng, 32);
        let mut ex = SequentialExplorer::new(OneHamming::new(32));
        let hc = HillClimbing::best(SearchConfig { max_iters: 2, ..SearchConfig::budget(2) });
        let r = hc.run(&p, &mut ex, init);
        assert_eq!(r.iterations, 2);
        assert!(!r.success);
    }

    #[test]
    fn descend_in_place_reaches_optimum() {
        let p = ZeroCount { n: 30 };
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = BitString::random(&mut rng, 30);
        let mut st = p.init_state(&s);
        let (f, evals) = descend_in_place(&p, &mut s, &mut st, 1, 10_000);
        assert_eq!(f, 0);
        assert!(evals > 0);
        assert_eq!(s.count_ones(), 30);
    }
}
