//! Hand-rolled byte-level persistence.
//!
//! The offline build environment has no serde, so everything the fleet
//! checkpoints to disk is written through this little codec instead:
//! fixed-width little-endian scalars, length-prefixed sequences, and a
//! bounds-checked [`Reader`] on the way back in. The format is *not* a
//! wire protocol — it is a private snapshot format whose only contract
//! is that `read(write(x)) == x` for the same build of this workspace
//! (the runtime's round-trip tests enforce exactly that).
//!
//! Two traits:
//!
//! * [`Persist`] — structural encode/decode for a value;
//! * [`PersistTag`] — a stable identity string for *type registries*:
//!   the runtime's type-erased job store needs to know which concrete
//!   `(problem, neighborhood)` pair to rebuild before it can decode the
//!   payload bytes, and the tag is that key.
//!
//! This module also implements `Persist` for the foreign types the fleet
//! snapshot embeds (device/host specs, time ledgers, neighborhoods, the
//! `rand`-shim RNG) — legal here because the trait is local to this
//! crate.

use crate::bitstring::BitString;
use crate::search::{SearchConfig, SearchResult};
use crate::tabu::{TabuSearch, TabuStrategy};
use lnls_gpu_sim::{DeviceSpec, EngineConfig, HostSpec, LaunchMode, SelectionMode, TimeBook};
use lnls_neighborhood::{FlipMove, KHamming, Neighborhood, OneHamming, ThreeHamming, TwoHamming};
use rand::rngs::StdRng;
use std::fmt;
use std::time::Duration;

/// Decode failure: truncated input, a bad tag, or a value that fails an
/// invariant (e.g. non-UTF-8 where a string was promised).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError(pub String);

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "persist: {}", self.0)
    }
}

impl std::error::Error for PersistError {}

impl PersistError {
    /// A decode error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

/// Bounds-checked sequential reader over a snapshot byte buffer.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::new(format!(
                "truncated input: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Decode one value.
    pub fn read<T: Persist>(&mut self) -> Result<T, PersistError> {
        T::read(self)
    }

    /// Consume and verify a fixed magic prefix — the entry check of
    /// every tagged on-disk artifact (fleet checkpoints, workload
    /// traces). `what` names the artifact in the error message.
    pub fn expect_magic(&mut self, magic: &[u8], what: &str) -> Result<(), PersistError> {
        let got = self
            .take(magic.len())
            .map_err(|_| PersistError::new(format!("not a {what} (truncated magic)")))?;
        if got != magic {
            return Err(PersistError::new(format!("not a {what} (bad magic)")));
        }
        Ok(())
    }
}

/// Structural byte-level encode/decode. See the [module docs](self) for
/// the format contract.
pub trait Persist: Sized {
    /// Append this value's encoding to `out`.
    fn write(&self, out: &mut Vec<u8>);

    /// Decode one value from the reader.
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError>;

    /// Convenience: encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write(&mut out);
        out
    }
}

/// A stable identity string for registry-keyed decoding: the runtime
/// maps `TAG` back to the concrete Rust type before decoding its bytes.
/// Keep tags unique and never reuse one for a different layout.
pub trait PersistTag {
    /// The registry key.
    const TAG: &'static str;
}

// -- scalars ----------------------------------------------------------

macro_rules! impl_persist_le {
    ($($t:ty),*) => {$(
        impl Persist for $t {
            fn write(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
                let bytes = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("sized take")))
            }
        }
    )*};
}
impl_persist_le!(u8, u16, u32, u64, i32, i64);

impl Persist for usize {
    fn write(&self, out: &mut Vec<u8>) {
        (*self as u64).write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let v = u64::read(r)?;
        usize::try_from(v).map_err(|_| PersistError::new("usize overflow"))
    }
}

impl Persist for f64 {
    fn write(&self, out: &mut Vec<u8>) {
        self.to_bits().write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(f64::from_bits(u64::read(r)?))
    }
}

impl Persist for bool {
    fn write(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match u8::read(r)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(PersistError::new(format!("bad bool byte {b}"))),
        }
    }
}

impl Persist for Duration {
    fn write(&self, out: &mut Vec<u8>) {
        self.as_secs().write(out);
        self.subsec_nanos().write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let secs = u64::read(r)?;
        let nanos = u32::read(r)?;
        Ok(Duration::new(secs, nanos))
    }
}

// -- containers -------------------------------------------------------

impl Persist for String {
    fn write(&self, out: &mut Vec<u8>) {
        self.len().write(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let len = usize::read(r)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PersistError::new("non-UTF-8 string"))
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn write(&self, out: &mut Vec<u8>) {
        self.len().write(out);
        for item in self {
            item.write(out);
        }
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let len = usize::read(r)?;
        // Guard against absurd prefixes on corrupt input: each element
        // needs at least one byte.
        if len > r.remaining() {
            return Err(PersistError::new(format!("sequence length {len} exceeds input")));
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::read(r)?);
        }
        Ok(v)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn write(&self, out: &mut Vec<u8>) {
        self.0.write(out);
        self.1.write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok((A::read(r)?, B::read(r)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn write(&self, out: &mut Vec<u8>) {
        self.0.write(out);
        self.1.write(out);
        self.2.write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok((A::read(r)?, B::read(r)?, C::read(r)?))
    }
}

impl<T: Persist> Persist for Option<T> {
    fn write(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.write(out);
            }
        }
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match u8::read(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::read(r)?)),
            b => Err(PersistError::new(format!("bad option tag {b}"))),
        }
    }
}

// -- workspace types --------------------------------------------------

impl Persist for BitString {
    fn write(&self, out: &mut Vec<u8>) {
        self.len().write(out);
        let mut bits = Vec::with_capacity(self.len());
        for i in 0..self.len() {
            bits.push(self.get(i));
        }
        // One byte per bit would bloat long strings; pack 8 per byte.
        self.len().div_ceil(8).write(out);
        for chunk in bits.chunks(8) {
            let mut b = 0u8;
            for (i, &bit) in chunk.iter().enumerate() {
                b |= (bit as u8) << i;
            }
            out.push(b);
        }
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let len = usize::read(r)?;
        let nbytes = usize::read(r)?;
        if nbytes != len.div_ceil(8) {
            return Err(PersistError::new("bitstring length/byte-count mismatch"));
        }
        let bytes = r.take(nbytes)?;
        let mut s = BitString::zeros(len);
        for i in 0..len {
            if (bytes[i / 8] >> (i % 8)) & 1 == 1 {
                s.set(i, true);
            }
        }
        Ok(s)
    }
}

impl Persist for FlipMove {
    fn write(&self, out: &mut Vec<u8>) {
        let bits = self.bits();
        (bits.len() as u8).write(out);
        for &b in bits {
            b.write(out);
        }
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let k = u8::read(r)? as usize;
        if k == 0 || k > 4 {
            return Err(PersistError::new(format!("bad flip-move arity {k}")));
        }
        let mut bits = [0u32; 4];
        for b in bits.iter_mut().take(k) {
            *b = u32::read(r)?;
        }
        if !bits[..k].windows(2).all(|w| w[0] < w[1]) {
            return Err(PersistError::new("flip-move bits not strictly sorted"));
        }
        Ok(FlipMove::from_sorted(&bits[..k]))
    }
}

impl Persist for StdRng {
    fn write(&self, out: &mut Vec<u8>) {
        for w in self.state() {
            w.write(out);
        }
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = u64::read(r)?;
        }
        Ok(StdRng::from_state(s))
    }
}

impl Persist for TimeBook {
    fn write(&self, out: &mut Vec<u8>) {
        self.kernel_s.write(out);
        self.overhead_s.write(out);
        self.h2d_s.write(out);
        self.d2h_s.write(out);
        self.bytes_h2d.write(out);
        self.bytes_d2h.write(out);
        self.launches.write(out);
        self.host_s.write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(TimeBook {
            kernel_s: r.read()?,
            overhead_s: r.read()?,
            h2d_s: r.read()?,
            d2h_s: r.read()?,
            bytes_h2d: r.read()?,
            bytes_d2h: r.read()?,
            launches: r.read()?,
            host_s: r.read()?,
        })
    }
}

/// Specs carry `&'static str` names. Decoding reuses the preset name
/// when the string matches one; an unrecognized (custom) name is leaked
/// once per load — snapshot loading is rare enough that this is the
/// honest dependency-free trade.
fn static_name(name: String, presets: &[&'static str]) -> &'static str {
    presets
        .iter()
        .find(|p| **p == name)
        .copied()
        .unwrap_or_else(|| Box::leak(name.into_boxed_str()))
}

impl Persist for EngineConfig {
    fn write(&self, out: &mut Vec<u8>) {
        self.copy_engines.write(out);
        self.concurrent_kernels.write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let cfg = EngineConfig { copy_engines: r.read()?, concurrent_kernels: r.read()? };
        if cfg.copy_engines == 0 || cfg.concurrent_kernels == 0 {
            return Err(PersistError::new("engine layout needs at least one engine per pool"));
        }
        Ok(cfg)
    }
}

impl Persist for SelectionMode {
    fn write(&self, out: &mut Vec<u8>) {
        out.push(match self {
            SelectionMode::HostArgmin => 0,
            SelectionMode::DeviceArgmin => 1,
        });
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match u8::read(r)? {
            0 => SelectionMode::HostArgmin,
            1 => SelectionMode::DeviceArgmin,
            b => return Err(PersistError::new(format!("bad selection mode {b}"))),
        })
    }
}

impl Persist for LaunchMode {
    fn write(&self, out: &mut Vec<u8>) {
        out.push(match self {
            LaunchMode::PerIteration => 0,
            LaunchMode::PersistentSpan => 1,
        });
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match u8::read(r)? {
            0 => LaunchMode::PerIteration,
            1 => LaunchMode::PersistentSpan,
            b => return Err(PersistError::new(format!("bad launch mode {b}"))),
        })
    }
}

impl Persist for DeviceSpec {
    fn write(&self, out: &mut Vec<u8>) {
        self.name.to_string().write(out);
        self.sm_count.write(out);
        self.warp_size.write(out);
        self.clock_hz.write(out);
        self.mem_bandwidth.write(out);
        self.lat_global.write(out);
        self.lat_texture_hit.write(out);
        self.texture_hit_rate.write(out);
        self.lat_shared.write(out);
        self.issue_cycles.write(out);
        self.sfu_issue_factor.write(out);
        self.coalesce_segment.write(out);
        self.max_threads_per_sm.write(out);
        self.max_blocks_per_sm.write(out);
        self.max_warps_per_sm.write(out);
        self.max_threads_per_block.write(out);
        self.shared_words_per_sm.write(out);
        self.launch_overhead_s.write(out);
        self.pcie_latency_s.write(out);
        self.pcie_bandwidth.write(out);
        self.engines.write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let name: String = r.read()?;
        let presets = [
            DeviceSpec::gtx280().name,
            DeviceSpec::gtx280_paper().name,
            DeviceSpec::g80().name,
            DeviceSpec::tesla_c1060().name,
        ];
        Ok(DeviceSpec {
            name: static_name(name, &presets),
            sm_count: r.read()?,
            warp_size: r.read()?,
            clock_hz: r.read()?,
            mem_bandwidth: r.read()?,
            lat_global: r.read()?,
            lat_texture_hit: r.read()?,
            texture_hit_rate: r.read()?,
            lat_shared: r.read()?,
            issue_cycles: r.read()?,
            sfu_issue_factor: r.read()?,
            coalesce_segment: r.read()?,
            max_threads_per_sm: r.read()?,
            max_blocks_per_sm: r.read()?,
            max_warps_per_sm: r.read()?,
            max_threads_per_block: r.read()?,
            shared_words_per_sm: r.read()?,
            launch_overhead_s: r.read()?,
            pcie_latency_s: r.read()?,
            pcie_bandwidth: r.read()?,
            engines: r.read()?,
        })
    }
}

impl Persist for HostSpec {
    fn write(&self, out: &mut Vec<u8>) {
        self.name.to_string().write(out);
        self.clock_hz.write(out);
        self.cpi_alu.write(out);
        self.cpi_sfu.write(out);
        self.cpi_mem.write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let name: String = r.read()?;
        Ok(HostSpec {
            name: static_name(name, &[HostSpec::xeon_3ghz().name]),
            clock_hz: r.read()?,
            cpi_alu: r.read()?,
            cpi_sfu: r.read()?,
            cpi_mem: r.read()?,
        })
    }
}

// -- search configuration and results ---------------------------------

impl Persist for SearchConfig {
    fn write(&self, out: &mut Vec<u8>) {
        self.max_iters.write(out);
        self.target_fitness.write(out);
        self.time_limit.write(out);
        self.seed.write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(SearchConfig {
            max_iters: r.read()?,
            target_fitness: r.read()?,
            time_limit: r.read()?,
            seed: r.read()?,
        })
    }
}

impl Persist for TabuStrategy {
    fn write(&self, out: &mut Vec<u8>) {
        match self {
            TabuStrategy::SolutionRing { len } => {
                out.push(0);
                len.write(out);
            }
            TabuStrategy::MoveRing { len } => {
                out.push(1);
                len.write(out);
            }
            TabuStrategy::Attribute { tenure } => {
                out.push(2);
                tenure.write(out);
            }
        }
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match u8::read(r)? {
            0 => Ok(TabuStrategy::SolutionRing { len: r.read()? }),
            1 => Ok(TabuStrategy::MoveRing { len: r.read()? }),
            2 => Ok(TabuStrategy::Attribute { tenure: r.read()? }),
            b => Err(PersistError::new(format!("bad tabu-strategy tag {b}"))),
        }
    }
}

impl Persist for TabuSearch {
    fn write(&self, out: &mut Vec<u8>) {
        self.config.write(out);
        self.strategy.write(out);
        self.aspiration.write(out);
        self.keep_history.write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(TabuSearch {
            config: r.read()?,
            strategy: r.read()?,
            aspiration: r.read()?,
            keep_history: r.read()?,
        })
    }
}

impl Persist for SearchResult {
    fn write(&self, out: &mut Vec<u8>) {
        self.best.write(out);
        self.best_fitness.write(out);
        self.iterations.write(out);
        self.success.write(out);
        self.evals.write(out);
        self.wall.write(out);
        self.book.write(out);
        self.backend.write(out);
        self.history.write(out);
        self.trajectory.write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(SearchResult {
            best: r.read()?,
            best_fitness: r.read()?,
            iterations: r.read()?,
            success: r.read()?,
            evals: r.read()?,
            wall: r.read()?,
            book: r.read()?,
            backend: r.read()?,
            history: r.read()?,
            trajectory: r.read()?,
        })
    }
}

// -- neighborhoods ----------------------------------------------------

/// Constructors assert their invariants; decoding must not panic on
/// corrupt input, so re-check them here and surface a [`PersistError`].
fn check_hood_dims(n: usize, k: usize) -> Result<(), PersistError> {
    if k == 0 || k > 4 || k > n {
        return Err(PersistError::new(format!("invalid neighborhood shape n={n}, k={k}")));
    }
    Ok(())
}

impl Persist for OneHamming {
    fn write(&self, out: &mut Vec<u8>) {
        self.dim().write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let n = usize::read(r)?;
        check_hood_dims(n, 1)?;
        Ok(OneHamming::new(n))
    }
}

impl PersistTag for OneHamming {
    const TAG: &'static str = "one-hamming";
}

impl Persist for TwoHamming {
    fn write(&self, out: &mut Vec<u8>) {
        self.dim().write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let n = usize::read(r)?;
        check_hood_dims(n, 2)?;
        Ok(TwoHamming::new(n))
    }
}

impl PersistTag for TwoHamming {
    const TAG: &'static str = "two-hamming";
}

impl Persist for ThreeHamming {
    fn write(&self, out: &mut Vec<u8>) {
        self.dim().write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let n = usize::read(r)?;
        check_hood_dims(n, 3)?;
        Ok(ThreeHamming::new(n))
    }
}

impl PersistTag for ThreeHamming {
    const TAG: &'static str = "three-hamming";
}

impl Persist for KHamming {
    fn write(&self, out: &mut Vec<u8>) {
        self.dim().write(out);
        self.k().write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let n = usize::read(r)?;
        let k = usize::read(r)?;
        check_hood_dims(n, k)?;
        Ok(KHamming::new(n, k))
    }
}

impl PersistTag for KHamming {
    const TAG: &'static str = "k-hamming";
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn roundtrip<T: Persist + PartialEq + fmt::Debug>(v: &T) {
        let bytes = v.to_bytes();
        let mut r = Reader::new(&bytes);
        let back: T = r.read().expect("decode");
        assert_eq!(&back, v);
        assert_eq!(r.remaining(), 0, "trailing bytes");
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(&0u8);
        roundtrip(&u64::MAX);
        roundtrip(&(-7i64));
        roundtrip(&3.25f64);
        roundtrip(&true);
        roundtrip(&Duration::from_nanos(1_234_567_891));
        roundtrip(&"héllo".to_string());
        roundtrip(&vec![1u64, 2, 3]);
        roundtrip(&Some(vec![-1i64, 5]));
        roundtrip(&Option::<u64>::None);
        roundtrip(&(7u64, "pair".to_string()));
        roundtrip(&(1u32, 2u32, -3i64));
        roundtrip(&vec![(0u32, 1u32, 5i64), (1, 2, -7)]);
    }

    #[test]
    fn expect_magic_accepts_and_rejects() {
        let mut buf = b"LNLSTRC\x01".to_vec();
        42u64.write(&mut buf);
        let mut r = Reader::new(&buf);
        r.expect_magic(b"LNLSTRC\x01", "workload trace").expect("good magic");
        assert_eq!(r.read::<u64>().unwrap(), 42);

        let mut r = Reader::new(&buf);
        let err = r.expect_magic(b"LNLSFLT\x03", "fleet checkpoint").unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
        let mut r = Reader::new(&buf[..3]);
        let err = r.expect_magic(b"LNLSTRC\x01", "workload trace").unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn bitstring_roundtrip_all_lengths() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 7, 8, 9, 63, 64, 65, 130] {
            let s = BitString::random(&mut rng, n);
            roundtrip(&s);
        }
    }

    #[test]
    fn rng_roundtrip_preserves_stream() {
        let mut rng = StdRng::seed_from_u64(42);
        let _: u64 = rng.gen(); // advance off the seed point
        let bytes = rng.to_bytes();
        let mut back: StdRng = Reader::new(&bytes).read().unwrap();
        let want: Vec<u64> = (0..8).map(|_| rng.gen()).collect();
        let got: Vec<u64> = (0..8).map(|_| back.gen()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn spec_roundtrip_reuses_preset_name() {
        let spec = DeviceSpec::gtx280();
        let bytes = spec.to_bytes();
        let back: DeviceSpec = Reader::new(&bytes).read().unwrap();
        assert_eq!(back, spec);
        let host = HostSpec::xeon_3ghz();
        let back: HostSpec = Reader::new(&host.to_bytes()).read().unwrap();
        assert_eq!(back, host);
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let bytes = "a string".to_string().to_bytes();
        let mut r = Reader::new(&bytes[..bytes.len() - 2]);
        assert!(r.read::<String>().is_err());
        let mut r = Reader::new(&[]);
        assert!(r.read::<u64>().is_err());
    }

    #[test]
    fn hoods_roundtrip() {
        roundtrip_hood(OneHamming::new(12));
        roundtrip_hood(TwoHamming::new(12));
        roundtrip_hood(ThreeHamming::new(12));
        roundtrip_hood(KHamming::new(12, 2));
    }

    fn roundtrip_hood<N: Persist + Neighborhood>(hood: N) {
        let bytes = hood.to_bytes();
        let back: N = Reader::new(&bytes).read().unwrap();
        assert_eq!(back.dim(), hood.dim());
        assert_eq!(back.k(), hood.k());
        assert_eq!(back.size(), hood.size());
    }
}
