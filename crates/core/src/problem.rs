//! Problem abstractions: full evaluation and incremental (delta)
//! evaluation of neighbors.
//!
//! Fitness is a minimized `i64`; 0 is conventionally "solved" for
//! satisfaction-style problems (the PPP's successful tries in the paper's
//! tables are runs reaching fitness 0).

use crate::bitstring::BitString;
use lnls_neighborhood::FlipMove;

/// A pseudo-Boolean minimization problem.
pub trait BinaryProblem: Send + Sync {
    /// Solution length `n`.
    fn dim(&self) -> usize;

    /// Full (from scratch) evaluation.
    fn evaluate(&self, s: &BitString) -> i64;

    /// Human-readable name for reports.
    fn name(&self) -> String {
        "binary-problem".to_string()
    }

    /// The fitness that counts as "solved", if any (0 for PPP). Searches
    /// use it as an early-stopping target and success criterion.
    fn target_fitness(&self) -> Option<i64> {
        None
    }
}

/// Incremental evaluation: a problem-specific state makes evaluating a
/// neighbor `s ⊕ mv` much cheaper than a full re-evaluation (`O(m·k)`
/// instead of `O(m·n)` for the PPP).
pub trait IncrementalEval: BinaryProblem {
    /// Auxiliary state tracking the current solution (e.g. the PPP's
    /// product vector `Y` and histogram). `Clone` so parallel explorers
    /// can give each worker its own copy.
    type State: Send + Sync + Clone;

    /// Build the state for solution `s`.
    fn init_state(&self, s: &BitString) -> Self::State;

    /// Fitness of the current solution as recorded in `state`.
    fn state_fitness(&self, state: &Self::State) -> i64;

    /// Fitness of the neighbor `s ⊕ mv`.
    ///
    /// Takes `&mut state` so implementations may use scratch space inside
    /// the state, but must behave *logically const*: the observable state
    /// is unchanged and the same call always returns the same value
    /// (equal to `self.evaluate(&(s ⊕ mv))`).
    fn neighbor_fitness(&self, state: &mut Self::State, s: &BitString, mv: &FlipMove) -> i64;

    /// Advance the state across the move `mv` (called with `s` still the
    /// *pre-move* solution; the caller flips `s` afterwards).
    fn apply_move(&self, state: &mut Self::State, s: &BitString, mv: &FlipMove);
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// OneMax as a minimization: count of zero bits; solved at 0 (all
    /// ones). Tiny reference problem for framework tests.
    pub struct ZeroCount {
        pub n: usize,
    }

    #[derive(Clone)]
    pub struct ZeroState {
        pub zeros: i64,
    }

    impl BinaryProblem for ZeroCount {
        fn dim(&self) -> usize {
            self.n
        }
        fn evaluate(&self, s: &BitString) -> i64 {
            self.n as i64 - s.count_ones() as i64
        }
        fn name(&self) -> String {
            format!("zerocount-{}", self.n)
        }
        fn target_fitness(&self) -> Option<i64> {
            Some(0)
        }
    }

    impl IncrementalEval for ZeroCount {
        type State = ZeroState;
        fn init_state(&self, s: &BitString) -> ZeroState {
            ZeroState { zeros: self.evaluate(s) }
        }
        fn state_fitness(&self, state: &ZeroState) -> i64 {
            state.zeros
        }
        fn neighbor_fitness(&self, state: &mut ZeroState, s: &BitString, mv: &FlipMove) -> i64 {
            let mut f = state.zeros;
            for &b in mv.bits() {
                // flipping a 0 removes a zero; flipping a 1 adds one
                f += if s.get(b as usize) { 1 } else { -1 };
            }
            f
        }
        fn apply_move(&self, state: &mut ZeroState, s: &BitString, mv: &FlipMove) {
            state.zeros = self.neighbor_fitness(state, s, mv);
        }
    }

    #[test]
    fn zerocount_delta_matches_full() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let p = ZeroCount { n: 40 };
        let mut rng = StdRng::seed_from_u64(1);
        let s = BitString::random(&mut rng, 40);
        let mut st = p.init_state(&s);
        assert_eq!(p.state_fitness(&st), p.evaluate(&s));
        for mv in [FlipMove::one(3), FlipMove::two(0, 39), FlipMove::three(1, 2, 3)] {
            let mut s2 = s.clone();
            s2.apply(&mv);
            assert_eq!(p.neighbor_fitness(&mut st, &s, &mv), p.evaluate(&s2), "{mv}");
        }
    }
}
