//! Multi-start execution: the paper's experimental protocol ("a tabu
//! search was executed 50 times") as a first-class driver. Runs `tries`
//! independent searches from seeded random initial solutions and
//! aggregates them into a [`TableRow`].

use crate::bitstring::BitString;
use crate::explore::Explorer;
use crate::problem::IncrementalEval;
use crate::report::TableRow;
use crate::search::{SearchConfig, SearchResult};
use crate::tabu::TabuSearch;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Repeated independent tabu runs with derived per-try seeds.
pub struct MultiStart {
    /// Template configuration; each try derives its own seed from
    /// `config.seed` and the try index.
    pub config: SearchConfig,
    /// Number of independent tries (the paper: 50).
    pub tries: usize,
}

impl MultiStart {
    /// `tries` runs derived from `config`.
    pub fn new(config: SearchConfig, tries: usize) -> Self {
        assert!(tries > 0, "need at least one try");
        Self { config, tries }
    }

    /// Per-try seed derivation (SplitMix-style, stable across releases).
    pub fn try_seed(&self, t: usize) -> u64 {
        let mut z = self.config.seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(t as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Run a paper-configured tabu search `tries` times through
    /// `make_explorer` (a fresh explorer per try keeps ledgers per-run).
    pub fn run_tabu<P, E, F>(&self, problem: &P, mut make_explorer: F) -> Vec<SearchResult>
    where
        P: IncrementalEval,
        E: Explorer<P>,
        F: FnMut() -> E,
    {
        let mut results = Vec::with_capacity(self.tries);
        for t in 0..self.tries {
            let seed = self.try_seed(t);
            let mut explorer = make_explorer();
            let search =
                TabuSearch::paper(SearchConfig { seed, ..self.config.clone() }, explorer.size());
            let mut rng = StdRng::seed_from_u64(seed);
            let init = BitString::random(&mut rng, problem.dim());
            results.push(search.run(problem, &mut explorer, init));
        }
        results
    }

    /// Run and aggregate in one step.
    pub fn run_tabu_aggregated<P, E, F>(
        &self,
        label: impl Into<String>,
        problem: &P,
        make_explorer: F,
    ) -> TableRow
    where
        P: IncrementalEval,
        E: Explorer<P>,
        F: FnMut() -> E,
    {
        TableRow::aggregate(label, &self.run_tabu(problem, make_explorer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::SequentialExplorer;
    use crate::problem::testutil::ZeroCount;
    use lnls_neighborhood::OneHamming;

    #[test]
    fn runs_and_aggregates() {
        let p = ZeroCount { n: 24 };
        let ms = MultiStart::new(SearchConfig::budget(50).with_seed(3), 5);
        let row = ms
            .run_tabu_aggregated("zerocount", &p, || SequentialExplorer::new(OneHamming::new(24)));
        assert_eq!(row.tries, 5);
        assert_eq!(row.solutions, 5, "1-flip tabu solves zerocount every time");
        assert_eq!(row.mean_fitness, 0.0);
    }

    #[test]
    fn tries_use_distinct_seeds_and_are_deterministic() {
        let ms = MultiStart::new(SearchConfig::budget(10).with_seed(7), 4);
        let seeds: Vec<u64> = (0..4).map(|t| ms.try_seed(t)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4, "seeds collide: {seeds:?}");

        let p = ZeroCount { n: 16 };
        let run = || {
            let ms = MultiStart::new(SearchConfig::budget(8).with_seed(7), 3);
            ms.run_tabu(&p, || SequentialExplorer::new(OneHamming::new(16)))
                .iter()
                .map(|r| r.best_fitness)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "at least one try")]
    fn zero_tries_rejected() {
        let _ = MultiStart::new(SearchConfig::budget(1), 0);
    }
}
