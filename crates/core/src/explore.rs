//! Neighborhood exploration backends.
//!
//! One search iteration of the paper's model (Fig. 1) generates *and
//! evaluates* the full neighborhood of the current solution. The
//! [`Explorer`] trait abstracts where that evaluation happens:
//!
//! * [`SequentialExplorer`] — one host thread, the paper's "CPU time"
//!   configuration;
//! * [`ParallelCpuExplorer`] — all host cores via scoped threads (an obvious
//!   baseline the paper leaves on the table; used by the ablations);
//! * `PppGpuExplorer` (in `lnls-ppp`) — the simulated-GPU path of the
//!   paper, implementing this same trait.
//!
//! Fleet runs fuse several walks' explorations into one launch and
//! price it through the stream/event model — see
//! [`BatchedExplorer`](crate::batch::BatchedExplorer), which produces
//! per-lane fitness vectors bit-identical to [`SequentialExplorer`]'s.

use crate::bitstring::BitString;
use crate::problem::IncrementalEval;
use lnls_gpu_sim::TimeBook;
use lnls_neighborhood::{FlipMove, Neighborhood};
use std::time::{Duration, Instant};

/// A backend able to evaluate every neighbor of the current solution.
///
/// `out[i]` receives the fitness of the neighbor with flat move index `i`
/// (the paper's `new_fitness` array). Implementations must produce values
/// identical to `problem.evaluate(s ⊕ unrank(i))` — the GPU/CPU
/// consistency tests enforce this bit-for-bit.
pub trait Explorer<P: IncrementalEval>: Send {
    /// Number of neighbors (`m` in the paper).
    fn size(&self) -> u64;

    /// Hamming weight of this explorer's moves.
    fn k(&self) -> usize;

    /// Decode a flat move index.
    fn unrank(&self, index: u64) -> FlipMove;

    /// Visit the moves with indices in `lo..hi` (clamped to
    /// [`size`](Self::size)) in index order; stop early when the
    /// callback returns `false`. Drivers use this for their selection
    /// passes, so it must agree index-for-index with the fitness vector
    /// [`explore`](Self::explore) fills.
    ///
    /// The default assumes fixed-`k` lexicographic enumeration (one
    /// unranking at `lo`, then [`lex_advance`](lnls_neighborhood::lex_advance)); explorers wrapping a
    /// [`Neighborhood`] should delegate to
    /// [`Neighborhood::for_each_move_in`] so mixed-radius unions work.
    fn for_each_move(&self, lo: u64, hi: u64, f: &mut dyn FnMut(u64, FlipMove) -> bool) {
        let hi = hi.min(self.size());
        if lo >= hi {
            return;
        }
        let first = self.unrank(lo);
        let k = first.k();
        let mut bits = [0u32; 4];
        bits[..k].copy_from_slice(first.bits());
        for idx in lo..hi {
            let mv = FlipMove::from_sorted(&bits[..k]);
            if !f(idx, mv) {
                return;
            }
            if idx + 1 < hi {
                lnls_neighborhood::lex_advance(&mut bits[..k], self.dim_hint());
            }
        }
    }

    /// Dimension `n` of the underlying binary strings — needed by the
    /// default [`for_each_move`](Self::for_each_move) enumeration.
    fn dim_hint(&self) -> u32;

    /// Evaluate the full neighborhood of `s` into `out` (resized to
    /// [`size`](Self::size)).
    fn explore(&mut self, problem: &P, s: &BitString, state: &mut P::State, out: &mut Vec<i64>);

    /// Notify the backend that the search committed `mv` (backends with
    /// device-resident state resynchronize here).
    fn committed(&mut self, _problem: &P, _s: &BitString, _state: &P::State, _mv: &FlipMove) {}

    /// Modeled time ledger, if this backend prices its work (the GPU
    /// explorer does; host explorers return `None` and are timed by wall
    /// clock).
    fn book(&self) -> Option<TimeBook> {
        None
    }

    /// Total wall-clock spent inside [`explore`](Self::explore).
    fn wall(&self) -> Duration;

    /// Backend name for reports.
    fn backend(&self) -> String;
}

/// Single-threaded exploration in lexicographic move order.
pub struct SequentialExplorer<N: Neighborhood> {
    hood: N,
    wall: Duration,
}

impl<N: Neighborhood> SequentialExplorer<N> {
    /// Explore `hood` on one host thread.
    pub fn new(hood: N) -> Self {
        Self { hood, wall: Duration::ZERO }
    }
}

impl<P: IncrementalEval, N: Neighborhood> Explorer<P> for SequentialExplorer<N> {
    fn size(&self) -> u64 {
        self.hood.size()
    }

    fn k(&self) -> usize {
        self.hood.k()
    }

    fn unrank(&self, index: u64) -> FlipMove {
        self.hood.unrank(index)
    }

    fn dim_hint(&self) -> u32 {
        self.hood.dim() as u32
    }

    fn for_each_move(&self, lo: u64, hi: u64, f: &mut dyn FnMut(u64, FlipMove) -> bool) {
        self.hood.for_each_move_in(lo, hi, f);
    }

    fn explore(&mut self, problem: &P, s: &BitString, state: &mut P::State, out: &mut Vec<i64>) {
        let t0 = Instant::now();
        let m = self.hood.size() as usize;
        out.clear();
        out.reserve(m);
        self.hood.for_each_move_in(0, m as u64, &mut |_, mv| {
            out.push(problem.neighbor_fitness(state, s, &mv));
            true
        });
        debug_assert_eq!(out.len(), m);
        self.wall += t0.elapsed();
    }

    fn wall(&self) -> Duration {
        self.wall
    }

    fn backend(&self) -> String {
        format!("cpu-seq/{}", self.hood.name())
    }
}

/// Multi-threaded exploration: the index range is split into contiguous
/// chunks, one per worker, each with a cloned state.
pub struct ParallelCpuExplorer<N: Neighborhood> {
    hood: N,
    workers: usize,
    wall: Duration,
}

impl<N: Neighborhood> ParallelCpuExplorer<N> {
    /// Explore `hood` with `workers` host threads (0 = all cores).
    pub fn new(hood: N, workers: usize) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            workers
        };
        Self { hood, workers, wall: Duration::ZERO }
    }
}

impl<P: IncrementalEval, N: Neighborhood> Explorer<P> for ParallelCpuExplorer<N> {
    fn size(&self) -> u64 {
        self.hood.size()
    }

    fn k(&self) -> usize {
        self.hood.k()
    }

    fn unrank(&self, index: u64) -> FlipMove {
        self.hood.unrank(index)
    }

    fn dim_hint(&self) -> u32 {
        self.hood.dim() as u32
    }

    fn for_each_move(&self, lo: u64, hi: u64, f: &mut dyn FnMut(u64, FlipMove) -> bool) {
        self.hood.for_each_move_in(lo, hi, f);
    }

    fn explore(&mut self, problem: &P, s: &BitString, state: &mut P::State, out: &mut Vec<i64>) {
        let t0 = Instant::now();
        let m = self.hood.size() as usize;
        out.clear();
        out.resize(m, 0);
        let workers = self.workers.min(m.max(1));
        if workers <= 1 || m < 1024 {
            // Too small to amortize thread spawn.
            let mut i = 0;
            self.hood.for_each_move_in(0, m as u64, &mut |_, mv| {
                out[i] = problem.neighbor_fitness(state, s, &mv);
                i += 1;
                true
            });
            self.wall += t0.elapsed();
            return;
        }
        let chunk = m.div_ceil(workers);
        let hood = &self.hood;
        std::thread::scope(|scope| {
            for (w, slice) in out.chunks_mut(chunk).enumerate() {
                let lo = (w * chunk) as u64;
                let mut local_state = state.clone();
                scope.spawn(move || {
                    let mut i = 0usize;
                    hood.for_each_move_in(lo, lo + slice.len() as u64, &mut |_, mv| {
                        slice[i] = problem.neighbor_fitness(&mut local_state, s, &mv);
                        i += 1;
                        true
                    });
                });
            }
        });
        self.wall += t0.elapsed();
    }

    fn wall(&self) -> Duration {
        self.wall
    }

    fn backend(&self) -> String {
        format!("cpu-par{}/{}", self.workers, self.hood.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::testutil::ZeroCount;
    use lnls_neighborhood::{OneHamming, ThreeHamming, TwoHamming};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn brute_force(p: &ZeroCount, s: &BitString, hood: &impl Neighborhood) -> Vec<i64> {
        use crate::problem::BinaryProblem;
        hood.moves()
            .map(|(_, mv)| {
                let mut s2 = s.clone();
                s2.apply(&mv);
                p.evaluate(&s2)
            })
            .collect()
    }

    #[test]
    fn sequential_matches_brute_force() {
        let p = ZeroCount { n: 20 };
        let mut rng = StdRng::seed_from_u64(5);
        let s = BitString::random(&mut rng, 20);
        let mut out = Vec::new();
        let hood = TwoHamming::new(20);
        let mut ex = SequentialExplorer::new(hood);
        let mut st = p.init_state(&s);
        Explorer::<ZeroCount>::explore(&mut ex, &p, &s, &mut st, &mut out);
        assert_eq!(out, brute_force(&p, &s, &hood));
        assert!(Explorer::<ZeroCount>::wall(&ex) > Duration::ZERO);
    }

    #[test]
    fn parallel_matches_sequential_all_hoods() {
        let p = ZeroCount { n: 24 };
        let mut rng = StdRng::seed_from_u64(6);
        let s = BitString::random(&mut rng, 24);
        let mut st = p.init_state(&s);

        let mut out_seq = Vec::new();
        let mut out_par = Vec::new();

        macro_rules! check {
            ($hood:expr) => {{
                let mut seq = SequentialExplorer::new($hood);
                let mut par = ParallelCpuExplorer::new($hood, 4);
                Explorer::<ZeroCount>::explore(&mut seq, &p, &s, &mut st, &mut out_seq);
                Explorer::<ZeroCount>::explore(&mut par, &p, &s, &mut st, &mut out_par);
                assert_eq!(out_seq, out_par);
            }};
        }
        check!(OneHamming::new(24));
        check!(TwoHamming::new(24));
        check!(ThreeHamming::new(24));
    }

    #[test]
    fn parallel_handles_chunk_boundaries_exactly() {
        // Size not divisible by worker count; forces ragged chunks.
        let p = ZeroCount { n: 31 };
        let mut rng = StdRng::seed_from_u64(9);
        let s = BitString::random(&mut rng, 31);
        let mut st = p.init_state(&s);
        let hood = ThreeHamming::new(31); // C(31,3) = 4495
        let mut par = ParallelCpuExplorer::new(hood, 7);
        let mut out = Vec::new();
        Explorer::<ZeroCount>::explore(&mut par, &p, &s, &mut st, &mut out);
        assert_eq!(out, brute_force(&p, &s, &hood));
    }

    #[test]
    fn explorer_metadata() {
        let ex = SequentialExplorer::new(TwoHamming::new(10));
        assert_eq!(Explorer::<ZeroCount>::size(&ex), 45);
        assert_eq!(Explorer::<ZeroCount>::k(&ex), 2);
        assert_eq!(Explorer::<ZeroCount>::unrank(&ex, 0).bits(), &[0, 1]);
        assert!(Explorer::<ZeroCount>::book(&ex).is_none());
    }
}
