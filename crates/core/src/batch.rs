//! Fused neighborhood evaluation for co-scheduled searches, priced
//! through the stream/event model.
//!
//! The paper wins by making each kernel launch *large* — thousands of
//! neighbors per iteration amortize the launch overhead and PCIe
//! latency that dominate small launches. A fleet serving many concurrent
//! searches can apply the same lever one level up: when several walks
//! share a problem family and neighborhood, their per-iteration
//! evaluations are independent and can ride in **one** fused launch —
//! one kernel covering `Σ mᵢ` threads — instead of `B` small launches
//! each paying its own overhead.
//!
//! [`BatchedExplorer`] implements that fusion over the simulated-device
//! cost model. Functionally it evaluates every lane exactly like
//! [`SequentialExplorer`](crate::explore::SequentialExplorer) — the
//! fitness vectors, and therefore the moves a driver selects from them,
//! are bit-for-bit those of a solo run. Only the *pricing* differs, and
//! it is no longer a serial sum: each fused iteration is lowered to a
//! **breadth-first stream schedule**
//! ([`price_fused_iteration`] —
//! per-lane async H2D copies, the fused kernel chain gated on them by
//! events, per-lane D2H readbacks) and the walk is charged the
//! schedule's **makespan** under the device's engine layout
//! ([`DeviceSpec::engines`]). On the paper's GT200 (one DMA queue, one
//! kernel at a time) nothing inside the dependent iteration can overlap,
//! so the makespan *is* the serial sum; layouts with more engines
//! ([`EngineConfig::fermi`](lnls_gpu_sim::EngineConfig::fermi)) overlap
//! the per-lane copies against each other and the makespan prices the
//! win. The [`TimeBook`] keeps recording per-component busy time (its
//! total is the serialized cost; the makespan is what the fleet clock
//! advances by), and [`BatchedExplorer::overlap_factor`] reports the
//! cumulative serialized-over-makespan ratio.
//!
//! Selection is a second knob, and it is **per lane**
//! ([`BatchLane::selection`]): when any lane selects
//! [`SelectionMode::DeviceArgmin`](lnls_gpu_sim::SelectionMode), the
//! schedule appends the on-device argmin reduction
//! ([`argmin_kernel_seconds`], keyed over exactly the opted-in lanes'
//! segments) to the kernel chain and shrinks *those* lanes' readbacks
//! from `m·8` bytes to one packed `(fitness, index)` record — so a
//! per-job override keeps its pricing even inside a mixed fused batch.
//! Pricing-only, exactly like the rest of this module (see
//! `lnls_gpu_sim::reduce`).
//!
//! Cost shapes come from [`LaneProfile`], the same analytic quantities
//! [`IterationProfile`] uses for multi-walk stream pricing, so solo and
//! fused runs are priced with one consistent model.

use crate::bitstring::BitString;
use crate::problem::IncrementalEval;
use lnls_gpu_sim::{
    argmin_kernel_seconds, price_fused_iteration, price_fused_span, transfer_seconds, DeviceSpec,
    HostSpec, IterationProfile, LaneIo, LaunchMode, SelectionMode, TimeBook, ARGMIN_RECORD_BYTES,
};
use lnls_neighborhood::Neighborhood;
use std::time::{Duration, Instant};

/// Per-iteration cost shape of one search lane on a device: what one
/// neighborhood evaluation moves over PCIe and burns in compute.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct LaneProfile {
    /// Bytes uploaded per iteration (solution bits + incremental state).
    pub h2d_bytes: u64,
    /// Bytes read back per iteration (the fitness array).
    pub d2h_bytes: u64,
    /// Modeled kernel seconds per iteration (excluding launch overhead).
    pub kernel_seconds: f64,
    /// Modeled sequential-host seconds for the same evaluation (the
    /// paper's CPU column; feeds speedup reporting).
    pub host_seconds: f64,
}

impl LaneProfile {
    /// Analytic shape of the paper's `MoveIncrEvalKernel` pattern for a
    /// `k`-Hamming neighborhood of `m` moves on an `n`-bit problem whose
    /// incremental state re-uploads `state_bytes` per iteration.
    ///
    /// The per-neighbor work is modeled as `unrank + k incremental
    /// updates` — `12 + 18·k` abstract ops, the op count of the generic
    /// kernels in `lnls-problems::gpu` to within a small factor. Device
    /// throughput uses the issue model of [`DeviceSpec`] derated to 25 %
    /// of peak (the memory-bound regime every measured kernel of this
    /// workspace lands in); host throughput uses [`HostSpec`] CPIs.
    pub fn incremental_eval(
        spec: &DeviceSpec,
        host: &HostSpec,
        m: u64,
        k: usize,
        n: usize,
        state_bytes: u64,
    ) -> Self {
        let ops_per_neighbor = 12.0 + 18.0 * k as f64;
        let peak_ops =
            spec.sm_count as f64 * spec.warp_size as f64 / spec.issue_cycles * spec.clock_hz;
        let device_ops = peak_ops * 0.25;
        let host_ops = host.clock_hz / (host.cpi_alu.max(f64::EPSILON) * 1.5);
        Self {
            h2d_bytes: (n as u64).div_ceil(8) + state_bytes,
            d2h_bytes: m * std::mem::size_of::<i64>() as u64,
            kernel_seconds: m as f64 * ops_per_neighbor / device_ops,
            host_seconds: m as f64 * ops_per_neighbor / host_ops,
        }
    }

    /// The synchronous solo cost of one iteration: own upload (with PCIe
    /// latency), own launch overhead, kernel, own readback.
    pub fn solo_seconds(&self, spec: &DeviceSpec) -> f64 {
        IterationProfile {
            h2d_bytes: self.h2d_bytes,
            kernel_seconds: self.kernel_seconds,
            d2h_bytes: self.d2h_bytes,
        }
        .serial_seconds(spec)
    }
}

/// One search walk's slice of a fused evaluation.
pub struct BatchLane<'a, P: IncrementalEval> {
    /// The lane's problem instance (lanes share a *family*, not
    /// necessarily an instance).
    pub problem: &'a P,
    /// Current solution.
    pub s: &'a BitString,
    /// Incremental state of `s`.
    pub state: &'a mut P::State,
    /// Receives the lane's fitness vector, index-aligned with the
    /// explorer's neighborhood enumeration.
    pub out: &'a mut Vec<i64>,
    /// The lane's per-iteration cost shape.
    pub profile: LaneProfile,
    /// How *this lane's* readback is priced. Selection is per lane, not
    /// per group: the fused argmin kernel reduces only the opted-in
    /// lanes' segments of the fitness buffer, so jobs overriding the
    /// fleet default keep their pricing even inside a mixed fused batch.
    pub selection: SelectionMode,
}

/// What one priced span of fused iterations cost (see
/// [`BatchedExplorer::finish_span`]).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct SpanPricing {
    /// Stream makespan of the whole span (the seconds the fleet clock
    /// advances by).
    pub makespan_s: f64,
    /// Serialized back-to-back cost of the same operations.
    pub serialized_s: f64,
    /// Launch overhead amortized away relative to re-launching every
    /// iteration (nonzero only under [`LaunchMode::PersistentSpan`]).
    pub overhead_saved_s: f64,
    /// Fused iterations the span covered.
    pub iterations: u64,
    /// Kernel launches actually charged (once per kernel position per
    /// iteration, or once per kernel position per span when resident).
    pub launches: u64,
}

/// In-flight accumulation of one multi-iteration span (between
/// [`BatchedExplorer::begin_span`] and
/// [`BatchedExplorer::finish_span`]).
struct SpanState {
    mode: LaunchMode,
    io: Vec<LaneIo>,
    kernels: Vec<f64>,
    iterations: u64,
    host_s: f64,
}

/// Evaluates the neighborhoods of many co-scheduled walks in one fused
/// simulated launch. See the module docs for semantics.
pub struct BatchedExplorer<N: Neighborhood> {
    hood: N,
    spec: DeviceSpec,
    book: TimeBook,
    fused_launches: u64,
    lanes_evaluated: u64,
    stream_makespan_s: f64,
    stream_serialized_s: f64,
    span: Option<SpanState>,
    wall: Duration,
}

impl<N: Neighborhood> BatchedExplorer<N> {
    /// A fused evaluator for `hood` priced against `spec`. Each lane
    /// declares its own [`SelectionMode`] ([`BatchLane::selection`]).
    pub fn new(hood: N, spec: DeviceSpec) -> Self {
        Self {
            hood,
            spec,
            book: TimeBook::default(),
            fused_launches: 0,
            lanes_evaluated: 0,
            stream_makespan_s: 0.0,
            stream_serialized_s: 0.0,
            span: None,
            wall: Duration::ZERO,
        }
    }

    /// The neighborhood all lanes share.
    pub fn hood(&self) -> &N {
        &self.hood
    }

    /// The device spec the ledger prices against.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Evaluate every lane's full neighborhood, filling each `out`
    /// vector with exactly the values a solo
    /// [`SequentialExplorer`](crate::explore::SequentialExplorer) run
    /// would produce, and charge the walk the **stream makespan** of one
    /// fused iteration: per-lane async uploads, the fused evaluation
    /// kernel (overhead once — the amortization lever), the appended
    /// argmin reduction when any lane selects
    /// [`SelectionMode::DeviceArgmin`] (it reduces exactly those lanes'
    /// segments), then per-lane readbacks — scheduled breadth-first
    /// under the device's engine layout by [`price_fused_iteration`].
    ///
    /// Returns the modeled device seconds (the makespan) of this fused
    /// iteration.
    pub fn explore_batch<P: IncrementalEval>(&mut self, lanes: &mut [BatchLane<'_, P>]) -> f64 {
        let (io, kernels, host_s) = self.eval_lanes(lanes);
        let sched = price_fused_iteration(&self.spec, &io, &kernels);

        // The ledger keeps per-component busy time (its total is the
        // serialized cost of the ops); the fleet clock advances by the
        // makespan.
        self.book.kernel_s += kernels.iter().sum::<f64>();
        self.book.overhead_s += self.spec.launch_overhead_s * kernels.len() as f64;
        for lane in io {
            self.book.h2d_s += transfer_seconds(&self.spec, lane.h2d_bytes);
            self.book.d2h_s += transfer_seconds(&self.spec, lane.d2h_bytes);
            self.book.bytes_h2d += lane.h2d_bytes;
            self.book.bytes_d2h += lane.d2h_bytes;
        }
        self.book.launches += kernels.len() as u64;
        self.book.host_s += host_s;
        self.fused_launches += 1;
        self.stream_makespan_s += sched.makespan;
        self.stream_serialized_s += sched.serialized;
        sched.makespan
    }

    /// Functionally evaluate every lane and return the iteration's cost
    /// shape: per-lane PCIe traffic, the kernel chain, and the summed
    /// host seconds. Shared by the per-iteration and span paths — the
    /// fitness vectors are identical either way (fusion and spans are
    /// pricing-only).
    fn eval_lanes<P: IncrementalEval>(
        &mut self,
        lanes: &mut [BatchLane<'_, P>],
    ) -> (Vec<LaneIo>, Vec<f64>, f64) {
        assert!(!lanes.is_empty(), "cannot fuse an empty batch");
        let t0 = Instant::now();
        let m = self.hood.size();

        let mut kernel_s = 0.0f64;
        let mut host_s = 0.0f64;
        let mut argmin_keys = 0u64;
        let mut io = Vec::with_capacity(lanes.len());
        for lane in lanes.iter_mut() {
            lane.out.clear();
            lane.out.reserve(m as usize);
            let problem = lane.problem;
            let s = lane.s;
            let state = &mut *lane.state;
            let out = &mut *lane.out;
            self.hood.for_each_move_in(0, m, &mut |_, mv| {
                out.push(problem.neighbor_fitness(state, s, &mv));
                true
            });
            debug_assert_eq!(out.len(), m as usize);
            // A one-key reduction cannot shrink the readback it gates
            // on, so degenerate neighborhoods stay on the host path.
            let device_argmin = lane.selection.is_device() && m > 1;
            let d2h_bytes =
                if device_argmin { ARGMIN_RECORD_BYTES } else { lane.profile.d2h_bytes };
            if device_argmin {
                argmin_keys += m;
            }
            io.push(LaneIo { h2d_bytes: lane.profile.h2d_bytes, d2h_bytes });
            kernel_s += lane.profile.kernel_seconds;
            host_s += lane.profile.host_seconds;
        }

        let mut kernels = vec![kernel_s];
        if argmin_keys > 0 {
            kernels.push(argmin_kernel_seconds(&self.spec, argmin_keys));
        }
        self.lanes_evaluated += lanes.len() as u64;
        self.wall += t0.elapsed();
        (io, kernels, host_s)
    }

    /// Open a multi-iteration span under `mode`. Subsequent
    /// [`explore_span`](Self::explore_span) calls accumulate iterations;
    /// [`finish_span`](Self::finish_span) prices them as **one**
    /// double-buffered stream schedule
    /// ([`price_fused_span`]) instead of one schedule per iteration.
    ///
    /// # Panics
    /// Panics if a span is already open.
    pub fn begin_span(&mut self, mode: LaunchMode) {
        assert!(self.span.is_none(), "a span is already open");
        self.span = Some(SpanState {
            mode,
            io: Vec::new(),
            kernels: Vec::new(),
            iterations: 0,
            host_s: 0.0,
        });
    }

    /// Evaluate one iteration of the open span: every lane's fitness
    /// vector is filled exactly as [`explore_batch`](Self::explore_batch)
    /// would (bit-identical results), but pricing is deferred to
    /// [`finish_span`](Self::finish_span). Every iteration of a span
    /// must share one cost shape — group membership is fixed for the
    /// span's duration.
    ///
    /// # Panics
    /// Panics if no span is open, or if the iteration's cost shape
    /// differs from the span's first iteration.
    pub fn explore_span<P: IncrementalEval>(&mut self, lanes: &mut [BatchLane<'_, P>]) {
        let (io, kernels, host_s) = self.eval_lanes(lanes);
        let span = self.span.as_mut().expect("explore_span outside begin_span/finish_span");
        if span.iterations == 0 {
            span.io = io;
            span.kernels = kernels;
        } else {
            assert_eq!(span.io, io, "span iterations must share one I/O shape");
            assert_eq!(span.kernels, kernels, "span iterations must share one kernel chain");
        }
        span.iterations += 1;
        span.host_s += host_s;
    }

    /// Close the open span: lower its iterations into one breadth-first
    /// double-buffered stream schedule, charge the ledger, and return
    /// the pricing. A span that accumulated zero iterations books
    /// nothing and returns a zeroed [`SpanPricing`].
    ///
    /// # Panics
    /// Panics if no span is open.
    pub fn finish_span(&mut self) -> SpanPricing {
        let span = self.span.take().expect("finish_span without begin_span");
        if span.iterations == 0 {
            return SpanPricing::default();
        }
        let n = span.iterations;
        let sched = price_fused_span(&self.spec, &span.io, &span.kernels, n as usize, span.mode);
        let positions = span.kernels.len() as u64;
        let (launches, overhead_saved_s) = match span.mode {
            LaunchMode::PerIteration => (positions * n, 0.0),
            LaunchMode::PersistentSpan => {
                (positions, (n - 1) as f64 * positions as f64 * self.spec.launch_overhead_s)
            }
        };
        self.book.kernel_s += span.kernels.iter().sum::<f64>() * n as f64;
        self.book.overhead_s += self.spec.launch_overhead_s * launches as f64;
        for lane in &span.io {
            self.book.h2d_s += transfer_seconds(&self.spec, lane.h2d_bytes) * n as f64;
            self.book.d2h_s += transfer_seconds(&self.spec, lane.d2h_bytes) * n as f64;
            self.book.bytes_h2d += lane.h2d_bytes * n;
            self.book.bytes_d2h += lane.d2h_bytes * n;
        }
        self.book.launches += launches;
        self.book.host_s += span.host_s;
        // One fused launch per charged kernel-chain issue: a persistent
        // span issues once for all its iterations.
        self.fused_launches += match span.mode {
            LaunchMode::PerIteration => n,
            LaunchMode::PersistentSpan => 1,
        };
        self.stream_makespan_s += sched.makespan;
        self.stream_serialized_s += sched.serialized;
        SpanPricing {
            makespan_s: sched.makespan,
            serialized_s: sched.serialized,
            overhead_saved_s,
            iterations: n,
            launches,
        }
    }

    /// Accumulated fused-launch ledger.
    pub fn book(&self) -> &TimeBook {
        &self.book
    }

    /// Cumulative stream-schedule makespan actually charged (seconds).
    pub fn stream_makespan_s(&self) -> f64 {
        self.stream_makespan_s
    }

    /// Cumulative serialized cost of the same operations back-to-back
    /// (seconds) — the synchronous baseline the makespan is measured
    /// against.
    pub fn stream_serialized_s(&self) -> f64 {
        self.stream_serialized_s
    }

    /// Cumulative overlap win: serialized time over makespan (≥ 1;
    /// exactly 1 on single-engine layouts, where nothing inside a fused
    /// iteration can overlap).
    pub fn overlap_factor(&self) -> f64 {
        if self.stream_makespan_s > 0.0 {
            self.stream_serialized_s / self.stream_makespan_s
        } else {
            1.0
        }
    }

    /// Fused launches issued.
    pub fn fused_launches(&self) -> u64 {
        self.fused_launches
    }

    /// Launches a solo-per-lane schedule would have issued for the same
    /// work (one per lane per fused launch) — the amortization headline.
    pub fn launches_saved(&self) -> u64 {
        self.lanes_evaluated.saturating_sub(self.fused_launches)
    }

    /// Wall-clock spent evaluating (simulation cost, not modeled time).
    pub fn wall(&self) -> Duration {
        self.wall
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{Explorer, SequentialExplorer};
    use crate::problem::testutil::ZeroCount;
    use crate::problem::IncrementalEval;
    use lnls_neighborhood::TwoHamming;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profile(spec: &DeviceSpec, m: u64) -> LaneProfile {
        LaneProfile::incremental_eval(spec, &HostSpec::xeon_3ghz(), m, 2, 24, 16)
    }

    #[test]
    fn fused_results_match_sequential_per_lane() {
        let spec = DeviceSpec::gtx280();
        let hood = TwoHamming::new(24);
        let p1 = ZeroCount { n: 24 };
        let p2 = ZeroCount { n: 24 };
        let mut rng = StdRng::seed_from_u64(1);
        let s1 = BitString::random(&mut rng, 24);
        let s2 = BitString::random(&mut rng, 24);
        let mut st1 = p1.init_state(&s1);
        let mut st2 = p2.init_state(&s2);
        let (mut o1, mut o2) = (Vec::new(), Vec::new());
        let prof = profile(&spec, hood.size());

        let mut batch = BatchedExplorer::new(hood, spec.clone());
        let mut lanes = [
            BatchLane {
                problem: &p1,
                s: &s1,
                state: &mut st1,
                out: &mut o1,
                profile: prof,
                selection: SelectionMode::HostArgmin,
            },
            BatchLane {
                problem: &p2,
                s: &s2,
                state: &mut st2,
                out: &mut o2,
                profile: prof,
                selection: SelectionMode::HostArgmin,
            },
        ];
        let fused_s = batch.explore_batch(&mut lanes);
        assert!(fused_s > 0.0);

        for (s, o) in [(&s1, &o1), (&s2, &o2)] {
            let mut seq = SequentialExplorer::new(hood);
            let mut st = ZeroCount { n: 24 }.init_state(s);
            let mut expect = Vec::new();
            Explorer::<ZeroCount>::explore(&mut seq, &ZeroCount { n: 24 }, s, &mut st, &mut expect);
            assert_eq!(o, &expect);
        }
    }

    #[test]
    fn fusing_beats_solo_launches() {
        let spec = DeviceSpec::gtx280();
        let hood = TwoHamming::new(24);
        let m = hood.size();
        let prof = profile(&spec, m);
        let p = ZeroCount { n: 24 };
        let mut rng = StdRng::seed_from_u64(2);
        let solutions: Vec<BitString> = (0..8).map(|_| BitString::random(&mut rng, 24)).collect();
        let mut states: Vec<_> = solutions.iter().map(|s| p.init_state(s)).collect();
        let mut outs: Vec<Vec<i64>> = vec![Vec::new(); 8];

        let mut batch = BatchedExplorer::new(hood, spec.clone());
        let mut lanes: Vec<BatchLane<'_, ZeroCount>> = solutions
            .iter()
            .zip(states.iter_mut())
            .zip(outs.iter_mut())
            .map(|((s, state), out)| BatchLane {
                problem: &p,
                s,
                state,
                out,
                profile: prof,
                selection: SelectionMode::HostArgmin,
            })
            .collect();
        let fused = batch.explore_batch(&mut lanes);
        let solo_sum = prof.solo_seconds(&spec) * 8.0;
        assert!(fused < solo_sum, "fused launch {fused} must beat {solo_sum} (8 solo launches)");
        assert_eq!(batch.fused_launches(), 1);
        assert_eq!(batch.launches_saved(), 7);
        assert_eq!(batch.book().launches, 1);
        // The kernel work itself is not discounted — only overhead and
        // transfer latency are amortized.
        assert!((batch.book().kernel_s - prof.kernel_seconds * 8.0).abs() < 1e-12);
    }

    fn batch_of(
        n_lanes: usize,
        spec: &DeviceSpec,
        selection: SelectionMode,
    ) -> (TimeBook, f64, f64, Vec<Vec<i64>>) {
        let hood = TwoHamming::new(24);
        let prof = profile(spec, hood.size());
        let p = ZeroCount { n: 24 };
        let mut rng = StdRng::seed_from_u64(5);
        let solutions: Vec<BitString> =
            (0..n_lanes).map(|_| BitString::random(&mut rng, 24)).collect();
        let mut states: Vec<_> = solutions.iter().map(|s| p.init_state(s)).collect();
        let mut outs: Vec<Vec<i64>> = vec![Vec::new(); n_lanes];
        let mut batch = BatchedExplorer::new(hood, spec.clone());
        let mut lanes: Vec<BatchLane<'_, ZeroCount>> = solutions
            .iter()
            .zip(states.iter_mut())
            .zip(outs.iter_mut())
            .map(|((s, state), out)| BatchLane {
                problem: &p,
                s,
                state,
                out,
                profile: prof,
                selection,
            })
            .collect();
        let makespan = batch.explore_batch(&mut lanes);
        drop(lanes);
        (batch.book().clone(), makespan, batch.stream_serialized_s(), outs)
    }

    #[test]
    fn gt200_makespan_is_the_serial_sum_of_the_schedule() {
        // Single DMA queue + serial kernels: nothing inside the
        // dependent fused iteration can overlap, so the charged makespan
        // equals the component-wise ledger total — today's serial-sum
        // economics, now derived from the stream model instead of
        // assumed. Relative to the old coalesced-transfer model the only
        // delta is the per-lane PCIe setup latency (a launch-overhead-
        // scale constant per extra lane).
        let spec = DeviceSpec::gtx280();
        let (book, makespan, serialized, _) = batch_of(4, &spec, SelectionMode::HostArgmin);
        assert!((makespan - serialized).abs() < 1e-15);
        assert!((makespan - book.gpu_total_s()).abs() < 1e-12);
        let prof = profile(&spec, TwoHamming::new(24).size());
        let coalesced = transfer_seconds(&spec, prof.h2d_bytes * 4)
            + spec.launch_overhead_s
            + prof.kernel_seconds * 4.0
            + transfer_seconds(&spec, prof.d2h_bytes * 4);
        let delta = makespan - coalesced;
        assert!(delta >= 0.0 && delta <= 2.0 * 3.0 * spec.pcie_latency_s + 1e-15, "{delta}");
    }

    #[test]
    fn fermi_layout_overlaps_per_lane_copies() {
        use lnls_gpu_sim::EngineConfig;
        let gt = DeviceSpec::gtx280();
        let fermi = DeviceSpec::gtx280().with_engines(EngineConfig::fermi());
        let (_, gt_makespan, gt_serial, gt_outs) = batch_of(4, &gt, SelectionMode::HostArgmin);
        let (_, f_makespan, f_serial, f_outs) = batch_of(4, &fermi, SelectionMode::HostArgmin);
        assert!((gt_serial - f_serial).abs() < 1e-15, "same ops, same serialized cost");
        assert!(
            f_makespan < gt_makespan - 1e-12,
            "dual copy engines must beat the serial sum: fermi {f_makespan} vs gt200 {gt_makespan}"
        );
        assert_eq!(gt_outs, f_outs, "engine layout is pricing-only");
    }

    #[test]
    fn device_argmin_shrinks_readback_and_prices_the_reduction() {
        let spec = DeviceSpec::gtx280();
        let (host_book, _, _, host_outs) = batch_of(3, &spec, SelectionMode::HostArgmin);
        let (dev_book, _, _, dev_outs) = batch_of(3, &spec, SelectionMode::DeviceArgmin);
        assert_eq!(dev_outs, host_outs, "selection mode is pricing-only");
        assert_eq!(dev_book.bytes_d2h, 3 * ARGMIN_RECORD_BYTES);
        assert!(host_book.bytes_d2h >= 10 * dev_book.bytes_d2h, "m=276 lanes cut D2H ≥ 10×");
        assert_eq!(dev_book.launches, 2, "eval launch + argmin launch");
        assert_eq!(host_book.launches, 1);
        assert!(dev_book.kernel_s > host_book.kernel_s, "the reduction costs kernel time");
        assert_eq!(dev_book.bytes_h2d, host_book.bytes_h2d, "uploads unchanged");
    }

    #[test]
    fn span_results_match_per_iteration_and_amortize_overhead() {
        use lnls_gpu_sim::EngineConfig;
        let spec = DeviceSpec::gtx280().with_engines(EngineConfig::fermi());
        let hood = TwoHamming::new(24);
        let prof = profile(&spec, hood.size());
        let p = ZeroCount { n: 24 };
        let mut rng = StdRng::seed_from_u64(9);
        let s1 = BitString::random(&mut rng, 24);
        let s2 = BitString::random(&mut rng, 24);
        let n_iters = 4;

        // Reference: n per-iteration fused launches.
        let run_per_iteration = || {
            let mut batch = BatchedExplorer::new(hood, spec.clone());
            let mut st1 = p.init_state(&s1);
            let mut st2 = p.init_state(&s2);
            let (mut o1, mut o2) = (Vec::new(), Vec::new());
            let mut total = 0.0;
            for _ in 0..n_iters {
                let mut lanes = [
                    BatchLane {
                        problem: &p,
                        s: &s1,
                        state: &mut st1,
                        out: &mut o1,
                        profile: prof,
                        selection: SelectionMode::HostArgmin,
                    },
                    BatchLane {
                        problem: &p,
                        s: &s2,
                        state: &mut st2,
                        out: &mut o2,
                        profile: prof,
                        selection: SelectionMode::HostArgmin,
                    },
                ];
                total += batch.explore_batch(&mut lanes);
            }
            (total, o1, o2, batch.book().clone())
        };
        let run_span = |mode: LaunchMode| {
            let mut batch = BatchedExplorer::new(hood, spec.clone());
            let mut st1 = p.init_state(&s1);
            let mut st2 = p.init_state(&s2);
            let (mut o1, mut o2) = (Vec::new(), Vec::new());
            batch.begin_span(mode);
            for _ in 0..n_iters {
                let mut lanes = [
                    BatchLane {
                        problem: &p,
                        s: &s1,
                        state: &mut st1,
                        out: &mut o1,
                        profile: prof,
                        selection: SelectionMode::HostArgmin,
                    },
                    BatchLane {
                        problem: &p,
                        s: &s2,
                        state: &mut st2,
                        out: &mut o2,
                        profile: prof,
                        selection: SelectionMode::HostArgmin,
                    },
                ];
                batch.explore_span(&mut lanes);
            }
            let pricing = batch.finish_span();
            (pricing, o1, o2, batch.book().clone())
        };

        let (per_total, ref_o1, ref_o2, per_book) = run_per_iteration();
        let (span, s_o1, s_o2, span_book) = run_span(LaunchMode::PerIteration);
        let (resident, r_o1, r_o2, resident_book) = run_span(LaunchMode::PersistentSpan);

        // Pricing-only: fitness vectors identical on every path.
        assert_eq!((&s_o1, &s_o2), (&ref_o1, &ref_o2));
        assert_eq!((&r_o1, &r_o2), (&ref_o1, &ref_o2));

        assert_eq!(span.iterations, n_iters as u64);
        assert!(
            span.makespan_s < per_total - 1e-12,
            "pipelined span {} must beat {} per-iteration launches ({per_total})",
            span.makespan_s,
            n_iters
        );
        assert!(resident.makespan_s < span.makespan_s);
        let amortized = (n_iters - 1) as f64 * spec.launch_overhead_s;
        assert!((resident.overhead_saved_s - amortized).abs() < 1e-15);
        assert!((span_book.overhead_s - resident_book.overhead_s - amortized).abs() < 1e-15);
        // The ledger's component totals are unchanged by spanning —
        // bytes and kernel seconds move identically.
        assert_eq!(span_book.bytes_h2d, per_book.bytes_h2d);
        assert_eq!(span_book.bytes_d2h, per_book.bytes_d2h);
        assert!((span_book.kernel_s - per_book.kernel_s).abs() < 1e-15);
        assert_eq!(span_book.launches, per_book.launches);
        assert_eq!(resident_book.launches, 1);
    }

    #[test]
    fn lane_profile_scales_with_neighborhood() {
        let spec = DeviceSpec::gtx280();
        let host = HostSpec::xeon_3ghz();
        let small = LaneProfile::incremental_eval(&spec, &host, 100, 1, 32, 0);
        let large = LaneProfile::incremental_eval(&spec, &host, 10_000, 3, 32, 0);
        assert!(large.kernel_seconds > small.kernel_seconds);
        assert!(large.d2h_bytes > small.d2h_bytes);
        assert!(large.host_seconds / large.kernel_seconds > 1.0, "device must model faster");
    }
}
