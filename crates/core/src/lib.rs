//! # lnls-core — the local-search framework
//!
//! The "general model for local search algorithms" of Luong, Melab &
//! Talbi (LSPP @ IPDPS 2010, Fig. 1): at each iteration the full
//! neighborhood of the current solution is generated and evaluated, the
//! best candidate replaces it, and the process repeats until a stopping
//! criterion fires.
//!
//! The crate separates three concerns:
//!
//! * **Problems** ([`BinaryProblem`], [`IncrementalEval`]): pseudo-Boolean
//!   minimization with cheap neighbor deltas;
//! * **Exploration backends** ([`Explorer`]): where the neighborhood gets
//!   evaluated — one CPU thread, all CPU cores, or the simulated GPU
//!   (`lnls-ppp::PppGpuExplorer`);
//! * **Drivers**: [`TabuSearch`] (the paper's algorithm), plus the other
//!   classics its introduction lists — [`HillClimbing`],
//!   [`SimulatedAnnealing`], [`IteratedLocalSearch`],
//!   [`VariableNeighborhoodSearch`] — the shake-based [`GeneralVns`],
//!   and the ParadisEO-style white-box layer in [`peo`] (continuators,
//!   observers, pluggable acceptance), per the paper's §V integration
//!   plan.
//!
//! ```
//! use lnls_core::prelude::*;
//! use lnls_neighborhood::{Neighborhood, TwoHamming};
//!
//! // A toy problem: minimize the number of zero bits.
//! # use lnls_core::problem::{BinaryProblem, IncrementalEval};
//! # use lnls_neighborhood::FlipMove;
//! struct ZeroCount(usize);
//! impl BinaryProblem for ZeroCount {
//!     fn dim(&self) -> usize { self.0 }
//!     fn evaluate(&self, s: &BitString) -> i64 { self.0 as i64 - s.count_ones() as i64 }
//!     fn target_fitness(&self) -> Option<i64> { Some(0) }
//! }
//! impl IncrementalEval for ZeroCount {
//!     type State = i64;
//!     fn init_state(&self, s: &BitString) -> i64 { self.evaluate(s) }
//!     fn state_fitness(&self, st: &i64) -> i64 { *st }
//!     fn neighbor_fitness(&self, st: &mut i64, s: &BitString, mv: &FlipMove) -> i64 {
//!         mv.bits().iter().fold(*st, |f, &b| f + if s.get(b as usize) { 1 } else { -1 })
//!     }
//!     fn apply_move(&self, st: &mut i64, s: &BitString, mv: &FlipMove) {
//!         // `neighbor_fitness` is logically const, so the state can be
//!         // advanced by evaluating the committed move in place.
//!         *st = self.neighbor_fitness(st, s, mv);
//!     }
//! }
//!
//! let problem = ZeroCount(24);
//! let hood = TwoHamming::new(24);
//! let mut explorer = SequentialExplorer::new(hood);
//! let search = TabuSearch::paper(SearchConfig::budget(500), hood.size());
//! let result = search.run(&problem, &mut explorer, BitString::zeros(24));
//! assert_eq!(result.best_fitness, 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod anneal;
pub mod batch;
pub mod bitstring;
pub mod cursor;
pub mod explore;
pub mod gvns;
pub mod hillclimb;
pub mod ils;
pub mod multistart;
pub mod peo;
pub mod persist;
pub mod problem;
pub mod report;
pub mod search;
pub mod tabu;
pub mod vns;

pub use anneal::{AnnealCursor, SimulatedAnnealing};
pub use batch::{BatchLane, BatchedExplorer, LaneProfile, SpanPricing};
pub use bitstring::{zobrist_table, BitString};
pub use cursor::{DynCursor, ProblemCursor, SearchCursor};
pub use explore::{Explorer, ParallelCpuExplorer, SequentialExplorer};
pub use gvns::GeneralVns;
pub use hillclimb::{descend_in_place, HillClimbing, Pivot};
pub use ils::IteratedLocalSearch;
pub use multistart::MultiStart;
pub use persist::{Persist, PersistError, PersistTag, Reader};
pub use problem::{BinaryProblem, IncrementalEval};
pub use report::{fmt_seconds, TableRow};
pub use search::{SearchConfig, SearchResult, StopReason};
pub use tabu::{TabuCursor, TabuSearch, TabuStrategy};
pub use vns::VariableNeighborhoodSearch;

/// Everything a typical user needs in scope.
pub mod prelude {
    pub use crate::bitstring::BitString;
    pub use crate::explore::{Explorer, ParallelCpuExplorer, SequentialExplorer};
    pub use crate::hillclimb::HillClimbing;
    pub use crate::problem::{BinaryProblem, IncrementalEval};
    pub use crate::report::TableRow;
    pub use crate::search::{SearchConfig, SearchResult};
    pub use crate::tabu::{TabuSearch, TabuStrategy};
}
