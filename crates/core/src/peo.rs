//! White-box local-search composition in the style of ParadisEO's
//! "evolving objects" — the framework the paper's §V announces as the
//! integration target for its GPU concepts.
//!
//! ParadisEO separates a metaheuristic into small replaceable objects:
//! *continuators* (stopping criteria that can be combined), *observers*
//! (checkpoint hooks watching the run), and the move-acceptance policy.
//! This module provides those objects for the paper's Fig. 1 loop:
//! generate the full neighborhood, evaluate it (on any [`Explorer`]
//! backend, including the simulated GPU), select the best candidate,
//! accept or stop.
//!
//! ```
//! use lnls_core::peo::*;
//! use lnls_core::prelude::*;
//! use lnls_neighborhood::{Neighborhood, TwoHamming};
//! # use lnls_core::problem::{BinaryProblem, IncrementalEval};
//! # use lnls_neighborhood::FlipMove;
//! # struct ZeroCount(usize);
//! # impl BinaryProblem for ZeroCount {
//! #     fn dim(&self) -> usize { self.0 }
//! #     fn evaluate(&self, s: &BitString) -> i64 { self.0 as i64 - s.count_ones() as i64 }
//! #     fn target_fitness(&self) -> Option<i64> { Some(0) }
//! # }
//! # impl IncrementalEval for ZeroCount {
//! #     type State = i64;
//! #     fn init_state(&self, s: &BitString) -> i64 { self.evaluate(s) }
//! #     fn state_fitness(&self, st: &i64) -> i64 { *st }
//! #     fn neighbor_fitness(&self, st: &mut i64, s: &BitString, mv: &FlipMove) -> i64 {
//! #         mv.bits().iter().fold(*st, |f, &b| f + if s.get(b as usize) { 1 } else { -1 })
//! #     }
//! #     fn apply_move(&self, st: &mut i64, s: &BitString, mv: &FlipMove) {
//! #         *st = self.neighbor_fitness(&mut st.clone(), s, mv);
//! #     }
//! # }
//! let problem = ZeroCount(16);
//! let mut explorer = SequentialExplorer::new(TwoHamming::new(16));
//! let mut trace = FitnessTrace::default();
//! let result = PeoSearch::new(Acceptance::Strict)
//!     .stop_when(MaxIterations(100))
//!     .stop_when(TargetFitness(0))
//!     .observe(&mut trace)
//!     .run(&problem, &mut explorer, BitString::zeros(16));
//! assert_eq!(result.best_fitness, 0);
//! assert_eq!(trace.best.len(), result.iterations as usize);
//! ```

use crate::bitstring::BitString;
use crate::explore::Explorer;
use crate::problem::IncrementalEval;
use crate::search::SearchResult;
use std::time::{Duration, Instant};

/// A snapshot of the run handed to continuators and observers after
/// every iteration.
#[derive(Clone, Debug)]
pub struct IterationStatus {
    /// Iterations completed so far (1-based by the time hooks see it).
    pub iteration: u64,
    /// Fitness of the *current* solution (may move uphill under
    /// [`Acceptance::Always`]).
    pub current_fitness: i64,
    /// Best fitness seen so far.
    pub best_fitness: i64,
    /// Neighbor evaluations so far.
    pub evals: u64,
    /// Wall-clock since the run started.
    pub elapsed: Duration,
}

/// A stopping criterion: `proceed` returns `true` while the run may
/// continue. Criteria compose — the driver stops as soon as *any*
/// registered continuator votes stop (ParadisEO's combined-continue
/// convention).
pub trait Continuator {
    /// Reset internal state at the start of a run.
    fn init(&mut self) {}
    /// `true` to continue, `false` to stop.
    fn proceed(&mut self, status: &IterationStatus) -> bool;
    /// Name for the stop-reason report.
    fn name(&self) -> String;
}

/// Stop after a fixed number of iterations.
pub struct MaxIterations(pub u64);

impl Continuator for MaxIterations {
    fn proceed(&mut self, status: &IterationStatus) -> bool {
        status.iteration < self.0
    }
    fn name(&self) -> String {
        format!("max-iterations({})", self.0)
    }
}

/// Stop once the best fitness reaches a target (≤).
pub struct TargetFitness(pub i64);

impl Continuator for TargetFitness {
    fn proceed(&mut self, status: &IterationStatus) -> bool {
        status.best_fitness > self.0
    }
    fn name(&self) -> String {
        format!("target-fitness({})", self.0)
    }
}

/// Stop after a wall-clock budget.
pub struct TimeBudget(pub Duration);

impl Continuator for TimeBudget {
    fn proceed(&mut self, status: &IterationStatus) -> bool {
        status.elapsed < self.0
    }
    fn name(&self) -> String {
        format!("time-budget({:?})", self.0)
    }
}

/// Stop after a total neighbor-evaluation budget (the honest way to
/// compare neighborhoods of different sizes, since one 3-Hamming
/// iteration costs ~n²/3 times a 1-Hamming one).
pub struct EvalBudget(pub u64);

impl Continuator for EvalBudget {
    fn proceed(&mut self, status: &IterationStatus) -> bool {
        status.evals < self.0
    }
    fn name(&self) -> String {
        format!("eval-budget({})", self.0)
    }
}

/// Stop when the best fitness has not improved for `window` consecutive
/// iterations (ParadisEO's steady-fitness continuator).
pub struct SteadyFitness {
    /// Width of the no-improvement window.
    pub window: u64,
    best_seen: i64,
    since: u64,
}

impl SteadyFitness {
    /// Stop after `window` iterations without improvement.
    pub fn new(window: u64) -> Self {
        Self { window, best_seen: i64::MAX, since: 0 }
    }
}

impl Continuator for SteadyFitness {
    fn init(&mut self) {
        self.best_seen = i64::MAX;
        self.since = 0;
    }
    fn proceed(&mut self, status: &IterationStatus) -> bool {
        if status.best_fitness < self.best_seen {
            self.best_seen = status.best_fitness;
            self.since = 0;
        } else {
            self.since += 1;
        }
        self.since < self.window
    }
    fn name(&self) -> String {
        format!("steady-fitness({})", self.window)
    }
}

/// A checkpoint hook observing the run (ParadisEO's `eoCheckPoint`
/// attachments). All methods default to no-ops so observers implement
/// only what they need.
pub trait Observer {
    /// Called once before the first iteration.
    fn on_start(&mut self, _initial_fitness: i64) {}
    /// Called after every completed iteration.
    fn on_iteration(&mut self, _status: &IterationStatus) {}
    /// Called once when the run stops, with the final result and the
    /// name of the continuator that fired (`None` = converged).
    fn on_finish(&mut self, _result: &SearchResult, _stopped_by: Option<&str>) {}
}

/// Records the best-so-far and current fitness after every iteration.
#[derive(Default, Debug)]
pub struct FitnessTrace {
    /// Best-so-far fitness per iteration.
    pub best: Vec<i64>,
    /// Current-solution fitness per iteration.
    pub current: Vec<i64>,
    /// Fitness of the initial solution.
    pub initial: Option<i64>,
}

impl Observer for FitnessTrace {
    fn on_start(&mut self, initial_fitness: i64) {
        self.initial = Some(initial_fitness);
        self.best.clear();
        self.current.clear();
    }
    fn on_iteration(&mut self, status: &IterationStatus) {
        self.best.push(status.best_fitness);
        self.current.push(status.current_fitness);
    }
}

/// Serializes per-iteration rows as CSV into an owned string buffer
/// (`iteration,current,best,evals,elapsed_s`).
#[derive(Default, Debug)]
pub struct CsvLogger {
    /// The accumulated CSV text, header included.
    pub buffer: String,
}

impl Observer for CsvLogger {
    fn on_start(&mut self, _initial_fitness: i64) {
        self.buffer = String::from("iteration,current,best,evals,elapsed_s\n");
    }
    fn on_iteration(&mut self, s: &IterationStatus) {
        use std::fmt::Write;
        let _ = writeln!(
            self.buffer,
            "{},{},{},{},{:.6}",
            s.iteration,
            s.current_fitness,
            s.best_fitness,
            s.evals,
            s.elapsed.as_secs_f64()
        );
    }
}

/// Counts callback invocations; useful for asserting hook wiring (and as
/// the smallest possible observer example).
#[derive(Default, Debug)]
pub struct HookCounter {
    /// `on_start` invocations.
    pub starts: usize,
    /// `on_iteration` invocations.
    pub iterations: usize,
    /// `on_finish` invocations.
    pub finishes: usize,
    /// Name of the continuator that stopped the last run.
    pub stopped_by: Option<String>,
}

impl Observer for HookCounter {
    fn on_start(&mut self, _: i64) {
        self.starts += 1;
    }
    fn on_iteration(&mut self, _: &IterationStatus) {
        self.iterations += 1;
    }
    fn on_finish(&mut self, _: &SearchResult, stopped_by: Option<&str>) {
        self.finishes += 1;
        self.stopped_by = stopped_by.map(str::to_owned);
    }
}

/// Move-acceptance policy for the Fig. 1 loop.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Acceptance {
    /// Accept only strictly improving best neighbors; stop (converged)
    /// at a local optimum — plain best-improvement hill climbing.
    Strict,
    /// Always move to the best neighbor, even uphill — the memory-less
    /// skeleton of the paper's tabu search.
    Always,
}

/// The composable Fig. 1 driver: explore-all / select-best / accept,
/// with pluggable continuators and observers.
///
/// Continuators are owned by the search (builder:
/// [`stop_when`](Self::stop_when)); observers are borrowed mutably for the duration
/// of [`run`](Self::run) so callers keep them afterwards.
pub struct PeoSearch<'obs> {
    acceptance: Acceptance,
    continuators: Vec<Box<dyn Continuator>>,
    observers: Vec<&'obs mut dyn Observer>,
}

impl<'obs> PeoSearch<'obs> {
    /// A driver with the given acceptance policy and no stopping
    /// criteria (add at least one with [`stop_when`](Self::stop_when)
    /// unless `Strict` acceptance is used, which stops on convergence).
    pub fn new(acceptance: Acceptance) -> Self {
        Self { acceptance, continuators: Vec::new(), observers: Vec::new() }
    }

    /// Register a stopping criterion (any criterion stopping stops the
    /// run).
    pub fn stop_when<C: Continuator + 'static>(mut self, c: C) -> Self {
        self.continuators.push(Box::new(c));
        self
    }

    /// Attach an observer for the next run.
    pub fn observe(mut self, obs: &'obs mut dyn Observer) -> Self {
        self.observers.push(obs);
        self
    }

    /// Run the loop from `init` on `explorer`.
    pub fn run<P: IncrementalEval>(
        mut self,
        problem: &P,
        explorer: &mut dyn Explorer<P>,
        init: BitString,
    ) -> SearchResult {
        let wall0 = Instant::now();
        let mut s = init;
        let mut state = problem.init_state(&s);
        let mut cur = problem.state_fitness(&state);
        let mut best = s.clone();
        let mut best_f = cur;
        let mut out = Vec::new();
        let mut iteration = 0u64;
        let mut evals = 0u64;
        let mut stopped_by: Option<String> = None;

        for c in &mut self.continuators {
            c.init();
        }
        for o in &mut self.observers {
            o.on_start(cur);
        }

        loop {
            // Ask every continuator *before* the next iteration.
            let status = IterationStatus {
                iteration,
                current_fitness: cur,
                best_fitness: best_f,
                evals,
                elapsed: wall0.elapsed(),
            };
            let mut fired: Option<String> = None;
            for c in self.continuators.iter_mut() {
                if !c.proceed(&status) {
                    fired = Some(c.name());
                    break;
                }
            }
            if let Some(name) = fired {
                stopped_by = Some(name);
                break;
            }

            explorer.explore(problem, &s, &mut state, &mut out);
            evals += out.len() as u64;
            let (best_idx, &best_neighbor) = out
                .iter()
                .enumerate()
                .min_by_key(|&(i, f)| (*f, i))
                .expect("non-empty neighborhood");

            if self.acceptance == Acceptance::Strict && best_neighbor >= cur {
                break; // converged: local optimum
            }

            let mv = explorer.unrank(best_idx as u64);
            problem.apply_move(&mut state, &s, &mv);
            s.apply(&mv);
            explorer.committed(problem, &s, &state, &mv);
            cur = best_neighbor;
            iteration += 1;
            if cur < best_f {
                best_f = cur;
                best = s.clone();
            }

            let status = IterationStatus {
                iteration,
                current_fitness: cur,
                best_fitness: best_f,
                evals,
                elapsed: wall0.elapsed(),
            };
            for o in &mut self.observers {
                o.on_iteration(&status);
            }
        }

        let result = SearchResult {
            best,
            best_fitness: best_f,
            iterations: iteration,
            success: problem.target_fitness().is_some_and(|t| best_f <= t),
            evals,
            wall: wall0.elapsed(),
            book: explorer.book(),
            backend: format!("peo/{}", explorer.backend()),
            history: None,
            trajectory: None,
        };
        for o in &mut self.observers {
            o.on_finish(&result, stopped_by.as_deref());
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::SequentialExplorer;
    use crate::problem::testutil::ZeroCount;
    use lnls_neighborhood::{OneHamming, TwoHamming};

    fn problem_and_explorer(n: usize) -> (ZeroCount, SequentialExplorer<OneHamming>) {
        (ZeroCount { n }, SequentialExplorer::new(OneHamming::new(n)))
    }

    #[test]
    fn strict_acceptance_descends_to_optimum() {
        let (p, mut ex) = problem_and_explorer(12);
        let r = PeoSearch::new(Acceptance::Strict).stop_when(MaxIterations(100)).run(
            &p,
            &mut ex,
            BitString::zeros(12),
        );
        assert_eq!(r.best_fitness, 0);
        assert_eq!(r.iterations, 12, "one bit fixed per iteration");
    }

    #[test]
    fn strict_stops_at_local_optimum_without_continuators() {
        let (p, mut ex) = problem_and_explorer(6);
        // Start at the optimum: must converge with zero iterations even
        // though no continuator was registered.
        let mut all_ones = BitString::zeros(6);
        for i in 0..6 {
            all_ones.flip(i);
        }
        let r = PeoSearch::new(Acceptance::Strict).run(&p, &mut ex, all_ones);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.best_fitness, 0);
    }

    #[test]
    fn max_iterations_fires_exactly() {
        let (p, mut ex) = problem_and_explorer(30);
        let mut hooks = HookCounter::default();
        let r = PeoSearch::new(Acceptance::Always)
            .stop_when(MaxIterations(5))
            .observe(&mut hooks)
            .run(&p, &mut ex, BitString::zeros(30));
        assert_eq!(r.iterations, 5);
        assert_eq!(hooks.iterations, 5);
        assert_eq!(hooks.starts, 1);
        assert_eq!(hooks.finishes, 1);
        assert_eq!(hooks.stopped_by.as_deref(), Some("max-iterations(5)"));
    }

    #[test]
    fn target_fitness_stops_early() {
        let (p, mut ex) = problem_and_explorer(20);
        let r = PeoSearch::new(Acceptance::Always)
            .stop_when(MaxIterations(1000))
            .stop_when(TargetFitness(10))
            .run(&p, &mut ex, BitString::zeros(20));
        assert_eq!(r.best_fitness, 10);
        assert_eq!(r.iterations, 10);
    }

    #[test]
    fn eval_budget_counts_neighborhood_size() {
        let n = 10; // 1-Hamming: 10 evals per iteration
        let p = ZeroCount { n };
        let mut ex = SequentialExplorer::new(OneHamming::new(n));
        let r = PeoSearch::new(Acceptance::Always).stop_when(EvalBudget(35)).run(
            &p,
            &mut ex,
            BitString::zeros(n),
        );
        // Iterations 1..4 hit 10,20,30,40 evals; the check happens
        // before each iteration, so the run stops entering iteration 4.
        assert_eq!(r.iterations, 4);
        assert_eq!(r.evals, 40);
    }

    #[test]
    fn steady_fitness_detects_stagnation() {
        // Always-accept on ZeroCount oscillates at the optimum: best
        // stops improving, so SteadyFitness(3) must fire.
        let (p, mut ex) = problem_and_explorer(8);
        let mut hooks = HookCounter::default();
        let r = PeoSearch::new(Acceptance::Always)
            .stop_when(SteadyFitness::new(3))
            .stop_when(MaxIterations(1000))
            .observe(&mut hooks)
            .run(&p, &mut ex, BitString::zeros(8));
        assert!(r.iterations < 1000);
        assert_eq!(hooks.stopped_by.as_deref(), Some("steady-fitness(3)"));
        assert_eq!(r.best_fitness, 0);
    }

    #[test]
    fn fitness_trace_records_every_iteration() {
        let (p, mut ex) = problem_and_explorer(10);
        let mut trace = FitnessTrace::default();
        let r = PeoSearch::new(Acceptance::Strict)
            .stop_when(MaxIterations(100))
            .observe(&mut trace)
            .run(&p, &mut ex, BitString::zeros(10));
        assert_eq!(trace.initial, Some(10));
        assert_eq!(trace.best.len(), r.iterations as usize);
        // Strict descent: strictly decreasing best fitness.
        assert!(trace.best.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn csv_logger_produces_parseable_rows() {
        let (p, mut ex) = problem_and_explorer(6);
        let mut csv = CsvLogger::default();
        let r = PeoSearch::new(Acceptance::Strict)
            .stop_when(MaxIterations(100))
            .observe(&mut csv)
            .run(&p, &mut ex, BitString::zeros(6));
        let lines: Vec<&str> = csv.buffer.lines().collect();
        assert_eq!(lines[0], "iteration,current,best,evals,elapsed_s");
        assert_eq!(lines.len() as u64, r.iterations + 1);
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), 5, "row {row:?}");
        }
    }

    #[test]
    fn multiple_observers_all_notified() {
        let (p, mut ex) = problem_and_explorer(9);
        let mut a = HookCounter::default();
        let mut b = HookCounter::default();
        let _ = PeoSearch::new(Acceptance::Strict)
            .stop_when(MaxIterations(100))
            .observe(&mut a)
            .observe(&mut b)
            .run(&p, &mut ex, BitString::zeros(9));
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.finishes, 1);
        assert_eq!(b.finishes, 1);
    }

    #[test]
    fn peo_matches_hillclimb_best_improvement() {
        // The Strict PeoSearch must land on the same local optimum as
        // the dedicated hill climber with best-improvement pivoting.
        use crate::hillclimb::HillClimbing;
        use crate::search::SearchConfig;
        let n = 16;
        let p = ZeroCount { n };
        let init = BitString::zeros(n);

        let mut ex1 = SequentialExplorer::new(TwoHamming::new(n));
        let peo = PeoSearch::new(Acceptance::Strict).stop_when(MaxIterations(10_000)).run(
            &p,
            &mut ex1,
            init.clone(),
        );

        let mut ex2 = SequentialExplorer::new(TwoHamming::new(n));
        let hc = HillClimbing::best(SearchConfig::budget(10_000));
        let r = hc.run(&p, &mut ex2, init);

        assert_eq!(peo.best_fitness, r.best_fitness);
        assert_eq!(peo.iterations, r.iterations);
    }
}
