//! The adaptive destroy-radius controller.

use lnls_core::persist::{Persist, PersistError, Reader};

/// Destroy-fraction controller: shrink on improvement, grow only after
/// `grow_after` consecutive non-improving rounds, bounded both ends.
///
/// The policy encodes the Neighbours' Similar Fitness intuition: near a
/// good incumbent small repairs usually suffice, so the radius contracts
/// whenever a round improves; only a demonstrated stall earns a wider
/// destroy set. Fully deterministic (no randomness, pure function of
/// the improvement/stall history) and byte-persistable, so a restored
/// checkpoint resumes with the exact same schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct AdaptiveRadius {
    fraction: f64,
    min: f64,
    max: f64,
    grow_after: u32,
    stalls: u32,
}

impl AdaptiveRadius {
    /// Growth factor applied after `grow_after` stalls.
    const GROW: f64 = 2.0;
    /// Shrink factor applied on improvement.
    const SHRINK: f64 = 0.5;

    /// A controller starting at `min`, growing toward `max` after every
    /// `grow_after` consecutive non-improving rounds.
    ///
    /// # Panics
    /// Panics unless `0 < min <= max <= 1` and `grow_after >= 1`.
    pub fn new(min: f64, max: f64, grow_after: u32) -> Self {
        assert!(min > 0.0 && min <= max && max <= 1.0, "need 0 < min <= max <= 1");
        assert!(grow_after >= 1, "grow_after must be at least 1");
        Self { fraction: min, min, max, grow_after, stalls: 0 }
    }

    /// The fleet default: destroy 1/8 of the variables, allow growth to
    /// half of them after 3 consecutive stalls.
    pub fn paper_default() -> Self {
        Self::new(0.125, 0.5, 3)
    }

    /// Current destroy fraction in `(0, 1]`.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// Consecutive non-improving rounds since the last change.
    pub fn stalls(&self) -> u32 {
        self.stalls
    }

    /// Lower bound of the fraction.
    pub fn min_fraction(&self) -> f64 {
        self.min
    }

    /// Upper bound of the fraction.
    pub fn max_fraction(&self) -> f64 {
        self.max
    }

    /// An improving round: contract the radius and reset the stall run.
    pub fn record_improvement(&mut self) {
        self.fraction = (self.fraction * Self::SHRINK).max(self.min);
        self.stalls = 0;
    }

    /// A non-improving round: after `grow_after` of these in a row,
    /// widen the radius and restart the count.
    pub fn record_stall(&mut self) {
        self.stalls += 1;
        if self.stalls >= self.grow_after {
            self.fraction = (self.fraction * Self::GROW).min(self.max);
            self.stalls = 0;
        }
    }
}

impl Persist for AdaptiveRadius {
    fn write(&self, out: &mut Vec<u8>) {
        self.fraction.write(out);
        self.min.write(out);
        self.max.write(out);
        self.grow_after.write(out);
        self.stalls.write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let fraction: f64 = r.read()?;
        let min: f64 = r.read()?;
        let max: f64 = r.read()?;
        let grow_after: u32 = r.read()?;
        let stalls: u32 = r.read()?;
        if !(min > 0.0 && min <= max && max <= 1.0) || grow_after == 0 {
            return Err(PersistError::new("corrupt adaptive-radius bounds"));
        }
        if !(fraction >= min && fraction <= max) {
            return Err(PersistError::new("adaptive-radius fraction outside its bounds"));
        }
        Ok(Self { fraction, min, max, grow_after, stalls })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_only_after_k_stalls_and_stays_bounded() {
        let mut r = AdaptiveRadius::new(0.1, 0.4, 3);
        assert_eq!(r.fraction(), 0.1);
        r.record_stall();
        r.record_stall();
        assert_eq!(r.fraction(), 0.1, "two stalls are not enough");
        r.record_stall();
        assert_eq!(r.fraction(), 0.2, "third stall doubles the radius");
        for _ in 0..30 {
            r.record_stall();
        }
        assert_eq!(r.fraction(), 0.4, "growth is capped at max");
    }

    #[test]
    fn shrinks_on_improvement_and_stays_bounded() {
        let mut r = AdaptiveRadius::new(0.1, 0.4, 2);
        r.record_stall();
        r.record_stall();
        r.record_stall();
        r.record_stall();
        assert_eq!(r.fraction(), 0.4);
        r.record_improvement();
        assert_eq!(r.fraction(), 0.2);
        for _ in 0..10 {
            r.record_improvement();
        }
        assert_eq!(r.fraction(), 0.1, "shrink is floored at min");
        assert_eq!(r.stalls(), 0);
    }

    #[test]
    fn improvement_resets_the_stall_run() {
        let mut r = AdaptiveRadius::new(0.1, 0.4, 3);
        r.record_stall();
        r.record_stall();
        r.record_improvement();
        r.record_stall();
        r.record_stall();
        assert_eq!(r.fraction(), 0.1, "the run restarts after an improvement");
    }

    #[test]
    fn persist_roundtrip_and_corruption() {
        let mut r = AdaptiveRadius::new(0.1, 0.4, 3);
        r.record_stall();
        r.record_stall();
        let bytes = r.to_bytes();
        let back: AdaptiveRadius = Reader::new(&bytes).read().expect("decode");
        assert_eq!(back, r);
        let mut bad = Vec::new();
        0.9f64.write(&mut bad); // fraction above max
        0.1f64.write(&mut bad);
        0.4f64.write(&mut bad);
        3u32.write(&mut bad);
        0u32.write(&mut bad);
        assert!(Reader::new(&bad).read::<AdaptiveRadius>().is_err());
    }
}
