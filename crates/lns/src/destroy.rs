//! Destroy operators: which variables a round frees for repair.

use lnls_core::persist::{Persist, PersistError, Reader};

/// How a destroy round picks the freed variable subset.
///
/// The three concrete selectors cover the classic LNS spectrum —
/// unbiased diversification, locality, and cost-guided intensification;
/// [`Cycle`](DestroyOp::Cycle) rotates through them round-robin so one
/// job exercises all three deterministically.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DestroyOp {
    /// A uniform random subset of the variables (seeded, deterministic).
    Random,
    /// A contiguous index block starting at a random position, wrapping
    /// around the end — frees structurally adjacent variables.
    Block,
    /// The variables whose single-bit flip most improves (or least
    /// worsens) the incumbent — greedily frees the "worst-placed" ones.
    /// Draws nothing from the RNG.
    GreedyWorst,
    /// Rotate Random → Block → GreedyWorst per round.
    Cycle,
}

impl DestroyOp {
    /// Resolve the operator a given round actually applies
    /// ([`Cycle`](DestroyOp::Cycle) rotates; the rest are fixed points).
    pub fn for_round(self, round: u64) -> DestroyOp {
        match self {
            DestroyOp::Cycle => match round % 3 {
                0 => DestroyOp::Random,
                1 => DestroyOp::Block,
                _ => DestroyOp::GreedyWorst,
            },
            fixed => fixed,
        }
    }

    /// Stable display label.
    pub fn label(&self) -> &'static str {
        match self {
            DestroyOp::Random => "random",
            DestroyOp::Block => "block",
            DestroyOp::GreedyWorst => "greedy-worst",
            DestroyOp::Cycle => "cycle",
        }
    }
}

impl Persist for DestroyOp {
    fn write(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            DestroyOp::Random => 0,
            DestroyOp::Block => 1,
            DestroyOp::GreedyWorst => 2,
            DestroyOp::Cycle => 3,
        };
        tag.write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.read::<u8>()? {
            0 => Ok(DestroyOp::Random),
            1 => Ok(DestroyOp::Block),
            2 => Ok(DestroyOp::GreedyWorst),
            3 => Ok(DestroyOp::Cycle),
            t => Err(PersistError::new(format!("unknown destroy op tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_rotates_and_fixed_ops_stay_put() {
        assert_eq!(DestroyOp::Cycle.for_round(0), DestroyOp::Random);
        assert_eq!(DestroyOp::Cycle.for_round(1), DestroyOp::Block);
        assert_eq!(DestroyOp::Cycle.for_round(2), DestroyOp::GreedyWorst);
        assert_eq!(DestroyOp::Cycle.for_round(3), DestroyOp::Random);
        assert_eq!(DestroyOp::Block.for_round(7), DestroyOp::Block);
    }

    #[test]
    fn persist_roundtrip_and_bad_tag() {
        for op in [DestroyOp::Random, DestroyOp::Block, DestroyOp::GreedyWorst, DestroyOp::Cycle] {
            let back: DestroyOp = Reader::new(&op.to_bytes()).read().expect("decode");
            assert_eq!(back, op);
        }
        assert!(Reader::new(&[9u8]).read::<DestroyOp>().is_err());
    }
}
