//! The portfolio-race cursor: tabu vs. annealing vs. shaken descent.

use lnls_core::persist::{Persist, PersistError, Reader};
use lnls_core::{
    AnnealCursor, BitString, Explorer, IncrementalEval, SearchConfig, SearchCursor, SearchResult,
    SequentialExplorer, SimulatedAnnealing, TabuCursor, TabuSearch,
};
use lnls_neighborhood::{FlipMove, KHamming, Neighborhood};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::time::Duration;

/// Display names of the three racing lanes, by lane index.
pub const LANE_NAMES: [&str; 3] = ["tabu", "sa", "gvns"];

/// Configuration builder for the portfolio race.
///
/// `max_iters` counts **rounds**. Every round each lane advances one
/// sub-step, except the current leader which advances
/// [`boost`](Self::with_boost) sub-steps; at every
/// [`realloc_every`](Self::with_realloc_every)-round boundary the lane
/// with the best incumbent becomes the new leader. The three
/// heterogeneous lanes are what the runtime prices as one fused batch.
#[derive(Clone, Debug)]
pub struct PortfolioSearch {
    config: SearchConfig,
    realloc_every: u64,
    boost: u64,
    hood_k: usize,
}

impl PortfolioSearch {
    /// The fleet defaults: re-pick the leader every 8 rounds, give it a
    /// 4× sub-step boost, explore 2-Hamming tabu neighborhoods.
    pub fn paper(config: SearchConfig) -> Self {
        Self { config, realloc_every: 8, boost: 4, hood_k: 2 }
    }

    /// Re-pick the leader every `rounds` rounds (at least 1).
    pub fn with_realloc_every(mut self, rounds: u64) -> Self {
        assert!(rounds >= 1, "need a positive reallocation quantum");
        self.realloc_every = rounds;
        self
    }

    /// Give the leading lane `boost` sub-steps per round (at least 1).
    pub fn with_boost(mut self, boost: u64) -> Self {
        assert!(boost >= 1, "the leader keeps at least one sub-step");
        self.boost = boost;
        self
    }

    /// Tabu-lane neighborhood order (k-Hamming, at least 1).
    pub fn with_hood_k(mut self, k: usize) -> Self {
        assert!(k >= 1, "neighborhood order must be at least 1");
        self.hood_k = k;
        self
    }

    /// A resumable race over `problem` starting all lanes from `init`.
    ///
    /// # Panics
    /// Panics when `init` does not match the problem dimension.
    pub fn cursor<P: IncrementalEval>(&self, problem: &P, init: BitString) -> PortfolioCursor<P> {
        let dim = problem.dim();
        assert_eq!(init.len(), dim, "initial solution/problem dimension mismatch");
        let target = self.config.target_fitness.or(problem.target_fitness());
        let seed = self.config.seed;
        let hood = KHamming::new(dim, self.hood_k);
        // Lanes never self-limit on iterations: the portfolio's round
        // budget is the only clock. Targets still stop a lane early.
        let lane_cfg = |s: u64| SearchConfig::budget(u64::MAX).with_seed(s).with_target(target);
        let tabu = TabuSearch::paper(lane_cfg(seed), hood.size()).cursor(problem, init.clone());
        let anneal = SimulatedAnnealing::new(lane_cfg(seed ^ 0x9e37_79b9), hood, 1.5)
            .cursor(problem, init.clone());
        let greedy = GreedyLane::new(problem, init, seed ^ 0x7f4a_7c15, 4);
        PortfolioCursor {
            max_rounds: self.config.max_iters,
            target,
            realloc_every: self.realloc_every,
            boost: self.boost,
            hood,
            tabu,
            anneal,
            greedy,
            leader: 0,
            switches: 0,
            rounds: 0,
        }
    }

    /// Run to completion (convenience over [`cursor`](Self::cursor)).
    pub fn run<P: IncrementalEval>(&self, problem: &P, init: BitString) -> SearchResult {
        let mut cursor = self.cursor(problem, init);
        cursor.step_batch(problem, u64::MAX);
        cursor.into_result(Duration::ZERO)
    }
}

/// The third racing lane: steepest single-flip descent that, at a local
/// optimum, shakes by flipping `cur_shake` random distinct bits and
/// grows the shake order up to `max_shake` while shakes keep failing —
/// a general-VNS-shaped perturbation schedule.
#[derive(Clone)]
struct GreedyLane {
    s: BitString,
    fit: i64,
    best: BitString,
    best_fitness: i64,
    cur_shake: u32,
    max_shake: u32,
    rng: StdRng,
    iterations: u64,
    evals: u64,
}

impl GreedyLane {
    fn new<P: IncrementalEval>(problem: &P, init: BitString, seed: u64, max_shake: u32) -> Self {
        let fit = problem.evaluate(&init);
        Self {
            s: init.clone(),
            fit,
            best: init,
            best_fitness: fit,
            cur_shake: 1,
            max_shake: max_shake.max(1),
            rng: StdRng::seed_from_u64(seed),
            iterations: 0,
            evals: 0,
        }
    }

    fn step<P: IncrementalEval>(&mut self, problem: &P) {
        let n = self.s.len();
        let mut st = problem.init_state(&self.s);
        let mut best_mv: Option<(FlipMove, i64)> = None;
        for i in 0..n as u32 {
            let mv = FlipMove::one(i);
            let f = problem.neighbor_fitness(&mut st, &self.s, &mv);
            self.evals += 1;
            if best_mv.is_none_or(|(_, bf)| f < bf) {
                best_mv = Some((mv, f));
            }
        }
        match best_mv {
            Some((mv, f)) if f < self.fit => {
                self.s.apply(&mv);
                self.fit = f;
                self.cur_shake = 1;
            }
            _ => {
                // Local optimum: shake, then widen the next shake.
                let k = (self.cur_shake as usize).min(n);
                let mut picked = BTreeSet::new();
                while picked.len() < k {
                    picked.insert(self.rng.gen_range(0..n as u32));
                }
                for &i in &picked {
                    self.s.flip(i as usize);
                }
                self.fit = problem.evaluate(&self.s);
                self.evals += 1;
                self.cur_shake = (self.cur_shake + 1).min(self.max_shake);
            }
        }
        if self.fit < self.best_fitness {
            self.best_fitness = self.fit;
            self.best = self.s.clone();
        }
        self.iterations += 1;
    }

    fn persist(&self, out: &mut Vec<u8>) {
        self.s.write(out);
        self.fit.write(out);
        self.best.write(out);
        self.best_fitness.write(out);
        self.cur_shake.write(out);
        self.max_shake.write(out);
        self.rng.write(out);
        self.iterations.write(out);
        self.evals.write(out);
    }

    fn read_persisted<P: IncrementalEval>(
        r: &mut Reader<'_>,
        problem: &P,
    ) -> Result<Self, PersistError> {
        let s: BitString = r.read()?;
        let fit: i64 = r.read()?;
        let best: BitString = r.read()?;
        let best_fitness: i64 = r.read()?;
        let cur_shake: u32 = r.read()?;
        let max_shake: u32 = r.read()?;
        let rng: StdRng = r.read()?;
        let iterations: u64 = r.read()?;
        let evals: u64 = r.read()?;
        if s.len() != problem.dim() || best.len() != problem.dim() {
            return Err(PersistError::new("gvns lane solution length does not match the problem"));
        }
        if cur_shake == 0 || max_shake == 0 || cur_shake > max_shake {
            return Err(PersistError::new("corrupt gvns shake schedule"));
        }
        if problem.evaluate(&s) != fit || problem.evaluate(&best) != best_fitness {
            return Err(PersistError::new(
                "gvns lane fitness disagrees with its solution (wrong problem instance?)",
            ));
        }
        Ok(Self { s, fit, best, best_fitness, cur_shake, max_shake, rng, iterations, evals })
    }
}

/// How a finished (or in-flight) race went, lane by lane; attached to
/// the job outcome by the runtime so fleet reports can show where the
/// budget actually flowed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortfolioOutcome {
    /// Sub-steps each lane actually ran, by [`LANE_NAMES`] index.
    pub lane_iterations: [u64; 3],
    /// Best fitness each lane reached, by [`LANE_NAMES`] index.
    pub lane_best: [i64; 3],
    /// Lane index currently (or finally) holding the boost.
    pub leader: usize,
    /// Leader changes over the race.
    pub switches: u64,
    /// Portfolio rounds completed.
    pub rounds: u64,
}

impl PortfolioOutcome {
    /// Name of the winning lane.
    pub fn leader_name(&self) -> &'static str {
        LANE_NAMES[self.leader]
    }
}

impl Persist for PortfolioOutcome {
    fn write(&self, out: &mut Vec<u8>) {
        for v in self.lane_iterations {
            v.write(out);
        }
        for v in self.lane_best {
            v.write(out);
        }
        self.leader.write(out);
        self.switches.write(out);
        self.rounds.write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let lane_iterations = [r.read()?, r.read()?, r.read()?];
        let lane_best = [r.read()?, r.read()?, r.read()?];
        let leader: usize = r.read()?;
        if leader >= LANE_NAMES.len() {
            return Err(PersistError::new(format!("portfolio leader {leader} out of range")));
        }
        Ok(Self { lane_iterations, lane_best, leader, switches: r.read()?, rounds: r.read()? })
    }
}

/// A resumable portfolio race; see [`PortfolioSearch`].
///
/// One [`SearchCursor`] iteration is one round, atomic by design, so
/// preemption at any quantum reproduces the uninterrupted race bit for
/// bit. Leader reallocation happens only at deterministic round
/// boundaries (`rounds % realloc_every == 0`).
pub struct PortfolioCursor<P: IncrementalEval> {
    max_rounds: u64,
    target: Option<i64>,
    realloc_every: u64,
    boost: u64,
    hood: KHamming,
    tabu: TabuCursor<P>,
    anneal: AnnealCursor<P, KHamming>,
    greedy: GreedyLane,
    leader: u8,
    switches: u64,
    rounds: u64,
}

impl<P: IncrementalEval> Clone for PortfolioCursor<P> {
    fn clone(&self) -> Self {
        Self {
            max_rounds: self.max_rounds,
            target: self.target,
            realloc_every: self.realloc_every,
            boost: self.boost,
            hood: self.hood,
            tabu: self.tabu.clone(),
            anneal: self.anneal.clone(),
            greedy: self.greedy.clone(),
            leader: self.leader,
            switches: self.switches,
            rounds: self.rounds,
        }
    }
}

impl<P: IncrementalEval> PortfolioCursor<P> {
    /// Best fitness per lane, by [`LANE_NAMES`] index.
    pub fn lane_bests(&self) -> [i64; 3] {
        [self.tabu.best_fitness(), SearchCursor::best(&self.anneal), self.greedy.best_fitness]
    }

    /// Sub-steps run per lane, by [`LANE_NAMES`] index.
    pub fn lane_iterations(&self) -> [u64; 3] {
        [self.tabu.iterations(), SearchCursor::iterations(&self.anneal), self.greedy.iterations]
    }

    /// Lane currently holding the boost.
    pub fn leader(&self) -> usize {
        self.leader as usize
    }

    /// Leader changes so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Rounds between leader re-elections.
    pub fn realloc_every(&self) -> u64 {
        self.realloc_every
    }

    /// Sub-steps the leader runs per round.
    pub fn boost(&self) -> u64 {
        self.boost
    }

    /// The tabu lane's neighborhood (sizes the runtime's lane pricing).
    pub fn hood(&self) -> &KHamming {
        &self.hood
    }

    /// Neighbor evaluations across all lanes.
    pub fn evals(&self) -> u64 {
        self.tabu.evals() + self.anneal.evals() + self.greedy.evals
    }

    /// Best solution across all lanes (ties favor the lower lane index).
    pub fn best_solution(&self) -> &BitString {
        match self.argmin_lane() {
            0 => self.tabu.best_solution(),
            1 => self.anneal.best_solution(),
            _ => &self.greedy.best,
        }
    }

    /// Snapshot of the race for reports.
    pub fn outcome(&self) -> PortfolioOutcome {
        PortfolioOutcome {
            lane_iterations: self.lane_iterations(),
            lane_best: self.lane_bests(),
            leader: self.leader as usize,
            switches: self.switches,
            rounds: self.rounds,
        }
    }

    fn argmin_lane(&self) -> u8 {
        let bests = self.lane_bests();
        let mut lane = 0u8;
        for (i, &b) in bests.iter().enumerate().skip(1) {
            if b < bests[lane as usize] {
                lane = i as u8;
            }
        }
        lane
    }

    /// One round: every lane advances one sub-step, the leader advances
    /// `boost`; at reallocation boundaries the best lane takes the boost.
    fn round(&mut self, problem: &P, explorer: &mut dyn Explorer<P>) {
        for lane in 0u8..3 {
            let substeps = if lane == self.leader { self.boost } else { 1 };
            match lane {
                0 => {
                    self.tabu.step_batch((problem, explorer), substeps);
                }
                1 => {
                    self.anneal.step_batch(problem, substeps);
                }
                _ => {
                    for _ in 0..substeps {
                        self.greedy.step(problem);
                    }
                }
            }
        }
        self.rounds += 1;
        if self.rounds.is_multiple_of(self.realloc_every) {
            let next = self.argmin_lane();
            if next != self.leader {
                self.leader = next;
                self.switches += 1;
            }
        }
    }

    /// Byte-level snapshot of the race (hand-rolled; see
    /// [`lnls_core::persist`]).
    pub fn persist(&self, out: &mut Vec<u8>) {
        self.max_rounds.write(out);
        self.target.write(out);
        self.realloc_every.write(out);
        self.boost.write(out);
        self.leader.write(out);
        self.switches.write(out);
        self.rounds.write(out);
        self.hood.write(out);
        self.tabu.persist(out);
        self.anneal.persist(out);
        self.greedy.persist(out);
    }

    /// Rebuild a race captured by [`persist`](Self::persist). `problem`
    /// must be the instance the race ran on — every lane cross-checks
    /// its recorded fitness against a rebuilt state.
    pub fn read_persisted(r: &mut Reader<'_>, problem: &P) -> Result<Self, PersistError> {
        let max_rounds: u64 = r.read()?;
        let target: Option<i64> = r.read()?;
        let realloc_every: u64 = r.read()?;
        let boost: u64 = r.read()?;
        let leader: u8 = r.read()?;
        let switches: u64 = r.read()?;
        let rounds: u64 = r.read()?;
        let hood: KHamming = r.read()?;
        if leader >= 3 {
            return Err(PersistError::new(format!("portfolio leader lane {leader} out of range")));
        }
        if realloc_every == 0 || boost == 0 {
            return Err(PersistError::new("corrupt portfolio reallocation schedule"));
        }
        if hood.dim() != problem.dim() {
            return Err(PersistError::new("neighborhood/problem dimension mismatch"));
        }
        let tabu = TabuCursor::read_persisted(r, problem)?;
        let anneal = AnnealCursor::read_persisted(r, problem)?;
        let greedy = GreedyLane::read_persisted(r, problem)?;
        Ok(Self {
            max_rounds,
            target,
            realloc_every,
            boost,
            hood,
            tabu,
            anneal,
            greedy,
            leader,
            switches,
            rounds,
        })
    }

    /// Finalize into a [`SearchResult`]; the caller supplies elapsed
    /// wall-clock (a cursor has no clock).
    pub fn into_result(self, wall: Duration) -> SearchResult {
        let lane = self.argmin_lane();
        let best_fitness = self.lane_bests()[lane as usize];
        let best = self.best_solution().clone();
        SearchResult {
            success: self.target.is_some_and(|t| best_fitness <= t),
            best,
            best_fitness,
            iterations: self.rounds,
            evals: self.evals(),
            wall,
            book: None,
            backend: format!("portfolio/{}", LANE_NAMES[lane as usize]),
            history: None,
            trajectory: None,
        }
    }
}

impl<P: IncrementalEval> SearchCursor for PortfolioCursor<P> {
    type Ctx<'a>
        = &'a P
    where
        Self: 'a;
    type Snapshot = Self;

    fn step_batch(&mut self, problem: &P, quota: u64) -> u64 {
        let mut explorer = SequentialExplorer::new(self.hood);
        let mut ran = 0;
        while ran < quota && !self.is_done() {
            self.round(problem, &mut explorer);
            ran += 1;
        }
        ran
    }

    fn is_done(&self) -> bool {
        self.rounds >= self.max_rounds
            || self.target.is_some_and(|t| self.lane_bests().iter().any(|&b| b <= t))
    }

    fn best(&self) -> i64 {
        self.lane_bests().into_iter().min().expect("three lanes")
    }

    fn iterations(&self) -> u64 {
        self.rounds
    }

    fn snapshot(&self) -> Self {
        self.clone()
    }

    fn restore(&mut self, snapshot: Self) {
        *self = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnls_problems::{Knapsack, MaxSat, Qubo};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quanta_are_invisible() {
        let mut rng = StdRng::seed_from_u64(3);
        let knap = Knapsack::random(&mut rng, 20, 9, 5);
        let sat = MaxSat::random(&mut rng, 20, 80);
        let qubo = Qubo::random(&mut rng, 20, 7, 0.5);
        let init = BitString::random(&mut rng, 20);
        // Knapsack/Qubo fitness is negative, so `budget`'s default
        // target of 0 would stop instantly; run on rounds alone.
        let search =
            PortfolioSearch::paper(SearchConfig::budget(40).with_seed(12).with_target(None))
                .with_realloc_every(4)
                .with_boost(3);
        macro_rules! check {
            ($p:expr) => {{
                let want = search.run($p, init.clone());
                let mut cursor = search.cursor($p, init.clone());
                for quota in [1u64, 5, 2, 3].iter().cycle() {
                    cursor.step_batch($p, *quota);
                    if cursor.is_done() {
                        break;
                    }
                }
                assert_eq!(cursor.best(), want.best_fitness);
                assert_eq!(cursor.iterations(), want.iterations);
                assert_eq!(cursor.evals(), want.evals);
                assert_eq!(cursor.lane_iterations(), {
                    let full = search.cursor($p, init.clone());
                    let mut f = full;
                    f.step_batch($p, u64::MAX);
                    f.lane_iterations()
                });
            }};
        }
        check!(&knap);
        check!(&sat);
        check!(&qubo);
    }

    #[test]
    fn leader_earns_the_boost() {
        let mut rng = StdRng::seed_from_u64(6);
        let qubo = Qubo::random(&mut rng, 24, 8, 0.6);
        let init = BitString::random(&mut rng, 24);
        let search =
            PortfolioSearch::paper(SearchConfig::budget(64).with_seed(2).with_target(None))
                .with_realloc_every(4)
                .with_boost(5);
        let mut cursor = search.cursor(&qubo, init);
        cursor.step_batch(&qubo, u64::MAX);
        let out = cursor.outcome();
        let total: u64 = out.lane_iterations.iter().sum();
        assert_eq!(out.rounds, 64);
        // 64 rounds × (boost + 2) sub-steps, minus whatever a finished
        // lane declined; with no target every lane runs its share.
        assert_eq!(total, 64 * (5 + 2));
        let max_lane = out.lane_iterations.iter().max().expect("lanes");
        let min_lane = out.lane_iterations.iter().min().expect("lanes");
        assert!(
            max_lane > min_lane,
            "the boost must concentrate budget on some lane: {:?}",
            out.lane_iterations
        );
        assert_eq!(out.lane_best.iter().min().copied(), Some(cursor.best()));
    }

    #[test]
    fn persist_roundtrip_resumes_identically() {
        let mut rng = StdRng::seed_from_u64(14);
        let sat = MaxSat::random(&mut rng, 18, 70);
        let init = BitString::random(&mut rng, 18);
        let search = PortfolioSearch::paper(SearchConfig::budget(50).with_seed(9));
        let mut cursor = search.cursor(&sat, init);
        cursor.step_batch(&sat, 13);
        let mut bytes = Vec::new();
        cursor.persist(&mut bytes);
        let mut back =
            PortfolioCursor::read_persisted(&mut Reader::new(&bytes), &sat).expect("decode");
        cursor.step_batch(&sat, u64::MAX);
        back.step_batch(&sat, u64::MAX);
        assert_eq!(back.best(), cursor.best());
        assert_eq!(back.lane_iterations(), cursor.lane_iterations());
        assert_eq!(back.evals(), cursor.evals());
        assert_eq!(back.outcome(), cursor.outcome());
    }

    #[test]
    fn persist_rejects_wrong_instance() {
        let mut rng = StdRng::seed_from_u64(15);
        let a = Knapsack::random(&mut rng, 16, 9, 5);
        let b = Knapsack::random(&mut rng, 16, 9, 5);
        let init = BitString::random(&mut rng, 16);
        let search =
            PortfolioSearch::paper(SearchConfig::budget(20).with_seed(1).with_target(None));
        let mut cursor = search.cursor(&a, init);
        cursor.step_batch(&a, 7);
        let mut bytes = Vec::new();
        cursor.persist(&mut bytes);
        assert!(PortfolioCursor::read_persisted(&mut Reader::new(&bytes), &b).is_err());
        assert!(PortfolioCursor::<Knapsack>::read_persisted(&mut Reader::new(&[0, 1]), &a).is_err());
    }
}
