//! # lnls-lns — destroy-and-repair large-neighborhood search
//!
//! The repo's namesake finally made literal: a large-neighborhood
//! search that alternates a **destroy** operator (free a subset of the
//! variables) with a **repair** phase (re-optimize the freed
//! sub-problem from several starts at once), accepting the repaired
//! incumbent when it improves. The decomposition follows the
//! learning-LNS line of work on MIP (Sonnerat et al.,
//! arXiv:2107.10201); the [`AdaptiveRadius`] controller that widens the
//! destroy fraction only when the search stalls is justified by the
//! Neighbours' Similar Fitness property (Wallace & Aleti,
//! arXiv:2001.02872) — near a good incumbent, small repairs usually
//! suffice.
//!
//! Two cursor families live here, both implementing
//! [`SearchCursor`](lnls_core::SearchCursor) with the fleet's bit-exact
//! preemption contract (stepping in quanta of any size makes exactly
//! the moves one uninterrupted run makes):
//!
//! * [`LnsCursor`] — the destroy-and-repair loop. One iteration is one
//!   full round: destroy ([`DestroyOp`]), multi-lane repair, accept or
//!   reject, [`AdaptiveRadius`] update. The repair lanes are what the
//!   runtime prices as one fused multi-lane device batch.
//! * [`PortfolioCursor`] — races a tabu lane, an annealing lane and a
//!   shake-based greedy-descent lane on the same instance, reallocating
//!   iteration budget to the leading lane at deterministic round
//!   boundaries ([`PortfolioOutcome`] reports the race).
//!
//! Everything is deterministic per seed and byte-persistable, so both
//! families survive mid-run checkpoint/restore and bit-identical trace
//! replay.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod destroy;
pub mod lns;
pub mod portfolio;
pub mod radius;

pub use destroy::DestroyOp;
pub use lns::{LnsCursor, LnsSearch};
pub use portfolio::{PortfolioCursor, PortfolioOutcome, PortfolioSearch, LANE_NAMES};
pub use radius::AdaptiveRadius;
