//! The destroy-and-repair cursor.

use crate::destroy::DestroyOp;
use crate::radius::AdaptiveRadius;
use lnls_core::persist::{Persist, PersistError, Reader};
use lnls_core::{BitString, IncrementalEval, SearchConfig, SearchCursor, SearchResult};
use lnls_neighborhood::FlipMove;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Configuration builder for the destroy-and-repair search.
///
/// `max_iters` counts **rounds** (one round = destroy → multi-lane
/// repair → accept/reject → radius update); the repair work inside a
/// round is what the fleet runtime prices as one fused multi-lane
/// batch.
#[derive(Clone, Debug)]
pub struct LnsSearch {
    config: SearchConfig,
    lanes: usize,
    inner_iters: u64,
    op: DestroyOp,
    radius: AdaptiveRadius,
}

impl LnsSearch {
    /// The fleet defaults: 4 repair lanes, 2 repair passes per round,
    /// cycling destroy operators, [`AdaptiveRadius::paper_default`].
    pub fn paper(config: SearchConfig) -> Self {
        Self {
            config,
            lanes: 4,
            inner_iters: 2,
            op: DestroyOp::Cycle,
            radius: AdaptiveRadius::paper_default(),
        }
    }

    /// Use `lanes` parallel repair lanes (at least 1).
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        assert!(lanes >= 1, "need at least one repair lane");
        self.lanes = lanes;
        self
    }

    /// Run `inner_iters` repair passes per round (at least 1).
    pub fn with_inner_iters(mut self, inner_iters: u64) -> Self {
        assert!(inner_iters >= 1, "need at least one repair pass");
        self.inner_iters = inner_iters;
        self
    }

    /// Select freed variables with `op`.
    pub fn with_destroy(mut self, op: DestroyOp) -> Self {
        self.op = op;
        self
    }

    /// Control the destroy fraction with `radius`.
    pub fn with_radius(mut self, radius: AdaptiveRadius) -> Self {
        self.radius = radius;
        self
    }

    /// A resumable cursor over `problem` starting from `init`.
    ///
    /// # Panics
    /// Panics when `init` does not match the problem dimension.
    pub fn cursor<P: IncrementalEval>(&self, problem: &P, init: BitString) -> LnsCursor<P> {
        assert_eq!(init.len(), problem.dim(), "initial solution/problem dimension mismatch");
        let state = problem.init_state(&init);
        let cur_fitness = problem.state_fitness(&state);
        let target = self.config.target_fitness.or(problem.target_fitness());
        LnsCursor {
            max_rounds: self.config.max_iters,
            target,
            lanes: self.lanes,
            inner_iters: self.inner_iters,
            op: self.op,
            radius: self.radius.clone(),
            rng: StdRng::seed_from_u64(self.config.seed),
            best: init.clone(),
            best_fitness: cur_fitness,
            s: init,
            cur_fitness,
            rounds: 0,
            evals: 0,
            _problem: std::marker::PhantomData,
        }
    }

    /// Run to completion (convenience over [`cursor`](Self::cursor)).
    pub fn run<P: IncrementalEval>(&self, problem: &P, init: BitString) -> SearchResult {
        let mut cursor = self.cursor(problem, init);
        cursor.step_batch(problem, u64::MAX);
        cursor.into_result(std::time::Duration::ZERO)
    }
}

/// A resumable destroy-and-repair walk; see [`LnsSearch`].
///
/// One [`SearchCursor`] iteration is one **round**, atomic by design:
/// checkpoints land between rounds only, so stepping in quanta of any
/// size reproduces the uninterrupted walk bit for bit. Every random
/// choice (random destroy subsets, block starts, repair-lane restarts)
/// is drawn from one seeded RNG in a fixed order.
pub struct LnsCursor<P: IncrementalEval> {
    max_rounds: u64,
    target: Option<i64>,
    lanes: usize,
    inner_iters: u64,
    op: DestroyOp,
    radius: AdaptiveRadius,
    rng: StdRng,
    /// Incumbent solution.
    s: BitString,
    cur_fitness: i64,
    best: BitString,
    best_fitness: i64,
    rounds: u64,
    evals: u64,
    _problem: std::marker::PhantomData<fn(&P)>,
}

impl<P: IncrementalEval> Clone for LnsCursor<P> {
    fn clone(&self) -> Self {
        Self {
            max_rounds: self.max_rounds,
            target: self.target,
            lanes: self.lanes,
            inner_iters: self.inner_iters,
            op: self.op,
            radius: self.radius.clone(),
            rng: self.rng.clone(),
            s: self.s.clone(),
            cur_fitness: self.cur_fitness,
            best: self.best.clone(),
            best_fitness: self.best_fitness,
            rounds: self.rounds,
            evals: self.evals,
            _problem: std::marker::PhantomData,
        }
    }
}

impl<P: IncrementalEval> LnsCursor<P> {
    /// Repair lanes per round (the fused-batch width).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Repair passes per round (the fused-span length).
    pub fn inner_iters(&self) -> u64 {
        self.inner_iters
    }

    /// Variables the **next** round will free — the radius-derived
    /// repair neighborhood size the runtime prices the round's fused
    /// batch with. A pure function of the controller state.
    pub fn planned_free_count(&self) -> usize {
        let n = self.s.len();
        ((self.radius.fraction() * n as f64).ceil() as usize).clamp(1, n)
    }

    /// The destroy-radius controller.
    pub fn radius(&self) -> &AdaptiveRadius {
        &self.radius
    }

    /// The configured destroy operator.
    pub fn op(&self) -> DestroyOp {
        self.op
    }

    /// Current incumbent.
    pub fn current(&self) -> &BitString {
        &self.s
    }

    /// Incumbent fitness.
    pub fn current_fitness(&self) -> i64 {
        self.cur_fitness
    }

    /// Best solution found so far.
    pub fn best_solution(&self) -> &BitString {
        &self.best
    }

    /// Neighbor evaluations performed so far.
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// The freed indices of one destroy application, strictly
    /// increasing. All RNG draws happen here, in a fixed order.
    fn destroy(&mut self, problem: &P, free_count: usize) -> Vec<u32> {
        let n = self.s.len();
        match self.op.for_round(self.rounds) {
            DestroyOp::Random => {
                let mut picked = BTreeSet::new();
                while picked.len() < free_count {
                    picked.insert(self.rng.gen_range(0..n as u32));
                }
                picked.into_iter().collect()
            }
            DestroyOp::Block => {
                let start = self.rng.gen_range(0..n as u32);
                let mut idx: Vec<u32> =
                    (0..free_count as u32).map(|t| (start + t) % n as u32).collect();
                idx.sort_unstable();
                idx
            }
            DestroyOp::GreedyWorst => {
                // Free the variables whose single flip most improves the
                // incumbent (ties by index). No RNG draws.
                let mut st = problem.init_state(&self.s);
                let mut scored: Vec<(i64, u32)> = (0..n as u32)
                    .map(|i| (problem.neighbor_fitness(&mut st, &self.s, &FlipMove::one(i)), i))
                    .collect();
                self.evals += n as u64;
                scored.sort_unstable();
                let mut idx: Vec<u32> = scored[..free_count].iter().map(|&(_, i)| i).collect();
                idx.sort_unstable();
                idx
            }
            DestroyOp::Cycle => unreachable!("for_round resolves Cycle"),
        }
    }

    /// One full round: destroy, repair `lanes` starts with
    /// `inner_iters` greedy passes restricted to the freed variables,
    /// accept the best repaired lane when it improves the incumbent,
    /// update the radius controller.
    fn round(&mut self, problem: &P) {
        let free_count = self.planned_free_count();
        let freed = self.destroy(problem, free_count);

        let mut champion: Option<(BitString, i64)> = None;
        for lane in 0..self.lanes {
            let mut sol = self.s.clone();
            if lane > 0 {
                // Diversified restart: freed variables re-rolled from
                // the shared RNG stream (lane 0 repairs the incumbent).
                for &i in &freed {
                    let bit: bool = self.rng.gen();
                    sol.set(i as usize, bit);
                }
            }
            let mut st = problem.init_state(&sol);
            let mut fit = problem.state_fitness(&st);
            for _pass in 0..self.inner_iters {
                let mut best_mv: Option<(FlipMove, i64)> = None;
                for &i in &freed {
                    let mv = FlipMove::one(i);
                    let f = problem.neighbor_fitness(&mut st, &sol, &mv);
                    self.evals += 1;
                    if best_mv.is_none_or(|(_, bf)| f < bf) {
                        best_mv = Some((mv, f));
                    }
                }
                match best_mv {
                    Some((mv, f)) if f < fit => {
                        problem.apply_move(&mut st, &sol, &mv);
                        sol.apply(&mv);
                        fit = f;
                    }
                    _ => break, // freed sub-problem locally optimal
                }
            }
            if champion.as_ref().is_none_or(|&(_, cf)| fit < cf) {
                champion = Some((sol, fit));
            }
        }

        let (sol, fit) = champion.expect("at least one repair lane");
        if fit < self.cur_fitness {
            self.s = sol;
            self.cur_fitness = fit;
            self.radius.record_improvement();
            if fit < self.best_fitness {
                self.best = self.s.clone();
                self.best_fitness = fit;
            }
        } else {
            self.radius.record_stall();
        }
        self.rounds += 1;
    }

    /// Byte-level snapshot of the walk (hand-rolled; see
    /// [`lnls_core::persist`]). The incremental state is rebuilt from
    /// the problem by [`read_persisted`](Self::read_persisted).
    pub fn persist(&self, out: &mut Vec<u8>) {
        self.max_rounds.write(out);
        self.target.write(out);
        self.lanes.write(out);
        self.inner_iters.write(out);
        self.op.write(out);
        self.radius.write(out);
        self.rng.write(out);
        self.s.write(out);
        self.cur_fitness.write(out);
        self.best.write(out);
        self.best_fitness.write(out);
        self.rounds.write(out);
        self.evals.write(out);
    }

    /// Rebuild a walk captured by [`persist`](Self::persist). `problem`
    /// must be the instance the walk ran on — the rebuilt incremental
    /// state is cross-checked against the recorded fitness.
    pub fn read_persisted(r: &mut Reader<'_>, problem: &P) -> Result<Self, PersistError> {
        let max_rounds: u64 = r.read()?;
        let target: Option<i64> = r.read()?;
        let lanes: usize = r.read()?;
        let inner_iters: u64 = r.read()?;
        let op: DestroyOp = r.read()?;
        let radius: AdaptiveRadius = r.read()?;
        let rng: StdRng = r.read()?;
        let s: BitString = r.read()?;
        let cur_fitness: i64 = r.read()?;
        let best: BitString = r.read()?;
        let best_fitness: i64 = r.read()?;
        let rounds: u64 = r.read()?;
        let evals: u64 = r.read()?;
        if s.len() != problem.dim() || best.len() != problem.dim() {
            return Err(PersistError::new("solution length does not match the problem"));
        }
        if lanes == 0 || lanes > 1 << 16 || inner_iters == 0 {
            return Err(PersistError::new("corrupt lns repair shape"));
        }
        let state = problem.init_state(&s);
        if problem.state_fitness(&state) != cur_fitness {
            return Err(PersistError::new(
                "rebuilt state fitness disagrees with the snapshot (wrong problem instance?)",
            ));
        }
        if problem.evaluate(&best) != best_fitness {
            return Err(PersistError::new("recorded best fitness disagrees with its solution"));
        }
        Ok(Self {
            max_rounds,
            target,
            lanes,
            inner_iters,
            op,
            radius,
            rng,
            s,
            cur_fitness,
            best,
            best_fitness,
            rounds,
            evals,
            _problem: std::marker::PhantomData,
        })
    }

    /// Finalize into a [`SearchResult`]; the caller supplies elapsed
    /// wall-clock (a cursor has no clock).
    pub fn into_result(self, wall: std::time::Duration) -> SearchResult {
        SearchResult {
            success: self.target.is_some_and(|t| self.best_fitness <= t),
            best: self.best,
            best_fitness: self.best_fitness,
            iterations: self.rounds,
            evals: self.evals,
            wall,
            book: None,
            backend: format!("lns/{}", self.op.label()),
            history: None,
            trajectory: None,
        }
    }
}

impl<P: IncrementalEval> SearchCursor for LnsCursor<P> {
    type Ctx<'a>
        = &'a P
    where
        Self: 'a;
    type Snapshot = Self;

    fn step_batch(&mut self, problem: &P, quota: u64) -> u64 {
        let mut ran = 0;
        while ran < quota && !self.is_done() {
            self.round(problem);
            ran += 1;
        }
        ran
    }

    fn is_done(&self) -> bool {
        self.rounds >= self.max_rounds || self.target.is_some_and(|t| self.best_fitness <= t)
    }

    fn best(&self) -> i64 {
        self.best_fitness
    }

    fn iterations(&self) -> u64 {
        self.rounds
    }

    fn snapshot(&self) -> Self {
        self.clone()
    }

    fn restore(&mut self, snapshot: Self) {
        *self = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnls_core::BinaryProblem;
    use lnls_problems::{Knapsack, MaxSat, Qubo};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn searches() -> Vec<LnsSearch> {
        // Knapsack/Qubo fitness is negative, so `budget`'s default
        // target of 0 would stop instantly; run on rounds alone.
        let base = SearchConfig::budget(40).with_seed(11).with_target(None);
        vec![
            LnsSearch::paper(base.clone()),
            LnsSearch::paper(base.clone()).with_destroy(DestroyOp::Random).with_lanes(2),
            LnsSearch::paper(base.clone()).with_destroy(DestroyOp::Block).with_inner_iters(3),
            LnsSearch::paper(base).with_destroy(DestroyOp::GreedyWorst),
        ]
    }

    #[test]
    fn quanta_are_invisible_across_problems_and_ops() {
        let mut rng = StdRng::seed_from_u64(2);
        let knap = Knapsack::random(&mut rng, 24, 9, 5);
        let sat = MaxSat::random(&mut rng, 24, 90);
        let qubo = Qubo::random(&mut rng, 24, 7, 0.5);
        let init = BitString::random(&mut rng, 24);
        for search in searches() {
            macro_rules! check {
                ($p:expr) => {{
                    let want = search.run($p, init.clone());
                    let mut cursor = search.cursor($p, init.clone());
                    for quota in [1u64, 3, 2, 7, 1].iter().cycle() {
                        let snap = cursor.snapshot();
                        let a = cursor.step_batch($p, *quota);
                        cursor.restore(snap);
                        let b = cursor.step_batch($p, *quota);
                        assert_eq!(a, b, "replay after restore must be deterministic");
                        if cursor.is_done() {
                            break;
                        }
                    }
                    assert_eq!(cursor.best(), want.best_fitness);
                    assert_eq!(cursor.iterations(), want.iterations);
                    assert_eq!(cursor.evals(), want.evals);
                }};
            }
            check!(&knap);
            check!(&sat);
            check!(&qubo);
        }
    }

    #[test]
    fn repair_improves_a_random_start() {
        let mut rng = StdRng::seed_from_u64(5);
        let knap = Knapsack::random(&mut rng, 32, 10, 6);
        let init = BitString::random(&mut rng, 32);
        let start = knap.evaluate(&init);
        let r = LnsSearch::paper(SearchConfig::budget(60).with_seed(3).with_target(None))
            .run(&knap, init);
        assert!(r.best_fitness < start, "60 rounds must improve a random knapsack start");
        assert!(knap.feasible(&r.best), "penalized optimum should be feasible");
    }

    #[test]
    fn persist_roundtrip_resumes_identically() {
        let mut rng = StdRng::seed_from_u64(8);
        let qubo = Qubo::random(&mut rng, 20, 6, 0.6);
        let init = BitString::random(&mut rng, 20);
        let search = LnsSearch::paper(SearchConfig::budget(30).with_seed(17).with_target(None));
        let mut cursor = search.cursor(&qubo, init);
        cursor.step_batch(&qubo, 11);
        let mut bytes = Vec::new();
        cursor.persist(&mut bytes);
        let mut back = LnsCursor::read_persisted(&mut Reader::new(&bytes), &qubo).expect("decode");
        cursor.step_batch(&qubo, u64::MAX);
        back.step_batch(&qubo, u64::MAX);
        assert_eq!(back.best(), cursor.best());
        assert_eq!(back.iterations(), cursor.iterations());
        assert_eq!(back.evals(), cursor.evals());
        assert_eq!(back.current(), cursor.current());
    }

    #[test]
    fn persist_rejects_wrong_instance_and_corrupt_shape() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Qubo::random(&mut rng, 16, 6, 0.6);
        let b = Qubo::random(&mut rng, 16, 6, 0.6);
        let init = BitString::random(&mut rng, 16);
        let search = LnsSearch::paper(SearchConfig::budget(20).with_seed(4).with_target(None));
        let mut cursor = search.cursor(&a, init);
        cursor.step_batch(&a, 5);
        let mut bytes = Vec::new();
        cursor.persist(&mut bytes);
        assert!(
            LnsCursor::read_persisted(&mut Reader::new(&bytes), &b).is_err(),
            "a different instance must be refused"
        );
        assert!(LnsCursor::<Qubo>::read_persisted(&mut Reader::new(&[1, 2, 3]), &a).is_err());
    }

    #[test]
    fn radius_reacts_to_the_walk() {
        // On a tiny OneMax-like knapsack the radius must move: stalls
        // widen it, improvements shrink it back.
        let mut rng = StdRng::seed_from_u64(10);
        let knap = Knapsack::random(&mut rng, 16, 8, 4);
        let init = BitString::random(&mut rng, 16);
        let search = LnsSearch::paper(SearchConfig::budget(200).with_seed(6).with_target(None));
        let mut cursor = search.cursor(&knap, init);
        let start_frac = cursor.radius().fraction();
        cursor.step_batch(&knap, u64::MAX);
        // After exhausting improvements the controller must have grown
        // past its floor at least once.
        assert!(
            cursor.radius().fraction() > start_frac || cursor.radius().stalls() > 0,
            "a finished walk ends in the stalled regime"
        );
    }
}
