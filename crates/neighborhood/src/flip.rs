//! The move type shared by every neighborhood: a set of bit positions to
//! flip, stored inline (no heap) because moves are created in the innermost
//! loop of both the CPU explorers and the simulated GPU kernels.

/// Maximum number of bits a single [`FlipMove`] can flip.
///
/// The paper handles k ∈ {1, 2, 3}; the combinadic generalization
/// ([`crate::KHamming`]) is capped at 4 so the move stays a tiny `Copy`
/// value. Raising this is a one-line change.
pub const MAX_FLIPS: usize = 4;

/// A `k`-bit flip move: `k` strictly increasing bit positions.
///
/// Constructed via [`FlipMove::one`], [`FlipMove::two`], [`FlipMove::three`]
/// or [`FlipMove::from_sorted`]. Invariant: the first `k` entries of `idx`
/// are strictly increasing and the rest are unused.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct FlipMove {
    idx: [u32; MAX_FLIPS],
    k: u8,
}

impl FlipMove {
    /// Single-bit flip (1-Hamming move).
    #[inline]
    pub fn one(i: u32) -> Self {
        Self { idx: [i, 0, 0, 0], k: 1 }
    }

    /// Two-bit flip; requires `i < j`.
    #[inline]
    pub fn two(i: u32, j: u32) -> Self {
        debug_assert!(i < j, "FlipMove::two requires i < j (got {i}, {j})");
        Self { idx: [i, j, 0, 0], k: 2 }
    }

    /// Three-bit flip; requires `i < j < l`.
    #[inline]
    pub fn three(i: u32, j: u32, l: u32) -> Self {
        debug_assert!(i < j && j < l, "FlipMove::three requires i < j < l (got {i}, {j}, {l})");
        Self { idx: [i, j, l, 0], k: 3 }
    }

    /// Build a move from a strictly increasing slice of at most
    /// [`MAX_FLIPS`] bit positions.
    ///
    /// # Panics
    /// Panics if the slice is empty, too long, or not strictly increasing.
    #[inline]
    pub fn from_sorted(bits: &[u32]) -> Self {
        assert!(
            !bits.is_empty() && bits.len() <= MAX_FLIPS,
            "FlipMove supports 1..={MAX_FLIPS} bits, got {}",
            bits.len()
        );
        assert!(
            bits.windows(2).all(|w| w[0] < w[1]),
            "FlipMove bit indices must be strictly increasing: {bits:?}"
        );
        let mut idx = [0u32; MAX_FLIPS];
        idx[..bits.len()].copy_from_slice(bits);
        Self { idx, k: bits.len() as u8 }
    }

    /// The flipped bit positions, strictly increasing.
    #[inline]
    pub fn bits(&self) -> &[u32] {
        &self.idx[..self.k as usize]
    }

    /// Number of bits flipped.
    #[inline]
    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// True if `bit` is one of the flipped positions.
    #[inline]
    pub fn contains(&self, bit: u32) -> bool {
        self.bits().contains(&bit)
    }
}

impl core::fmt::Display for FlipMove {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "flip(")?;
        for (t, b) in self.bits().iter().enumerate() {
            if t > 0 {
                write!(f, ",")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let m1 = FlipMove::one(7);
        assert_eq!(m1.bits(), &[7]);
        assert_eq!(m1.k(), 1);

        let m2 = FlipMove::two(1, 9);
        assert_eq!(m2.bits(), &[1, 9]);
        assert_eq!(m2.k(), 2);

        let m3 = FlipMove::three(0, 4, 5);
        assert_eq!(m3.bits(), &[0, 4, 5]);
        assert_eq!(m3.k(), 3);
        assert!(m3.contains(4));
        assert!(!m3.contains(3));
    }

    #[test]
    fn from_sorted_roundtrips() {
        let m = FlipMove::from_sorted(&[2, 3, 11, 40]);
        assert_eq!(m.bits(), &[2, 3, 11, 40]);
        assert_eq!(m.k(), 4);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_sorted_rejects_duplicates() {
        let _ = FlipMove::from_sorted(&[1, 1]);
    }

    #[test]
    #[should_panic(expected = "1..=4 bits")]
    fn from_sorted_rejects_empty() {
        let _ = FlipMove::from_sorted(&[]);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(FlipMove::three(1, 2, 3).to_string(), "flip(1,2,3)");
    }

    #[test]
    fn equality_ignores_unused_slots() {
        assert_eq!(FlipMove::two(1, 2), FlipMove::from_sorted(&[1, 2]));
    }
}
