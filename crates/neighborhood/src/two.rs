//! 2-Hamming distance neighborhood (paper §II, Fig. 4): flip two bits.
//! Mapping per Propositions 1–2 (see [`crate::mapping2d`]).

use crate::mapping2d::{rank2, size2, unrank2};
use crate::{FlipMove, Neighborhood};

/// The neighborhood of all two-bit flips of an `n`-bit string
/// (`n(n−1)/2` moves).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TwoHamming {
    n: usize,
}

impl TwoHamming {
    /// Neighborhood over `n`-bit strings. `n` must be ≥ 2.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "TwoHamming requires n >= 2");
        Self { n }
    }
}

impl Neighborhood for TwoHamming {
    #[inline]
    fn dim(&self) -> usize {
        self.n
    }

    #[inline]
    fn k(&self) -> usize {
        2
    }

    #[inline]
    fn size(&self) -> u64 {
        size2(self.n as u64)
    }

    #[inline]
    fn unrank(&self, index: u64) -> FlipMove {
        let (i, j) = unrank2(self.n as u64, index);
        FlipMove::two(i as u32, j as u32)
    }

    #[inline]
    fn rank(&self, mv: &FlipMove) -> u64 {
        debug_assert_eq!(mv.k(), 2);
        let b = mv.bits();
        rank2(self.n as u64, b[0] as u64, b[1] as u64)
    }

    fn name(&self) -> &'static str {
        "2-Hamming"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_indices() {
        for n in [2usize, 3, 10, 73] {
            let h = TwoHamming::new(n);
            assert_eq!(h.size(), (n * (n - 1) / 2) as u64);
            for f in 0..h.size() {
                let mv = h.unrank(f);
                assert_eq!(mv.k(), 2);
                assert_eq!(h.rank(&mv), f);
            }
        }
    }

    #[test]
    fn paper_instance_sizes() {
        assert_eq!(TwoHamming::new(73).size(), 2628);
        assert_eq!(TwoHamming::new(81).size(), 3240);
        assert_eq!(TwoHamming::new(101).size(), 5050);
        assert_eq!(TwoHamming::new(117).size(), 6786);
    }
}
