//! Iteration over neighborhoods in flat-index order.

use crate::{FlipMove, Neighborhood};

/// Iterator over `(index, move)` pairs of a neighborhood, in index order.
///
/// Produced by [`Neighborhood::moves`]. Unranks lazily, so iterating a
/// prefix of a huge neighborhood costs only what is consumed.
pub struct MoveIter<'a, N: Neighborhood> {
    hood: &'a N,
    next: u64,
    end: u64,
}

impl<'a, N: Neighborhood> MoveIter<'a, N> {
    pub(crate) fn new(hood: &'a N) -> Self {
        Self { hood, next: 0, end: hood.size() }
    }

    /// Restrict the iterator to the half-open index range `lo..hi`
    /// (clamped to the neighborhood size). Used for partitioned scans.
    pub fn range(hood: &'a N, lo: u64, hi: u64) -> Self {
        let end = hi.min(hood.size());
        Self { hood, next: lo.min(end), end }
    }
}

impl<N: Neighborhood> Iterator for MoveIter<'_, N> {
    type Item = (u64, FlipMove);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.end {
            return None;
        }
        let idx = self.next;
        self.next += 1;
        Some((idx, self.hood.unrank(idx)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.end - self.next) as usize;
        (rem, Some(rem))
    }
}

impl<N: Neighborhood> ExactSizeIterator for MoveIter<'_, N> {}

/// Advance a strictly increasing combination over `0..n` to its
/// lexicographic successor in place. Returns `false` (leaving the slice
/// unspecified) when `bits` was the last combination.
///
/// This is the O(1)-amortized companion to unranking: scans that visit
/// *every* move (a tabu iteration's selection pass) should enumerate
/// instead of unranking each index.
#[inline]
pub fn lex_advance(bits: &mut [u32], n: u32) -> bool {
    let k = bits.len();
    debug_assert!(k >= 1);
    // Find the rightmost position that can still grow.
    let mut i = k;
    while i > 0 {
        i -= 1;
        let max_at_i = n - (k - i) as u32;
        if bits[i] < max_at_i {
            bits[i] += 1;
            for j in (i + 1)..k {
                bits[j] = bits[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// Iterator over `(index, move)` pairs in lexicographic order using
/// [`lex_advance`] — index-compatible with [`MoveIter`] but O(1) per step
/// instead of one unranking per step.
pub struct LexMoves {
    cur: [u32; crate::flip::MAX_FLIPS],
    k: usize,
    n: u32,
    next_idx: u64,
    size: u64,
}

impl LexMoves {
    /// Enumerate the full k-Hamming neighborhood over `n`-bit strings.
    pub fn new(n: usize, k: usize) -> Self {
        assert!((1..=crate::flip::MAX_FLIPS).contains(&k) && k <= n);
        let mut cur = [0u32; crate::flip::MAX_FLIPS];
        for (i, c) in cur.iter_mut().enumerate().take(k) {
            *c = i as u32;
        }
        Self { cur, k, n: n as u32, next_idx: 0, size: crate::binomial(n as u64, k as u64) }
    }
}

impl Iterator for LexMoves {
    type Item = (u64, FlipMove);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.next_idx >= self.size {
            return None;
        }
        let idx = self.next_idx;
        let mv = FlipMove::from_sorted(&self.cur[..self.k]);
        self.next_idx += 1;
        if self.next_idx < self.size {
            let advanced = lex_advance(&mut self.cur[..self.k], self.n);
            debug_assert!(advanced);
        }
        Some((idx, mv))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.size - self.next_idx) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for LexMoves {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ThreeHamming, TwoHamming};

    #[test]
    fn full_iteration_covers_everything_once() {
        let h = TwoHamming::new(9);
        let collected: Vec<_> = h.moves().collect();
        assert_eq!(collected.len() as u64, h.size());
        for (t, (idx, mv)) in collected.iter().enumerate() {
            assert_eq!(*idx, t as u64);
            assert_eq!(h.rank(mv), *idx);
        }
    }

    #[test]
    fn range_iteration() {
        let h = ThreeHamming::new(10);
        let all: Vec<_> = h.moves().collect();
        let mid: Vec<_> = MoveIter::range(&h, 20, 40).collect();
        assert_eq!(mid.len(), 20);
        assert_eq!(&all[20..40], &mid[..]);
        // Clamped range.
        let tail: Vec<_> = MoveIter::range(&h, h.size() - 3, h.size() + 100).collect();
        assert_eq!(tail.len(), 3);
    }

    #[test]
    fn size_hint_is_exact() {
        let h = TwoHamming::new(12);
        let mut it = h.moves();
        assert_eq!(it.size_hint(), (66, Some(66)));
        it.next();
        assert_eq!(it.size_hint(), (65, Some(65)));
    }

    #[test]
    fn lex_moves_matches_unranking_for_all_k() {
        for (n, k) in [(9usize, 1usize), (9, 2), (9, 3), (9, 4), (21, 3)] {
            let hood = crate::KHamming::new(n, k);
            let by_unrank: Vec<_> = hood.moves().collect();
            let by_lex: Vec<_> = LexMoves::new(n, k).collect();
            assert_eq!(by_unrank, by_lex, "n={n} k={k}");
        }
    }

    #[test]
    fn lex_advance_terminates_exactly() {
        let mut bits = [0u32, 1, 2];
        let mut count = 1;
        while lex_advance(&mut bits, 7) {
            count += 1;
        }
        assert_eq!(count, 35); // C(7,3)
    }

    #[test]
    fn lex_moves_handles_singleton_neighborhood() {
        let all: Vec<_> = LexMoves::new(3, 3).collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].1.bits(), &[0, 1, 2]);
    }
}
