//! The 2-Hamming index transformations of the paper (Propositions 1 and 2,
//! Appendices A and B).
//!
//! Layout: moves are pairs `(i, j)` with `0 ≤ i < j < n`, enumerated in
//! lexicographic order, i.e. row `i` of a strictly-upper-triangular matrix.
//! The paper derives the closed forms
//!
//! * ℕ²→ℕ (App. A):  `f(i,j) = i·(n−1) + (j−1) − i·(i+1)/2`
//! * ℕ→ℕ² (App. B):  with `X = m − f − 1`, the largest `k` with
//!   `k(k+1)/2 ≤ X` is `k = ⌊(√(8X+1) − 1)/2⌋`, then `i = n − 2 − k` and
//!   `j = f − i(n−1) + i(i+1)/2 + 1`.
//!
//! [`rank2`]/[`unrank2`] implement these with exact integer arithmetic
//! (`u64::isqrt`), valid for every `n` whose neighborhood size fits `u64`.
//! [`unrank2_f32_paper`] reproduces the single-precision GPU code of the
//! paper's Fig. 9 — including its `+0.1f` rounding guard — so the precision
//! ablation can locate the instance sizes where `f32` first mis-maps.

/// Neighborhood size `m = n(n−1)/2` of the 2-Hamming neighborhood.
#[inline]
pub fn size2(n: u64) -> u64 {
    n * (n - 1) / 2
}

/// ℕ²→ℕ: Proposition 1 / Appendix A. Requires `i < j < n`.
#[inline]
pub fn rank2(n: u64, i: u64, j: u64) -> u64 {
    debug_assert!(i < j && j < n, "rank2 needs i<j<n, got i={i} j={j} n={n}");
    i * (n - 1) + (j - 1) - i * (i + 1) / 2
}

/// ℕ→ℕ²: Proposition 2 / Appendix B, exact integer version.
/// Requires `index < size2(n)`; returns `(i, j)` with `i < j`.
#[inline]
pub fn unrank2(n: u64, index: u64) -> (u64, u64) {
    let m = size2(n);
    debug_assert!(index < m, "unrank2 index {index} out of range (m={m})");
    // X = number of elements strictly after `index`; the largest k with
    // k(k+1)/2 <= X tells how many full rows fit behind it (paper eq. 4-5).
    let x = m - index - 1;
    let k = (((8 * x + 1).isqrt()) - 1) / 2;
    let i = n - 2 - k;
    let j = index + i * (i + 1) / 2 - i * (n - 1) + 1;
    (i, j)
}

/// ℕ→ℕ²: paper-faithful single-precision version of Fig. 9.
///
/// This is the literal GPU source from the paper, ported: `sqrtf`,
/// `floorf`, and the `+0.1f` guard against `sqrtf` returning just below an
/// exact integer root. The paper's listing computes the row distance into a
/// variable it also calls `move_index`; the arithmetic here follows it
/// step by step. Exact for small `n`; for large `n` the 24-bit mantissa
/// truncates `8X+1` and the result can drift off by one row — quantified in
/// the `ablations` bench (experiment A1).
#[inline]
pub fn unrank2_f32_paper(n: u64, index: u64) -> (u64, u64) {
    let m = size2(n);
    debug_assert!(index < m);
    let x = (m - index - 1) as f32;
    let k = (((8.0f32 * x + 1.0 + 0.1).sqrt() - 1.0) / 2.0).floor();
    let i = (n as f32 - 2.0 - k) as u64;
    // Wrapping arithmetic: when the f32 row estimate is off by one, the
    // exact formula for j underflows u64. The hardware kernel would just
    // produce a garbage index; we reproduce that behaviour instead of
    // panicking so the ablation can observe the mis-mapping.
    let j = index.wrapping_add(i * (i + 1) / 2).wrapping_sub(i * (n - 1)).wrapping_add(1);
    (i, j)
}

/// Smallest `n` (searched over a coarse grid) at which [`unrank2_f32_paper`]
/// disagrees with the exact mapping on at least one index, or `None` if no
/// disagreement was found up to `max_n`. Used by the precision ablation.
pub fn f32_first_failure(max_n: u64) -> Option<(u64, u64)> {
    let mut n = 64;
    while n <= max_n {
        let m = size2(n);
        // The fragile region is the high end of X (start of the index range)
        // and row boundaries; scan a band plus a stride over the rest.
        let band = 4096.min(m);
        let check = |idx: u64| unrank2(n, idx) != unrank2_f32_paper(n, idx);
        for idx in 0..band {
            if check(idx) {
                return Some((n, idx));
            }
        }
        let mut idx = band;
        let stride = (m / 65_536).max(1);
        while idx < m {
            if check(idx) {
                return Some((n, idx));
            }
            idx += stride;
        }
        n = n * 5 / 4;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference enumeration: lexicographic pairs.
    fn reference_pairs(n: u64) -> Vec<(u64, u64)> {
        let mut v = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                v.push((i, j));
            }
        }
        v
    }

    #[test]
    fn paper_worked_example() {
        // Paper App. A: n = 6, m = 15, (i=2, j=3) ↦ 9.
        assert_eq!(size2(6), 15);
        assert_eq!(rank2(6, 2, 3), 9);
        assert_eq!(unrank2(6, 9), (2, 3));
    }

    #[test]
    fn rank_matches_reference_enumeration() {
        for n in [2u64, 3, 4, 5, 6, 7, 17, 73] {
            for (f, &(i, j)) in reference_pairs(n).iter().enumerate() {
                assert_eq!(rank2(n, i, j), f as u64, "n={n} pair=({i},{j})");
            }
        }
    }

    #[test]
    fn unrank_is_inverse_small_n() {
        for n in [2u64, 3, 5, 8, 73, 117, 257] {
            for f in 0..size2(n) {
                let (i, j) = unrank2(n, f);
                assert!(i < j && j < n);
                assert_eq!(rank2(n, i, j), f, "n={n} f={f}");
            }
        }
    }

    #[test]
    fn unrank_extremes() {
        let n = 1517;
        assert_eq!(unrank2(n, 0), (0, 1));
        assert_eq!(unrank2(n, n - 2), (0, n - 1));
        assert_eq!(unrank2(n, n - 1), (1, 2));
        assert_eq!(unrank2(n, size2(n) - 1), (n - 2, n - 1));
    }

    #[test]
    fn unrank_huge_n_spot_checks() {
        // n = 2^21: m ≈ 2.2e12; exercise 64-bit paths far beyond f32 reach.
        let n = 1u64 << 21;
        let m = size2(n);
        for f in [0, 1, n, m / 2, m - 2, m - 1] {
            let (i, j) = unrank2(n, f);
            assert_eq!(rank2(n, i, j), f);
        }
    }

    #[test]
    fn f32_paper_version_agrees_on_paper_instances() {
        // On every instance size the paper actually ran (n ≤ 1517) the f32
        // code must agree with the exact mapping — otherwise their GPU
        // results would have been corrupted.
        for n in [73u64, 81, 101, 117, 217, 517, 1017, 1517] {
            for f in 0..size2(n) {
                assert_eq!(
                    unrank2_f32_paper(n, f),
                    unrank2(n, f),
                    "f32 mapping diverged at n={n}, f={f}"
                );
            }
        }
    }

    #[test]
    fn f32_version_eventually_fails() {
        // The ablation claim: single precision cannot carry arbitrarily
        // large neighborhoods. 8X+1 needs ~2·log2(n) bits; beyond the 24-bit
        // mantissa (n ≳ 2^13) rounding must eventually mis-rank.
        let failure = f32_first_failure(1 << 15);
        assert!(failure.is_some(), "expected the f32 mapping to fail somewhere below n=2^15");
        let (n, idx) = failure.unwrap();
        assert!(n > 1517, "f32 failed at n={n} idx={idx}, inside the paper's own range!");
    }
}
