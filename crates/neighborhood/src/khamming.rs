//! Generalized k-Hamming neighborhood via the combinatorial number system
//! — the extension the paper's §V ("handling larger neighborhoods")
//! motivates. For k ∈ {1,2,3} it is index-compatible with the specialized
//! types and therefore also with the paper's mappings.

use crate::combinadic::{rank_combinadic, unrank_combinadic};
use crate::flip::MAX_FLIPS;
use crate::{binomial, FlipMove, Neighborhood};

/// The neighborhood of all `k`-bit flips of an `n`-bit string
/// (`C(n, k)` moves), `1 ≤ k ≤` [`MAX_FLIPS`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct KHamming {
    n: usize,
    k: usize,
    size: u64,
}

impl KHamming {
    /// Neighborhood of Hamming distance `k` over `n`-bit strings.
    ///
    /// # Panics
    /// Panics if `k == 0`, `k > MAX_FLIPS`, or `k > n`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!((1..=MAX_FLIPS).contains(&k), "KHamming supports 1..={MAX_FLIPS}, got k={k}");
        assert!(k <= n, "KHamming requires k <= n (k={k}, n={n})");
        Self { n, k, size: binomial(n as u64, k as u64) }
    }
}

impl Neighborhood for KHamming {
    #[inline]
    fn dim(&self) -> usize {
        self.n
    }

    #[inline]
    fn k(&self) -> usize {
        self.k
    }

    #[inline]
    fn size(&self) -> u64 {
        self.size
    }

    #[inline]
    fn unrank(&self, index: u64) -> FlipMove {
        debug_assert!(index < self.size);
        let mut buf = [0u32; MAX_FLIPS];
        unrank_combinadic(self.n as u64, index, &mut buf[..self.k]);
        FlipMove::from_sorted(&buf[..self.k])
    }

    #[inline]
    fn rank(&self, mv: &FlipMove) -> u64 {
        debug_assert_eq!(mv.k(), self.k);
        rank_combinadic(self.n as u64, mv.bits())
    }

    fn name(&self) -> &'static str {
        match self.k {
            1 => "1-Hamming (generic)",
            2 => "2-Hamming (generic)",
            3 => "3-Hamming (generic)",
            _ => "4-Hamming (generic)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OneHamming, ThreeHamming, TwoHamming};

    #[test]
    fn agrees_with_specialized_neighborhoods() {
        let n = 21;
        let h1 = OneHamming::new(n);
        let h2 = TwoHamming::new(n);
        let h3 = ThreeHamming::new(n);
        let g1 = KHamming::new(n, 1);
        let g2 = KHamming::new(n, 2);
        let g3 = KHamming::new(n, 3);
        assert_eq!(h1.size(), g1.size());
        assert_eq!(h2.size(), g2.size());
        assert_eq!(h3.size(), g3.size());
        for f in 0..g1.size() {
            assert_eq!(h1.unrank(f), g1.unrank(f));
        }
        for f in 0..g2.size() {
            assert_eq!(h2.unrank(f), g2.unrank(f));
        }
        for f in 0..g3.size() {
            assert_eq!(h3.unrank(f), g3.unrank(f));
        }
    }

    #[test]
    fn k4_roundtrip() {
        let h = KHamming::new(15, 4);
        assert_eq!(h.size(), 1365);
        for f in 0..h.size() {
            assert_eq!(h.rank(&h.unrank(f)), f);
        }
    }

    #[test]
    #[should_panic(expected = "k <= n")]
    fn k_larger_than_n_rejected() {
        let _ = KHamming::new(2, 3);
    }
}
