//! Hamming-ball neighborhoods for binary encodings and the thread-id ↔ move
//! mappings of Luong, Melab & Talbi, *"Large Neighborhood Local Search
//! Optimization on Graphics Processing Units"* (LSPP @ IPDPS 2010).
//!
//! A *move* on a binary string of length `n` flips `k` distinct bit
//! positions. The neighborhood of Hamming distance `k` is the set of all
//! `C(n, k)` such moves. On a GPU each move is evaluated by one thread, and
//! the thread only knows its flat id — so the crate's central service is a
//! pair of bijections per neighborhood:
//!
//! * [`Neighborhood::unrank`]: flat index → move (ℕ → ℕᵏ, paper App. B/C),
//! * [`Neighborhood::rank`]: move → flat index (ℕᵏ → ℕ, paper App. A/D).
//!
//! The layout is lexicographic over sorted index tuples for every `k`, so
//! [`OneHamming`], [`TwoHamming`], [`ThreeHamming`] and the generalized
//! [`KHamming`] all agree wherever they overlap (property-tested).
//!
//! Two families of implementations are provided:
//!
//! * **Exact** integer arithmetic (`u64::isqrt`, integer cube-root fix-up) —
//!   the default, correct for any `n` where the neighborhood size fits `u64`.
//! * **Paper-faithful floating point** ([`mapping2d::unrank2_f32_paper`],
//!   [`mapping3d::unrank3_newton`]) reproducing the `f32`/Newton–Raphson
//!   code of the paper's Figs. 9–10 — kept so the precision ablation (A1 in
//!   DESIGN.md) can quantify where they break.
//!
//! # Example
//!
//! ```
//! use lnls_neighborhood::{Neighborhood, ThreeHamming};
//!
//! let hood = ThreeHamming::new(101);
//! assert_eq!(hood.size(), 101 * 100 * 99 / 6);
//! let mv = hood.unrank(12345);
//! assert_eq!(hood.rank(&mv), 12345);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combinadic;
pub mod flip;
pub mod iter;
pub mod mapping2d;
pub mod mapping3d;
pub mod newton;
pub mod partition;
pub mod union;

mod khamming;
mod one;
mod three;
mod two;

pub use flip::FlipMove;
pub use iter::{lex_advance, LexMoves, MoveIter};
pub use khamming::KHamming;
pub use one::OneHamming;
pub use partition::{partition_ranges, IndexRange};
pub use three::ThreeHamming;
pub use two::TwoHamming;
pub use union::UnionHamming;

/// A neighborhood of a binary string of dimension `n`: the set of all moves
/// flipping exactly `k` distinct bits, indexed `0..size()` in lexicographic
/// order of the sorted bit-index tuple.
///
/// Implementations must guarantee that [`rank`](Self::rank) and
/// [`unrank`](Self::unrank) are mutually inverse bijections between
/// `0..size()` and the set of sorted `k`-tuples over `0..dim()`.
pub trait Neighborhood: Send + Sync {
    /// Length `n` of the binary strings this neighborhood operates on.
    fn dim(&self) -> usize;

    /// Number of bits flipped by each move (the Hamming distance `k`).
    fn k(&self) -> usize;

    /// Number of moves in the neighborhood, `C(n, k)`.
    fn size(&self) -> u64;

    /// Map a flat move index (a GPU thread id) to the move it denotes.
    ///
    /// # Panics
    /// May panic (or return an unspecified move) if `index >= self.size()`;
    /// use [`try_unrank`](Self::try_unrank) for checked access.
    fn unrank(&self, index: u64) -> FlipMove;

    /// Map a move back to its flat index. Inverse of [`unrank`](Self::unrank).
    ///
    /// # Panics
    /// May panic if the move does not belong to this neighborhood (wrong
    /// number of bits, unsorted/duplicate indices, or indices `>= dim()`).
    fn rank(&self, mv: &FlipMove) -> u64;

    /// Checked variant of [`unrank`](Self::unrank).
    fn try_unrank(&self, index: u64) -> Option<FlipMove> {
        (index < self.size()).then(|| self.unrank(index))
    }

    /// Checked variant of [`rank`](Self::rank).
    fn try_rank(&self, mv: &FlipMove) -> Option<u64> {
        let n = self.dim() as u32;
        let bits = mv.bits();
        let sorted_unique = bits.windows(2).all(|w| w[0] < w[1]);
        (bits.len() == self.k() && sorted_unique && bits.iter().all(|&b| b < n))
            .then(|| self.rank(mv))
    }

    /// Iterator over every move in index order.
    fn moves(&self) -> MoveIter<'_, Self>
    where
        Self: Sized,
    {
        MoveIter::new(self)
    }

    /// Visit the moves with flat indices in `lo..hi` (clamped to
    /// [`size`](Self::size)) in index order, stopping early when the
    /// callback returns `false`.
    ///
    /// The default implementation assumes the neighborhood enumerates a
    /// *fixed* `k` in lexicographic order (true for every fixed-k type
    /// here): it unranks once at `lo` and advances with
    /// [`lex_advance`] — O(1) amortized per move, no per-index Newton
    /// steps. Mixed-k neighborhoods ([`UnionHamming`]) override this
    /// with per-segment dispatch.
    fn for_each_move_in(&self, lo: u64, hi: u64, f: &mut dyn FnMut(u64, FlipMove) -> bool) {
        let hi = hi.min(self.size());
        if lo >= hi {
            return;
        }
        let first = self.unrank(lo);
        let k = first.k();
        let mut bits = [0u32; crate::flip::MAX_FLIPS];
        bits[..k].copy_from_slice(first.bits());
        let n = self.dim() as u32;
        for idx in lo..hi {
            let mv = FlipMove::from_sorted(&bits[..k]);
            if !f(idx, mv) {
                return;
            }
            if idx + 1 < hi {
                lex_advance(&mut bits[..k], n);
            }
        }
    }

    /// A short human-readable name, e.g. `"2-Hamming"`.
    fn name(&self) -> &'static str;
}

/// Binomial coefficient `C(n, k)` for small `k` (≤ 8), computed exactly in
/// `u128` and returned as `u64`.
///
/// # Panics
/// Panics if the result does not fit in `u64`.
#[inline]
pub fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for t in 0..k {
        acc = acc * (n - t) as u128 / (t + 1) as u128;
    }
    u64::try_from(acc).expect("binomial overflows u64")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_small_values() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(6, 3), 20);
        assert_eq!(binomial(73, 3), 73 * 72 * 71 / 6);
        assert_eq!(binomial(3, 5), 0);
    }

    #[test]
    fn binomial_matches_pascal() {
        for n in 1..40u64 {
            for k in 1..5u64 {
                assert_eq!(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
            }
        }
    }

    #[test]
    fn binomial_large_n_three() {
        // C(2_000_000, 3) must still be exact.
        let n = 2_000_000u64;
        assert_eq!(binomial(n, 3), n * (n - 1) * (n - 2) / 6);
    }
}
