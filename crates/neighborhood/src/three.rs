//! 3-Hamming distance neighborhood (paper §II, Fig. 5): flip three bits.
//! Mapping per Appendices C–D (see [`crate::mapping3d`]).

use crate::mapping3d::{rank3, size3, unrank3, unrank3_newton};
use crate::{FlipMove, Neighborhood};

/// How [`ThreeHamming`] resolves a flat index to a plan (the cubic-root
/// search of Appendix C).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum PlanSearch {
    /// Exact integer arithmetic (default).
    #[default]
    Exact,
    /// The paper's Newton–Raphson (Algorithm 1) with integer fix-up; kept
    /// selectable so benches can compare the two paths.
    Newton,
}

/// The neighborhood of all three-bit flips of an `n`-bit string
/// (`n(n−1)(n−2)/6` moves).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ThreeHamming {
    n: usize,
    search: PlanSearch,
}

impl ThreeHamming {
    /// Neighborhood over `n`-bit strings with the exact plan search.
    /// `n` must be ≥ 3.
    pub fn new(n: usize) -> Self {
        assert!(n >= 3, "ThreeHamming requires n >= 3");
        Self { n, search: PlanSearch::Exact }
    }

    /// Same neighborhood, selecting the plan-search implementation.
    pub fn with_search(n: usize, search: PlanSearch) -> Self {
        assert!(n >= 3, "ThreeHamming requires n >= 3");
        Self { n, search }
    }
}

impl Neighborhood for ThreeHamming {
    #[inline]
    fn dim(&self) -> usize {
        self.n
    }

    #[inline]
    fn k(&self) -> usize {
        3
    }

    #[inline]
    fn size(&self) -> u64 {
        size3(self.n as u64)
    }

    #[inline]
    fn unrank(&self, index: u64) -> FlipMove {
        let (a, b, c) = match self.search {
            PlanSearch::Exact => unrank3(self.n as u64, index),
            PlanSearch::Newton => unrank3_newton(self.n as u64, index),
        };
        FlipMove::three(a as u32, b as u32, c as u32)
    }

    #[inline]
    fn rank(&self, mv: &FlipMove) -> u64 {
        debug_assert_eq!(mv.k(), 3);
        let b = mv.bits();
        rank3(self.n as u64, b[0] as u64, b[1] as u64, b[2] as u64)
    }

    fn name(&self) -> &'static str {
        "3-Hamming"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_indices() {
        for n in [3usize, 5, 12, 30] {
            let h = ThreeHamming::new(n);
            for f in 0..h.size() {
                let mv = h.unrank(f);
                assert_eq!(mv.k(), 3);
                assert_eq!(h.rank(&mv), f);
            }
        }
    }

    #[test]
    fn newton_and_exact_agree() {
        let exact = ThreeHamming::with_search(73, PlanSearch::Exact);
        let newton = ThreeHamming::with_search(73, PlanSearch::Newton);
        for f in (0..exact.size()).step_by(97) {
            assert_eq!(exact.unrank(f), newton.unrank(f), "f={f}");
        }
    }

    #[test]
    fn paper_instance_sizes() {
        // Table III column "# iterations" bounds: stopping criterion is the
        // 3-Hamming size of each instance.
        assert_eq!(ThreeHamming::new(73).size(), 62_196);
        assert_eq!(ThreeHamming::new(81).size(), 85_320);
        assert_eq!(ThreeHamming::new(101).size(), 166_650);
        assert_eq!(ThreeHamming::new(117).size(), 260_130);
    }
}
