//! Neighborhood partitioning for multi-device execution (paper §V: "It
//! will consist of partitioning the neighborhood set, where each partition
//! is executed on a single GPU").
//!
//! Because every neighborhood is addressed by a dense index range
//! `0..size`, a partition is simply a split of that range; the mapping
//! functions then let each device reconstruct its own moves locally with
//! no communication.

/// A half-open range of flat move indices assigned to one device.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct IndexRange {
    /// First index (inclusive).
    pub lo: u64,
    /// One past the last index.
    pub hi: u64,
}

impl IndexRange {
    /// Number of moves in the range.
    #[inline]
    pub fn len(&self) -> u64 {
        self.hi - self.lo
    }

    /// True if the range contains no moves.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.hi == self.lo
    }
}

/// Split `0..size` into `parts` contiguous ranges whose lengths differ by
/// at most one (the first `size % parts` ranges get the extra element).
///
/// # Panics
/// Panics if `parts == 0`.
pub fn partition_ranges(size: u64, parts: usize) -> Vec<IndexRange> {
    assert!(parts > 0, "cannot partition into zero parts");
    let parts64 = parts as u64;
    let base = size / parts64;
    let extra = size % parts64;
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0;
    for p in 0..parts64 {
        let len = base + u64::from(p < extra);
        out.push(IndexRange { lo, hi: lo + len });
        lo += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_cover_no_overlap() {
        for size in [0u64, 1, 7, 100, 62_196] {
            for parts in [1usize, 2, 3, 4, 8, 13] {
                let ranges = partition_ranges(size, parts);
                assert_eq!(ranges.len(), parts);
                assert_eq!(ranges[0].lo, 0);
                assert_eq!(ranges.last().unwrap().hi, size);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].hi, w[1].lo, "gap or overlap");
                }
                let total: u64 = ranges.iter().map(IndexRange::len).sum();
                assert_eq!(total, size);
            }
        }
    }

    #[test]
    fn balanced_within_one() {
        let ranges = partition_ranges(10, 4);
        let lens: Vec<_> = ranges.iter().map(IndexRange::len).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn zero_parts_rejected() {
        let _ = partition_ranges(10, 0);
    }
}
