//! Newton–Raphson root finding for the 3-Hamming unranking (paper
//! Algorithm 1), plus the exact integer fix-up that makes it robust on a
//! "finite discrete machine" — the concern the paper raises about
//! Cardano's method applies equally to its own floating-point Newton
//! iteration, so production code must re-anchor the root with integer
//! comparisons.

/// Solve `k³ − k − 6Y = 0` for the positive real root by Newton–Raphson,
/// following the paper's Algorithm 1 (fixed precision, multiplicative
/// update criterion).
///
/// The equation arises from `C(k+1, 3) = Y`: substituting `k₁ = k − 1`
/// into `k(k−1)(k−2) = 6Y` gives `k₁³ − k₁ = 6Y`.
#[inline]
pub fn newton_cubic_root(y: u64, precision: f64) -> f64 {
    // Initial value: the real root is ≈ cbrt(6Y) for large Y; cbrt gives a
    // basin where Newton converges in a handful of iterations. Guard the
    // derivative away from its zeros (±1/√3).
    let rhs = 6.0 * y as f64;
    let mut k1 = rhs.cbrt().max(2.0);
    for _ in 0..64 {
        let term = (k1 * k1 * k1 - k1 - rhs) / (3.0 * k1 * k1 - 1.0);
        k1 -= term;
        if (term / k1).abs() <= precision {
            break;
        }
    }
    k1
}

/// Smallest `k ≥ 1` such that `C(k, 3) = k(k−1)(k−2)/6 ≥ y`, computed from
/// the Newton estimate and then corrected with exact integer comparisons.
///
/// This is the quantity App. C needs ("minimize k such that
/// k(k−1)(k−2)/6 ≥ Y"); the float root alone may land one off near plan
/// boundaries, hence the fix-up loop (at most a couple of steps).
#[inline]
pub fn min_k_cubic(y: u64) -> u64 {
    if y == 0 {
        return 1;
    }
    let c3 = |k: u64| -> u64 {
        if k < 3 {
            0
        } else {
            // k ≤ ~2^21 in practice; product fits u64 comfortably below
            // 2^63 for k < 2^21. Use u128 to stay safe for pathological k.
            (k as u128 * (k - 1) as u128 * (k - 2) as u128 / 6) as u64
        }
    };
    // newton_cubic_root solves k1³−k1 = 6y with k1 = k−1 ⇒ k ≈ root + 1.
    let mut k = (newton_cubic_root(y, 1e-12) + 1.0).ceil() as u64;
    k = k.max(3);
    while c3(k) < y {
        k += 1;
    }
    while k > 3 && c3(k - 1) >= y {
        k -= 1;
    }
    k
}

/// Integer cube root: the largest `r` with `r³ ≤ v`.
#[inline]
pub fn icbrt(v: u64) -> u64 {
    if v == 0 {
        return 0;
    }
    let mut r = (v as f64).cbrt() as u64;
    // Float seed can be off by one in either direction.
    while (r as u128 + 1).pow(3) <= v as u128 {
        r += 1;
    }
    while (r as u128).pow(3) > v as u128 {
        r -= 1;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c3(k: u64) -> u64 {
        if k < 3 {
            0
        } else {
            k * (k - 1) * (k - 2) / 6
        }
    }

    #[test]
    fn newton_matches_algebra_on_exact_roots() {
        // If 6Y = k1³−k1 exactly, the root is k1.
        for k1 in [2u64, 3, 10, 100, 5000] {
            let y = (k1 * k1 * k1 - k1) / 6;
            let root = newton_cubic_root(y, 1e-12);
            assert!((root - k1 as f64).abs() < 1e-6, "k1={k1} root={root}");
        }
    }

    #[test]
    fn min_k_cubic_is_minimal() {
        for y in 1..20_000u64 {
            let k = min_k_cubic(y);
            assert!(c3(k) >= y, "y={y} k={k}");
            assert!(k == 3 || c3(k - 1) < y, "y={y} k={k} not minimal");
        }
    }

    #[test]
    fn min_k_cubic_plan_boundaries() {
        // Exactly at C(k,3) the minimal k is k itself; one past it is k+1.
        for k in 3..2_000u64 {
            let y = c3(k);
            assert_eq!(min_k_cubic(y), k, "boundary y=C({k},3)");
            assert_eq!(min_k_cubic(y + 1), k + 1, "just past boundary");
        }
    }

    #[test]
    fn min_k_cubic_large_values() {
        // Y near C(2^20, 3) ≈ 1.9e17 still resolves exactly.
        let k = 1u64 << 20;
        let y = c3(k);
        assert_eq!(min_k_cubic(y), k);
        assert_eq!(min_k_cubic(y - 1), k);
        assert_eq!(min_k_cubic(y + 1), k + 1);
    }

    #[test]
    fn icbrt_exact() {
        for r in 0..2_000u64 {
            let v = r * r * r;
            assert_eq!(icbrt(v), r);
            if v > 0 {
                assert_eq!(icbrt(v - 1), r - 1);
                assert_eq!(icbrt(v + 1), r);
            }
        }
        assert_eq!(icbrt(u64::MAX), 2_642_245); // floor(cbrt(2^64-1))
    }
}
