//! Union of Hamming neighborhoods: one flat index space covering
//! several radii at once.
//!
//! The paper explores radii 1, 2 and 3 *separately* (one kernel per
//! table). A union neighborhood concatenates their index spaces —
//! indices `0..n` are the 1-flips, the next `C(n,2)` the 2-flips, and
//! so on — so a *single* kernel launch (or one sequential scan)
//! evaluates the whole ladder and the search picks the best move across
//! radii every iteration. This is the "very large-scale neighborhood"
//! view of §I, and it maps to GPU threads exactly like its parts: the
//! segment is found by offset comparison, then the part's own §III
//! mapping decodes the remainder.

use crate::khamming::KHamming;
use crate::{FlipMove, Neighborhood};

/// Concatenation of `KHamming` neighborhoods with distinct radii, in
/// ascending-`k` order.
#[derive(Clone, Debug)]
pub struct UnionHamming {
    n: usize,
    parts: Vec<KHamming>,
    /// `offsets[i]` = first flat index of part `i`; a final entry holds
    /// the total size.
    offsets: Vec<u64>,
}

impl UnionHamming {
    /// Union of the given radii over `n`-bit strings.
    ///
    /// # Panics
    /// Panics if `ks` is empty, unsorted, has duplicates, or any radius
    /// is invalid for [`KHamming`].
    pub fn new(n: usize, ks: &[usize]) -> Self {
        assert!(!ks.is_empty(), "union of nothing");
        assert!(ks.windows(2).all(|w| w[0] < w[1]), "radii must be strictly ascending");
        let parts: Vec<KHamming> = ks.iter().map(|&k| KHamming::new(n, k)).collect();
        let mut offsets = Vec::with_capacity(parts.len() + 1);
        let mut acc = 0u64;
        for p in &parts {
            offsets.push(acc);
            acc += p.size();
        }
        offsets.push(acc);
        Self { n, parts, offsets }
    }

    /// The classic 1∪2∪3 ladder of the paper.
    pub fn ladder123(n: usize) -> Self {
        Self::new(n, &[1, 2, 3])
    }

    /// The member neighborhoods, ascending by radius.
    pub fn parts(&self) -> &[KHamming] {
        &self.parts
    }

    /// The flat-index range `lo..hi` occupied by part `i`.
    pub fn segment(&self, i: usize) -> (u64, u64) {
        (self.offsets[i], self.offsets[i + 1])
    }

    /// Which part a flat index belongs to.
    fn part_of(&self, index: u64) -> usize {
        // offsets is ascending; find the last offset ≤ index.
        match self.offsets.binary_search(&index) {
            Ok(i) if i == self.parts.len() => i - 1, // index == total size (caller panics later)
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }
}

impl Neighborhood for UnionHamming {
    fn dim(&self) -> usize {
        self.n
    }

    /// The *largest* radius in the union (moves have mixed sizes; this
    /// is the upper bound drivers need for scratch space).
    fn k(&self) -> usize {
        self.parts.last().expect("non-empty").k()
    }

    fn size(&self) -> u64 {
        *self.offsets.last().expect("non-empty")
    }

    fn unrank(&self, index: u64) -> FlipMove {
        assert!(index < self.size(), "index {index} out of range ({})", self.size());
        let i = self.part_of(index);
        self.parts[i].unrank(index - self.offsets[i])
    }

    fn rank(&self, mv: &FlipMove) -> u64 {
        let k = mv.k();
        let i = self
            .parts
            .iter()
            .position(|p| p.k() == k)
            .unwrap_or_else(|| panic!("no part with radius {k} in this union"));
        self.offsets[i] + self.parts[i].rank(mv)
    }

    fn try_rank(&self, mv: &FlipMove) -> Option<u64> {
        let i = self.parts.iter().position(|p| p.k() == mv.k())?;
        Some(self.offsets[i] + self.parts[i].try_rank(mv)?)
    }

    fn for_each_move_in(&self, lo: u64, hi: u64, f: &mut dyn FnMut(u64, FlipMove) -> bool) {
        let hi = hi.min(self.size());
        let mut stopped = false;
        for (i, part) in self.parts.iter().enumerate() {
            if stopped {
                return;
            }
            let (plo, phi) = self.segment(i);
            let slo = lo.max(plo);
            let shi = hi.min(phi);
            if slo >= shi {
                continue;
            }
            let off = plo;
            part.for_each_move_in(slo - off, shi - off, &mut |idx, mv| {
                let go = f(idx + off, mv);
                if !go {
                    stopped = true;
                }
                go
            });
        }
    }

    fn name(&self) -> &'static str {
        "union-Hamming"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial;

    #[test]
    fn sizes_and_segments() {
        let u = UnionHamming::ladder123(10);
        assert_eq!(u.size(), 10 + 45 + 120);
        assert_eq!(u.segment(0), (0, 10));
        assert_eq!(u.segment(1), (10, 55));
        assert_eq!(u.segment(2), (55, 175));
        assert_eq!(u.k(), 3);
        assert_eq!(u.dim(), 10);
    }

    #[test]
    fn unrank_dispatches_to_the_right_radius() {
        let u = UnionHamming::ladder123(9);
        assert_eq!(u.unrank(0).k(), 1);
        assert_eq!(u.unrank(8).k(), 1);
        assert_eq!(u.unrank(9).k(), 2);
        assert_eq!(u.unrank(9 + binomial(9, 2) - 1).k(), 2);
        assert_eq!(u.unrank(9 + binomial(9, 2)).k(), 3);
        assert_eq!(u.unrank(u.size() - 1).k(), 3);
    }

    #[test]
    fn rank_unrank_roundtrip_everywhere() {
        let u = UnionHamming::new(8, &[1, 2, 4]);
        for idx in 0..u.size() {
            let mv = u.unrank(idx);
            assert_eq!(u.rank(&mv), idx, "{mv}");
            assert_eq!(u.try_rank(&mv), Some(idx));
        }
    }

    #[test]
    fn try_rank_rejects_foreign_radii() {
        let u = UnionHamming::new(8, &[1, 3]);
        let two_flip = FlipMove::two(0, 1);
        assert_eq!(u.try_rank(&two_flip), None);
    }

    #[test]
    fn for_each_covers_everything_in_order() {
        let u = UnionHamming::ladder123(7);
        let mut seen = Vec::new();
        u.for_each_move_in(0, u.size(), &mut |idx, mv| {
            assert_eq!(mv, u.unrank(idx));
            seen.push(idx);
            true
        });
        assert_eq!(seen, (0..u.size()).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_respects_ranges_across_segments() {
        let u = UnionHamming::ladder123(7);
        // A range straddling the 1H/2H boundary (7) and ending inside 2H.
        let mut seen = Vec::new();
        u.for_each_move_in(5, 15, &mut |idx, mv| {
            assert_eq!(mv, u.unrank(idx));
            seen.push(idx);
            true
        });
        assert_eq!(seen, (5..15).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_early_exit_stops_across_segments() {
        let u = UnionHamming::ladder123(7);
        let mut count = 0;
        u.for_each_move_in(0, u.size(), &mut |_, _| {
            count += 1;
            count < 9 // stop inside the 2-Hamming segment
        });
        assert_eq!(count, 9);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_radii_rejected() {
        let _ = UnionHamming::new(8, &[2, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_index_rejected() {
        let u = UnionHamming::new(6, &[1]);
        let _ = u.unrank(6);
    }
}
