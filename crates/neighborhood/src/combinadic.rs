//! General `k`-subset ranking in lexicographic order (the combinatorial
//! number system), generalizing the paper's hand-derived 2D/3D mappings to
//! arbitrary Hamming distance — the "larger neighborhoods" the paper's
//! multi-GPU perspective (§V) calls for.
//!
//! For a sorted tuple `a₀ < a₁ < … < a_{k−1}` over `0..n`, the
//! lexicographic rank is
//!
//! ```text
//! rank = Σ_{t=0}^{k−1}  Σ_{v=prev_t+1}^{a_t−1} C(n−1−v, k−1−t)
//! ```
//!
//! i.e. for each position we count the tuples that start with a smaller
//! admissible value. Unranking inverts one coordinate at a time. Both
//! directions are `O(k·n)` worst case but in practice `O(k·(gap))`; for the
//! small `k` used here the cost is dominated by a handful of binomials.

use crate::binomial;

/// Lexicographic rank of the sorted tuple `bits` among all `C(n, k)`
/// sorted `k`-tuples over `0..n`.
///
/// # Panics
/// Debug-asserts that `bits` is strictly increasing and below `n`.
pub fn rank_combinadic(n: u64, bits: &[u32]) -> u64 {
    let k = bits.len() as u64;
    debug_assert!(bits.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(bits.iter().all(|&b| (b as u64) < n));
    let mut rank = 0u64;
    let mut prev: i64 = -1;
    for (t, &a) in bits.iter().enumerate() {
        let remaining = k - 1 - t as u64;
        for v in (prev + 1) as u64..a as u64 {
            rank += binomial(n - 1 - v, remaining);
        }
        prev = a as i64;
    }
    rank
}

/// Inverse of [`rank_combinadic`]: writes the `k` sorted bit indices of the
/// tuple with lexicographic rank `index` into `out`.
///
/// # Panics
/// Debug-asserts `index < C(n, k)` with `k = out.len()`.
pub fn unrank_combinadic(n: u64, index: u64, out: &mut [u32]) {
    let k = out.len() as u64;
    debug_assert!(index < binomial(n, k), "index {index} >= C({n},{k})");
    let mut rest = index;
    let mut v = 0u64; // next candidate value
    for t in 0..k {
        let remaining = k - 1 - t;
        // Advance v while all tuples starting with v fit before `rest`.
        loop {
            let count = binomial(n - 1 - v, remaining);
            if rest < count {
                break;
            }
            rest -= count;
            v += 1;
        }
        out[t as usize] = v as u32;
        v += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping2d::{rank2, size2, unrank2};
    use crate::mapping3d::{size3, unrank3};

    #[test]
    fn k1_is_identity() {
        let mut out = [0u32; 1];
        for n in [1u64, 5, 100] {
            for i in 0..n {
                assert_eq!(rank_combinadic(n, &[i as u32]), i);
                unrank_combinadic(n, i, &mut out);
                assert_eq!(out[0] as u64, i);
            }
        }
    }

    #[test]
    fn k2_matches_paper_layout() {
        for n in [2u64, 5, 17, 73] {
            for f in 0..size2(n) {
                let (i, j) = unrank2(n, f);
                assert_eq!(rank_combinadic(n, &[i as u32, j as u32]), f);
                let mut out = [0u32; 2];
                unrank_combinadic(n, f, &mut out);
                assert_eq!((out[0] as u64, out[1] as u64), (i, j));
                assert_eq!(rank2(n, out[0] as u64, out[1] as u64), f);
            }
        }
    }

    #[test]
    fn k3_matches_paper_layout() {
        for n in [3u64, 7, 20, 41] {
            for f in 0..size3(n) {
                let (a, b, c) = unrank3(n, f);
                assert_eq!(rank_combinadic(n, &[a as u32, b as u32, c as u32]), f);
                let mut out = [0u32; 3];
                unrank_combinadic(n, f, &mut out);
                assert_eq!((out[0] as u64, out[1] as u64, out[2] as u64), (a, b, c));
            }
        }
    }

    #[test]
    fn k4_roundtrip_full_enumeration() {
        let n = 12u64;
        let m = binomial(n, 4);
        let mut prev: Option<[u32; 4]> = None;
        for f in 0..m {
            let mut out = [0u32; 4];
            unrank_combinadic(n, f, &mut out);
            assert!(out.windows(2).all(|w| w[0] < w[1]), "f={f} out={out:?}");
            assert_eq!(rank_combinadic(n, &out), f);
            if let Some(p) = prev {
                assert!(p < out, "lexicographic order violated at f={f}");
            }
            prev = Some(out);
        }
    }

    #[test]
    fn k4_large_n_spot_checks() {
        let n = 1_000u64;
        let m = binomial(n, 4);
        for f in [0, 1, n, m / 2, m - 2, m - 1] {
            let mut out = [0u32; 4];
            unrank_combinadic(n, f, &mut out);
            assert_eq!(rank_combinadic(n, &out), f);
        }
    }
}
