//! 1-Hamming distance neighborhood (paper §II, Fig. 3): flip one bit.
//! The thread-id mapping is the identity (paper §III.B.1, Fig. 7).

use crate::{FlipMove, Neighborhood};

/// The neighborhood of all single-bit flips of an `n`-bit string.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct OneHamming {
    n: usize,
}

impl OneHamming {
    /// Neighborhood over `n`-bit strings. `n` must be ≥ 1.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "OneHamming requires n >= 1");
        Self { n }
    }
}

impl Neighborhood for OneHamming {
    #[inline]
    fn dim(&self) -> usize {
        self.n
    }

    #[inline]
    fn k(&self) -> usize {
        1
    }

    #[inline]
    fn size(&self) -> u64 {
        self.n as u64
    }

    #[inline]
    fn unrank(&self, index: u64) -> FlipMove {
        debug_assert!(index < self.size());
        FlipMove::one(index as u32)
    }

    #[inline]
    fn rank(&self, mv: &FlipMove) -> u64 {
        debug_assert_eq!(mv.k(), 1);
        mv.bits()[0] as u64
    }

    fn name(&self) -> &'static str {
        "1-Hamming"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_mapping() {
        let h = OneHamming::new(73);
        assert_eq!(h.size(), 73);
        assert_eq!(h.k(), 1);
        for f in 0..h.size() {
            let mv = h.unrank(f);
            assert_eq!(mv.bits(), &[f as u32]);
            assert_eq!(h.rank(&mv), f);
        }
    }

    #[test]
    fn checked_accessors() {
        let h = OneHamming::new(8);
        assert!(h.try_unrank(7).is_some());
        assert!(h.try_unrank(8).is_none());
        assert!(h.try_rank(&FlipMove::one(7)).is_some());
        assert!(h.try_rank(&FlipMove::one(8)).is_none());
        assert!(h.try_rank(&FlipMove::two(1, 2)).is_none());
    }

    #[test]
    #[should_panic(expected = "n >= 1")]
    fn zero_dim_rejected() {
        let _ = OneHamming::new(0);
    }
}
